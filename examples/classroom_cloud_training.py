"""Classroom pathway: the Chameleon side of the module.

Reproduces the instructor + students workflow of §3.2/§3.5: onboard an
education project, publish sample datasets to the object store, reserve
a GPU node with an advance reservation for the lab slot, deploy the
CUDA image, rsync the data up, train (real numpy training plus the
simulated GPU time accounting), store the weights, and publish the
whole thing as a Trovi artifact whose §5 metrics accrue as students
launch it.

Run:
    python examples/classroom_cloud_training.py [--students 4]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.artifacts.metrics import compute_outcomes
from repro.artifacts.trovi import TroviHub
from repro.core.collection import collect_sample_dataset, generate_sample_datasets
from repro.data.datasets import TubDataset
from repro.ml import EarlyStopping, Trainer, create_model, save_model_bytes
from repro.ml.training import estimate_flops_per_sample
from repro.net import autolearn_topology, rsync_tub
from repro.sim import default_tape_oval
from repro.testbed import Chameleon, TrainingJob

H, W = 48, 64


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--students", type=int, default=4)
    parser.add_argument("--records", type=int, default=1200)
    parser.add_argument("--epochs", type=int, default=6)
    args = parser.parse_args()
    work = Path(tempfile.mkdtemp(prefix="autolearn-class-"))

    chi = Chameleon()
    topo = autolearn_topology()
    track = default_tape_oval()

    # Instructor setup: project + sample datasets + lab-slot reservation.
    students = [f"student{i:02d}" for i in range(args.students)]
    project, _ = chi.onboard_class("instructor", "university", students)
    print(f"project {project.project_id}: {len(project.members)} members, "
          f"{project.allocation_su:.0f} SU allocation")
    instructor = chi.login("instructor", project.project_id)
    generate_sample_datasets(
        chi.object_store, [track], work / "publish", n_records=args.records,
        camera_hw=(H, W),
    )
    lab_start = chi.clock.now + 3600.0  # the lab slot, one hour out
    lease = chi.leases.create_lease(
        instructor, "gpu_v100", node_count=1, start=lab_start,
        duration_s=4 * 3600.0,
    )
    print(f"advance reservation {lease.lease_id} for the lab slot "
          f"({lease.node_ids[0]}, {lease.su_cost:.0f} SU)")

    # The hub artifact the class launches from.
    hub = TroviHub(chi.clock)
    artifact = hub.publish(
        "AutoLearn: Learning in the Edge to Cloud Continuum",
        owner="instructor",
        files={"01-reserve.ipynb": b"...", "02-train.ipynb": b"..."},
        tags={"education"},
    )

    # Lab time: provision once, students share the node.
    chi.scheduler.run_until(lab_start)
    instance = chi.deploy_training_server(lease)
    print(f"deployed {instance.image.name} on {instance.node_id} "
          f"({instance.node_type.gpu_count}x {instance.node_type.gpu})")

    for student in students:
        session = chi.login(student, project.project_id)
        hub.launch(artifact.artifact_id, student)
        hub.execute_cell(artifact.artifact_id, student)

        # Download the sample dataset, rsync to the training node.
        report = collect_sample_dataset(
            chi.object_store, track.name, work / student,
            route=topo.route("laptop", "chi-uc"),
        )
        transfer = rsync_tub(
            report.tub, topo.route("laptop", "chi-uc"), clock=chi.clock,
            rng=hash(student) % 1000,
        )

        # Real training + simulated GPU accounting.
        split = TubDataset(report.tub).split(rng=1, flip_augment=True)
        model = create_model("linear", input_shape=(H, W, 3), scale=0.4, seed=1)
        history = Trainer(
            batch_size=64, epochs=args.epochs,
            early_stopping=EarlyStopping(patience=3), shuffle_seed=1,
        ).fit(model, split)
        job = TrainingJob(
            flops_per_sample=estimate_flops_per_sample(model),
            n_samples=len(split.y_train),
            epochs=history.epochs,
        )
        run = chi.provisioning.run_training_job(instance, job)
        payload = save_model_bytes(model)
        chi.object_store.create_container("models").put(
            f"{student}.npz", payload, metadata={"val_loss": f"{history.best_val_loss:.4f}"}
        )
        print(f"  {student}: rsync {transfer.seconds:5.1f}s, "
              f"GPU time {run.simulated_seconds:5.0f}s "
              f"({run.gpu_count}x {run.gpu_name}), "
              f"val loss {history.best_val_loss:.4f}, "
              f"model {len(payload) / 1e3:.0f} kB -> object store")

    chi.leases.terminate(lease.lease_id)
    outcome = compute_outcomes(hub, artifact.artifact_id)
    print(f"\nproject usage: {project.charged_su:.1f} SU of "
          f"{project.allocation_su:.0f}")
    print(f"Trovi metrics: {outcome.as_row()}")


if __name__ == "__main__":
    main()
