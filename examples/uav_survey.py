"""Future-work preview (paper §6): a drone surveys a crop field.

"AutoLearn can be extended ... such as unmanned aerial vehicles or
drones, in addition to other applications such as precision
agriculture."  The UAV enrolls through CHI@Edge exactly like a car —
it is just another BYOD device — then flies a lawnmower survey over a
synthetic crop-stress field and reports coverage, detections, and the
swath-versus-flight-time tradeoff.

Run:
    python examples/uav_survey.py
"""

from __future__ import annotations

from repro.edge import CHIEdge, DeviceSpec
from repro.extensions.uav import CropField, fly_survey
from repro.testbed import Chameleon


def main() -> None:
    # The drone joins the testbed like any BYOD device (§3.2).
    chi = Chameleon()
    project, _ = chi.onboard_class("agronomy-prof", "university", ["pilot01"])
    session = chi.login("pilot01", project.project_id)
    edge = CHIEdge(chi.scheduler, chi.identity)
    drone_spec = DeviceSpec(
        model="quad-pi-cm4", arch="aarch64", effective_flops=4.0e9,
        mem_gb=8.0, sd_flash_s=420.0, boot_s=40.0,
    )
    drone = edge.enroll(session, "survey-drone-01", drone_spec)
    edge.allocate(session, drone.device_id)
    print(f"drone {drone.device_id} enrolled via BYOD "
          f"({drone.state.value}); onboard inference "
          f"{drone.spec.effective_flops / 1e9:.0f} GFLOP/s")

    fieldmap = CropField(width=40.0, height=24.0, n_hotspots=5, rng=7)
    print(f"\nfield: {fieldmap.width:.0f} x {fieldmap.height:.0f} m, "
          f"{len(fieldmap.hotspots)} stress hotspots (ground truth)")

    print(f"\n{'swath(m)':>9s} {'flight(s)':>10s} {'distance(m)':>12s} "
          f"{'coverage':>9s} {'found':>6s} {'recall':>7s}")
    for swath in (2.0, 4.0, 8.0):
        report = fly_survey(fieldmap, swath=swath)
        print(f"{swath:9.1f} {report.flight_seconds:10.1f} "
              f"{report.distance:12.1f} "
              f"{100 * report.coverage_fraction:8.0f}% "
              f"{report.hotspots_found:6d} {100 * report.recall:6.0f}%")

    report = fly_survey(fieldmap, swath=3.0)
    print("\ndetections at swath 3.0 m:")
    for x, y in report.detections:
        print(f"  stress hotspot near ({x:5.1f}, {y:5.1f})")


if __name__ == "__main__":
    main()
