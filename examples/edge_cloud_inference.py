"""Edge-to-cloud inference tradeoffs (the Zheng SC'23 poster, E6).

Trains an autopilot, then serves it from three placements — on the
car's Raspberry Pi, on a Chameleon V100 across the campus network, and
hybrid with adaptive fallback — while sweeping WAN quality, reporting
per-request latency and the on-track consequences (staleness, crashes).

Run:
    python examples/edge_cloud_inference.py [--records 1200] [--epochs 6]
"""

from __future__ import annotations

import argparse
import tempfile

import numpy as np

from repro.core.collection import collect_via_simulator
from repro.data.datasets import TubDataset
from repro.data.tubclean import TubCleaner
from repro.edge import RASPBERRY_PI_4, EdgeDevice
from repro.inference import CloudBackend, EdgeBackend, HybridBackend, RemotePilot
from repro.ml import EarlyStopping, Trainer, create_model
from repro.net import Link, autolearn_topology
from repro.sim import CameraParams, DrivingSession, default_tape_oval
from repro.testbed import GPU_SPECS

H, W = 48, 64


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=1200)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--ticks", type=int, default=600)
    args = parser.parse_args()
    work = tempfile.mkdtemp(prefix="autolearn-e2c-")

    track = default_tape_oval()
    print("[1/3] collecting + training the autopilot ...")
    report = collect_via_simulator(
        track, f"{work}/tub", n_records=args.records, skill=0.9, seed=1,
        camera_hw=(H, W),
    )
    TubCleaner(report.tub).clean(half_width=track.half_width)
    split = TubDataset(report.tub).split(rng=2, flip_augment=True)
    model = create_model("linear", input_shape=(H, W, 3), scale=0.5, seed=3)
    Trainer(batch_size=64, epochs=args.epochs,
            early_stopping=EarlyStopping(patience=3), shuffle_seed=2).fit(
        model, split
    )
    # Latency accounting uses the deployment-scale network (the full
    # 120x160 DonkeyCar architecture) — the bench-scale model above only
    # supplies the steering *content*.
    flops = create_model("linear", input_shape=(120, 160, 3)).flops_per_sample()
    device = EdgeDevice("dev-1", "car-01", RASPBERRY_PI_4, "proj-1")
    print(f"      deployed model: {flops / 1e6:.0f} MFLOP/frame, "
          f"Pi inference {1000 * device.inference_seconds(flops):.1f} ms")

    print("\n[2/3] per-request latency across placements and networks")
    print(f"{'network':14s} {'edge(ms)':>9s} {'cloud(ms)':>10s} {'hybrid(ms)':>11s} "
          f"{'hybrid cloud%':>14s}")
    networks = {
        "campus (good)": None,
        "congested": Link("wan-bad", 0.10, 1.0, 30e6, loss_rate=0.03),
    }
    for label, wan in networks.items():
        topo = autolearn_topology() if wan is None else autolearn_topology(wan=wan)
        route = topo.route("car-pi", "chi-uc")
        edge = EdgeBackend(device, flops)
        cloud = CloudBackend(GPU_SPECS["V100"], route, flops)
        hybrid = HybridBackend(
            EdgeBackend(device, flops),
            CloudBackend(GPU_SPECS["V100"], route, flops),
            policy="adaptive",
        )
        rng = np.random.default_rng(0)
        e = 1000 * np.mean([edge.request_latency(rng) for _ in range(300)])
        c = 1000 * np.mean([cloud.request_latency(rng) for _ in range(300)])
        h = 1000 * np.mean([hybrid.request_latency(rng) for _ in range(300)])
        share = 100 * hybrid.cloud_requests / max(
            hybrid.cloud_requests + hybrid.edge_requests, 1
        )
        print(f"{label:14s} {e:9.1f} {c:10.1f} {h:11.1f} {share:13.0f}%")

    print("\n[3/3] on-track consequences (closed loop)")
    print(f"{'placement':16s} {'laps':>5s} {'crashes':>8s} {'speed':>7s} "
          f"{'stale ticks':>12s}")
    placements = {
        "edge": EdgeBackend(device, flops),
        "cloud (good)": CloudBackend(
            GPU_SPECS["V100"], autolearn_topology().route("car-pi", "chi-uc"),
            flops,
        ),
        "cloud (bad)": CloudBackend(
            GPU_SPECS["V100"],
            autolearn_topology(
                wan=Link("wan-bad", 0.10, 1.0, 30e6, loss_rate=0.03)
            ).route("car-pi", "chi-uc"),
            flops,
        ),
    }
    for label, backend in placements.items():
        session = DrivingSession(
            track, camera=CameraParams(height=H, width=W), seed=60
        )
        pilot = RemotePilot(model, backend, dt=session.dt, rng=60)
        obs = session.reset()
        for _ in range(args.ticks):
            steering, throttle = pilot.run(obs.image)
            obs = session.step(steering, throttle)
        stats = session.stats
        print(f"{label:16s} {stats.laps_completed:5d} {stats.crashes:8d} "
              f"{stats.mean_speed:7.2f} {pilot.stats.stale_ticks:12d}")


if __name__ == "__main__":
    main()
