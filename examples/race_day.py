"""Race day: the steer-only competition with digital-twin scouting.

The paper's race configuration ("setting the throttle as constant,
useful if the car is used in races with a pilot that will steer but
does not control throttle", §3.3) plus two extensions: the real-time
speed governor (the Fowler poster) and a digital-twin pre-check
(§3.4) that predicts how each entrant will behave on the slightly
heavier 'real' car before the physical heat.

Run:
    python examples/race_day.py [--records 1200] [--epochs 6]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.core.collection import collect_via_simulator
from repro.core.drivers import PurePursuitDriver
from repro.core.evaluation import evaluate_model
from repro.data.datasets import TubDataset
from repro.data.tubclean import TubCleaner
from repro.inference import SpeedGovernor
from repro.ml import EarlyStopping, Trainer, create_model
from repro.sim import CameraParams, DrivingSession, default_tape_oval
from repro.twin import run_twin_comparison

H, W = 48, 64


def train_entrant(name, tubs, seed):
    model = create_model(name, input_shape=(H, W, 3), scale=0.5, seed=seed)
    dataset = TubDataset(tubs)
    if model.targets == "memory":
        split = dataset.split_memory(model.mem_length, rng=seed)
    elif model.sequence_length:
        split = dataset.split(rng=seed, targets=model.targets,
                              sequence_length=model.sequence_length)
    else:
        split = dataset.split(rng=seed, targets=model.targets, flip_augment=True)
    Trainer(batch_size=64, epochs=6, early_stopping=EarlyStopping(patience=3),
            shuffle_seed=seed).fit(model, split)
    return model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=1200)
    parser.add_argument("--entrants", nargs="+",
                        default=["linear", "categorical", "inferred"])
    parser.add_argument("--race-throttle", type=float, default=0.45)
    args = parser.parse_args()
    work = tempfile.mkdtemp(prefix="autolearn-race-")
    track = default_tape_oval()
    camera = CameraParams(height=H, width=W)

    print("[1/3] shared practice data ...")
    report = collect_via_simulator(
        track, f"{work}/tub", n_records=args.records, skill=0.9, seed=1,
        camera_hw=(H, W),
    )
    TubCleaner(report.tub).clean(half_width=track.half_width)

    print("[2/3] digital-twin scouting (severity 1.0 'real' car)")
    print(f"{'entrant':14s} {'sim speed':>10s} {'real speed':>11s} {'twin gap':>9s}")
    models = {}
    for name in args.entrants:
        model = train_entrant(name, [report.tub], seed=3)
        models[name] = model
        twin = run_twin_comparison(
            model, track, ticks=500, severity=1.0, seed=7, camera=camera
        )
        print(f"{name:14s} {twin.sim_mean_speed:10.2f} "
              f"{twin.real_mean_speed:11.2f} {twin.twin_gap:9.3f}")

    print(f"\n[3/3] the race: steer-only, constant throttle "
          f"{args.race_throttle} ('local_angle' mode)")
    print(f"{'entrant':14s} {'laps':>5s} {'errors':>7s} {'mean lap(s)':>12s} "
          f"{'speed':>7s}")
    results = []
    for name, model in models.items():
        heat = evaluate_model(
            model, track, ticks=900, seed=42, camera=camera,
            mode="local_angle", user_throttle=args.race_throttle,
        )
        results.append((name, heat))
        lap = f"{heat.mean_lap_time:12.2f}" if heat.laps else "           -"
        print(f"{name:14s} {heat.laps:5d} {heat.errors:7d} {lap} "
              f"{heat.mean_speed:7.2f}")

    winner = max(results, key=lambda r: (r[1].laps, -r[1].errors))
    print(f"\nwinner: {winner[0]} "
          f"({winner[1].laps} laps, {winner[1].errors} errors)")

    # Bonus heat: the governor holds a perfectly steady pace.
    session = DrivingSession(track, render=False, seed=43)
    driver = PurePursuitDriver(session)

    class Steer:
        def run(self, image):
            return driver(image, 0.0, 0.0)

    governor = SpeedGovernor(Steer(), target_speed=1.2, dt=session.dt)
    obs = session.reset()
    for _ in range(1500):
        angle, throttle = governor.run(obs.image, obs.speed)
        obs = session.step(angle, throttle)
    stats = session.stats
    print(f"\nconsistency demo (speed governor @1.2 m/s): "
          f"{stats.laps_completed} laps, lap std {stats.lap_time_std:.3f} s")


if __name__ == "__main__":
    main()
