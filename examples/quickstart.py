"""Quickstart: the digital pathway on your laptop.

The self-learner loop from the paper's Fig. 1, end to end, with no car
and no testbed: collect driving data in the simulator, clean it with
tubclean, train the beginner (linear) model, and evaluate it on the
paper's orange-tape oval.

Run:
    python examples/quickstart.py [--records 1500] [--epochs 8]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.core.collection import collect_via_simulator
from repro.core.evaluation import evaluate_model
from repro.data.datasets import TubDataset
from repro.data.tubclean import TubCleaner
from repro.ml import EarlyStopping, Trainer, create_model, save_model
from repro.sim import CameraParams, default_tape_oval


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=2000)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--camera", default="48x64",
                        help="HxW camera resolution (default 48x64; the "
                        "real car uses 120x160)")
    parser.add_argument("--out", default=None, help="working directory")
    args = parser.parse_args()
    h, w = (int(v) for v in args.camera.split("x"))
    work = Path(args.out) if args.out else Path(tempfile.mkdtemp(prefix="autolearn-"))

    track = default_tape_oval()
    dims = track.dimensions_inches()
    print(f"track: {track.name} — inner {dims['inner_line_in']:.0f} in, "
          f"outer {dims['outer_line_in']:.0f} in, width {dims['width_in']:.1f} in")

    # 1. Data collection (Fig. 2, simulator path).
    print(f"\n[1/4] collecting {args.records} records in the simulator ...")
    report = collect_via_simulator(
        track, work / "tub", n_records=args.records, skill=0.9, seed=1,
        camera_hw=(h, w),
    )
    print(f"      {report.records} records, {report.laps} laps, "
          f"{report.crashes} crashes, {report.wall_seconds:.0f} s of driving")

    # 2. Cleaning (tubclean).
    print("[2/4] cleaning with tubclean ...")
    marked = TubCleaner(report.tub).clean(half_width=track.half_width)
    print(f"      flagged {marked} bad records; "
          f"{report.tub.active_count} remain")

    # 3. Training (the beginner model).
    print(f"[3/4] training the linear model for up to {args.epochs} epochs ...")
    dataset = TubDataset(report.tub)
    split = dataset.split(val_fraction=0.15, rng=2, flip_augment=True)
    model = create_model("linear", input_shape=(h, w, 3), scale=0.5, seed=3)
    history = Trainer(
        batch_size=64, epochs=args.epochs,
        early_stopping=EarlyStopping(patience=3), shuffle_seed=2,
    ).fit(model, split)
    print(f"      best val loss {history.best_val_loss:.4f} "
          f"after {history.epochs} epochs")
    save_model(model, work / "pilot.npz")

    # 4. Evaluation ("speed, number of errors, etc." — §3.3).
    print("[4/4] evaluating on track ...")
    evaluation = evaluate_model(
        model, track, ticks=800, seed=9, camera=CameraParams(height=h, width=w)
    )
    print(f"      laps {evaluation.laps}, errors {evaluation.errors}, "
          f"mean speed {evaluation.mean_speed:.2f} m/s, "
          f"mean |cte| {evaluation.mean_abs_cte:.3f} m")
    print(f"\nmodel and tub saved under {work}")


if __name__ == "__main__":
    main()
