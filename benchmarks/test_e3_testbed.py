"""E3 — §3.2: Chameleon inventory and advance reservations.

Reproduced rows: the published accelerator inventory ("40 nodes with a
single Nvidia RTX6000 GPU ... sets of 4 nodes each with 4x Nvidia V100,
P100, or A100 Datacenter GPUs and InfiniBand interconnects ... M40,
K80, AMD MI100"), plus a classroom reservation scenario exercising
advance reservations, conflicts, and SU accounting end to end.
"""

from repro.common.errors import ReservationConflictError
from repro.testbed.chameleon import Chameleon
from repro.testbed.hardware import NODE_TYPES

from conftest import emit


def inventory_rows():
    rows = []
    for name, nt in sorted(NODE_TYPES.items()):
        rows.append((name, nt.site, nt.gpu or "-", nt.gpu_count, nt.node_count,
                     nt.interconnect))
    return rows


def classroom_scenario():
    """An instructor reserves a class block; students lease around it."""
    chi = Chameleon()
    project, _ = chi.onboard_class(
        "instructor", "university", [f"student{i:02d}" for i in range(10)]
    )
    instructor = chi.login("instructor", project.project_id)
    week = 7 * 24 * 3600.0
    class_block = chi.leases.create_lease(
        instructor, "gpu_rtx_6000", node_count=10, start=week, duration_s=3 * 3600
    )
    # Students lease on demand today; the future block does not collide.
    student_leases = []
    for i in range(10):
        session = chi.login(f"student{i:02d}", project.project_id)
        student_leases.append(
            chi.leases.create_lease(session, "gpu_rtx_6000", duration_s=2 * 3600)
        )
    # During the class block, at most 30 walk-in nodes remain.
    free_during_class = chi.leases.available_nodes(
        "gpu_rtx_6000", week, week + 3600
    )
    conflict = False
    try:
        chi.leases.create_lease(
            instructor, "gpu_rtx_6000", node_count=31, start=week,
            duration_s=3600,
        )
    except ReservationConflictError:
        conflict = True
    return project, class_block, student_leases, free_during_class, conflict


def test_e3_inventory_and_reservations(benchmark):
    result = benchmark.pedantic(classroom_scenario, rounds=1, iterations=1)
    project, class_block, student_leases, free_during_class, conflict = result

    lines = [f"{'node type':20s} {'site':10s} {'gpu':12s} {'xGPU':>5s} "
             f"{'nodes':>6s} {'fabric':>12s}"]
    for name, site, gpu, gcount, ncount, inter in inventory_rows():
        lines.append(
            f"{name:20s} {site:10s} {gpu:12s} {gcount:5d} {ncount:6d} {inter:>12s}"
        )
    lines += [
        "",
        f"classroom scenario: advance block of {len(class_block.node_ids)} "
        f"RTX6000 nodes next week ({class_block.state.value})",
        f"walk-in student leases today: {len(student_leases)}",
        f"free RTX6000 nodes during the class block: {len(free_during_class)}",
        f"over-subscription rejected: {conflict}",
        f"SUs charged to the education project: {project.charged_su:.1f} "
        f"of {project.allocation_su:.0f}",
    ]
    emit("E3_testbed", "\n".join(lines))

    # Paper inventory shape.
    assert NODE_TYPES["gpu_rtx_6000"].node_count == 40
    for name in ("gpu_v100", "gpu_p100", "gpu_a100"):
        assert NODE_TYPES[name].node_count == 4
        assert NODE_TYPES[name].gpu_count == 4
    assert len(free_during_class) == 30
    assert conflict
    assert project.charged_su > 0
