"""Ablation — renderer fidelity (DESIGN.md §5).

The reproduction's results should not hinge on the perspective
renderer's details.  This ablation trains the same model on data from
(a) the perspective ground-plane renderer and (b) the top-down
orthographic renderer, evaluates each in its own world, and also
measures raw render throughput (frames/second matters for dataset
generation).

Shape: both fidelities produce a model that drives its own world
(E1-class conclusions are renderer-robust); perspective rendering is
the more expensive of the two.
"""

import time

from repro.core.evaluation import evaluate_model
from repro.data.datasets import TubDataset
from repro.data.records import DriveRecord
from repro.data.tub import Tub
from repro.core.drivers import PurePursuitDriver, StudentDriver
from repro.ml.models.factory import create_model
from repro.ml.training import EarlyStopping, Trainer
from repro.sim.renderer import CameraRenderer
from repro.sim.session import DrivingSession

from conftest import BENCH_H, BENCH_W, bench_camera, emit


def collect_with_mode(oval, tub_path, mode, n_records=1000):
    session = DrivingSession(
        oval, camera=bench_camera(), seed=13, renderer_mode=mode
    )
    driver = StudentDriver(PurePursuitDriver(session), skill=0.9, rng=14)
    tub = Tub.create(tub_path, metadata={"track_half_width": oval.half_width})
    obs = session.reset()
    with tub.bulk():
        for i in range(n_records):
            steering, throttle = driver(obs.image, obs.cte, obs.speed)
            obs = session.step(steering, throttle)
            tub.write_record(
                DriveRecord(
                    image=obs.image, angle=steering, throttle=throttle,
                    cte=obs.cte, speed=obs.speed, off_track=obs.off_track,
                    timestamp_ms=i * 50,
                )
            )
    return tub


def train_eval(oval, tub, mode, seed=5):
    split = TubDataset(tub).split(rng=seed, targets="both", flip_augment=True)
    model = create_model(
        "linear", input_shape=(BENCH_H, BENCH_W, 3), scale=0.5, seed=seed
    )
    history = Trainer(
        batch_size=64, epochs=8, early_stopping=EarlyStopping(patience=3),
        shuffle_seed=seed,
    ).fit(model, split)
    session = DrivingSession(
        oval, camera=bench_camera(), seed=seed + 50, renderer_mode=mode
    )
    from repro.vehicle.builder import build_autopilot_vehicle

    build_autopilot_vehicle(session, model).start(max_loop_count=600)
    return history, session.stats


def render_throughput(oval, mode, frames=150):
    renderer = CameraRenderer(oval, bench_camera(), mode=mode)
    x, y, heading = oval.start_pose()
    start = time.perf_counter()
    for i in range(frames):
        renderer.render(x, y, heading + 0.01 * i, rng=None)
    return frames / (time.perf_counter() - start)


def test_ablation_renderer_fidelity(benchmark, tmp_path, oval):
    def run():
        rows = {}
        for mode in ("perspective", "topdown"):
            tub = collect_with_mode(oval, tmp_path / mode, mode)
            history, stats = train_eval(oval, tub, mode)
            rows[mode] = (history, stats, render_throughput(oval, mode))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'renderer':14s} {'val loss':>9s} {'laps':>5s} {'errors':>7s} "
        f"{'speed':>7s} {'frames/s':>9s}"
    ]
    for mode, (history, stats, fps) in rows.items():
        lines.append(
            f"{mode:14s} {history.best_val_loss:9.4f} "
            f"{stats.laps_completed:5d} {stats.crashes:7d} "
            f"{stats.mean_speed:7.2f} {fps:9.0f}"
        )
    emit("ablation_renderer", "\n".join(lines))

    # Both fidelities train a model that makes real progress.
    for mode, (history, stats, _fps) in rows.items():
        assert history.best_val_loss < 0.1, mode
        assert stats.distance > 5.0, mode
