"""BENCH — compiled ML fast path: forward and training-step scaling.

Times the compiled execution plans (``repro.ml.plan``) against the
reference layer stack on DonkeyModel backbones at the bench frame size
(48x64, scale 0.5):

* **forward** — batched (32) and single-frame, plan vs reference, plus
  the serving-relevant comparison: one compiled batched pass against
  32 serial reference forwards (what a replica would otherwise do);
* **training** — one forward+backward step through the
  ``TrainingPlan`` vs the reference layers, with the bitwise-equality
  guarantee re-checked on the measured step.

Acceptance (pinned at levels robust to a noisy shared box; quiet-box
measurements are higher — see ROADMAP item 2 for the measured spread):
the compiled batched pass beats serial reference serving >= 1.5x, the
compiled single-frame pass beats the reference >= 1.2x, batched the
plan is never slower than the reference stack (<= 1.15x tolerance),
and the training step is at parity (<= 1.25x) while staying bitwise.

All timings are interleaved best-of-N within one process so plan and
reference see the same machine state.
"""

import time

import numpy as np

from repro.ml.models.factory import create_model

from conftest import BENCH_H, BENCH_W, emit, emit_json

MODELS = ("linear", "rnn", "3d")
BATCH = 32
REPEATS = 9


def _interleaved_best(fns, repeats=REPEATS):
    """Best-of-N per function, round-robin so load noise hits all alike."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def _batch_for(model, rng, n):
    shape = (
        (n, model.sequence_length, BENCH_H, BENCH_W, 3)
        if model.sequence_length
        else (n, BENCH_H, BENCH_W, 3)
    )
    return rng.random(shape, dtype=np.float32)


def _measure_forward(name):
    model = create_model(name, input_shape=(BENCH_H, BENCH_W, 3), scale=0.5, seed=3)
    net = model.net
    rng = np.random.default_rng(11)
    x32 = _batch_for(model, rng, BATCH)
    x1 = x32[:1].copy()
    plan = net.plan()

    def ref_batched():
        net.forward(x32, training=False)

    def ref_serial():
        for i in range(BATCH):
            net.forward(x32[i : i + 1], training=False)

    def ref_single():
        net.forward(x1, training=False)

    def plan_batched():
        plan.run(x32)

    def plan_single():
        plan.run(x1)

    plan_batched()  # warm: compile + allocate both batch keys
    plan_single()
    rb, rs, r1, pb, p1 = _interleaved_best(
        [ref_batched, ref_serial, ref_single, plan_batched, plan_single]
    )
    return {
        "model": name,
        "batch": BATCH,
        "ref_batched_ms": rb * 1e3,
        "ref_serial_ms": rs * 1e3,
        "ref_single_ms": r1 * 1e3,
        "plan_batched_ms": pb * 1e3,
        "plan_single_ms": p1 * 1e3,
        "plan_vs_ref_batched": rb / pb,
        "plan_batched_vs_ref_serial": rs / pb,
        "plan_vs_ref_single": r1 / p1,
    }


def _measure_train(name):
    model = create_model(name, input_shape=(BENCH_H, BENCH_W, 3), scale=0.5, seed=3)
    net = model.net
    rng = np.random.default_rng(13)
    x = _batch_for(model, rng, BATCH)
    y = rng.random((BATCH, 2), dtype=np.float32)
    tplan = net.training_plan()

    def ref_step():
        out = net.forward(x, training=True)
        net.backward(out - y)

    def plan_step():
        out = tplan.forward(x)
        tplan.backward(out - y)

    # Bitwise re-check on the measured workload: identical forward and
    # identical gradients from the two paths (fresh dropout streams per
    # net, so compare two same-seed twins).
    twin = create_model(name, input_shape=(BENCH_H, BENCH_W, 3), scale=0.5, seed=3)
    twin_out = twin.net.forward(x, training=True)
    twin.net.backward(twin_out - y)
    plan_out = tplan.forward(x)
    tplan.backward(plan_out - y)
    assert np.array_equal(plan_out, twin_out)
    for ga, gb in zip(net.grads, twin.net.grads):
        assert np.array_equal(ga, gb)

    ref_step()  # warm both paths before timing
    plan_step()
    rt, pt = _interleaved_best([ref_step, plan_step])
    return {
        "model": name,
        "batch": BATCH,
        "ref_step_ms": rt * 1e3,
        "plan_step_ms": pt * 1e3,
        "plan_vs_ref_step": rt / pt,
        "bitwise_identical": True,
    }


def test_ml_forward_scale(benchmark):
    rows = benchmark.pedantic(
        lambda: [_measure_forward(name) for name in MODELS],
        rounds=1,
        iterations=1,
    )
    header = (
        f"{'model':>8s} {'refB(ms)':>9s} {'refS(ms)':>9s} {'planB(ms)':>10s} "
        f"{'ref1(ms)':>9s} {'plan1(ms)':>10s} {'B/B':>6s} {'B/S':>6s} {'1/1':>6s}"
    )
    lines = [header]
    for r in rows:
        lines.append(
            f"{r['model']:>8s} {r['ref_batched_ms']:9.2f} "
            f"{r['ref_serial_ms']:9.2f} {r['plan_batched_ms']:10.2f} "
            f"{r['ref_single_ms']:9.3f} {r['plan_single_ms']:10.3f} "
            f"{r['plan_vs_ref_batched']:5.2f}x "
            f"{r['plan_batched_vs_ref_serial']:5.2f}x "
            f"{r['plan_vs_ref_single']:5.2f}x"
        )
    emit("BENCH_ml_forward", "\n".join(lines))
    emit_json("BENCH_ml_forward", {"rows": rows, "repeats": REPEATS})

    by_model = {r["model"]: r for r in rows}
    linear = by_model["linear"]
    # Serving claim: one compiled batched pass replaces 32 serial
    # reference forwards at >= 1.5x (measured 2.4-5x depending on load).
    assert linear["plan_batched_vs_ref_serial"] >= 1.5
    # Single-frame (drive-loop) latency: plan >= 1.2x (measured 1.8-2.9x).
    assert linear["plan_vs_ref_single"] >= 1.2
    # Batched, the plan is never slower than the reference stack.
    for r in rows:
        assert r["plan_batched_ms"] <= r["ref_batched_ms"] * 1.15


def test_ml_train_scale(benchmark):
    rows = benchmark.pedantic(
        lambda: [_measure_train(name) for name in MODELS],
        rounds=1,
        iterations=1,
    )
    header = f"{'model':>8s} {'ref(ms)':>9s} {'plan(ms)':>9s} {'gain':>6s}  bitwise"
    lines = [header]
    for r in rows:
        lines.append(
            f"{r['model']:>8s} {r['ref_step_ms']:9.2f} {r['plan_step_ms']:9.2f} "
            f"{r['plan_vs_ref_step']:5.2f}x  {r['bitwise_identical']}"
        )
    emit("BENCH_ml_train", "\n".join(lines))
    emit_json("BENCH_ml_train", {"rows": rows, "repeats": REPEATS})

    for r in rows:
        # The training plan mirrors the reference math op-for-op (the
        # bitwise contract), so its FLOPs are identical; preallocation
        # must keep it at least at parity with the reference step.
        assert r["bitwise_identical"]
        assert r["plan_step_ms"] <= r["ref_step_ms"] * 1.25
