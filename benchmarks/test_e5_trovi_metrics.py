"""E5 — §5: Trovi impact metrics.

"As of this writing, since its publication in September 2023, the
numbers for our artifact in Trovi are modest: 35 total number of launch
button clicks, 9 users who clicked the launch button, 2 users who
executed at least one cell, and it has been published 8 versions of the
artifact."

Reproduced row: exactly those four counters, derived from a synthetic
interaction log replayed through Trovi's metric definitions (launch
events, distinct launching actors, distinct executing actors, version
count) — plus the §5 outcome-vs-impact distinction (the two REU
posters recorded as impact notes).
"""

from repro.artifacts.metrics import compute_outcomes
from repro.artifacts.trovi import TroviHub

from conftest import emit

PAPER_COUNTERS = {
    "launch_clicks": 35,
    "launching_users": 9,
    "executing_users": 2,
    "versions": 8,
}


def replay_interaction_log():
    hub = TroviHub()
    artifact = hub.publish(
        "AutoLearn: Learning in the Edge to Cloud Continuum",
        owner="alicia",
        files={"01-collect.ipynb": b"...", "02-train.ipynb": b"...",
               "03-evaluate.ipynb": b"..."},
        tags={"education", "edge", "donkeycar"},
        authors=["alicia", "william", "kate", "kyle", "michael", "richard"],
    )
    # 7 follow-up versions (September..publication): 8 total.
    for k in range(7):
        hub.clock.advance(5 * 86400)
        hub.publish_version(
            artifact.artifact_id, {"01-collect.ipynb": bytes([k])},
            changelog=f"rev {k + 2}",
        )
    # 9 distinct users click launch 35 times total; 2 of them execute.
    click_counts = [6, 5, 5, 4, 4, 4, 3, 2, 2]  # sums to 35
    for user_idx, clicks in enumerate(click_counts):
        user = f"user{user_idx:02d}"
        hub.view(artifact.artifact_id, user)
        for _ in range(clicks):
            hub.clock.advance(3600)
            hub.launch(artifact.artifact_id, user)
    for user in ("user00", "user03"):
        hub.execute_cell(artifact.artifact_id, user, cell_index=0)
        hub.execute_cell(artifact.artifact_id, user, cell_index=1)
    return hub, artifact


def test_e5_trovi_counters(benchmark):
    hub, artifact = benchmark.pedantic(
        replay_interaction_log, rounds=1, iterations=1
    )
    report = compute_outcomes(
        hub,
        artifact.artifact_id,
        impact_notes=(
            "REU poster: Road To Reliability (Fowler et al., SC'23)",
            "REU poster: Chasing Clouds with Donkeycar (Zheng et al., SC'23)",
        ),
    )
    lines = [f"{'counter':18s} {'paper':>8s} {'measured':>10s}"]
    for key, paper_value in PAPER_COUNTERS.items():
        lines.append(f"{key:18s} {paper_value:8d} {report.as_row()[key]:10d}")
    lines += ["", "impact (self-reported, not automated):"]
    lines += [f"  - {note}" for note in report.impact_notes]
    emit("E5_trovi_metrics", "\n".join(lines))

    assert report.as_row() == PAPER_COUNTERS
    assert len(report.impact_notes) == 2
