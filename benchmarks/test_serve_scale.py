"""BENCH — fleet serving scale: micro-batching, policies, saturation.

Sweeps offered load x batch policy x replica count over the serve
subsystem (V100 replicas, 100 ms deadline) and reports goodput, tail
latency, and deadline-miss rate per configuration, plus the saturation
knee per policy.  The acceptance claim: adaptive micro-batching
sustains >= 3x the measured throughput of batch-size-1 serving at
saturating load.

A second microbench checks the *real* numpy forward passes: one
batched ``predict_frames`` call must beat B single-frame ``run`` calls
wall-clock, which is the compute-side fact the serving simulation's
affine latency law encodes.
"""

import time

import numpy as np

from repro.serve import (
    BatchLatencyModel,
    InferenceService,
    PoissonWorkload,
)
from repro.testbed.hardware import GPU_SPECS

from conftest import BENCH_H, BENCH_W, emit, emit_json

FLOPS_PER_FRAME = 1e8
DEADLINE_S = 0.1
DURATION_S = 3.0
LOADS_HZ = (200.0, 1000.0, 3000.0)
POLICIES = ("single", "size", "wait", "adaptive")


def run_point(rate_hz, policy, replicas=1):
    latency_model = BatchLatencyModel.from_gpu(GPU_SPECS["V100"], FLOPS_PER_FRAME)
    service = InferenceService(
        latency_model,
        n_replicas=replicas,
        batch_policy=policy,
        queue_capacity=128,
        seed=11,
    )
    workload = PoissonWorkload(rate_hz, deadline_s=DEADLINE_S, seed=11)
    return service.run(workload, DURATION_S)


def sweep():
    points = {}
    for rate in LOADS_HZ:
        for policy in POLICIES:
            points[(rate, policy, 1)] = run_point(rate, policy, replicas=1)
    # Replica scaling at the heaviest load, adaptive policy.
    for replicas in (2, 4):
        points[(LOADS_HZ[-1], "adaptive", replicas)] = run_point(
            LOADS_HZ[-1], "adaptive", replicas=replicas
        )
    return points


def test_serve_scale(benchmark):
    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    header = (
        f"{'load(Hz)':>9s} {'policy':>9s} {'repl':>5s} {'goodput':>9s} "
        f"{'tput':>9s} {'p50(ms)':>8s} {'p95(ms)':>8s} {'p99(ms)':>8s} "
        f"{'miss':>7s} {'batch':>6s}"
    )
    lines = [header]
    records = []
    for (rate, policy, replicas), s in sorted(points.items()):
        lines.append(
            f"{rate:9.0f} {policy:>9s} {replicas:5d} {s.goodput_hz:9.1f} "
            f"{s.throughput_hz:9.1f} {s.p50_ms:8.2f} {s.p95_ms:8.2f} "
            f"{s.p99_ms:8.2f} {s.deadline_miss_rate:7.3f} {s.mean_batch:6.1f}"
        )
        records.append(
            {"offered_hz": rate, "replicas": replicas, **s.to_dict()}
        )

    # Saturation knee per policy: the single-replica throughput ceiling.
    lines.append("")
    ceilings = {}
    for policy in POLICIES:
        ceilings[policy] = max(
            s.throughput_hz
            for (rate, pol, repl), s in points.items()
            if pol == policy and repl == 1
        )
        lines.append(
            f"single-replica ceiling [{policy:>9s}]: "
            f"{ceilings[policy]:8.1f} req/s"
        )
    gain = ceilings["adaptive"] / ceilings["single"]
    lines.append(f"adaptive vs single throughput gain: {gain:.1f}x")

    emit("BENCH_serve", "\n".join(lines))
    emit_json(
        "BENCH_serve",
        {
            "configurations": records,
            "single_replica_ceiling_hz": ceilings,
            "adaptive_over_single_gain": gain,
        },
    )

    # Acceptance: adaptive micro-batching >= 3x batch-size-1 throughput
    # at saturating load, while holding the deadline SLO.
    assert gain >= 3.0
    saturated = points[(LOADS_HZ[-1], "adaptive", 1)]
    assert saturated.deadline_miss_rate < 0.05
    # Replica scaling adds goodput at the saturated operating point.
    assert (
        points[(LOADS_HZ[-1], "adaptive", 4)].goodput_hz
        > saturated.goodput_hz
    )


def test_batched_forward_beats_serial(bench_linear, benchmark):
    """Real numpy forwards: one (B,...) pass vs B single-frame run() calls."""
    rng = np.random.default_rng(0)
    batch = rng.integers(0, 255, (32, BENCH_H, BENCH_W, 3), dtype=np.uint8)

    def timed(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def serial():
        bench_linear.reset_state()
        for frame in batch:
            bench_linear.run(frame)

    batched_s = benchmark.pedantic(
        lambda: timed(lambda: bench_linear.predict_frames(batch)),
        rounds=1,
        iterations=1,
    )
    serial_s = timed(serial)
    speedup = serial_s / batched_s
    emit(
        "BENCH_serve_forward",
        f"batched predict_frames(32): {batched_s * 1e3:8.2f} ms\n"
        f"32 x single-frame run():    {serial_s * 1e3:8.2f} ms\n"
        f"speedup: {speedup:.2f}x",
    )
    assert batched_s < serial_s
