"""E9 — §3.4: digital-twin exploration.

"a range of interesting projects can be based on developing a digital
twin model based on comparing the simulation output with real-life
model evaluation."

Reproduced series: the same pilot evaluated in the nominal simulator
and on progressively more "real" plants (heavier, laggier ESC/servo,
noisier camera — a severity sweep).  The asserted sweep drives with
the scripted expert, which isolates *plant* divergence from model
quality; a learned-model row is reported for context (its gap adds
perception noise on top).

Shapes: the twin gap grows monotonically with plant severity; the
real car is slower than its simulated twin; an identical plant gives a
(near-)zero gap.
"""

from repro.twin.digital_twin import run_twin_comparison

from conftest import bench_camera, emit

SEVERITIES = (0.0, 0.5, 1.0, 2.0)


def run_sweep(bench_linear, oval):
    expert = {
        severity: run_twin_comparison(
            "expert", oval, ticks=800, severity=severity, seed=8,
            camera=bench_camera(),
        )
        for severity in SEVERITIES
    }
    learned = run_twin_comparison(
        bench_linear, oval, ticks=800, severity=1.0, seed=8,
        camera=bench_camera(),
    )
    return expert, learned


def test_e9_twin_gap_vs_severity(benchmark, bench_linear, oval):
    expert, learned = benchmark.pedantic(
        run_sweep, args=(bench_linear, oval), rounds=1, iterations=1
    )
    lines = [
        f"{'pilot':8s} {'severity':>9s} {'sim speed':>10s} {'real speed':>11s} "
        f"{'cte rmse':>9s} {'speed rmse':>11s} {'twin gap':>9s}"
    ]
    for severity in SEVERITIES:
        r = expert[severity]
        lines.append(
            f"{'expert':8s} {severity:9.1f} {r.sim_mean_speed:10.2f} "
            f"{r.real_mean_speed:11.2f} {r.cte_profile_rmse:9.3f} "
            f"{r.speed_profile_rmse:11.3f} {r.twin_gap:9.3f}"
        )
    lines.append(
        f"{'learned':8s} {1.0:9.1f} {learned.sim_mean_speed:10.2f} "
        f"{learned.real_mean_speed:11.2f} {learned.cte_profile_rmse:9.3f} "
        f"{learned.speed_profile_rmse:11.3f} {learned.twin_gap:9.3f}"
        "   (adds perception noise)"
    )
    emit("E9_digital_twin", "\n".join(lines))

    gaps = [expert[s].twin_gap for s in SEVERITIES]
    # Shape 1: the twin gap grows monotonically with plant severity.
    assert all(a <= b + 1e-9 for a, b in zip(gaps, gaps[1:]))
    # Shape 2: an identical plant is a (near-)perfect twin.
    assert gaps[0] < 0.02
    # Shape 3: the heavier, laggier real car is slower than the sim.
    assert expert[2.0].real_mean_speed < expert[2.0].sim_mean_speed
    # The expert drives both worlds without crashing.
    assert expert[2.0].sim_errors == 0 and expert[2.0].real_errors == 0