"""F3 — Fig. 3: the two evaluation tracks and their sample datasets.

Paper claims reproduced:

* default tape oval: "inner line length: 330 in, outer line length:
  509 in and average width: 27.59 in";
* "Each of the existing datasets contains 10-50K records, records that
  consist of .catalog files, images directory, and manifest files."

The geometry table reports both oval builds (direct-measurement and
calibrated, see ``repro.sim.tracks``); the dataset table demonstrates
the tub layout and extrapolates collection time to the 10-50 K range.
"""

import pytest

from repro.core.collection import collect_via_simulator
from repro.sim.tracks import (
    PAPER_OVAL_INNER_IN,
    PAPER_OVAL_OUTER_IN,
    PAPER_OVAL_WIDTH_IN,
    default_tape_oval,
    waveshare_track,
)

from conftest import BENCH_H, BENCH_W, emit


def build_geometry_table():
    rows = []
    for label, track in [
        ("oval (direct meas.)", default_tape_oval()),
        ("oval (calibrated)", default_tape_oval(calibrated=True)),
        ("waveshare", waveshare_track()),
    ]:
        dims = track.dimensions_inches()
        rows.append(
            (label, dims["inner_line_in"], dims["outer_line_in"], dims["width_in"])
        )
    return rows


def test_fig3_track_geometry(benchmark):
    rows = benchmark.pedantic(build_geometry_table, rounds=1, iterations=1)
    lines = [
        f"{'track':22s} {'inner(in)':>10s} {'outer(in)':>10s} {'width(in)':>10s}",
        f"{'paper oval':22s} {PAPER_OVAL_INNER_IN:10.1f} "
        f"{PAPER_OVAL_OUTER_IN:10.1f} {PAPER_OVAL_WIDTH_IN:10.2f}",
    ]
    for label, inner, outer, width in rows:
        lines.append(f"{label:22s} {inner:10.1f} {outer:10.1f} {width:10.2f}")
    emit("F3_track_geometry", "\n".join(lines))

    direct = rows[0]
    assert direct[1] == pytest.approx(PAPER_OVAL_INNER_IN, rel=0.005)
    assert direct[3] == pytest.approx(PAPER_OVAL_WIDTH_IN, rel=0.001)
    assert direct[2] == pytest.approx(PAPER_OVAL_OUTER_IN, rel=0.02)
    calibrated = rows[1]
    assert calibrated[2] == pytest.approx(PAPER_OVAL_OUTER_IN, rel=0.002)


def test_fig3_sample_dataset_layout(benchmark, tmp_path, oval):
    def collect():
        return collect_via_simulator(
            oval, tmp_path / "sample", n_records=1000, skill=1.0,
            seed=5, camera_hw=(BENCH_H, BENCH_W),
        )

    report = benchmark.pedantic(collect, rounds=1, iterations=1)
    tub = report.tub
    catalogs = sorted(p.name for p in tub.path.glob("*.catalog"))
    sidecars = sorted(p.name for p in tub.path.glob("*.catalog_manifest"))
    images = len(list(tub.images_dir.glob("*.npy")))

    # Paper: 10-50K records.  Collection at 20 Hz -> extrapolated time.
    minutes_10k = 10_000 / 20.0 / 60.0
    minutes_50k = 50_000 / 20.0 / 60.0
    lines = [
        f"records:            {report.records}",
        f"catalog files:      {catalogs}",
        f"catalog manifests:  {len(sidecars)}",
        f"manifest.json:      {(tub.path / 'manifest.json').exists()}",
        f"images/:            {images} files",
        f"bytes on disk:      {tub.size_bytes():,}",
        "",
        "paper-scale extrapolation (driving at 20 Hz):",
        f"  10K records = {minutes_10k:.0f} min of driving",
        f"  50K records = {minutes_50k:.0f} min of driving",
    ]
    emit("F3_sample_dataset", "\n".join(lines))

    assert report.records == 1000
    assert catalogs == ["catalog_0.catalog"]
    assert len(sidecars) == 1
    assert images == 1000
