"""E7 — §5 / REU poster [12]: consistency from real-time speed data.

"Road To Reliability: Optimizing Self-Driving Consistency With
Real-Time Speed Data" (Fowler et al., SC'23 poster) — the extension
closes the throttle loop on live speed telemetry.

Reproduced series: lap times over a long run with (a) open-loop
throttle (battery sag drifts the pace) and (b) the PI speed governor
consuming real-time speed data.  Shape: the governor cuts the lap-time
standard deviation by a large factor while holding comparable pace.
"""

import numpy as np

from repro.core.drivers import PurePursuitDriver
from repro.inference.consistency import OpenLoopThrottle, SpeedGovernor
from repro.sim.session import DrivingSession

from conftest import bench_camera, emit

TICKS = 3000  # 150 s of driving: enough for ~15 laps


class _Steer:
    """Pure-pursuit steering source shared by both throttle modes."""

    def __init__(self, session):
        self._driver = PurePursuitDriver(session)

    def run(self, image):
        return self._driver(image, 0.0, 0.0)


def lap_times(controller_factory, oval, seed):
    session = DrivingSession(oval, render=False, seed=seed)
    controller = controller_factory(session)
    obs = session.reset()
    for _ in range(TICKS):
        angle, throttle = controller.run(obs.image, obs.speed)
        obs = session.step(angle, throttle)
    return session.stats


def run_experiment(oval):
    open_stats = lap_times(
        lambda s: OpenLoopThrottle(_Steer(s), throttle=0.5, sag_per_tick=4e-4),
        oval, seed=3,
    )
    governed_stats = lap_times(
        lambda s: SpeedGovernor(_Steer(s), target_speed=1.2, dt=s.dt),
        oval, seed=3,
    )
    return open_stats, governed_stats


def test_e7_speed_feedback_consistency(benchmark, oval):
    open_stats, governed_stats = benchmark.pedantic(
        lambda: run_experiment(oval), rounds=1, iterations=1
    )
    lines = [
        f"{'controller':26s} {'laps':>5s} {'mean lap(s)':>12s} "
        f"{'lap std(s)':>11s} {'mean speed':>11s}",
        f"{'open-loop (battery sag)':26s} {open_stats.laps_completed:5d} "
        f"{open_stats.mean_lap_time:12.2f} {open_stats.lap_time_std:11.3f} "
        f"{open_stats.mean_speed:11.2f}",
        f"{'governor (real-time speed)':26s} {governed_stats.laps_completed:5d} "
        f"{governed_stats.mean_lap_time:12.2f} "
        f"{governed_stats.lap_time_std:11.3f} "
        f"{governed_stats.mean_speed:11.2f}",
        "",
        f"lap-time variability reduction: "
        f"{open_stats.lap_time_std / max(governed_stats.lap_time_std, 1e-6):.1f}x",
    ]
    emit("E7_consistency", "\n".join(lines))

    assert governed_stats.laps_completed >= 5
    assert open_stats.laps_completed >= 5
    # Shape: real-time speed feedback collapses lap-time variance.
    assert governed_stats.lap_time_std < open_stats.lap_time_std / 2.0
    # And neither controller crashes.
    assert governed_stats.crashes == 0
