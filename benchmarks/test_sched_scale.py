"""BENCH — discrete-event core scale: events/sec at 1k/10k/100k vehicles.

Drives the shared :class:`~repro.common.clock.EventScheduler` with the
two workload shapes every subsystem reduces to:

* **cancel-free** — one self-rescheduling 20 Hz heartbeat per vehicle
  (edge daemons, periodic flushes, autoscaler ticks).
* **cancel-heavy** — the watchdog-rotation pattern: each heartbeat also
  rotates a batch of 60 s deadline timers (serve's batcher wake is
  cancelled and replaced on every pump; request/lease deadline timers
  are cancelled when work completes early), and a 20 Hz controller
  polls ``pending`` between chunks (the autoscaler/idle check).

Reported per scale: fired events/sec and the peak physical heap size.
The pre-PR scheduler (tombstone-rotting cancel, O(n) ``pending``,
dataclass-ordered heap entries) is frozen below as ``LegacyScheduler``;
the acceptance gate asserts the rewrite sustains >= 5x events/sec on
the cancel-heavy workload at the 1k-vehicle point, the scale the old
core was actually run at.  Peak heap on the legacy run also shows the
tombstone rot directly: it grows with total cancels instead of staying
proportional to the live event count.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import Clock, EventScheduler

from conftest import emit, emit_json

FLEET_SIZES = (1_000, 10_000, 100_000)
GATE_FLEET = 1_000
TARGET_FIRES = 120_000
HEARTBEAT_S = 0.05  # 20 Hz
WATCHDOG_S = 60.0
ROTATIONS = 6  # deadline-timer rotations per heartbeat (cancel-heavy)
POLL_HZ = 20.0  # controller pending-poll rate
MIN_CANCEL_HEAVY_SPEEDUP = 5.0


# --------------------------------------------------------------------------
# The pre-PR scheduler, frozen verbatim (modulo class names) so the
# benchmark keeps an honest baseline as the live implementation evolves.


@dataclass(order=True)
class _LegacyEvent:
    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class LegacyScheduler:
    """The pre-PR EventScheduler: tombstones rot until their due time,
    ``pending`` scans the whole heap, heap entries compare in Python."""

    def __init__(self) -> None:
        self.clock = Clock()
        self._queue: list[_LegacyEvent] = []
        self._counter = itertools.count()

    def schedule_at(self, timestamp, callback, label=""):
        event = _LegacyEvent(float(timestamp), next(self._counter), callback, label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay, callback, label=""):
        return self.schedule_at(self.clock.now + delay, callback, label)

    @property
    def pending(self):
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def heap_size(self):
        return len(self._queue)

    def run_until(self, timestamp):
        fired = 0
        while self._queue and self._queue[0].time <= timestamp:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(max(event.time, self.clock.now))
            event.callback()
            fired += 1
        self.clock.advance_to(timestamp)
        return fired


# --------------------------------------------------------------------------
# Workload drivers.  Each scheduler runs the rotation in its natural
# idiom: the legacy core can only cancel-and-replace; the new core uses
# the allocation-free ``reschedule``.


def _drive(sched, n_vehicles, cancel_heavy, use_reschedule):
    sim_s = TARGET_FIRES * HEARTBEAT_S / n_vehicles
    fired = [0]
    watchdogs: dict[int, Any] = {}
    beats: dict[int, Any] = {}

    def heartbeat_legacy(v):
        fired[0] += 1
        if cancel_heavy:
            deadline = sched.clock.now + WATCHDOG_S
            for _ in range(ROTATIONS):
                old = watchdogs.get(v)
                if old is not None:
                    old.cancel()
                watchdogs[v] = sched.schedule_at(deadline, _noop, "watchdog")
        sched.schedule_in(HEARTBEAT_S, lambda: heartbeat_legacy(v), "hb")

    def heartbeat_fast(v):
        fired[0] += 1
        if cancel_heavy:
            deadline = sched.clock.now + WATCHDOG_S
            for _ in range(ROTATIONS):
                watchdogs[v] = sched.reschedule(
                    watchdogs.get(v), deadline, _noop, "watchdog"
                )
        beats[v] = sched.reschedule(beats[v], sched.clock.now + HEARTBEAT_S)

    heartbeat = heartbeat_fast if use_reschedule else heartbeat_legacy
    for v in range(n_vehicles):
        # Spread start phases over ~10 ms so instants collide but not all.
        event = sched.schedule_at((v % 97) * 1e-4, lambda v=v: heartbeat(v))
        if use_reschedule:
            beats[v] = event

    n_ticks = max(20, int(sim_s * POLL_HZ))
    peak_heap = 0
    t = 0.0
    start = time.perf_counter()
    for _ in range(n_ticks):
        t += sim_s / n_ticks
        sched.run_until(t)
        if cancel_heavy:
            _ = sched.pending  # the controller's idle/backpressure check
        peak_heap = max(peak_heap, sched.heap_size)
    wall_s = time.perf_counter() - start
    return {
        "fired": fired[0],
        "wall_s": round(wall_s, 4),
        "events_per_s": round(fired[0] / wall_s, 1),
        "peak_heap": peak_heap,
        "final_pending": sched.pending,
    }


def _noop():
    return None


def test_sched_scale():
    results: dict[str, dict] = {"fleets": {}, "legacy": {}}
    lines = [
        f"{'vehicles':>9s} {'workload':>13s} {'events/s':>11s} "
        f"{'peak heap':>10s} {'wall(s)':>8s}"
    ]
    for n_vehicles in FLEET_SIZES:
        point = {}
        for heavy in (False, True):
            name = "cancel-heavy" if heavy else "cancel-free"
            row = _drive(EventScheduler(), n_vehicles, heavy, use_reschedule=True)
            point[name] = row
            lines.append(
                f"{n_vehicles:9d} {name:>13s} {row['events_per_s']:11,.0f} "
                f"{row['peak_heap']:10d} {row['wall_s']:8.2f}"
            )
        results["fleets"][str(n_vehicles)] = point
        # Live heap stays proportional to the fleet, not to total cancels.
        assert point["cancel-heavy"]["peak_heap"] < 10 * (ROTATIONS + 1) * n_vehicles

    for heavy in (False, True):
        name = "cancel-heavy" if heavy else "cancel-free"
        row = _drive(LegacyScheduler(), GATE_FLEET, heavy, use_reschedule=False)
        results["legacy"][name] = row
        lines.append(
            f"{GATE_FLEET:9d} {'pre-PR ' + name:>13s} {row['events_per_s']:11,.0f} "
            f"{row['peak_heap']:10d} {row['wall_s']:8.2f}"
        )

    new_heavy = results["fleets"][str(GATE_FLEET)]["cancel-heavy"]
    old_heavy = results["legacy"]["cancel-heavy"]
    speedup = new_heavy["events_per_s"] / old_heavy["events_per_s"]
    lines.append("")
    lines.append(
        f"cancel-heavy @ {GATE_FLEET} vehicles: {speedup:.1f}x events/sec "
        f"vs pre-PR scheduler (require >= {MIN_CANCEL_HEAVY_SPEEDUP}x)"
    )
    lines.append(
        f"pre-PR tombstone rot: peak heap {old_heavy['peak_heap']:,d} "
        f"vs {new_heavy['peak_heap']:,d} compacted"
    )
    results["cancel_heavy_speedup"] = round(speedup, 2)
    results["min_cancel_heavy_speedup"] = MIN_CANCEL_HEAVY_SPEEDUP
    results["config"] = {
        "target_fires": TARGET_FIRES,
        "heartbeat_s": HEARTBEAT_S,
        "watchdog_s": WATCHDOG_S,
        "rotations": ROTATIONS,
        "poll_hz": POLL_HZ,
        "gate_fleet": GATE_FLEET,
    }
    emit("BENCH_sched", "\n".join(lines))
    emit_json("BENCH_sched", results)

    # Both cores fired the same simulated workload.
    assert new_heavy["fired"] == old_heavy["fired"]
    # The legacy core's heap really does rot with cancels; the rewrite's
    # stays near the live count — this is the structural claim, pinned.
    assert old_heavy["peak_heap"] > 5 * new_heavy["peak_heap"]
    assert speedup >= MIN_CANCEL_HEAVY_SPEEDUP, (
        f"cancel-heavy workload only {speedup:.1f}x faster than the "
        f"pre-PR scheduler (need >= {MIN_CANCEL_HEAVY_SPEEDUP}x)"
    )
