"""Ablation — hybrid inference policy (DESIGN.md §5).

E6's hybrid backend defaults to the adaptive-EWMA policy.  This
ablation compares it against the deadline-race policy across a WAN
quality sweep.

Shape: both policies cap latency near the better of edge/cloud; the
deadline policy pays for every cloud request even when the network is
bad (it races both sides), while the adaptive policy sheds cloud
traffic under congestion — the metric that matters on a metered or
shared classroom uplink.
"""

import numpy as np

from repro.edge.devices import RASPBERRY_PI_4, EdgeDevice
from repro.inference.backends import CloudBackend, EdgeBackend, HybridBackend
from repro.net.links import Link
from repro.net.topology import autolearn_topology
from repro.testbed.hardware import GPU_SPECS

from conftest import emit

FLOPS = 1.0e8
WAN_SWEEP = [10, 40, 120]  # one-way ms


def make_hybrid(policy, wan_ms):
    wan = Link(f"wan-{wan_ms}", wan_ms / 1000.0, 0.6, 100e6, loss_rate=0.01)
    topo = autolearn_topology(wan=wan)
    route = topo.route("car-pi", "chi-uc")
    device = EdgeDevice("dev-1", "car", RASPBERRY_PI_4, "proj")
    return HybridBackend(
        EdgeBackend(device, FLOPS),
        CloudBackend(GPU_SPECS["V100"], route, FLOPS),
        policy=policy,
        deadline_s=0.05,
    )


def run_sweep():
    rows = []
    for wan_ms in WAN_SWEEP:
        for policy in ("deadline", "adaptive"):
            hybrid = make_hybrid(policy, wan_ms)
            rng = np.random.default_rng(3)
            latencies = [hybrid.request_latency(rng) for _ in range(400)]
            rows.append(
                (
                    wan_ms,
                    policy,
                    1000 * float(np.mean(latencies)),
                    1000 * float(np.percentile(latencies, 95)),
                    hybrid.cloud_requests,
                )
            )
    return rows


def test_ablation_hybrid_policy(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        f"{'wan(ms)':>8s} {'policy':10s} {'mean(ms)':>9s} {'p95(ms)':>8s} "
        f"{'cloud reqs/400':>15s}"
    ]
    for wan_ms, policy, mean_ms, p95_ms, cloud_reqs in rows:
        lines.append(
            f"{wan_ms:8d} {policy:10s} {mean_ms:9.1f} {p95_ms:8.1f} "
            f"{cloud_reqs:15d}"
        )
    emit("ablation_hybrid_policy", "\n".join(lines))

    by_key = {(w, p): (m, p95, c) for w, p, m, p95, c in rows}
    # On a congested WAN the adaptive policy sheds cloud traffic; the
    # deadline policy keeps racing the cloud on every request.
    assert by_key[(120, "adaptive")][2] < by_key[(120, "deadline")][2] / 3
    # Both policies keep mean latency bounded by roughly the edge cost.
    edge_ms = 1000 * (FLOPS / RASPBERRY_PI_4.effective_flops + 0.002)
    for (wan_ms, policy), (mean_ms, _p95, _c) in by_key.items():
        assert mean_ms <= max(edge_ms, 52.0) * 1.6, (wan_ms, policy)
