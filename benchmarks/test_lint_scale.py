"""BENCH — reprolint incremental-cache scale: cold vs warm full-tree lint.

Lints the entire ``src/repro`` tree twice against one cache directory:
cold (empty cache: every file parsed, every pass run) and warm
(unchanged tree: shards and findings replayed from the content-hash
cache, nothing parsed).  The acceptance claim: the warm run completes
at least 5x faster than the cold run while reporting byte-identical
findings.

A second point measures the single-file-edit case — one module touched,
everything else unchanged — which reuses every other file's shard but
must re-judge findings (cross-module rules may flip on any edit), so it
lands between cold and warm.
"""

import shutil
import time
from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.runner import lint_paths

from conftest import emit, emit_json

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_ROOT = REPO_ROOT / "src" / "repro"
MIN_WARM_SPEEDUP = 5.0


def _timed_lint(config, cache_dir):
    start = time.perf_counter()
    result = lint_paths([LINT_ROOT], config, cache_dir=cache_dir)
    return result, time.perf_counter() - start


def test_lint_scale(tmp_path):
    config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    cache_dir = tmp_path / "lint-cache"

    cold, cold_s = _timed_lint(config, cache_dir)
    warm, warm_s = _timed_lint(config, cache_dir)

    cold_rows = [f.to_dict() for f in cold.findings]
    warm_rows = [f.to_dict() for f in warm.findings]
    assert warm_rows == cold_rows, "cache changed lint results"
    assert warm.files_checked == cold.files_checked

    # Edit one file (append a harmless private helper), lint, restore.
    target = LINT_ROOT / "analysis" / "sarif.py"
    backup = tmp_path / "sarif.py.orig"
    shutil.copy2(target, backup)
    try:
        with open(target, "a", encoding="utf-8") as fh:
            fh.write("\n\ndef _bench_probe():\n    return None\n")
        edited, edited_s = _timed_lint(config, cache_dir)
        fresh, _ = _timed_lint(config, tmp_path / "fresh-cache")
        assert [f.to_dict() for f in edited.findings] == [
            f.to_dict() for f in fresh.findings
        ], "cache changed results after an edit"
    finally:
        shutil.copy2(backup, target)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    lines = [
        "reprolint full-tree lint, cold vs warm cache",
        f"  files checked      : {cold.files_checked}",
        f"  findings           : {len(cold.findings)}",
        f"  cold (empty cache) : {cold_s * 1e3:8.1f} ms",
        f"  warm (unchanged)   : {warm_s * 1e3:8.1f} ms",
        f"  warm after 1 edit  : {edited_s * 1e3:8.1f} ms",
        f"  warm speedup       : {speedup:8.1f}x  (require >= {MIN_WARM_SPEEDUP}x)",
    ]
    emit("BENCH_lint", "\n".join(lines))
    emit_json(
        "BENCH_lint",
        {
            "files_checked": cold.files_checked,
            "findings": len(cold.findings),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_after_edit_s": edited_s,
            "warm_speedup": speedup,
            "min_warm_speedup": MIN_WARM_SPEEDUP,
        },
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm lint only {speedup:.1f}x faster than cold "
        f"(need >= {MIN_WARM_SPEEDUP}x)"
    )
