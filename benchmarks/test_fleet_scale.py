"""BENCH — continuum-loop scale: fleet size vs loop throughput.

Runs the full continuous-learning loop (collect -> ingest -> train ->
shadow -> canary -> promote) at 100 and 1000 data-plane vehicles and
reports wall-clock rounds/sec plus the simulated promotion latency
(candidate published -> stable tag moved).  The training set is capped
by ``max_train_shards``, so ingest volume grows with the fleet while
the trainer stays fixed — the loop must scale in the data plane, not
the model.

Acceptance: the loop promotes at both scales, and the 10x fleet costs
well under 10x wall-clock per round (the per-vehicle work is flush
encoding, not training).
"""

from repro.fleet import FleetConfig, FleetLoop
from repro.fleet.gates import GateThresholds

from conftest import emit, emit_json

ROUNDS = 3
FLEET_SIZES = (100, 1000)


def run_fleet(n_vehicles):
    config = FleetConfig(
        n_vehicles=n_vehicles,
        flushes_per_round=2,
        records_per_flush=4,
        frame_hw=(8, 12),
        epochs=4,
        min_fresh_records=64,
        eval_records=48,
        stage_vehicles=4,
        stage_duration_s=0.6,
        gates=GateThresholds(min_completions=10),
        canary_fraction=0.35,
        rounds=ROUNDS,
        seed=0,
    )
    return FleetLoop(config).run()


def sweep():
    import time

    points = {}
    for n_vehicles in FLEET_SIZES:
        start = time.perf_counter()
        summary = run_fleet(n_vehicles)
        points[n_vehicles] = (summary, time.perf_counter() - start)
    return points


def test_fleet_scale(benchmark):
    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    header = (
        f"{'vehicles':>9s} {'rounds/s':>9s} {'records':>9s} "
        f"{'promoted':>9s} {'prom-lat(s)':>12s} {'stable':>7s}"
    )
    lines = [header]
    records = {}
    for n_vehicles, (summary, wall_s) in sorted(points.items()):
        latencies = [
            r.promotion_latency_s
            for r in summary.rounds
            if r.promotion_latency_s is not None
        ]
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
        rounds_per_s = ROUNDS / wall_s
        lines.append(
            f"{n_vehicles:9d} {rounds_per_s:9.3f} "
            f"{summary.records_flushed:9d} {summary.promotions:9d} "
            f"{mean_latency:12.3f} {summary.final_stable:7d}"
        )
        records[str(n_vehicles)] = {
            "wall_s": round(wall_s, 3),
            "rounds_per_s": round(rounds_per_s, 4),
            "records_flushed": summary.records_flushed,
            "records_ingested": summary.records_ingested,
            "promotions": summary.promotions,
            "mean_promotion_latency_s": round(mean_latency, 4),
            "final_stable": summary.final_stable,
        }

    small_wall = points[FLEET_SIZES[0]][1]
    big_wall = points[FLEET_SIZES[-1]][1]
    scaling = big_wall / small_wall
    lines.append("")
    lines.append(
        f"{FLEET_SIZES[-1] // FLEET_SIZES[0]}x fleet costs "
        f"{scaling:.1f}x wall-clock"
    )
    emit("BENCH_fleet", "\n".join(lines))
    emit_json(
        "BENCH_fleet",
        {"rounds": ROUNDS, "fleets": records, "wall_scaling": round(scaling, 3)},
    )

    # Acceptance: both scales complete every round and end promoted past
    # the bootstrap checkpoint; the capped trainer keeps the 10x fleet
    # well under 10x wall-clock.
    for n_vehicles, (summary, _) in points.items():
        assert len(summary.rounds) == ROUNDS, n_vehicles
        assert summary.final_stable >= 2, n_vehicles
    assert scaling < 10.0
