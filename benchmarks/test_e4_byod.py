"""E4 — §3.2/§3.5: BYOD enrollment and the "zero to ready" deploy.

"users can add devices to the testbed by downloading a CHI@Edge command
line utility and SD card image ... this provides a 'zero to ready'
configuration pathway with minimum time and effort."

Reproduced rows: the per-step time budget from an unenrolled Raspberry
Pi to a running DonkeyCar container, compared against the bare-metal
cloud path (reserve + deploy + install) the datacenter side needs — the
module's pitch is that the edge path is container-based and much
lighter than bare-metal reconfiguration.
"""

from repro.edge.byod import CHIEdge
from repro.testbed.chameleon import Chameleon

from conftest import emit


def zero_to_ready():
    chi = Chameleon()
    project, _ = chi.onboard_class("prof", "uni", ["stu"])
    session = chi.login("stu", project.project_id)
    edge = CHIEdge(chi.scheduler, chi.identity)

    steps = []
    t = chi.clock.now
    device = edge.register_device(session, "car-01")
    steps.append(("register via CLI utility", chi.clock.now - t))
    t = chi.clock.now
    edge.flash_sd_image(device.device_id)
    steps.append(("flash SD card image", chi.clock.now - t))
    t = chi.clock.now
    edge.boot_device(device.device_id)
    steps.append(("boot + daemon connect + policies", chi.clock.now - t))
    t = chi.clock.now
    edge.allocate(session, device.device_id)
    steps.append(("allocate via standard methods", chi.clock.now - t))
    t = chi.clock.now
    report = edge.launch_container(session, device.device_id)
    steps.append(("one-cell container deploy", chi.clock.now - t))
    edge_total = sum(s for _, s in steps)

    # Second deploy (image cached): the repeat-student experience.
    edge.engine.stop(report.container.container_id)
    t = chi.clock.now
    edge.launch_container(session, device.device_id)
    warm_deploy = chi.clock.now - t

    # Bare-metal comparison: reserve + deploy CUDA image + install stack.
    t = chi.clock.now
    lease = chi.reserve_gpu_node(session)
    chi.deploy_training_server(lease)
    cloud_total = chi.clock.now - t
    return steps, edge_total, warm_deploy, cloud_total


def test_e4_zero_to_ready(benchmark):
    steps, edge_total, warm_deploy, cloud_total = benchmark.pedantic(
        zero_to_ready, rounds=1, iterations=1
    )
    lines = [f"{'BYOD step':36s} {'time':>10s}"]
    for label, seconds in steps:
        lines.append(f"{label:36s} {seconds:8.0f} s")
    lines += [
        f"{'TOTAL zero-to-ready (cold)':36s} {edge_total:8.0f} s",
        f"{'repeat deploy (image cached)':36s} {warm_deploy:8.0f} s",
        "",
        f"{'bare-metal cloud path (for contrast)':36s} {cloud_total:8.0f} s",
    ]
    emit("E4_byod_zero_to_ready", "\n".join(lines))

    # Shape: one-time enrollment dominates; the repeat deploy is light
    # ("minimum time and effort"), and container reconfiguration beats
    # bare-metal redeploys by an order of magnitude.
    assert warm_deploy < 30.0
    assert warm_deploy < cloud_total / 10.0
    assert edge_total < 3600.0  # the whole cold path fits in a lab hour
