"""E6 — §3.3/§5: edge versus cloud versus hybrid inference.

The model-evaluation extensions explore "running inference models in
the cloud, constructing hybrid edge cloud inference models"; the Zheng
SC'23 poster [26] measured the tradeoffs end to end.  Reproduced
series:

1. **Latency table** — per-request inference latency for edge (Pi 4),
   cloud (V100 behind the campus->Chameleon path), and hybrid, for a
   small (linear-class) and a large (3D/RNN-class) model, under a good
   and a degraded network.
2. **Crossover** — sweeping the WAN latency to find where cloud loses
   to edge for the small model.
3. **On-track consequences** — closed-loop drives through
   :class:`RemotePilot`: command staleness and crash counts per
   placement.

Shapes: edge wins for small models (no RTT); cloud wins for the large
model (the Pi cannot sustain the control rate); hybrid tracks the
better of the two and falls back to edge when the network degrades.
"""

import numpy as np

from repro.edge.devices import RASPBERRY_PI_4, EdgeDevice
from repro.inference.backends import CloudBackend, EdgeBackend, HybridBackend
from repro.inference.serving import RemotePilot
from repro.net.links import Link
from repro.net.topology import autolearn_topology
from repro.sim.session import DrivingSession
from repro.testbed.hardware import GPU_SPECS

from conftest import bench_camera, emit

SMALL_FLOPS = 1.0e8  # linear-class forward pass
LARGE_FLOPS = 2.5e9  # 3D/RNN-class forward pass
GOOD_WAN = None  # default autolearn topology
BAD_WAN = Link("wan-congested", 0.12, 1.0, 30e6, loss_rate=0.03)


def device():
    return EdgeDevice("dev-1", "car-01", RASPBERRY_PI_4, "proj-1")


def route(wan=None):
    topo = autolearn_topology() if wan is None else autolearn_topology(wan=wan)
    return topo.route("car-pi", "chi-uc")


def mean_latency(backend, n=300, seed=0):
    rng = np.random.default_rng(seed)
    return float(np.mean([backend.request_latency(rng) for _ in range(n)]))


def latency_table():
    rows = []
    for model_label, flops in (("small (linear)", SMALL_FLOPS),
                               ("large (3D/RNN)", LARGE_FLOPS)):
        for net_label, wan in (("good net", GOOD_WAN), ("bad net", BAD_WAN)):
            edge = EdgeBackend(device(), flops)
            cloud = CloudBackend(GPU_SPECS["V100"], route(wan), flops)
            hybrid = HybridBackend(
                EdgeBackend(device(), flops),
                CloudBackend(GPU_SPECS["V100"], route(wan), flops),
                policy="adaptive", deadline_s=0.05,
            )
            rows.append(
                (
                    model_label,
                    net_label,
                    1000 * mean_latency(edge),
                    1000 * mean_latency(cloud),
                    1000 * mean_latency(hybrid),
                )
            )
    return rows


def wan_crossover():
    """Smallest WAN one-way latency where edge beats cloud (small model)."""
    edge_latency = mean_latency(EdgeBackend(device(), SMALL_FLOPS))
    sweep = []
    for wan_ms in (2, 5, 8, 12, 16, 22, 30, 45):
        wan = Link(f"wan-{wan_ms}ms", wan_ms / 1000.0, 0.3, 300e6)
        cloud = CloudBackend(GPU_SPECS["V100"], route(wan), SMALL_FLOPS)
        sweep.append((wan_ms, 1000 * edge_latency, 1000 * mean_latency(cloud)))
    return sweep


def on_track(backend, trained, oval, ticks=500, seed=60):
    session = DrivingSession(oval, camera=bench_camera(), seed=seed)
    pilot = RemotePilot(trained, backend, dt=session.dt, rng=seed)
    obs = session.reset()
    for _ in range(ticks):
        steering, throttle = pilot.run(obs.image)
        obs = session.step(steering, throttle)
    return session.stats, pilot.stats


def test_e6_edge_cloud_tradeoffs(benchmark, bench_linear, oval):
    table, sweep = benchmark.pedantic(
        lambda: (latency_table(), wan_crossover()), rounds=1, iterations=1
    )
    lines = [
        f"{'model':16s} {'network':10s} {'edge(ms)':>9s} {'cloud(ms)':>10s} "
        f"{'hybrid(ms)':>11s}"
    ]
    for model_label, net_label, edge_ms, cloud_ms, hybrid_ms in table:
        lines.append(
            f"{model_label:16s} {net_label:10s} {edge_ms:9.1f} "
            f"{cloud_ms:10.1f} {hybrid_ms:11.1f}"
        )
    lines += ["", "WAN sweep (small model): edge vs cloud mean latency",
              f"{'wan one-way(ms)':>16s} {'edge(ms)':>9s} {'cloud(ms)':>10s}"]
    crossover = None
    for wan_ms, edge_ms, cloud_ms in sweep:
        marker = ""
        if crossover is None and cloud_ms > edge_ms:
            crossover = wan_ms
            marker = "  <- crossover"
        lines.append(f"{wan_ms:16d} {edge_ms:9.1f} {cloud_ms:10.1f}{marker}")
    emit("E6_edge_cloud_latency", "\n".join(lines))

    by_key = {(m, n): (e, c, h) for m, n, e, c, h in table}
    # Shape: small model -> edge beats cloud on the real network.
    small_good = by_key[("small (linear)", "good net")]
    assert small_good[0] < small_good[1]
    # Shape: large model -> cloud beats edge (the Pi is compute-bound).
    large_good = by_key[("large (3D/RNN)", "good net")]
    assert large_good[1] < large_good[0]
    # Hybrid tracks the better of the two sides in every regime.
    for key, (edge_ms, cloud_ms, hybrid_ms) in by_key.items():
        assert hybrid_ms <= min(edge_ms, cloud_ms) * 1.5 + 5.0, key
    # A crossover exists inside the sweep.
    assert crossover is not None

    # On-track consequences with the real trained model.
    results = []
    for label, backend in (
        ("edge", EdgeBackend(device(), SMALL_FLOPS)),
        ("cloud-good", CloudBackend(GPU_SPECS["V100"], route(), SMALL_FLOPS)),
        ("cloud-bad", CloudBackend(GPU_SPECS["V100"], route(BAD_WAN), SMALL_FLOPS)),
    ):
        stats, serving = on_track(backend, bench_linear, oval)
        results.append((label, stats, serving))
    lines = [
        f"{'placement':12s} {'laps':>5s} {'crashes':>8s} {'speed':>7s} "
        f"{'stale ticks':>12s} {'mean lat(ms)':>13s}"
    ]
    for label, stats, serving in results:
        lines.append(
            f"{label:12s} {stats.laps_completed:5d} {stats.crashes:8d} "
            f"{stats.mean_speed:7.2f} {serving.stale_ticks:12d} "
            f"{1000 * serving.mean_latency:13.1f}"
        )
    emit("E6_edge_cloud_ontrack", "\n".join(lines))

    edge_run = results[0]
    bad_run = results[2]
    # Shape: the congested-cloud drive is more stale than the edge drive.
    assert bad_run[2].stale_ticks > edge_run[2].stale_ticks
