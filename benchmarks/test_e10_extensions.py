"""E10 — §3.3 extensions: vision, GPS path following, RL.

The extension catalog the paper proposes for advanced students:

* "various computer vision classification algorithms (example: camera
  identifies color of object placed in front of it; red means stop,
  green means go)";
* "edge detection/line following";
* "path following (record a path with GPS and have the car follow that
  path)";
* "experiment with reinforcement learning".

Reproduced rows: accuracy of the stop/go classifier over many frames,
lap performance of the line follower, GPS-following error versus
receiver quality, and the RL learning curve.
"""

import numpy as np

from repro.core.drivers import PurePursuitDriver
from repro.extensions.gps import GPSReceiver, PathFollower, record_gps_path
from repro.extensions.rl import CEMConfig, train_cem
from repro.extensions.vision import (
    LineFollowPilot,
    classify_signal_color,
    paint_signal_object,
)
from repro.sim.session import DrivingSession

from conftest import bench_camera, emit


def stop_go_accuracy(oval, n_frames=120):
    session = DrivingSession(oval, camera=bench_camera(), seed=71)
    obs = session.reset()
    rng = np.random.default_rng(5)
    correct = total = 0
    for i in range(n_frames):
        obs = session.step(0.05 * np.sin(i / 7), 0.3)
        truth = ("none", "red", "green")[i % 3]
        frame = obs.image if truth == "none" else paint_signal_object(
            obs.image, truth, rng=rng
        )
        correct += classify_signal_color(frame) == truth
        total += 1
    return correct / total


def line_following(oval, ticks=800):
    session = DrivingSession(oval, camera=bench_camera(), seed=72)
    pilot = LineFollowPilot(gain=1.2, throttle=0.4)
    obs = session.reset()
    for _ in range(ticks):
        steering, throttle = pilot.run(obs.image)
        obs = session.step(steering, throttle)
    return session.stats


def gps_following(oval, white_sigma):
    recorder = DrivingSession(oval, render=False, seed=73)
    trace = record_gps_path(
        recorder, PurePursuitDriver(recorder), ticks=500,
        receiver=GPSReceiver(white_sigma=0.0, bias_walk_sigma=0.0),
    )
    follower_session = DrivingSession(oval, render=False, seed=74)
    follower = PathFollower(
        trace, follower_session,
        GPSReceiver(white_sigma=white_sigma, bias_walk_sigma=0.0, rng=9),
    )
    obs = follower_session.reset()
    errors = []
    for i in range(500):
        steering, throttle = follower(obs.image, obs.cte, obs.speed)
        obs = follower_session.step(steering, throttle)
        if i > 80:
            errors.append(follower.cross_track_error())
    return float(np.mean(errors)), follower_session.stats.crashes


def run_all(oval):
    vision_acc = stop_go_accuracy(oval)
    line_stats = line_following(oval)
    gps_rows = [
        (sigma, *gps_following(oval, sigma)) for sigma in (0.01, 0.1, 0.3)
    ]
    _, rl_curve = train_cem(
        config=CEMConfig(iterations=10, population=16, episode_steps=200),
        seed=6,
    )
    return vision_acc, line_stats, gps_rows, rl_curve


def test_e10_extensions(benchmark, oval):
    vision_acc, line_stats, gps_rows, rl_curve = benchmark.pedantic(
        run_all, args=(oval,), rounds=1, iterations=1
    )
    lines = [
        f"stop/go color classifier accuracy: {100 * vision_acc:.1f}% "
        "(red=stop, green=go, none)",
        "",
        f"line following: laps={line_stats.laps_completed} "
        f"crashes={line_stats.crashes} "
        f"mean |cte|={line_stats.mean_abs_cte:.3f} m",
        "",
        "GPS path following (error vs receiver quality):",
        f"{'white sigma(m)':>15s} {'mean err(m)':>12s} {'crashes':>8s}",
    ]
    for sigma, err, crashes in gps_rows:
        lines.append(f"{sigma:15.2f} {err:12.3f} {crashes:8d}")
    lines += [
        "",
        "RL (CEM) learning curve, mean elite episode reward:",
        "  " + " -> ".join(f"{r:.1f}" for r in rl_curve),
    ]
    emit("E10_extensions", "\n".join(lines))

    assert vision_acc > 0.9
    assert line_stats.laps_completed >= 1 and line_stats.crashes == 0
    # GPS error grows with receiver noise.
    assert gps_rows[0][1] < gps_rows[-1][1]
    # RL improves over training.
    assert rl_curve[-1] > rl_curve[0]
