"""Shared benchmark fixtures and result emission.

Every benchmark regenerates one of the paper's figures or quantitative
claims (see DESIGN.md §4).  Reproduced tables are printed *and* written
to ``benchmarks/results/<name>.txt`` so the artifacts survive pytest's
output capture; EXPERIMENTS.md summarises them against the paper.

Scale note: tubs here are hundreds-to-thousands of records rather than
the paper's 10-50 K, and camera frames are 48x64 rather than 120x160 —
numpy training must fit the benchmark budget.  The *shapes* under test
(who wins, orderings, crossovers) are scale-stable; the F3 benchmark
demonstrates the record-count scaling explicitly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.collection import collect_via_simulator
from repro.data.datasets import TubDataset
from repro.data.tubclean import TubCleaner
from repro.ml.models.factory import create_model
from repro.ml.training import EarlyStopping, Trainer
from repro.sim.renderer import CameraParams
from repro.sim.tracks import default_tape_oval

BENCH_H, BENCH_W = 48, 64
RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a reproduced table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")


def emit_json(name: str, payload: dict) -> None:
    """Persist machine-readable benchmark results under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def bench_camera() -> CameraParams:
    """The benchmark camera (smaller than DonkeyCar's 120x160)."""
    return CameraParams(height=BENCH_H, width=BENCH_W)


@pytest.fixture(scope="session")
def oval():
    """The paper's default tape oval."""
    return default_tape_oval()


@pytest.fixture(scope="session")
def bench_tubs(tmp_path_factory, oval):
    """Two cleaned driving sessions on the oval (shared across benches)."""
    root = tmp_path_factory.mktemp("bench-tubs")
    reports = [
        collect_via_simulator(
            oval, root / f"tub{i}", n_records=1250, skill=skill,
            seed=7 + i, camera_hw=(BENCH_H, BENCH_W),
        )
        for i, skill in enumerate((0.95, 0.85))
    ]
    for report in reports:
        TubCleaner(report.tub).clean(half_width=oval.half_width)
    return [report.tub for report in reports]


def train_bench_model(name: str, tubs, seed: int = 3, epochs: int = 10):
    """Train one of the six models on the shared tubs (bench recipe)."""
    dataset = TubDataset(tubs)
    kwargs = {}
    if name == "inferred":
        # Throttle rule tuned to the oval: full pace on the straights,
        # corner speed matching the expert's lateral-accel limit.
        kwargs = {"max_throttle": 0.6, "min_throttle": 0.3}
    model = create_model(
        name, input_shape=(BENCH_H, BENCH_W, 3), scale=0.5, seed=seed, **kwargs
    )
    if model.targets == "memory":
        split = dataset.split_memory(model.mem_length, rng=2)
    elif model.sequence_length > 0:
        split = dataset.split(
            rng=2, targets=model.targets, sequence_length=model.sequence_length
        )
    else:
        split = dataset.split(rng=2, targets=model.targets, flip_augment=True)
    trainer = Trainer(
        batch_size=64, epochs=epochs,
        early_stopping=EarlyStopping(patience=3), shuffle_seed=2,
    )
    history = trainer.fit(model, split)
    return model, history, split


@pytest.fixture(scope="session")
def bench_linear(bench_tubs):
    """A trained linear model shared by E6/E8/E9 and the ablations."""
    model, history, _ = train_bench_model("linear", bench_tubs)
    return model
