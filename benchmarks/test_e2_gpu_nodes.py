"""E2 — §3.3: training across Chameleon GPU node types.

"We tested this process on a range of GPU nodes available via Chameleon
including A100, V100, v100NVLINK, RTX6000, and P100" ... "this allowed
us to train a model in reasonable amount of time".

Reproduced series: simulated wall-clock to train the full-size linear
model on a 10K-record tub (the paper's dataset scale) for every GPU the
paper names, single-GPU and full-node.  Shape: A100 fastest, P100
slowest, NVLink beating plain V100 — and every node type trains in
"reasonable time" (minutes, not hours).
"""

from repro.ml.models.factory import create_model
from repro.ml.training import estimate_flops_per_sample
from repro.testbed.compute import TrainingJob, estimate_training_time
from repro.testbed.hardware import GPU_SPECS, NODE_TYPES

from conftest import emit

PAPER_GPUS = ["A100", "V100-NVLINK", "V100", "RTX6000", "P100"]


def build_tables():
    # The real DonkeyCar model at full 120x160 resolution, 10K records.
    model = create_model("linear", input_shape=(120, 160, 3))
    job = TrainingJob(
        flops_per_sample=estimate_flops_per_sample(model),
        n_samples=50_000,
        epochs=50,
    )
    single = {g: estimate_training_time(job, GPU_SPECS[g], 1) for g in PAPER_GPUS}
    node_rows = {}
    for node in ("gpu_a100", "gpu_v100_nvlink", "gpu_v100", "gpu_rtx_6000", "gpu_p100"):
        nt = NODE_TYPES[node]
        node_rows[node] = (
            nt.gpu,
            nt.gpu_count,
            estimate_training_time(job, GPU_SPECS[nt.gpu], nt.gpu_count),
        )
    return job, single, node_rows


def test_e2_gpu_training_times(benchmark):
    job, single, node_rows = benchmark.pedantic(build_tables, rounds=1, iterations=1)
    lines = [
        f"workload: linear model, 120x160 frames, 50K records, 50 epochs "
        f"({job.total_flops / 1e12:.1f} TFLOP)",
        "",
        f"{'GPU':14s} {'1-GPU time':>12s}",
    ]
    for gpu in PAPER_GPUS:
        lines.append(f"{gpu:14s} {single[gpu]:10.0f} s")
    lines += ["", f"{'node type':18s} {'GPUs':>12s} {'node time':>12s}"]
    for node, (gpu, count, seconds) in node_rows.items():
        lines.append(f"{node:18s} {count}x {gpu:<10s} {seconds:8.0f} s")
    emit("E2_gpu_nodes", "\n".join(lines))

    # Paper shape: A100 < v100NVLINK < V100 < RTX6000 < P100.
    ranked = sorted(single, key=single.get)
    assert ranked == PAPER_GPUS
    # "reasonable amount of time": every paper GPU under 30 minutes.
    assert max(single.values()) < 1800
    # Multi-GPU nodes beat their single-GPU rate.
    assert node_rows["gpu_v100"][2] < single["V100"]
