"""E1 — §3.3: the six-model comparison; the inferred model wins.

"AutoLearn comes with six tested models, including linear, memory, 3D,
categorical, inferred, and RNN ... we found that the inferred model was
best because it gave the car the ability to speed fast, while still
being accurate."

Reproduced table: for all six models trained on the same cleaned tubs —
training time (real numpy seconds here; the E2 cost model maps the same
FLOPs to GPU node types), validation loss, and the on-track qualities
§3.3 names (laps, speed, number of errors), ranked by the combined
speed-and-accuracy score.  Shape under test: the **inferred** model is
the fastest around the track and ranks first on the combined score,
because dedicating the network to steering keeps it accurate while its
throttle rule "gave the car the ability to speed fast".
"""

import time

import pytest

from repro.core.evaluation import evaluate_model
from repro.ml.models.factory import MODEL_NAMES
from repro.ml.training import estimate_flops_per_sample

from conftest import bench_camera, emit, train_bench_model

EVAL_TICKS = 800


def run_comparison(bench_tubs, oval):
    rows = []
    for name in MODEL_NAMES:
        start = time.perf_counter()
        model, history, split = train_bench_model(name, bench_tubs)
        train_seconds = time.perf_counter() - start
        evaluation = evaluate_model(
            model, oval, ticks=EVAL_TICKS, seed=50, camera=bench_camera()
        )
        rows.append(
            {
                "model": name,
                "params": model.n_params,
                "train_s": train_seconds,
                "flops_per_sample": estimate_flops_per_sample(model),
                "val_loss": history.best_val_loss,
                "laps": evaluation.laps,
                "errors": evaluation.errors,
                "speed": evaluation.mean_speed,
                "score": evaluation.combined_score(),
            }
        )
    return rows


def test_e1_six_models_inferred_wins(benchmark, bench_tubs, oval):
    rows = benchmark.pedantic(
        run_comparison, args=(bench_tubs, oval), rounds=1, iterations=1
    )
    ranked = sorted(rows, key=lambda r: r["score"], reverse=True)
    lines = [
        f"{'model':12s} {'params':>8s} {'train(s)':>9s} {'val loss':>9s} "
        f"{'laps':>5s} {'errors':>7s} {'speed':>7s} {'score':>7s}"
    ]
    for row in ranked:
        lines.append(
            f"{row['model']:12s} {row['params']:8d} {row['train_s']:9.1f} "
            f"{row['val_loss']:9.4f} {row['laps']:5d} {row['errors']:7d} "
            f"{row['speed']:7.2f} {row['score']:7.2f}"
        )
    lines.append("")
    lines.append(
        f"winner: {ranked[0]['model']} "
        "(paper: 'the inferred model was best because it gave the car the "
        "ability to speed fast, while still being accurate')"
    )
    # Sensitivity of the scalarisation: ranking under a harsher error
    # weight (errors matter 0.35 m/s-per-error/min instead of 0.15).
    minutes = EVAL_TICKS / 20.0 / 60.0
    harsh = sorted(
        rows,
        key=lambda r: r["speed"] - 0.35 * r["errors"] / minutes,
        reverse=True,
    )
    lines.append(
        "ranking sensitivity: weight 0.15 -> "
        + " > ".join(r["model"] for r in ranked[:3])
        + " | weight 0.35 -> "
        + " > ".join(r["model"] for r in harsh[:3])
    )
    emit("E1_model_comparison", "\n".join(lines))

    by_name = {row["model"]: row for row in rows}
    # All six models train and drive.
    assert set(by_name) == set(MODEL_NAMES)
    for row in rows:
        assert row["laps"] >= 1 or row["speed"] > 0.3, row["model"]

    inferred = by_name["inferred"]
    # Shape 1: inferred is the fastest around the track.
    assert inferred["speed"] == max(row["speed"] for row in rows)
    # Shape 2: inferred wins the combined speed+accuracy score.
    assert ranked[0]["model"] == "inferred"
    # Shape 3: "still being accurate" — low error count in absolute
    # terms (the sloppier models log several times more).
    assert inferred["errors"] <= 3
