"""F1 — Fig. 1: the complete module pipeline, per learning pathway.

Fig. 1 structures AutoLearn as artifacts -> computation -> extensions
across three phases (data collection, model training, model
evaluation); §3.4/§4 define the three pathways (regular, classroom,
digital) that pick different alternatives per phase.

Reproduced table: a per-stage simulated-time breakdown of one full
pipeline pass for each pathway, ending in an on-track evaluation — the
whole loop of Fig. 1 executed end to end over every substrate
(simulator, tubs, tubclean, Chameleon, CHI@Edge, network, object
store).
"""

import pytest

from repro.core.pathways import PATHWAYS
from repro.core.pipeline import AutoLearnPipeline

from conftest import BENCH_H, BENCH_W, emit

PIPE_KW = dict(
    n_records=600,
    epochs=4,
    camera_hw=(BENCH_H, BENCH_W),
    model_scale=0.4,
    eval_ticks=300,
)


@pytest.mark.parametrize("pathway_name", sorted(PATHWAYS))
def test_fig1_pipeline(benchmark, tmp_path, pathway_name):
    pipe = AutoLearnPipeline(pathway_name, tmp_path, seed=6, **PIPE_KW)
    report = benchmark.pedantic(pipe.run, rounds=1, iterations=1)

    lines = [
        f"pathway: {pathway_name} "
        f"({PATHWAYS[pathway_name].description.strip()})",
        f"{'stage':12s} {'alternative':14s} {'sim time':>10s}  details",
    ]
    for stage in report.stages:
        keys = {
            k: (round(v, 3) if isinstance(v, float) else v)
            for k, v in stage.details.items()
        }
        lines.append(
            f"{stage.stage:12s} {stage.alternative:14s} "
            f"{stage.sim_seconds:8.1f} s  {keys}"
        )
    evaluation = report.evaluation
    lines += [
        f"{'TOTAL':12s} {'':14s} {report.total_sim_seconds:8.1f} s",
        f"evaluation: laps={evaluation.laps} errors={evaluation.errors} "
        f"mean_speed={evaluation.mean_speed:.2f} m/s",
    ]
    emit(f"F1_pipeline_{pathway_name}", "\n".join(lines))

    assert [s.stage for s in report.stages] == [
        "setup", "collection", "cleaning", "training", "deployment",
        "evaluation",
    ]
    pathway = PATHWAYS[pathway_name]
    assert report.stage("collection").alternative == pathway.collection
    assert report.stage("training").alternative == pathway.training
    assert report.evaluation is not None
    assert report.evaluation.distance > 1.0  # the trained model drives
