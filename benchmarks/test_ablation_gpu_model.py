"""Ablation — GPU cost-model fidelity (DESIGN.md §5).

E2's conclusions use the roofline cost mode (compute vs memory bound
per batch).  This ablation re-runs the E2 table under the 'simple'
compute-only mode and reports where the two disagree.

Shape: for the paper's conv workload both modes give the same A100-to-
P100 ordering (E2 is robust to the cost-model choice), but the roofline
mode charges memory-bound configurations more — visible as a widened
gap on the bandwidth-poor RTX6000.
"""

from repro.ml.models.factory import create_model
from repro.ml.training import estimate_flops_per_sample
from repro.testbed.compute import TrainingJob, estimate_training_time
from repro.testbed.hardware import GPU_SPECS

from conftest import emit

PAPER_GPUS = ["A100", "V100-NVLINK", "V100", "RTX6000", "P100"]


def run_ablation():
    model = create_model("linear", input_shape=(120, 160, 3))
    conv_job = TrainingJob(
        flops_per_sample=estimate_flops_per_sample(model),
        n_samples=50_000,
        epochs=50,
    )
    # A deliberately memory-heavy job (tiny compute, huge activations).
    memory_job = TrainingJob(
        flops_per_sample=1e7, n_samples=50_000, epochs=50, bytes_per_sample=2e7
    )
    table = {}
    for label, job in (("conv (paper)", conv_job), ("memory-heavy", memory_job)):
        for mode in ("simple", "roofline"):
            table[(label, mode)] = {
                gpu: estimate_training_time(job, GPU_SPECS[gpu], 1, mode=mode)
                for gpu in PAPER_GPUS
            }
    return table


def test_ablation_gpu_cost_model(benchmark):
    table = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = [f"{'workload':14s} {'mode':10s} " + " ".join(f"{g:>12s}" for g in PAPER_GPUS)]
    for (label, mode), times in table.items():
        lines.append(
            f"{label:14s} {mode:10s} "
            + " ".join(f"{times[g]:10.0f} s" for g in PAPER_GPUS)
        )
    orderings = {
        key: sorted(times, key=times.get) for key, times in table.items()
    }
    lines.append("")
    for key, order in orderings.items():
        lines.append(f"ordering {key}: {' < '.join(order)}")
    emit("ablation_gpu_model", "\n".join(lines))

    # E2's conclusion is cost-model robust for the conv workload.
    assert orderings[("conv (paper)", "simple")] == orderings[
        ("conv (paper)", "roofline")
    ]
    # The memory-heavy workload flips RTX6000 vs P100 under roofline.
    roofline = table[("memory-heavy", "roofline")]
    simple = table[("memory-heavy", "simple")]
    assert roofline["RTX6000"] > roofline["P100"]
    assert simple["RTX6000"] < simple["P100"]
