"""F2 — Fig. 2: the three data-collection paths.

"AutoLearn provides three different data collection paths.  Sample
datasets, data collected through the Unity game platform via
simulation, and through the real physical car."

Reproduced table: per-path record counts, student wall-clock, effective
collection rate, and what each path needs (car / network / nothing) —
including the physical path's rsync-to-cloud cost the other two avoid.
Shape: the sample path is near-instant; simulator and physical collect
at the 20 Hz drive rate with the physical path paying the transfer tax.
"""

from repro.core.collection import (
    collect_sample_dataset,
    collect_via_physical_car,
    collect_via_simulator,
    generate_sample_datasets,
)
from repro.net.topology import autolearn_topology
from repro.objectstore.store import ObjectStore

from conftest import BENCH_H, BENCH_W, emit

N_RECORDS = 800


def run_three_paths(tmp_path, oval):
    topo = autolearn_topology()
    store = ObjectStore()
    generate_sample_datasets(
        store, [oval], tmp_path / "publish", n_records=N_RECORDS,
        camera_hw=(BENCH_H, BENCH_W),
    )
    sample = collect_sample_dataset(
        store, oval.name, tmp_path / "download",
        route=topo.route("laptop", "chi-uc"),
    )
    simulator = collect_via_simulator(
        oval, tmp_path / "sim", n_records=N_RECORDS, skill=0.9,
        seed=11, camera_hw=(BENCH_H, BENCH_W),
    )
    physical = collect_via_physical_car(
        oval, tmp_path / "car", route_to_cloud=topo.route("car-pi", "chi-uc"),
        n_records=N_RECORDS, skill=0.75, seed=12, camera_hw=(BENCH_H, BENCH_W),
    )
    return sample, simulator, physical


def test_fig2_three_paths(benchmark, tmp_path, oval):
    sample, simulator, physical = benchmark.pedantic(
        run_three_paths, args=(tmp_path, oval), rounds=1, iterations=1
    )
    lines = [
        f"{'path':12s} {'records':>8s} {'wall(s)':>9s} {'rec/min':>9s} "
        f"{'laps':>5s} {'crashes':>8s} {'rsync(s)':>9s}"
    ]
    for report in (sample, simulator, physical):
        rsync = f"{report.transfer.seconds:9.1f}" if report.transfer else "        -"
        lines.append(
            f"{report.path:12s} {report.records:8d} {report.wall_seconds:9.1f} "
            f"{report.records_per_minute:9.0f} {report.laps:5d} "
            f"{report.crashes:8d} {rsync}"
        )
    emit("F2_collection_paths", "\n".join(lines))

    # Shape: sample >> simulator > physical in records/minute.
    assert sample.records == simulator.records == physical.records == N_RECORDS
    assert sample.records_per_minute > simulator.records_per_minute
    assert simulator.records_per_minute > physical.records_per_minute
    # Only the physical path pays for rsync.
    assert physical.transfer is not None and sample.transfer is None
    # Lower skill + web latency on the real car -> more crashes.
    assert physical.crashes >= simulator.crashes
