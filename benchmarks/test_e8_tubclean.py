"""E8 — §3.3: cleaning bad data before training.

"Learners will likely generate some bad data consisting of mistakes
(i.e., crashes or images that are off-side) while driving; this data
need to be deleted for the training set to represent a valid scenario."

Design: a genuinely sloppy student (skill 0.25 — long distraction
bursts with wrong steering labels, 10 crashes) records a session.  The
same model recipe is trained on the raw tub and on the tubclean'd tub,
then judged two ways:

* **label quality** — MSE against a held-out *expert* reference drive
  (the "valid scenario" the training set should represent);
* **on-track behaviour** — errors/laps totalled over three evaluation
  seeds (single-seed on-track counts are noisy).

Shape: tubclean flags a double-digit percentage of the records
(crashes with margins + off-side spans), and the cleaned model matches
the expert reference better without driving worse.
"""

import numpy as np

from repro.core.collection import collect_via_simulator
from repro.core.evaluation import evaluate_model
from repro.data.datasets import TubDataset
from repro.data.tubclean import TubCleaner
from repro.ml.metrics import mean_squared_error
from repro.ml.models.factory import create_model
from repro.ml.training import EarlyStopping, Trainer

from conftest import BENCH_H, BENCH_W, bench_camera, emit

EVAL_SEEDS = (100, 101, 102)


def expert_reference(oval, tmp_path):
    """Held-out clean expert drive: the 'valid scenario'."""
    report = collect_via_simulator(
        oval, tmp_path / "expert-ref", n_records=500, skill=1.0,
        seed=99, camera_hw=(BENCH_H, BENCH_W),
    )
    split = TubDataset(report.tub).split(rng=0, val_fraction=0.5)
    x = np.concatenate([split.x_train, split.x_val])
    y = np.concatenate([split.y_train, split.y_val])
    return x, y


def fit_and_score(tub, oval, xref, yref, seed=4):
    split = TubDataset(tub).split(rng=seed, targets="both", flip_augment=True)
    model = create_model(
        "linear", input_shape=(BENCH_H, BENCH_W, 3), scale=0.5, seed=seed
    )
    Trainer(
        batch_size=64, epochs=8, early_stopping=EarlyStopping(patience=3),
        shuffle_seed=seed,
    ).fit(model, split)
    angles, throttles = model.predict_batch(xref)
    ref_mse = mean_squared_error(
        np.column_stack([angles, throttles]).astype(np.float32), yref
    )
    errors = laps = 0
    speeds = []
    for eval_seed in EVAL_SEEDS:
        evaluation = evaluate_model(
            model, oval, ticks=600, seed=eval_seed, camera=bench_camera()
        )
        errors += evaluation.errors
        laps += evaluation.laps
        speeds.append(evaluation.mean_speed)
    return ref_mse, errors, laps, float(np.mean(speeds))


def run_experiment(tmp_path, oval):
    sloppy = collect_via_simulator(
        oval, tmp_path / "sloppy", n_records=1600, skill=0.25,
        seed=21, camera_hw=(BENCH_H, BENCH_W),
    )
    xref, yref = expert_reference(oval, tmp_path)
    dirty = fit_and_score(sloppy.tub, oval, xref, yref)
    cleaner = TubCleaner(sloppy.tub, crash_margin=12)
    spans = cleaner.find_bad_spans(half_width=oval.half_width)
    marked = cleaner.clean(half_width=oval.half_width)
    clean = fit_and_score(sloppy.tub, oval, xref, yref)
    return sloppy, spans, marked, dirty, clean


def test_e8_tubclean_improves_training(benchmark, tmp_path, oval):
    sloppy, spans, marked, dirty, clean = benchmark.pedantic(
        run_experiment, args=(tmp_path, oval), rounds=1, iterations=1
    )
    reasons = {}
    for span in spans:
        reasons[span.reason] = reasons.get(span.reason, 0) + len(span.indexes)
    lines = [
        f"sloppy session: {sloppy.records} records, {sloppy.crashes} crashes",
        f"tubclean flagged {marked} records "
        f"({100 * marked / sloppy.records:.1f}%): {reasons}",
        "",
        f"{'training set':14s} {'records':>8s} {'expert-ref MSE':>15s} "
        f"{'errors*':>8s} {'laps*':>6s} {'speed':>7s}   (* summed over "
        f"{len(EVAL_SEEDS)} eval seeds)",
    ]
    for label, (ref_mse, errors, laps, speed), count in (
        ("dirty", dirty, sloppy.records),
        ("cleaned", clean, sloppy.records - marked),
    ):
        lines.append(
            f"{label:14s} {count:8d} {ref_mse:15.4f} {errors:8d} {laps:6d} "
            f"{speed:7.2f}"
        )
    emit("E8_tubclean", "\n".join(lines))

    assert sloppy.crashes >= 5  # the sloppy student really crashed
    assert marked / sloppy.records > 0.05  # a meaningful slice flagged
    # Shape 1: the cleaned training set represents the valid scenario
    # better — lower error against the expert reference drive.
    assert clean[0] < dirty[0]
    # Shape 2: on-track errors do not regress (summed over seeds).
    assert clean[1] <= dirty[1] + 2