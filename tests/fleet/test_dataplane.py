"""The fleet data plane: scheduled flushes and the ingest/clean stage."""

import numpy as np
import pytest

from repro.common.clock import EventScheduler
from repro.common.errors import FleetError
from repro.common.rng import seed_from_name
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.fleet.dataplane import (
    CLEAN_CONTAINER,
    RAW_CONTAINER,
    FleetDataPlane,
    IngestStage,
)
from repro.fleet.shards import decode_shard, encode_shard
from repro.fleet.world import SyntheticTrackWorld
from repro.objectstore.store import ObjectStore


def make_plane(store=None, scheduler=None, n_vehicles=3, seed=0):
    store = store if store is not None else ObjectStore()
    scheduler = scheduler if scheduler is not None else EventScheduler()
    world = SyntheticTrackWorld(
        frame_hw=(8, 8), seed=seed_from_name("world", seed)
    )
    plane = FleetDataPlane(
        store,
        world,
        scheduler,
        n_vehicles=n_vehicles,
        flushes_per_round=2,
        records_per_flush=4,
        seed=seed,
    )
    return plane, store, scheduler


class TestCollect:
    def test_full_round_flushes_everything(self):
        plane, store, scheduler = make_plane()
        report = plane.collect_round(1, window_s=2.0)
        assert report.flushed_shards == 6
        assert report.flushed_records == 24
        assert report.failed_flushes == 0
        assert len(store.container(RAW_CONTAINER)) == 6
        assert scheduler.clock.now == 2.0

    def test_vehicle_streams_independent_of_fleet_size(self):
        """veh-0000's shards are identical in a 1- and a 3-vehicle fleet."""
        small, store_a, _ = make_plane(n_vehicles=1)
        small.collect_round(1, window_s=2.0)
        big, store_b, _ = make_plane(n_vehicles=3)
        big.collect_round(1, window_s=2.0)
        names = store_a.container(RAW_CONTAINER).list()
        assert names  # the 1-vehicle fleet flushed something
        for name in names:
            assert (
                store_a.container(RAW_CONTAINER).get(name).data
                == store_b.container(RAW_CONTAINER).get(name).data
            )

    def test_store_fault_window_loses_flushes_not_the_round(self):
        plane, store, scheduler = make_plane()
        store.attach_resilience(
            injector=FaultInjector(
                FaultPlan([
                    FaultSpec(
                        FaultKind.STORE_ERROR,
                        f"store:{RAW_CONTAINER}",
                        at_s=0.0,
                        duration_s=1.0,
                        error_rate=1.0,
                    ),
                ])
            ),
            clock=scheduler.clock,
        )
        report = plane.collect_round(1, window_s=2.0)
        assert report.failed_flushes > 0
        assert report.flushed_shards + report.failed_flushes == 6


class TestIngest:
    def test_cleans_new_shards_once(self):
        plane, store, _ = make_plane()
        plane.collect_round(1, window_s=2.0)
        ingest = IngestStage(store)
        first = ingest.run(1)
        assert first.fresh_shards == 6
        assert first.fresh_records == 24
        again = ingest.run(2)
        assert again.fresh_shards == 0  # already processed

    def test_drops_nonfinite_rows_and_clips(self):
        store = ObjectStore()
        raw = store.create_container(RAW_CONTAINER)
        frames = np.zeros((3, 8, 8, 3), dtype=np.uint8)
        labels = np.array(
            [[0.2, 0.5], [np.nan, 0.5], [1.7, -2.0]], dtype=np.float32
        )
        raw.put("r001-veh-0000-f00.npz", encode_shard(frames, labels))
        report = IngestStage(store).run(1)
        assert report.fresh_records == 2
        assert report.dropped_records == 1
        cleaned = store.container(CLEAN_CONTAINER)
        _, out = decode_shard(cleaned.get("r001-veh-0000-f00.npz").data)
        assert np.all(np.abs(out) <= 1.0)

    def test_corrupt_shard_skipped(self):
        store = ObjectStore()
        raw = store.create_container(RAW_CONTAINER)
        raw.put("bad.npz", b"garbage")
        report = IngestStage(store).run(1)
        assert report.skipped_objects == 1
        assert report.fresh_shards == 0


class TestValidation:
    def test_bad_parameters(self):
        store = ObjectStore()
        world = SyntheticTrackWorld(frame_hw=(8, 8), seed=0)
        with pytest.raises(FleetError):
            FleetDataPlane(
                store, world, EventScheduler(),
                n_vehicles=0, flushes_per_round=1, records_per_flush=1,
            )
        plane, _, _ = make_plane()
        with pytest.raises(FleetError):
            plane.collect_round(1, window_s=0.0)
