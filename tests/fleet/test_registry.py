"""The model registry: versions, stage tags, and payload verification."""

import numpy as np
import pytest

from repro.artifacts.trovi import TroviHub
from repro.common.errors import FleetError
from repro.fleet.registry import (
    MODELS_CONTAINER,
    TAG_CANDIDATE,
    TAG_STABLE,
    ModelRegistry,
)
from repro.ml.models.factory import create_model
from repro.objectstore.store import ObjectStore


def make_registry():
    return ModelRegistry(TroviHub(), ObjectStore())


def make_model(seed=0):
    return create_model("linear", input_shape=(8, 8, 3), scale=0.25, seed=seed)


class TestPublish:
    def test_versions_count_up_and_tag_candidate(self):
        registry = make_registry()
        v1 = registry.publish(make_model(0), metrics={"round": 1})
        v2 = registry.publish(make_model(1), metrics={"round": 2})
        assert (v1, v2) == (1, 2)
        assert registry.resolve(TAG_CANDIDATE) == 2
        assert registry.resolve(TAG_STABLE) is None

    def test_payload_round_trips_through_store(self):
        registry = make_registry()
        model = make_model(4)
        number = registry.publish(model, metrics={})
        loaded = registry.load(number)
        frames = np.zeros((3, 8, 8, 3), dtype=np.uint8)
        assert np.allclose(
            loaded.predict_frames(frames), model.predict_frames(frames)
        )

    def test_tamper_detection(self):
        registry = make_registry()
        number = registry.publish(make_model(0), metrics={})
        container = registry.store.container(MODELS_CONTAINER)
        name = f"v{number:03d}.npz"
        container.put(name, container.get(name).data + b"x")
        with pytest.raises(FleetError):
            registry.load(number)


class TestTags:
    def test_tag_move_and_untag(self):
        registry = make_registry()
        registry.publish(make_model(0), metrics={})
        registry.publish(make_model(1), metrics={})
        registry.tag(TAG_STABLE, 1)
        assert registry.resolve(TAG_STABLE) == 1
        registry.tag(TAG_STABLE, 2)
        assert registry.resolve(TAG_STABLE) == 2
        assert registry.untag(TAG_STABLE) == 2
        assert registry.resolve(TAG_STABLE) is None
        assert registry.untag(TAG_STABLE) is None  # idempotent

    def test_empty_registry_guards(self):
        registry = make_registry()
        assert registry.resolve(TAG_STABLE) is None
        assert registry.history() == []
        with pytest.raises(FleetError):
            registry.tag(TAG_STABLE, 1)

    def test_history_includes_tags(self):
        registry = make_registry()
        registry.publish(make_model(0), metrics={})
        registry.publish(make_model(1), metrics={})
        registry.tag(TAG_STABLE, 1)
        history = registry.history()
        assert [entry["version"] for entry in history] == [1, 2]
        assert history[0]["tags"] == ["stable"]
        assert history[1]["tags"] == ["candidate"]
