"""Promotion gates, the per-version scoreboard, and rollout edges."""

import pytest

from repro.common.clock import EventScheduler
from repro.common.errors import ConfigurationError, RolloutError
from repro.common.rng import seed_from_name
from repro.fleet.config import FleetConfig
from repro.fleet.gates import GateThresholds, evaluate_gate
from repro.fleet.registry import TAG_STABLE
from repro.fleet.rollout import OUTCOME_BOOTSTRAPPED, RolloutController
from repro.fleet.stage import VersionScoreboard, VersionStats
from repro.fleet.world import SyntheticTrackWorld
from repro.serve.request import Request

from tests.fleet.test_registry import make_model, make_registry


def stats(**overrides):
    base = dict(
        version="v002",
        offered=40,
        completed=40,
        deadline_met=40,
        losses=0,
        p95_ms=10.0,
        mean_ms=8.0,
        mean_cte_m=0.05,
        max_cte_m=0.1,
    )
    base.update(overrides)
    return VersionStats(**base)


class TestGates:
    def test_clean_pass(self):
        decision = evaluate_gate(
            "shadow", stats(), stats(version="v001"), 0.1, GateThresholds()
        )
        assert decision.passed
        assert decision.reasons == ()

    def test_too_few_completions_fails_outright(self):
        """A crashed canary must not pass a gate by silence."""
        decision = evaluate_gate(
            "canary", stats(completed=3, deadline_met=3), None, 0.0,
            GateThresholds(),
        )
        assert not decision.passed
        assert decision.reasons == ("completions 3 < 20",)

    def test_each_threshold_has_a_reason(self):
        thresholds = GateThresholds()
        cases = {
            "p95": stats(p95_ms=500.0),
            "deadline_miss": stats(deadline_met=10),
            "cte": stats(mean_cte_m=0.9),
        }
        for key, candidate in cases.items():
            decision = evaluate_gate("shadow", candidate, None, 0.0, thresholds)
            assert not decision.passed
            assert any(key in reason for reason in decision.reasons), key

    def test_regression_vs_stable(self):
        decision = evaluate_gate(
            "canary",
            stats(mean_cte_m=0.15),
            stats(version="v001", mean_cte_m=0.02),
            0.0,
            GateThresholds(),
        )
        assert not decision.passed
        assert any("regression" in reason for reason in decision.reasons)
        # The same candidate passes when the baseline has too few samples
        # to be trusted as a comparison point.
        decision = evaluate_gate(
            "canary",
            stats(mean_cte_m=0.15),
            stats(version="v001", mean_cte_m=0.02, completed=2),
            0.0,
            GateThresholds(),
        )
        assert decision.passed

    def test_stale_ratio_is_loop_level(self):
        decision = evaluate_gate(
            "shadow", stats(), None, 0.9, GateThresholds()
        )
        assert not decision.passed
        assert any("stale_ratio" in reason for reason in decision.reasons)

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            GateThresholds(min_completions=0)
        with pytest.raises(ConfigurationError):
            GateThresholds(max_deadline_miss=1.5)


class TestScoreboard:
    def test_versions_sorted_and_stats(self):
        board = VersionScoreboard(cte_gain_m=0.5)
        board.record_offered("v002")
        board.record_offered("v001")
        request = Request(
            request_id="r1", source="veh-0000", arrival_s=0.0, deadline_s=1.0
        )
        request.completed_s = 0.01
        request.angle = 0.3
        board.record_completion("v001", request, expert_angle=0.1)
        board.record_loss("v002")
        assert board.versions() == ["v001", "v002"]
        one = board.stats("v001")
        assert one.completed == 1
        assert one.mean_cte_m == pytest.approx(0.5 * 0.2)
        assert board.stats("v002").losses == 1
        assert board.stats("ghost").completed == 0

    def test_gain_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            VersionScoreboard(cte_gain_m=0.0)


class TestRolloutEdges:
    def make_controller(self, registry):
        config = FleetConfig()
        world = SyntheticTrackWorld(
            frame_hw=config.frame_hw,
            seed=seed_from_name("fleet-world", config.seed),
        )
        return RolloutController(
            registry, world, EventScheduler(), config
        )

    def test_no_candidate_raises(self):
        registry = make_registry()
        controller = self.make_controller(registry)
        with pytest.raises(RolloutError):
            controller.run_round(1)

    def test_bootstrap_tags_stable_directly(self):
        registry = make_registry()
        controller = self.make_controller(registry)
        registry.publish(make_model(0), metrics={})
        report = controller.run_round(1)
        assert report.outcome == OUTCOME_BOOTSTRAPPED
        assert report.history == ("candidate", "stable")
        assert report.stages == ()
        assert registry.resolve(TAG_STABLE) == 1

    def test_candidate_equal_stable_raises(self):
        registry = make_registry()
        controller = self.make_controller(registry)
        registry.publish(make_model(0), metrics={})
        controller.run_round(1)
        registry.tag("candidate", 1)
        with pytest.raises(RolloutError):
            controller.run_round(2)
