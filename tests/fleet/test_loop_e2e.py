"""End-to-end continuum-loop regression locks.

Three behaviours are pinned, each byte-identical per seed:

* a healthy fleet improves and promotes: candidates pass shadow and
  canary gates and the ``stable`` tag advances every round;
* a degraded candidate (training on a poisoned round's inverted
  steering labels) fails its gate and rolls back, leaving the previous
  stable tag in place;
* a canary crash mid-stage starves the candidate of completions, which
  fails the min-completions gate — a fault-*induced* rollback.
"""

import json

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.fleet import (
    OUTCOME_BOOTSTRAPPED,
    OUTCOME_PROMOTED,
    OUTCOME_ROLLED_BACK,
    FleetConfig,
    FleetLoop,
)
from repro.fleet.gates import GateThresholds
from repro.obs.metrics import MetricsRegistry

# Small but real: 4 vehicles x 2 flushes x 12 records per round, three
# rollout stages of 0.6 simulated seconds each.
BASE = dict(
    n_vehicles=4,
    records_per_flush=12,
    stage_vehicles=4,
    stage_duration_s=0.6,
    min_fresh_records=48,
    eval_records=48,
    gates=GateThresholds(min_completions=10),
    canary_fraction=0.35,
    rounds=3,
)

CANARY_CRASH = FaultPlan(
    [FaultSpec(FaultKind.REPLICA_CRASH, "replica-0003", at_s=0.1)]
)


def run(seed=0, **overrides):
    config = FleetConfig(seed=seed, **{**BASE, **overrides})
    return FleetLoop(config).run()


class TestPromotionLoop:
    def test_three_rounds_bootstrap_then_promote(self):
        summary = run()
        outcomes = [r.rollout.outcome for r in summary.rounds]
        assert outcomes == [
            OUTCOME_BOOTSTRAPPED, OUTCOME_PROMOTED, OUTCOME_PROMOTED,
        ]
        assert summary.final_stable == 3
        assert [r.stable_version for r in summary.rounds] == [1, 2, 3]
        # Promotion walked the full lattice both times.
        for report in summary.rounds[1:]:
            assert report.rollout.history == (
                "candidate", "shadow", "canary", "stable",
            )
            assert report.promotion_latency_s > 0.0

    def test_retraining_improves_driving(self):
        """The loop actually learns: round-2+ candidates drive better
        than the bootstrap checkpoint on the shared eval pool."""
        summary = run()
        ctes = [r.train.eval_cte_m for r in summary.rounds]
        assert min(ctes[1:]) < ctes[0]

    def test_candidates_warm_start_from_stable(self):
        summary = run()
        warm = [r.train.warm_start for r in summary.rounds]
        assert warm == [0, 1, 2]

    def test_same_seed_byte_identical(self):
        a = json.dumps(run().to_dict(), sort_keys=True)
        b = json.dumps(run().to_dict(), sort_keys=True)
        assert a == b
        assert run(seed=0).to_text() == run(seed=0).to_text()

    def test_seed_changes_the_run(self):
        assert json.dumps(run().to_dict()) != json.dumps(run(seed=5).to_dict())

    def test_metrics_counters(self):
        config = FleetConfig(seed=0, **BASE)
        metrics = MetricsRegistry()
        FleetLoop(config, metrics=metrics).run()
        counters = metrics.snapshot()["counters"]
        assert counters["fleet.rounds"] == 3
        assert counters["fleet.promotions"] == 2
        assert counters["fleet.candidates"] == 3


class TestDegradedCandidateRollback:
    def test_poisoned_round_rolls_back(self):
        summary = run(poison_rounds=(3,))
        last = summary.rounds[-1]
        assert last.rollout.outcome == OUTCOME_ROLLED_BACK
        # The previous stable is restored (never left), and the bad
        # candidate's tags are gone.
        assert last.stable_version == last.rollout.prior_stable == 2
        assert summary.final_stable == 2
        assert last.rollout.history[-1] == OUTCOME_ROLLED_BACK
        reasons = [
            reason
            for stage in last.rollout.stages
            for reason in stage.decision.reasons
        ]
        assert any("cte" in reason for reason in reasons)

    def test_rollback_is_byte_identical(self):
        a = run(poison_rounds=(3,))
        b = run(poison_rounds=(3,))
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )


class TestFaultInducedRollback:
    def test_canary_crash_rolls_back(self):
        summary = run(canary_fault_plans=((3, CANARY_CRASH),))
        last = summary.rounds[-1]
        assert last.rollout.outcome == OUTCOME_ROLLED_BACK
        assert summary.final_stable == 2
        canary = last.rollout.stages[-1]
        assert canary.stage == "canary"
        assert canary.crashes == 1
        assert any(
            "completions" in reason for reason in canary.decision.reasons
        )
        # The shadow stage (pre-crash) was healthy: the rollback is the
        # fault's doing, not the model's.
        assert last.rollout.stages[0].decision.passed

    def test_crash_rollback_is_byte_identical(self):
        plans = ((3, CANARY_CRASH),)
        a = run(canary_fault_plans=plans)
        b = run(canary_fault_plans=plans)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )


class TestStoreFaults:
    def test_partitioned_store_degrades_freshness_not_the_loop(self):
        plan = FaultPlan([
            FaultSpec(
                FaultKind.STORE_ERROR,
                "store:fleet-raw",
                at_s=0.0,
                duration_s=2.0,
                error_rate=1.0,
            ),
        ])
        summary = run(store_fault_plan=plan)
        first = summary.rounds[0]
        assert first.collect.failed_flushes > 0
        # The loop still completes every round and ends with a stable.
        assert len(summary.rounds) == 3
        assert summary.final_stable >= 1
