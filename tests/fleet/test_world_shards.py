"""The synthetic world and the shard wire format."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, FleetError
from repro.common.rng import ensure_rng
from repro.fleet.shards import decode_shard, encode_shard, shard_records
from repro.fleet.world import SyntheticTrackWorld


class TestWorld:
    def test_same_seed_same_world(self):
        a = SyntheticTrackWorld(seed=5)
        b = SyntheticTrackWorld(seed=5)
        fa, la = a.sample(ensure_rng(1), 8)
        fb, lb = b.sample(ensure_rng(1), 8)
        assert np.array_equal(fa, fb)
        assert np.array_equal(la, lb)

    def test_shapes_and_ranges(self):
        world = SyntheticTrackWorld(frame_hw=(10, 12), seed=0)
        frames, labels = world.sample(ensure_rng(0), 20)
        assert frames.shape == (20, 10, 12, 3)
        assert frames.dtype == np.uint8
        assert labels.shape == (20, 2)
        assert np.all(np.abs(labels[:, 0]) <= 1.0)
        assert np.all(labels[:, 1] > 0.0)

    def test_poison_inverts_steering_only(self):
        world = SyntheticTrackWorld(seed=3)
        _, clean = world.sample(ensure_rng(9), 16)
        _, poisoned = world.sample(ensure_rng(9), 16)
        # Same stream draw: the frames and throttles match, angles flip.
        assert np.allclose(poisoned[:, 1], clean[:, 1])
        world2 = SyntheticTrackWorld(seed=3)
        _, bad = world2.sample(ensure_rng(9), 16, poisoned=True)
        assert np.allclose(bad[:, 0], -clean[:, 0])

    def test_frames_predict_steering(self):
        """The world is learnable: frames decode to the expert command."""
        world = SyntheticTrackWorld(seed=0, noise=0.0)
        frames, labels = world.sample(ensure_rng(0), 200)
        x = frames.reshape(len(frames), -1).astype(np.float64)
        x = np.concatenate([x, np.ones((len(x), 1))], axis=1)
        coef, *_ = np.linalg.lstsq(x, labels[:, 0], rcond=None)
        residual = x @ coef - labels[:, 0]
        assert float(np.mean(np.abs(residual))) < 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticTrackWorld(frame_hw=(2, 24))
        with pytest.raises(ConfigurationError):
            SyntheticTrackWorld(noise=-1.0)
        world = SyntheticTrackWorld()
        with pytest.raises(ConfigurationError):
            world.sample(ensure_rng(0), 0)


class TestShards:
    def test_round_trip(self):
        world = SyntheticTrackWorld(seed=1)
        frames, labels = world.sample(ensure_rng(2), 12)
        data = encode_shard(frames, labels)
        back_frames, back_labels = decode_shard(data)
        assert np.array_equal(back_frames, frames)
        assert np.array_equal(back_labels, labels)
        assert shard_records(data) == 12

    def test_encoding_is_deterministic(self):
        world = SyntheticTrackWorld(seed=1)
        frames, labels = world.sample(ensure_rng(2), 6)
        assert encode_shard(frames, labels) == encode_shard(frames, labels)

    def test_bad_shapes_rejected(self):
        frames = np.zeros((4, 8, 8, 3), dtype=np.uint8)
        with pytest.raises(FleetError):
            encode_shard(frames.astype(np.float32), np.zeros((4, 2)))
        with pytest.raises(FleetError):
            encode_shard(frames, np.zeros((3, 2)))

    def test_corrupt_payload_is_typed(self):
        with pytest.raises(FleetError):
            decode_shard(b"not an npz at all")
        frames = np.zeros((2, 8, 8, 3), dtype=np.uint8)
        data = encode_shard(frames, np.zeros((2, 2), dtype=np.float32))
        with pytest.raises(FleetError):
            decode_shard(data[: len(data) // 2])
