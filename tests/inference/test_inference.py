"""Inference backends, serving staleness, and the speed governor."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.edge.devices import RASPBERRY_PI_4, EdgeDevice
from repro.inference.backends import CloudBackend, EdgeBackend, HybridBackend
from repro.inference.consistency import OpenLoopThrottle, SpeedGovernor
from repro.inference.serving import RemotePilot
from repro.net.links import Link
from repro.net.topology import autolearn_topology
from repro.testbed.hardware import GPU_SPECS


def device():
    return EdgeDevice("dev-1", "car", RASPBERRY_PI_4, "proj-1")


def route(bad=False):
    if bad:
        topo = autolearn_topology(
            wan=Link("wan-bad", 0.15, 1.0, 20e6, loss_rate=0.05)
        )
    else:
        topo = autolearn_topology()
    return topo.route("car-pi", "chi-uc")


SMALL_FLOPS = 1.2e8  # small CNN per frame
BIG_FLOPS = 3.0e9  # 3D/RNN-class per frame


class TestEdgeBackend:
    def test_latency_is_compute_only(self):
        backend = EdgeBackend(device(), SMALL_FLOPS)
        rng = np.random.default_rng(0)
        latency = backend.request_latency(rng)
        assert latency == pytest.approx(
            SMALL_FLOPS / RASPBERRY_PI_4.effective_flops, abs=0.005
        )

    def test_not_pipelined(self):
        assert not EdgeBackend(device(), SMALL_FLOPS).pipelined

    def test_big_model_slow_on_pi(self):
        small = EdgeBackend(device(), SMALL_FLOPS)
        big = EdgeBackend(device(), BIG_FLOPS)
        rng = np.random.default_rng(0)
        assert big.request_latency(rng) > 10 * small.request_latency(rng)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EdgeBackend(device(), 0.0)


class TestCloudBackend:
    def test_latency_includes_rtt(self):
        backend = CloudBackend(GPU_SPECS["V100"], route(), SMALL_FLOPS)
        rng = np.random.default_rng(0)
        latencies = [backend.request_latency(rng) for _ in range(100)]
        assert min(latencies) > backend.route.base_rtt_s

    def test_pipelined(self):
        assert CloudBackend(GPU_SPECS["V100"], route(), SMALL_FLOPS).pipelined

    def test_gpu_compute_negligible_for_small_model(self):
        backend = CloudBackend(GPU_SPECS["A100"], route(), SMALL_FLOPS)
        assert backend.compute_latency() < 0.002

    def test_crossover_big_model_favors_cloud(self):
        # The poster's core tradeoff: the Pi cannot run the big model at
        # control rate, the cloud GPU can — despite the RTT.
        rng = np.random.default_rng(0)
        edge_big = EdgeBackend(device(), BIG_FLOPS)
        cloud_big = CloudBackend(GPU_SPECS["V100"], route(), BIG_FLOPS)
        edge_lat = edge_big.request_latency(rng)
        cloud_lat = np.mean([cloud_big.request_latency(rng) for _ in range(50)])
        assert cloud_lat < edge_lat

    def test_small_model_favors_edge(self):
        rng = np.random.default_rng(0)
        edge_small = EdgeBackend(device(), SMALL_FLOPS)
        cloud_small = CloudBackend(GPU_SPECS["V100"], route(), SMALL_FLOPS)
        edge_lat = edge_small.request_latency(rng)
        cloud_lat = np.mean([cloud_small.request_latency(rng) for _ in range(50)])
        assert edge_lat < cloud_lat


class TestHybridBackend:
    def make(self, policy, bad_net=False, flops=SMALL_FLOPS, **kw):
        return HybridBackend(
            EdgeBackend(device(), flops),
            CloudBackend(GPU_SPECS["V100"], route(bad=bad_net), flops),
            policy=policy,
            **kw,
        )

    def test_adaptive_falls_back_to_edge_on_bad_network(self):
        hybrid = self.make("adaptive", bad_net=True, deadline_s=0.05)
        rng = np.random.default_rng(0)
        for _ in range(100):
            hybrid.request_latency(rng)
        assert hybrid.edge_requests > hybrid.cloud_requests

    def test_adaptive_keeps_probing(self):
        hybrid = self.make("adaptive", bad_net=True, deadline_s=0.05, probe_every=10)
        rng = np.random.default_rng(0)
        for _ in range(100):
            hybrid.request_latency(rng)
        assert hybrid.cloud_requests >= 5  # periodic probes

    def test_deadline_policy_caps_latency(self):
        hybrid = self.make("deadline", bad_net=True, deadline_s=0.06)
        rng = np.random.default_rng(0)
        latencies = [hybrid.request_latency(rng) for _ in range(200)]
        # Latency never greatly exceeds max(edge, deadline).
        edge_latency = hybrid.edge.request_latency(rng)
        assert max(latencies) <= max(edge_latency, 0.06) + 1e-9

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            self.make("ouija")


class TestBatchLatency:
    def test_edge_batches_serially(self):
        backend = EdgeBackend(device(), SMALL_FLOPS)
        rng = np.random.default_rng(0)
        single = backend.batch_request_latency(rng, 1)
        assert single == pytest.approx(backend.request_latency(rng))
        eight = backend.batch_request_latency(rng, 8)
        # Serial compute: the only amortisation is the software overhead.
        per_frame = SMALL_FLOPS / RASPBERRY_PI_4.effective_flops
        assert eight == pytest.approx(single + 7 * per_frame)

    def test_cloud_batches_amortise_rtt(self):
        backend = CloudBackend(GPU_SPECS["V100"], route(), SMALL_FLOPS)
        rng = np.random.default_rng(0)
        singles = np.mean([backend.batch_request_latency(rng, 1) for _ in range(50)])
        batched = np.mean([backend.batch_request_latency(rng, 16) for _ in range(50)])
        # One RTT for 16 frames beats 16 RTTs for 16 frames.
        assert batched < 16 * singles / 3

    def test_batch_compute_scales_linearly(self):
        backend = CloudBackend(GPU_SPECS["V100"], route(), SMALL_FLOPS)
        one = backend.batch_compute_latency(1) - backend.batch_queue_s
        ten = backend.batch_compute_latency(10) - backend.batch_queue_s
        assert ten == pytest.approx(10 * one)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            EdgeBackend(device(), SMALL_FLOPS).batch_request_latency(rng, 0)
        cloud = CloudBackend(GPU_SPECS["V100"], route(), SMALL_FLOPS)
        with pytest.raises(ConfigurationError):
            cloud.batch_request_latency(rng, 0)
        with pytest.raises(ConfigurationError):
            cloud.batch_compute_latency(0)


class TestServingStats:
    def test_fresh_response_ratio_is_dimensionless(self):
        from repro.inference.serving import ServingStats

        stats = ServingStats(requests=40, responses=30)
        assert stats.fresh_response_ratio == pytest.approx(0.75)
        # The deprecated alias keeps returning the same (ratio) value.
        assert stats.control_rate_hz == stats.fresh_response_ratio

    def test_fresh_command_hz_is_a_true_rate(self):
        from repro.inference.serving import ServingStats

        stats = ServingStats(requests=40, responses=30, ticks=40, dt=0.05)
        # 30 fresh commands over 2 s of drive time.
        assert stats.fresh_command_hz == pytest.approx(15.0)
        assert ServingStats().fresh_command_hz == 0.0

    def test_pilot_populates_tick_accounting(self, trained_linear):
        backend = EdgeBackend(device(), SMALL_FLOPS)
        pilot = RemotePilot(trained_linear, backend, dt=0.05, rng=0)
        frame = np.zeros(trained_linear.input_shape, dtype=np.uint8)
        for _ in range(20):
            pilot.run(frame)
        assert pilot.stats.ticks == 20
        assert pilot.stats.dt == pytest.approx(0.05)
        # Fast edge backend sustains nearly the full 20 Hz control rate.
        assert pilot.stats.fresh_command_hz > 15.0


class TestRemotePilot:
    def test_fresh_commands_with_fast_backend(self, trained_linear, session_factory):
        backend = EdgeBackend(device(), SMALL_FLOPS)
        pilot = RemotePilot(trained_linear, backend, dt=0.05, rng=0)
        session = session_factory(seed=31)
        obs = session.reset()
        for _ in range(40):
            steering, throttle = pilot.run(obs.image)
            obs = session.step(steering, throttle)
        assert pilot.stats.responses > 30
        assert pilot.stats.stale_ticks < 10

    def test_slow_backend_goes_stale(self, trained_linear, session_factory):
        slow = EdgeBackend(device(), BIG_FLOPS * 3)  # ~3 s per frame
        pilot = RemotePilot(trained_linear, slow, dt=0.05, rng=0)
        session = session_factory(seed=32)
        obs = session.reset()
        for _ in range(40):
            steering, throttle = pilot.run(obs.image)
            obs = session.step(steering, throttle)
        assert pilot.stats.stale_ticks > 30
        assert pilot.stats.responses <= 2

    def test_safe_command_before_first_response(self, trained_linear):
        backend = CloudBackend(GPU_SPECS["V100"], route(), SMALL_FLOPS)
        pilot = RemotePilot(
            trained_linear, backend, dt=0.05, rng=0, safe_command=(0.0, 0.15)
        )
        frame = np.zeros(trained_linear.input_shape, dtype=np.uint8)
        steering, throttle = pilot.run(frame)
        assert (steering, throttle) == (0.0, 0.15)

    def test_none_image_returns_last(self, trained_linear):
        backend = EdgeBackend(device(), SMALL_FLOPS)
        pilot = RemotePilot(trained_linear, backend, dt=0.05, rng=0)
        assert pilot.run(None) == pilot.safe_command


class TestConsistency:
    @staticmethod
    def steering_source(session):
        """Pure-pursuit steering so the test car stays on the track."""
        from repro.core.drivers import PurePursuitDriver

        driver = PurePursuitDriver(session)

        class Steer:
            def run(self, image):
                return driver(image, 0.0, 0.0)

        return Steer()

    def test_governor_tracks_target_speed(self, session_factory):
        session = session_factory(render=False)
        governor = SpeedGovernor(
            self.steering_source(session), target_speed=1.0, dt=session.dt
        )
        obs = session.reset()
        for _ in range(400):
            angle, throttle = governor.run(obs.image, obs.speed)
            obs = session.step(angle, throttle)
        assert session.stats.crashes == 0
        assert obs.speed == pytest.approx(1.0, abs=0.1)

    def test_open_loop_sags_over_time(self, session_factory):
        session = session_factory(render=False)
        baseline = OpenLoopThrottle(
            self.steering_source(session), throttle=0.5, sag_per_tick=8e-4
        )
        obs = session.reset()
        speeds = []
        for _ in range(800):
            angle, throttle = baseline.run(obs.image, obs.speed)
            obs = session.step(angle, throttle)
            speeds.append(obs.speed)
        assert speeds[-1] < max(speeds) * 0.85

    def test_governor_beats_open_loop_on_consistency(self, session_factory):
        def tail_speeds(controller, session, ticks=600):
            obs = session.reset()
            out = []
            for _ in range(ticks):
                angle, throttle = controller.run(obs.image, obs.speed)
                obs = session.step(angle, throttle)
                out.append(obs.speed)
            return np.array(out[200:])

        gov_session = session_factory(render=False)
        governor = SpeedGovernor(
            self.steering_source(gov_session), target_speed=1.0, dt=gov_session.dt
        )
        governed = tail_speeds(governor, gov_session)

        open_session = session_factory(render=False)
        baseline = OpenLoopThrottle(
            self.steering_source(open_session), throttle=0.42, sag_per_tick=6e-4
        )
        open_loop = tail_speeds(baseline, open_session)

        assert governed.std() < open_loop.std() / 2

    def test_validation(self):
        class Dummy:
            def run(self, image):
                return 0.0, 0.0

        with pytest.raises(ConfigurationError):
            SpeedGovernor(Dummy(), target_speed=0.0)
        with pytest.raises(ConfigurationError):
            OpenLoopThrottle(Dummy(), throttle=0.0)
