"""Standard parts: actuators, controllers, drive mode, tub writer."""

import numpy as np
import pytest

from repro.common.errors import PartError
from repro.data.tub import Tub
from repro.vehicle.parts import (
    DriveMode,
    JoystickController,
    PWMSteering,
    PWMThrottle,
    SimPlant,
    TubWriterPart,
    WebController,
)


class TestPWMSteering:
    def test_center(self):
        pwm = PWMSteering(left_pulse=460, right_pulse=290)
        assert pwm.to_pulse(0.0) == 375
        assert pwm.run(0.0) == pytest.approx(0.0, abs=0.02)

    def test_full_lock(self):
        pwm = PWMSteering(left_pulse=460, right_pulse=290)
        assert pwm.to_pulse(-1.0) == 460  # -1 = full left
        assert pwm.to_pulse(1.0) == 290

    def test_round_trip_accuracy(self):
        pwm = PWMSteering()
        for cmd in np.linspace(-1, 1, 21):
            assert pwm.run(cmd) == pytest.approx(cmd, abs=0.02)

    def test_asymmetric_calibration(self):
        # A miscalibrated servo (the calibration exercise): same command
        # magnitude produces different wheel angles per side.
        pwm = PWMSteering(left_pulse=480, right_pulse=330, center_pulse=370)
        left = pwm.to_pulse(-1.0) - pwm.center_pulse
        right = pwm.center_pulse - pwm.to_pulse(1.0)
        assert left != right

    def test_none_maps_to_zero(self):
        assert PWMSteering().run(None) == 0.0

    def test_equal_pulses_rejected(self):
        with pytest.raises(PartError):
            PWMSteering(left_pulse=300, right_pulse=300)


class TestPWMThrottle:
    def test_zero_and_extremes(self):
        pwm = PWMThrottle(max_pulse=500, zero_pulse=370, min_pulse=220)
        assert pwm.to_pulse(0.0) == 370
        assert pwm.to_pulse(1.0) == 500
        assert pwm.to_pulse(-1.0) == 220

    def test_round_trip(self):
        pwm = PWMThrottle()
        for cmd in np.linspace(-1, 1, 11):
            assert pwm.run(cmd) == pytest.approx(cmd, abs=0.02)

    def test_bad_ordering(self):
        with pytest.raises(PartError):
            PWMThrottle(max_pulse=300, zero_pulse=370, min_pulse=220)


class TestControllers:
    def frame(self):
        return np.zeros((8, 10, 3), dtype=np.uint8)

    def test_joystick_no_latency(self):
        ctrl = JoystickController(lambda img, cte, speed: (0.4, 0.6))
        steering, throttle, mode, rec = ctrl.run(self.frame(), 0.0, 0.0)
        assert steering == 0.4
        assert throttle == 0.6
        assert mode == "user"
        assert rec is True

    def test_web_controller_latency(self):
        ctrl = WebController(lambda img, cte, speed: (0.5, 0.5))
        # First two ticks deliver the neutral command (in-flight).
        for _ in range(WebController.latency_ticks):
            steering, throttle, _, _ = ctrl.run(self.frame(), 0.0, 0.0)
            assert steering == 0.0
        steering, _, _, _ = ctrl.run(self.frame(), 0.0, 0.0)
        assert steering == 0.5

    def test_constant_throttle_mode(self):
        ctrl = JoystickController(
            lambda img, cte, speed: (0.3, 0.9), constant_throttle=0.4
        )
        _, throttle, _, _ = ctrl.run(self.frame(), 0.0, 0.0)
        assert throttle == 0.4

    def test_none_image_neutral(self):
        ctrl = JoystickController(lambda img, cte, speed: (1.0, 1.0))
        steering, throttle, _, _ = ctrl.run(None, None, None)
        assert (steering, throttle) == (0.0, 0.0)


class TestDriveMode:
    def test_user(self):
        assert DriveMode().run("user", 0.1, 0.2, 0.9, 0.9) == (0.1, 0.2)

    def test_pilot(self):
        assert DriveMode().run("pilot", 0.1, 0.2, 0.9, 0.8) == (0.9, 0.8)

    def test_local_angle_race_mode(self):
        # Pilot steers, user throttle (the race configuration).
        assert DriveMode().run("local_angle", 0.1, 0.2, 0.9, 0.8) == (0.9, 0.2)

    def test_none_mode_defaults_to_user(self):
        assert DriveMode().run(None, 0.1, 0.2, 0.9, 0.8) == (0.1, 0.2)

    def test_unknown_mode(self):
        with pytest.raises(PartError):
            DriveMode().run("ludicrous", 0, 0, 0, 0)


class TestSimPlantAndTubWriter:
    def test_plant_emits_telemetry(self, session_factory):
        plant = SimPlant(session_factory(render=False))
        image, cte, speed, off = plant.run(0.0, 0.5)
        assert image.ndim == 3
        assert isinstance(cte, float)
        assert speed >= 0.0
        assert off in (False, True)

    def test_plant_none_commands_are_neutral(self, session_factory):
        plant = SimPlant(session_factory(render=False))
        _, _, speed, _ = plant.run(None, None)
        assert speed == 0.0

    def test_tub_writer_respects_recording_flag(self, tmp_path):
        tub = Tub.create(tmp_path / "w")
        writer = TubWriterPart(tub)
        frame = np.zeros((8, 10, 3), dtype=np.uint8)
        writer.run(frame, 0.1, 0.5, "user", True, 0.0, 1.0, False)
        writer.run(frame, 0.1, 0.5, "user", False, 0.0, 1.0, False)
        writer.run(None, 0.1, 0.5, "user", True, 0.0, 1.0, False)
        writer.shutdown()
        assert len(Tub(tub.path)) == 1

    def test_tub_writer_clips_commands(self, tmp_path):
        tub = Tub.create(tmp_path / "c")
        writer = TubWriterPart(tub)
        frame = np.zeros((8, 10, 3), dtype=np.uint8)
        writer.run(frame, 5.0, -5.0, "user", True, 0.0, 1.0, False)
        writer.shutdown()
        record = Tub(tub.path).read_record(0)
        assert record.angle == 1.0
        assert record.throttle == -1.0
