"""Prewired recording and autopilot vehicles."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.data.tub import Tub
from repro.vehicle.builder import build_autopilot_vehicle, build_recording_vehicle


def constant_driver(img, cte, speed):
    return 0.0, 0.5


class TestRecordingVehicle:
    def test_records_expected_count(self, session_factory, tmp_path):
        session = session_factory(render=False)
        tub = Tub.create(tmp_path / "rec")
        v = build_recording_vehicle(session, constant_driver, tub)
        v.start(max_loop_count=40)
        assert len(Tub(tub.path)) == 40

    def test_records_carry_telemetry(self, session_factory, tmp_path):
        session = session_factory(render=False)
        tub = Tub.create(tmp_path / "tel")
        build_recording_vehicle(session, constant_driver, tub).start(max_loop_count=30)
        speeds = [f["sim/speed"] for f in Tub(tub.path).iter_fields()]
        assert speeds[-1] > 0.0  # the car actually moved

    def test_web_controller_option(self, session_factory, tmp_path):
        session = session_factory(render=False)
        tub = Tub.create(tmp_path / "web")
        v = build_recording_vehicle(
            session, constant_driver, tub, controller="web"
        )
        v.start(max_loop_count=10)
        assert len(Tub(tub.path)) == 10

    def test_constant_throttle_race_setup(self, session_factory, tmp_path):
        session = session_factory(render=False)
        tub = Tub.create(tmp_path / "race")
        v = build_recording_vehicle(
            session, constant_driver, tub, constant_throttle=0.33
        )
        v.start(max_loop_count=10)
        throttles = {f["user/throttle"] for f in Tub(tub.path).iter_fields()}
        assert throttles == {0.33}

    def test_unknown_controller(self, session_factory, tmp_path):
        with pytest.raises(ConfigurationError):
            build_recording_vehicle(
                session_factory(render=False),
                constant_driver,
                Tub.create(tmp_path / "x"),
                controller="thoughts",
            )


class TestAutopilotVehicle:
    def test_pilot_drives(self, session_factory, trained_linear):
        session = session_factory(seed=21)
        v = build_autopilot_vehicle(session, trained_linear)
        v.start(max_loop_count=60)
        assert session.stats.steps == 60
        assert session.stats.mean_speed > 0.1

    def test_local_angle_uses_user_throttle(self, session_factory, trained_linear):
        session = session_factory(seed=22)
        v = build_autopilot_vehicle(
            session, trained_linear, mode="local_angle", user_throttle=0.0
        )
        v.start(max_loop_count=40)
        # Zero user throttle in race mode: the car never accelerates.
        assert session.stats.mean_speed == pytest.approx(0.0, abs=0.02)

    def test_evaluation_recording(self, session_factory, trained_linear, tmp_path):
        session = session_factory(seed=23)
        tub = Tub.create(tmp_path / "eval")
        v = build_autopilot_vehicle(session, trained_linear, tub=tub)
        v.start(max_loop_count=25)
        records = Tub(tub.path)
        assert len(records) == 25
        modes = {f["user/mode"] for f in records.iter_fields()}
        assert modes == {"pilot"}
