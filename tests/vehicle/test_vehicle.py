"""Vehicle loop, memory, and channel wiring."""

import pytest

from repro.common.errors import PartError
from repro.vehicle.memory import Memory
from repro.vehicle.vehicle import Vehicle


class Counter:
    def __init__(self):
        self.value = 0

    def run(self):
        self.value += 1
        return self.value


class Doubler:
    def run(self, x):
        return None if x is None else 2 * x


class TestMemory:
    def test_single_key_scalar(self):
        mem = Memory()
        mem.put(["a"], 5)
        assert mem.get(["a"]) == [5]

    def test_multi_key(self):
        mem = Memory()
        mem.put(["a", "b"], [1, 2])
        assert mem.get(["b", "a"]) == [2, 1]

    def test_missing_reads_none(self):
        assert Memory().get(["ghost"]) == [None]

    def test_mismatched_lengths(self):
        with pytest.raises(PartError):
            Memory().put(["a", "b"], [1])

    def test_mapping_interface(self):
        mem = Memory()
        mem["x"] = 1
        assert "x" in mem
        assert mem["x"] == 1
        assert mem.keys() == ["x"]


class TestVehicleLoop:
    def test_pipeline_order(self):
        v = Vehicle()
        v.add(Counter(), outputs=["count"])
        v.add(Doubler(), inputs=["count"], outputs=["doubled"])
        v.run_once()
        assert v.mem.get(["count", "doubled"]) == [1, 2]

    def test_start_runs_n_ticks(self):
        v = Vehicle()
        counter = Counter()
        v.add(counter, outputs=["count"])
        executed = v.start(rate_hz=20, max_loop_count=7)
        assert executed == 7
        assert counter.value == 7
        assert v.clock.now == pytest.approx(7 / 20)

    def test_stop_channel_ends_drive(self):
        class Stopper:
            def __init__(self):
                self.ticks = 0

            def run(self):
                self.ticks += 1
                return self.ticks >= 3

        v = Vehicle()
        stopper = Stopper()
        v.add(stopper, outputs=["vehicle/stop"])
        executed = v.start(max_loop_count=100)
        assert executed == 3

    def test_run_condition_gates_part(self):
        v = Vehicle()
        counter = Counter()
        v.mem.put(["enabled"], False)
        v.add(counter, outputs=["count"], run_condition="enabled")
        v.run_once()
        assert counter.value == 0
        v.mem.put(["enabled"], True)
        v.run_once()
        assert counter.value == 1

    def test_output_arity_mismatch(self):
        class OneValue:
            def run(self):
                return 1

        v = Vehicle()
        v.add(OneValue(), outputs=["a", "b"])
        with pytest.raises(PartError):
            v.run_once()

    def test_part_exception_wrapped(self):
        class Broken:
            def run(self):
                raise RuntimeError("boom")

        v = Vehicle()
        v.add(Broken())
        with pytest.raises(PartError, match="Broken"):
            v.run_once()

    def test_part_without_run_rejected(self):
        with pytest.raises(PartError):
            Vehicle().add(object())

    def test_shutdown_called(self):
        class WithShutdown:
            closed = False

            def run(self):
                return None

            def shutdown(self):
                self.closed = True

        v = Vehicle()
        part = WithShutdown()
        v.add(part)
        v.start(max_loop_count=1)
        assert part.closed

    def test_run_threaded_preferred(self):
        class Threaded:
            def run(self):  # pragma: no cover - must not be called
                raise AssertionError("run() called instead of run_threaded()")

            def run_threaded(self):
                return 42

        v = Vehicle()
        v.add(Threaded(), outputs=["x"])
        v.run_once()
        assert v.mem["x"] == 42

    def test_invalid_start_args(self):
        v = Vehicle()
        v.add(Counter(), outputs=["c"])
        with pytest.raises(PartError):
            v.start(rate_hz=0)
        with pytest.raises(PartError):
            v.start(max_loop_count=0)
