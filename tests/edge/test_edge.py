"""CHI@Edge: BYOD enrollment, policies, containers, console."""

import pytest

from repro.common.clock import EventScheduler
from repro.common.errors import (
    ContainerError,
    DeviceNotEnrolledError,
    EdgeError,
    PolicyViolationError,
)
from repro.edge.byod import CHIEdge
from repro.edge.containers import AUTOLEARN_IMAGE, ContainerState
from repro.edge.devices import RASPBERRY_PI_3, RASPBERRY_PI_4, DeviceState
from repro.testbed.identity import IdentityProvider


@pytest.fixture()
def env():
    identity = IdentityProvider()
    identity.register_user("prof", "uni", role="instructor")
    identity.register_user("stu", "uni")
    project = identity.create_project("AutoLearn", pi="prof")
    identity.add_member(project.project_id, "stu")
    scheduler = EventScheduler()
    edge = CHIEdge(scheduler, identity)
    session = identity.login("stu", project.project_id)
    return edge, identity, project, session, scheduler


class TestEnrollment:
    def test_full_byod_sequence(self, env):
        edge, _, _, session, scheduler = env
        device = edge.register_device(session, "car-01")
        assert device.state is DeviceState.REGISTERED
        edge.flash_sd_image(device.device_id)
        assert device.state is DeviceState.FLASHED
        edge.boot_device(device.device_id)
        assert device.state is DeviceState.CONNECTED
        assert device.connected_at == scheduler.clock.now

    def test_steps_must_follow_order(self, env):
        edge, _, _, session, _ = env
        device = edge.register_device(session, "car-02")
        with pytest.raises(EdgeError):
            edge.boot_device(device.device_id)  # must flash first
        edge.flash_sd_image(device.device_id)
        with pytest.raises(EdgeError):
            edge.flash_sd_image(device.device_id)  # cannot flash twice

    def test_enroll_shortcut(self, env):
        edge, _, _, session, _ = env
        device = edge.enroll(session, "car-03")
        assert device.state is DeviceState.CONNECTED

    def test_enrollment_charges_time(self, env):
        edge, _, _, session, scheduler = env
        t0 = scheduler.clock.now
        edge.enroll(session, "car-04")
        elapsed = scheduler.clock.now - t0
        spec = RASPBERRY_PI_4
        assert elapsed > spec.sd_flash_s + spec.boot_s

    def test_pi3_slower_than_pi4(self, env):
        edge, _, _, session, scheduler = env
        t0 = scheduler.clock.now
        edge.enroll(session, "pi4", RASPBERRY_PI_4)
        pi4_time = scheduler.clock.now - t0
        t1 = scheduler.clock.now
        edge.enroll(session, "pi3", RASPBERRY_PI_3)
        pi3_time = scheduler.clock.now - t1
        assert pi3_time > pi4_time

    def test_unknown_device(self, env):
        edge, *_ = env
        with pytest.raises(DeviceNotEnrolledError):
            edge.get("dev-9999")


class TestPolicies:
    def test_owner_project_whitelisted_by_default(self, env):
        edge, _, project, session, _ = env
        device = edge.enroll(session, "car-01")
        assert device.allows(project.project_id)

    def test_other_project_denied_until_shared(self, env):
        edge, identity, _, session, _ = env
        device = edge.enroll(session, "car-01")
        other = identity.create_project("Other", pi="prof")
        other_session = identity.login("prof", other.project_id)
        with pytest.raises(PolicyViolationError):
            edge.allocate(other_session, device.device_id)
        edge.share_with(device.device_id, other.project_id)
        assert edge.allocate(other_session, device.device_id).state is DeviceState.RESERVED

    def test_allocation_requires_connected(self, env):
        edge, _, _, session, _ = env
        device = edge.register_device(session, "car-01")
        with pytest.raises(DeviceNotEnrolledError):
            edge.allocate(session, device.device_id)

    def test_release_returns_to_pool(self, env):
        edge, _, _, session, _ = env
        device = edge.enroll(session, "car-01")
        edge.allocate(session, device.device_id)
        edge.release(device.device_id)
        assert device.state is DeviceState.CONNECTED
        assert edge.devices(DeviceState.CONNECTED) == [device]


class TestContainers:
    def test_zero_to_ready_deploy(self, env):
        edge, _, _, session, _ = env
        device = edge.enroll(session, "car-01")
        edge.allocate(session, device.device_id)
        report = edge.launch_container(session, device.device_id)
        assert report.container.state is ContainerState.RUNNING
        # Pull of the ~1.8 GB image over Wi-Fi dominates.
        assert report.total_s > 300.0

    def test_deploy_requires_allocation(self, env):
        edge, _, _, session, _ = env
        device = edge.enroll(session, "car-01")
        with pytest.raises(PolicyViolationError):
            edge.launch_container(session, device.device_id)

    def test_image_cache_makes_second_launch_fast(self, env):
        edge, _, _, session, scheduler = env
        device = edge.enroll(session, "car-01")
        edge.allocate(session, device.device_id)
        first = edge.launch_container(session, device.device_id)
        second = edge.launch_container(session, device.device_id)
        assert second.total_s < first.total_s / 10.0

    def test_console_commands(self, env):
        edge, _, _, session, _ = env
        device = edge.enroll(session, "car-01")
        edge.allocate(session, device.device_id)
        report = edge.launch_container(session, device.device_id)
        cid = report.container.container_id
        assert "data" in edge.engine.console_exec(cid, "ls /car")
        assert "donkey" in edge.engine.console_exec(cid, "donkey --version")

    def test_console_rejects_editors(self, env):
        # The paper's §3.5 limitation, reproduced verbatim.
        edge, _, _, session, _ = env
        device = edge.enroll(session, "car-01")
        edge.allocate(session, device.device_id)
        report = edge.launch_container(session, device.device_id)
        for editor in ("vi", "vim", "nano", "emacs"):
            with pytest.raises(ContainerError, match="text editing"):
                edge.engine.console_exec(
                    report.container.container_id, f"{editor} config.py"
                )

    def test_stopped_container_rejects_exec(self, env):
        edge, _, _, session, _ = env
        device = edge.enroll(session, "car-01")
        edge.allocate(session, device.device_id)
        report = edge.launch_container(session, device.device_id)
        edge.engine.stop(report.container.container_id)
        with pytest.raises(ContainerError):
            edge.engine.console_exec(report.container.container_id, "ls")


class TestDeviceModel:
    def test_inference_latency_scales_with_model(self, env):
        edge, _, _, session, _ = env
        device = edge.enroll(session, "car-01")
        small = device.inference_seconds(1e8)
        large = device.inference_seconds(1e9)
        assert large == pytest.approx(10 * small)

    def test_autolearn_image_has_dependencies(self):
        assert "donkeycar" in AUTOLEARN_IMAGE.software
        assert "jupyter" in AUTOLEARN_IMAGE.software  # Basic Jupyter appliance
