"""Swift-like object store."""

import pytest

from repro.common.errors import (
    NoSuchContainerError,
    NoSuchObjectError,
    ObjectStoreError,
)
from repro.objectstore.store import ObjectStore


@pytest.fixture()
def store():
    return ObjectStore()


class TestContainers:
    def test_create_idempotent(self, store):
        a = store.create_container("datasets")
        b = store.create_container("datasets")
        assert a is b

    def test_invalid_names(self, store):
        with pytest.raises(ObjectStoreError):
            store.create_container("")
        with pytest.raises(ObjectStoreError):
            store.create_container("a/b")

    def test_missing_container(self, store):
        with pytest.raises(NoSuchContainerError):
            store.container("ghost")

    def test_delete_empty_only(self, store):
        container = store.create_container("c")
        container.put("x", b"1")
        with pytest.raises(ObjectStoreError):
            store.delete_container("c")
        store.delete_container("c", force=True)
        assert store.list_containers() == []


class TestObjects:
    def test_put_get_round_trip(self, store):
        container = store.create_container("models")
        container.put("m.npz", b"weights", metadata={"model": "linear"})
        obj = container.get("m.npz")
        assert obj.data == b"weights"
        assert obj.metadata["model"] == "linear"
        assert obj.size == 7

    def test_etag_is_md5(self, store):
        import hashlib

        container = store.create_container("c")
        obj = container.put("x", b"hello")
        assert obj.etag == hashlib.md5(b"hello").hexdigest()

    def test_overwrite_replaces(self, store):
        container = store.create_container("c")
        container.put("x", b"one")
        container.put("x", b"two")
        assert container.get("x").data == b"two"
        assert len(container) == 1

    def test_list_with_prefix(self, store):
        container = store.create_container("c")
        for name in ("sample-oval.tar", "sample-waveshare.tar", "model.npz"):
            container.put(name, b"x")
        assert container.list(prefix="sample-") == [
            "sample-oval.tar",
            "sample-waveshare.tar",
        ]

    def test_delete_object(self, store):
        container = store.create_container("c")
        container.put("x", b"1")
        container.delete("x")
        with pytest.raises(NoSuchObjectError):
            container.get("x")
        with pytest.raises(NoSuchObjectError):
            container.delete("x")

    def test_bytes_used(self, store):
        container = store.create_container("c")
        container.put("a", b"12345")
        container.put("b", b"123")
        assert container.bytes_used == 8

    def test_empty_name_rejected(self, store):
        with pytest.raises(ObjectStoreError):
            store.create_container("c").put("", b"x")


class TestPersistence:
    def test_save_load_round_trip(self, store, tmp_path):
        container = store.create_container("datasets")
        container.put("a/b.tar", b"payload", metadata={"k": "v"})
        store.create_container("models").put("m.npz", b"w")
        store.save_to_dir(tmp_path)
        loaded = ObjectStore.load_from_dir(tmp_path)
        assert loaded.list_containers() == ["datasets", "models"]
        obj = loaded.container("datasets").get("a/b.tar")
        assert obj.data == b"payload"
        assert obj.metadata == {"k": "v"}

    def test_tampered_reload_detected(self, store, tmp_path):
        store.create_container("c").put("x", b"data")
        store.save_to_dir(tmp_path)
        (tmp_path / "c" / "x").write_bytes(b"tampered!")
        with pytest.raises(ObjectStoreError):
            ObjectStore.load_from_dir(tmp_path)
