"""Swift-like object store."""

import pytest

from repro.common.errors import (
    ContainerQuotaError,
    NoSuchContainerError,
    NoSuchObjectError,
    ObjectStoreError,
)
from repro.objectstore.store import ObjectStore


@pytest.fixture()
def store():
    return ObjectStore()


class TestContainers:
    def test_create_idempotent(self, store):
        a = store.create_container("datasets")
        b = store.create_container("datasets")
        assert a is b

    def test_invalid_names(self, store):
        with pytest.raises(ObjectStoreError):
            store.create_container("")
        with pytest.raises(ObjectStoreError):
            store.create_container("a/b")

    def test_missing_container(self, store):
        with pytest.raises(NoSuchContainerError):
            store.container("ghost")

    def test_delete_empty_only(self, store):
        container = store.create_container("c")
        container.put("x", b"1")
        with pytest.raises(ObjectStoreError):
            store.delete_container("c")
        store.delete_container("c", force=True)
        assert store.list_containers() == []


class TestObjects:
    def test_put_get_round_trip(self, store):
        container = store.create_container("models")
        container.put("m.npz", b"weights", metadata={"model": "linear"})
        obj = container.get("m.npz")
        assert obj.data == b"weights"
        assert obj.metadata["model"] == "linear"
        assert obj.size == 7

    def test_etag_is_md5(self, store):
        import hashlib

        container = store.create_container("c")
        obj = container.put("x", b"hello")
        assert obj.etag == hashlib.md5(b"hello").hexdigest()

    def test_overwrite_replaces(self, store):
        container = store.create_container("c")
        container.put("x", b"one")
        container.put("x", b"two")
        assert container.get("x").data == b"two"
        assert len(container) == 1

    def test_list_with_prefix(self, store):
        container = store.create_container("c")
        for name in ("sample-oval.tar", "sample-waveshare.tar", "model.npz"):
            container.put(name, b"x")
        assert container.list(prefix="sample-") == [
            "sample-oval.tar",
            "sample-waveshare.tar",
        ]

    def test_delete_object(self, store):
        container = store.create_container("c")
        container.put("x", b"1")
        container.delete("x")
        with pytest.raises(NoSuchObjectError):
            container.get("x")
        with pytest.raises(NoSuchObjectError):
            container.delete("x")

    def test_bytes_used(self, store):
        container = store.create_container("c")
        container.put("a", b"12345")
        container.put("b", b"123")
        assert container.bytes_used == 8

    def test_empty_name_rejected(self, store):
        with pytest.raises(ObjectStoreError):
            store.create_container("c").put("", b"x")


class TestQuota:
    def test_landing_exactly_on_the_quota_is_allowed(self, store):
        container = store.create_container("small", quota_bytes=10)
        container.put("a", b"x" * 10)  # exactly full: fine
        assert container.bytes_used == 10
        with pytest.raises(ContainerQuotaError):
            container.put("b", b"x")  # one byte over

    def test_overwrite_charges_the_delta_not_the_sum(self, store):
        container = store.create_container("small", quota_bytes=10)
        container.put("a", b"x" * 8)
        # 8 in use, overwriting with 10 nets to exactly the quota.
        container.put("a", b"y" * 10)
        assert container.bytes_used == 10
        assert container.get("a").data == b"y" * 10

    def test_failed_put_leaves_state_unchanged(self, store):
        container = store.create_container("small", quota_bytes=4)
        container.put("a", b"old")
        with pytest.raises(ContainerQuotaError):
            container.put("a", b"toolarge")
        assert container.get("a").data == b"old"
        assert container.bytes_used == 3

    def test_negative_quota_rejected(self, store):
        with pytest.raises(ObjectStoreError):
            store.create_container("bad", quota_bytes=-1)


class TestPersistence:
    def test_save_load_round_trip(self, store, tmp_path):
        container = store.create_container("datasets")
        container.put("a/b.tar", b"payload", metadata={"k": "v"})
        store.create_container("models").put("m.npz", b"w")
        store.save_to_dir(tmp_path)
        loaded = ObjectStore.load_from_dir(tmp_path)
        assert loaded.list_containers() == ["datasets", "models"]
        obj = loaded.container("datasets").get("a/b.tar")
        assert obj.data == b"payload"
        assert obj.metadata == {"k": "v"}

    def test_quota_survives_the_round_trip(self, store, tmp_path):
        store.create_container("capped", quota_bytes=16).put("a", b"x" * 16)
        store.create_container("open").put("b", b"y")
        store.save_to_dir(tmp_path)
        loaded = ObjectStore.load_from_dir(tmp_path)
        capped = loaded.container("capped")
        assert capped.quota_bytes == 16
        assert loaded.container("open").quota_bytes is None
        with pytest.raises(ContainerQuotaError):
            capped.put("c", b"z")  # still full after reload

    def test_tampered_reload_detected(self, store, tmp_path):
        store.create_container("c").put("x", b"data")
        store.save_to_dir(tmp_path)
        (tmp_path / "c" / "x").write_bytes(b"tampered!")
        with pytest.raises(ObjectStoreError):
            ObjectStore.load_from_dir(tmp_path)


class TestStoreResilience:
    def wire(self, store, error_rate=1.0, duration_s=5.0, retry=None,
             breaker_policy=None):
        from repro.common.clock import Clock
        from repro.faults import (
            FaultInjector,
            FaultKind,
            FaultPlan,
            FaultSpec,
        )

        clock = Clock()
        injector = FaultInjector(FaultPlan([
            FaultSpec(FaultKind.STORE_ERROR, "store:models", at_s=0.0,
                      duration_s=duration_s, error_rate=error_rate),
        ]), seed=3)
        store.attach_resilience(
            injector=injector, clock=clock, retry=retry,
            breaker_policy=breaker_policy, seed=3,
        )
        return clock

    def test_transient_errors_surface_without_retry(self, store):
        from repro.common.errors import TransientStoreError

        container = store.create_container("models")
        self.wire(store)
        with pytest.raises(TransientStoreError):
            container.put("weights", b"abc")
        with pytest.raises(ObjectStoreError):
            container.put("weights", b"abc")  # also an ObjectStoreError

    def test_unfaulted_container_is_unaffected(self, store):
        container = store.create_container("datasets")
        self.wire(store)
        container.put("tub", b"records")
        assert container.get("tub").data == b"records"

    def test_retry_rides_out_the_window(self, store):
        from repro.faults import RetryPolicy

        container = store.create_container("models")
        clock = self.wire(store, duration_s=1.0, retry=RetryPolicy(
            base_s=0.4, factor=2.0, cap_s=2.0, max_attempts=6, jitter=0.0,
        ))
        container.put("weights", b"abc")
        assert clock.now >= 1.0  # backoff carried us past the window
        assert container.get("weights").data == b"abc"

    def test_breaker_trips_per_container(self, store):
        from repro.common.errors import CircuitOpenError, TransientStoreError
        from repro.faults import BreakerPolicy, BreakerState

        models = store.create_container("models")
        datasets = store.create_container("datasets")
        self.wire(store, breaker_policy=BreakerPolicy(failure_threshold=2,
                                                      open_s=10.0))
        for _ in range(2):
            with pytest.raises(TransientStoreError):
                models.put("weights", b"abc")
        with pytest.raises(CircuitOpenError):
            models.put("weights", b"abc")
        assert store.breaker_for("models").state is BreakerState.OPEN
        assert store.breaker_for("datasets").state is BreakerState.CLOSED
        datasets.put("tub", b"records")  # the healthy container still serves

    def test_probabilistic_errors_are_seeded(self, store):
        from repro.common.errors import TransientStoreError

        def outcomes():
            fresh = ObjectStore()
            container = fresh.create_container("models")
            self.wire(fresh, error_rate=0.5)
            results = []
            for i in range(30):
                try:
                    container.put(f"obj-{i}", b"x")
                    results.append(True)
                except TransientStoreError:
                    results.append(False)
            return results

        first = outcomes()
        assert first == outcomes()
        assert any(first) and not all(first)

    def test_guard_installed_on_later_containers(self, store):
        from repro.common.errors import TransientStoreError

        self.wire(store)  # resilience attached before the container exists
        container = store.create_container("models")
        with pytest.raises(TransientStoreError):
            container.put("weights", b"abc")
