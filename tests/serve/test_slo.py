"""Streaming histogram accuracy and SLO bookkeeping."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.eventlog import EventLog
from repro.serve.request import Request, RequestStatus
from repro.serve.slo import SloTracker, StreamingHistogram


def completed(i, arrival=0.0, latency=0.010, deadline=1.0):
    request = Request(f"req-{i:04d}", "test", arrival, arrival + deadline)
    request.status = RequestStatus.COMPLETED
    request.completed_s = arrival + latency
    return request


class TestStreamingHistogram:
    def test_percentiles_within_bucket_error(self):
        rng = np.random.default_rng(0)
        samples = rng.lognormal(np.log(0.02), 0.5, 20_000)
        hist = StreamingHistogram()
        for value in samples:
            hist.record(float(value))
        for q in (0.50, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            # Log-spaced buckets at 40/decade -> ~6% relative resolution.
            assert hist.percentile(q) == pytest.approx(exact, rel=0.08)

    def test_mean_and_max_are_exact(self):
        hist = StreamingHistogram()
        for value in (0.001, 0.002, 0.009):
            hist.record(value)
        assert hist.mean_s == pytest.approx(0.004)
        assert hist.max_s == 0.009
        assert hist.count == 3

    def test_empty_histogram(self):
        hist = StreamingHistogram()
        assert hist.percentile(0.95) == 0.0
        assert hist.mean_s == 0.0

    def test_out_of_range_values_still_counted(self):
        hist = StreamingHistogram(low_s=1e-3, high_s=1.0)
        hist.record(1e-6)  # underflow bucket
        hist.record(30.0)  # overflow bucket
        assert hist.count == 2
        assert hist.percentile(1.0) == 30.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingHistogram(low_s=0.0)
        with pytest.raises(ConfigurationError):
            StreamingHistogram().record(-1.0)
        with pytest.raises(ConfigurationError):
            StreamingHistogram().percentile(1.5)


class TestSloTracker:
    def test_counters_and_miss_rate(self):
        tracker = SloTracker()
        on_time = completed(0, latency=0.010, deadline=0.100)
        late = completed(1, latency=0.500, deadline=0.100)
        for request in (on_time, late):
            tracker.record_offered(request, request.arrival_s)
            tracker.record_completion(request, request.completed_s)
        assert tracker.offered == 2 and tracker.completed == 2
        assert tracker.deadline_met == 1
        assert tracker.deadline_miss_rate == pytest.approx(0.5)

    def test_loss_kinds(self):
        tracker = SloTracker()
        for i, kind in enumerate(("drop", "shed", "reject", "expire")):
            request = Request(f"req-{i:04d}", "test", 0.0, 1.0)
            tracker.record_loss(request, kind, 0.0)
        assert (tracker.dropped, tracker.shed, tracker.rejected, tracker.expired) == (
            1,
            1,
            1,
            1,
        )
        assert tracker.losses == 4
        with pytest.raises(ConfigurationError):
            tracker.record_loss(Request("req-x", "test", 0.0, 1.0), "vanish", 0.0)

    def test_window_p95_forgets_old_samples(self):
        tracker = SloTracker(window_s=1.0)
        tracker.record_completion(completed(0, arrival=0.0, latency=0.900), 0.9)
        tracker.record_completion(completed(1, arrival=5.0, latency=0.010), 5.01)
        snap = tracker.snapshot(now=5.5)
        assert snap.window_completions == 1
        assert snap.window_p95_s == pytest.approx(0.010)

    def test_zero_completion_window_snapshot_is_zeroed(self):
        # Regression guard: an autoscaler polling a window with no
        # completions (e.g. every replica hung) must get a well-formed
        # zero snapshot, not a ZeroDivisionError or a stale p95.
        tracker = SloTracker(window_s=1.0)
        snap = tracker.snapshot(now=0.0)
        assert (snap.completed, snap.window_p95_s, snap.window_completions) == (
            0,
            0.0,
            0,
        )
        assert tracker.deadline_miss_rate == 0.0

    def test_window_drained_by_outage_reports_zero_p95(self):
        # Completions happened, then the window emptied out: cumulative
        # counters persist but the windowed view must go back to zero.
        tracker = SloTracker(window_s=1.0)
        tracker.record_completion(completed(0, latency=0.5), 0.5)
        snap = tracker.snapshot(now=10.0)
        assert snap.completed == 1
        assert snap.window_completions == 0
        assert snap.window_p95_s == 0.0

    def test_requeue_is_not_an_outcome(self):
        tracker = SloTracker()
        request = completed(0)
        tracker.record_offered(request, 0.0)
        tracker.record_requeue(request, 0.2)
        tracker.record_requeue(request, 0.4)
        tracker.record_completion(request, request.completed_s)
        assert tracker.requeued == 2
        # Conservation ignores requeues entirely.
        assert tracker.offered == tracker.completed + tracker.losses

    def test_eventlog_mirroring(self):
        log = EventLog()
        tracker = SloTracker(log=log, log_requests=True)
        request = completed(0)
        tracker.record_offered(request, 0.0)
        tracker.record_completion(request, request.completed_s)
        tracker.record_loss(Request("req-0001", "test", 1.0, 2.0), "drop", 1.0)
        kinds = log.group_by_kind()
        assert kinds == {
            "serve.request.offered": 1,
            "serve.request.completed": 1,
            "serve.request.drop": 1,
        }
