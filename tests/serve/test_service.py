"""End-to-end serving: dispatch, completion, determinism, real models."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.eventlog import EventLog
from repro.serve.replica import BatchLatencyModel
from repro.serve.request import Request, RequestStatus, TERMINAL_STATUSES
from repro.serve.service import InferenceService
from repro.serve.workload import PoissonWorkload, VehicleFleetWorkload
from repro.testbed.hardware import GPU_SPECS

GPU_MODEL = BatchLatencyModel.from_gpu(GPU_SPECS["V100"], 1e8)


def make_service(**kw):
    kw.setdefault("seed", 5)
    return InferenceService(GPU_MODEL, **kw)


class TestLifecycle:
    def test_open_loop_run_completes_everything(self, chaos_service):
        service = chaos_service(n_replicas=2)
        summary = service.run(PoissonWorkload(400.0, seed=5), 3.0)
        assert summary.offered > 1000
        assert summary.completed == summary.offered
        assert summary.dropped == summary.expired == 0
        assert all(
            r.status is RequestStatus.COMPLETED for r in service.requests
        )

    def test_every_request_reaches_a_terminal_status(self, chaos_service):
        service = chaos_service(n_replicas=1, queue_capacity=8)
        service.run(PoissonWorkload(3000.0, deadline_s=0.02, seed=5), 1.0)
        assert service.requests
        assert all(r.status in TERMINAL_STATUSES for r in service.requests)
        slo = service.slo
        assert slo.offered == slo.completed + slo.losses

    def test_closed_loop_fleet(self):
        service = make_service(n_replicas=4)
        workload = VehicleFleetWorkload(64, seed=5)
        summary = service.run(workload, 3.0)
        # 64 vehicles at 20 Hz for 3 s: every tick either submits or
        # rides a stale command (one request in flight per vehicle).
        assert workload.ticks == pytest.approx(64 * 20 * 3, abs=64)
        assert summary.offered + summary.stale_ticks == workload.ticks
        assert summary.offered > 1500
        assert summary.deadline_miss_rate < 0.05

    def test_batch_sizes_never_exceed_cap(self):
        log = EventLog()
        service = make_service(n_replicas=1, max_batch=8, log=log)
        service.run(PoissonWorkload(2000.0, seed=5), 1.0)
        sizes = [
            e.payload["size"] for e in log.filter(kind="serve.batch.dispatch")
        ]
        assert sizes and max(sizes) <= 8

    def test_overload_sheds_with_shed_policy(self):
        service = make_service(
            n_replicas=1, queue_capacity=16, queue_policy="shed",
            batch_policy="single",
        )
        summary = service.run(
            PoissonWorkload(2000.0, deadline_s=0.05, seed=5), 1.0
        )
        assert summary.shed > 0

    def test_backpressure_rejects_instead_of_dropping(self):
        service = make_service(
            n_replicas=1, queue_capacity=16, queue_policy="backpressure",
            batch_policy="single",
        )
        summary = service.run(
            PoissonWorkload(2000.0, deadline_s=0.05, seed=5), 1.0
        )
        assert summary.rejected > 0 and summary.dropped == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_service(n_replicas=0)
        with pytest.raises(ConfigurationError):
            make_service().run(PoissonWorkload(10.0, seed=0), 0.0)


class TestDeterminism:
    def run_once(self, **kw):
        service = make_service(n_replicas=4, batch_policy="adaptive", **kw)
        return service.run(VehicleFleetWorkload(128, seed=5), 4.0)

    def test_same_seed_byte_identical_summary(self):
        assert self.run_once().to_text() == self.run_once().to_text()

    def test_same_seed_identical_event_trace(self):
        def trace():
            log = EventLog()
            service = make_service(n_replicas=2, log=log, log_requests=True)
            service.run(PoissonWorkload(300.0, seed=9), 2.0)
            return [
                (e.time, e.kind, e.subject, e.actor, tuple(sorted(e.payload)))
                for e in log
            ]

        assert trace() == trace()

    def test_different_seed_differs(self):
        a = make_service(n_replicas=2, seed=1).run(
            PoissonWorkload(300.0, seed=1), 2.0
        )
        b = make_service(n_replicas=2, seed=2).run(
            PoissonWorkload(300.0, seed=2), 2.0
        )
        assert a.to_text() != b.to_text()

    def test_summary_dict_round_trip(self):
        summary = self.run_once()
        payload = summary.to_dict()
        assert payload["offered"] == summary.offered
        assert payload["batch_policy"] == "adaptive"


class TestBatchingWins:
    def saturate(self, policy):
        service = make_service(
            n_replicas=1, batch_policy=policy, queue_capacity=64
        )
        return service.run(
            PoissonWorkload(1500.0, deadline_s=0.1, seed=5), 2.0
        )

    def test_adaptive_throughput_beats_single(self):
        single = self.saturate("single")
        adaptive = self.saturate("adaptive")
        # The acceptance bar: >= 3x measured throughput at saturating load.
        assert adaptive.throughput_hz >= 3 * single.throughput_hz
        assert adaptive.mean_batch > 4.0

    def test_adaptive_meets_deadlines_under_load(self):
        adaptive = self.saturate("adaptive")
        assert adaptive.deadline_miss_rate < 0.05


class TestRealModelServing:
    def test_commands_match_direct_prediction(self, trained_linear):
        h, w, _ = trained_linear.input_shape
        service = make_service(
            n_replicas=2, model=trained_linear, keep_requests=True
        )
        workload = PoissonWorkload(
            60.0, deadline_s=0.2, seed=5, frame_shape=(h, w, 3)
        )
        summary = service.run(workload, 1.0)
        assert summary.completed > 20
        completed = [
            r for r in service.requests
            if r.status is RequestStatus.COMPLETED
        ]
        frames = np.stack([r.frame for r in completed])
        expected = trained_linear.predict_frames(frames)
        got = np.array([[r.angle, r.throttle] for r in completed])
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-6)

    def test_model_requires_frames(self, trained_linear):
        service = make_service(model=trained_linear)
        with pytest.raises(ConfigurationError):
            service.run(PoissonWorkload(10.0, seed=0), 1.0)
