"""Admission queues: bounded capacity, policies, expiry, ordering."""

import pytest

from repro.common.errors import ConfigurationError
from repro.serve.queueing import AdmissionPolicy, AdmissionQueue
from repro.serve.request import Request, RequestStatus


def req(i, priority=0, arrival=0.0, deadline=10.0):
    return Request(
        request_id=f"req-{i:04d}",
        source="test",
        arrival_s=arrival,
        deadline_s=deadline,
        priority=priority,
    )


class TestAdmission:
    def test_admits_until_capacity(self):
        queue = AdmissionQueue(3)
        for i in range(3):
            admitted, displaced = queue.offer(req(i), now=0.0)
            assert admitted and displaced is None
        assert queue.depth == 3

    def test_drop_policy_rejects_newest(self):
        queue = AdmissionQueue(1, "drop")
        queue.offer(req(0), 0.0)
        late = req(1)
        admitted, displaced = queue.offer(late, 0.0)
        assert not admitted and displaced is None
        assert late.status is RequestStatus.DROPPED
        assert queue.depth == 1

    def test_backpressure_policy_marks_rejected(self):
        queue = AdmissionQueue(1, "backpressure")
        queue.offer(req(0), 0.0)
        late = req(1)
        admitted, _ = queue.offer(late, 0.0)
        assert not admitted
        assert late.status is RequestStatus.REJECTED

    def test_shed_displaces_oldest_least_important(self):
        queue = AdmissionQueue(2, "shed")
        old_low = req(0, priority=5)
        old_high = req(1, priority=0)
        queue.offer(old_low, 0.0)
        queue.offer(old_high, 0.0)
        fresh = req(2, priority=0)
        admitted, displaced = queue.offer(fresh, 1.0)
        assert admitted
        assert displaced is old_low
        assert displaced.status is RequestStatus.DROPPED
        assert queue.depth == 2

    def test_shed_refuses_when_everything_outranks(self):
        queue = AdmissionQueue(1, "shed")
        queue.offer(req(0, priority=0), 0.0)
        lowly = req(1, priority=9)
        admitted, displaced = queue.offer(lowly, 0.0)
        assert not admitted and displaced is None
        assert lowly.status is RequestStatus.DROPPED

    def test_admission_stamps_time_and_status(self):
        queue = AdmissionQueue(4)
        request = req(0)
        queue.offer(request, 3.25)
        assert request.status is RequestStatus.QUEUED
        assert request.admitted_s == 3.25


class TestServiceOrder:
    def test_fifo_within_priority_class(self):
        queue = AdmissionQueue(10)
        for i in range(5):
            queue.offer(req(i), float(i))
        batch = queue.pop(5)
        assert [r.request_id for r in batch] == [f"req-{i:04d}" for i in range(5)]

    def test_priority_classes_pop_important_first(self):
        queue = AdmissionQueue(10)
        queue.offer(req(0, priority=2), 0.0)
        queue.offer(req(1, priority=0), 0.0)
        queue.offer(req(2, priority=1), 0.0)
        batch = queue.pop(3)
        assert [r.priority for r in batch] == [0, 1, 2]

    def test_pop_respects_limit(self):
        queue = AdmissionQueue(10)
        for i in range(6):
            queue.offer(req(i), 0.0)
        assert len(queue.pop(4)) == 4
        assert queue.depth == 2

    def test_expire_removes_past_deadline(self):
        queue = AdmissionQueue(10)
        fresh = req(0, deadline=5.0)
        stale = req(1, deadline=1.0)
        queue.offer(fresh, 0.0)
        queue.offer(stale, 0.0)
        expired = queue.expire(now=2.0)
        assert expired == [stale]
        assert stale.status is RequestStatus.EXPIRED
        assert queue.depth == 1

    def test_oldest_and_earliest_queries(self):
        queue = AdmissionQueue(10)
        assert queue.oldest_admitted_s() == float("inf")
        assert queue.earliest_deadline_s() == float("inf")
        queue.offer(req(0, deadline=9.0), 1.0)
        queue.offer(req(1, deadline=4.0), 2.0)
        assert queue.oldest_admitted_s() == 1.0
        assert queue.earliest_deadline_s() == 4.0


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(0)

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(4, "teleport")

    def test_enum_policy_accepted(self):
        assert AdmissionQueue(4, AdmissionPolicy.SHED).policy is AdmissionPolicy.SHED

    def test_pop_limit_validated(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(4).pop(0)
