"""Replica latency models, lifecycle, and routing policies."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, ReplicaStateError
from repro.edge.devices import RASPBERRY_PI_4
from repro.net.links import Link
from repro.net.topology import autolearn_topology
from repro.serve.batcher import make_batcher
from repro.serve.queueing import AdmissionQueue
from repro.serve.replica import BatchLatencyModel, Replica, ReplicaState
from repro.serve.request import Request
from repro.serve.router import (
    ROUTER_NAMES,
    LatencyEwmaRouter,
    make_router,
)
from repro.testbed.hardware import GPU_SPECS


def make_replica(rid="replica-0001", jitter=0.0, route=None):
    return Replica(
        rid,
        BatchLatencyModel(0.005, 0.0001, jitter=jitter),
        AdmissionQueue(16),
        make_batcher("adaptive"),
        rng=7,
        route=route,
    )


def req(i=0):
    return Request(f"req-{i:04d}", "test", 0.0, 1.0)


class TestBatchLatencyModel:
    def test_affine_law(self):
        model = BatchLatencyModel(0.005, 0.0001)
        assert model.mean_latency(1) == pytest.approx(0.0051)
        assert model.mean_latency(32) == pytest.approx(0.005 + 32 * 0.0001)

    def test_zero_jitter_samples_are_exact(self):
        model = BatchLatencyModel(0.005, 0.0001)
        assert model.sample(3, 8) == model.mean_latency(8)

    def test_jitter_preserves_mean(self):
        model = BatchLatencyModel(0.005, 0.0001, jitter=0.1)
        rng = np.random.default_rng(0)
        samples = [model.sample(rng, 8) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(model.mean_latency(8), rel=0.02)

    def test_gpu_throughput_amortises_overhead(self):
        model = BatchLatencyModel.from_gpu(GPU_SPECS["V100"], 1e8)
        # Batch 32 must beat batch 1 by a wide margin on a GPU: the
        # launch overhead is paid once per batch, not once per frame.
        assert model.throughput_hz(32) > 10 * model.throughput_hz(1)

    def test_edge_device_gains_little_from_batching(self):
        model = BatchLatencyModel.from_device(RASPBERRY_PI_4, 1e8)
        assert model.throughput_hz(32) < 2 * model.throughput_hz(1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchLatencyModel(-0.001, 0.0001)
        with pytest.raises(ConfigurationError):
            BatchLatencyModel(0.001, 0.0)
        with pytest.raises(ConfigurationError):
            BatchLatencyModel(0.001, 0.0001).mean_latency(0)
        with pytest.raises(ConfigurationError):
            BatchLatencyModel.from_gpu(GPU_SPECS["V100"], 0.0)


class TestReplicaLifecycle:
    def test_starts_provisioning_then_ready(self):
        replica = make_replica()
        assert replica.state is ReplicaState.PROVISIONING
        assert not replica.routable
        replica.mark_ready(2.0)
        assert replica.routable and replica.ready_at == 2.0

    def test_cannot_serve_while_provisioning(self):
        with pytest.raises(ReplicaStateError):
            make_replica().sample_batch_latency(1)

    def test_cannot_ready_twice(self):
        replica = make_replica()
        replica.mark_ready(0.0)
        with pytest.raises(ReplicaStateError):
            replica.mark_ready(1.0)

    def test_drain_then_retire(self):
        replica = make_replica()
        replica.mark_ready(0.0)
        replica.drain()
        assert not replica.routable
        replica.retire()
        assert replica.state is ReplicaState.RETIRED

    def test_retire_refuses_with_queued_work(self):
        replica = make_replica()
        replica.mark_ready(0.0)
        replica.queue.offer(req(), 0.0)
        with pytest.raises(ReplicaStateError):
            replica.retire()

    def test_load_counts_queue_and_inflight(self):
        replica = make_replica()
        replica.mark_ready(0.0)
        replica.queue.offer(req(0), 0.0)
        replica.inflight = (req(1), req(2))
        assert replica.load == 3


class TestReplicaNetwork:
    def test_routed_replica_pays_rtt_and_wire_time(self):
        route = autolearn_topology().route("car-pi", "chi-uc")
        near = make_replica("replica-0001")
        far = make_replica("replica-0002", route=route)
        near.mark_ready(0.0)
        far.mark_ready(0.0)
        assert far.expected_latency(8) > near.expected_latency(8) + route.base_rtt_s

    def test_wire_time_scales_with_batch(self):
        slow_wan = autolearn_topology(
            wan=Link("wan-slow", 0.02, 0.0, 5e6)
        ).route("car-pi", "chi-uc")
        replica = make_replica(route=slow_wan)
        gap = replica.expected_latency(32) - replica.expected_latency(1)
        assert gap > 31 * 0.0001  # more than pure compute growth


class TestRouters:
    def replicas(self, n=3):
        out = []
        for i in range(n):
            replica = make_replica(f"replica-{i + 1:04d}")
            replica.mark_ready(0.0)
            out.append(replica)
        return out

    def test_round_robin_cycles(self):
        router = make_router("round-robin")
        fleet = self.replicas(3)
        picks = [router.route(fleet, req(i), 0.0).replica_id for i in range(6)]
        assert picks == [f"replica-{i:04d}" for i in (1, 2, 3, 1, 2, 3)]

    def test_least_outstanding_prefers_idle(self):
        router = make_router("least-outstanding")
        fleet = self.replicas(2)
        fleet[0].queue.offer(req(0), 0.0)
        assert router.route(fleet, req(1), 0.0) is fleet[1]

    def test_latency_ewma_explores_then_exploits(self):
        router = LatencyEwmaRouter()
        fleet = self.replicas(2)
        assert router.route(fleet, req(0), 0.0) is fleet[0]
        router.observe_batch(fleet[0], 0.050)
        assert router.route(fleet, req(1), 0.0) is fleet[1]  # unseen first
        router.observe_batch(fleet[1], 0.005)
        assert router.route(fleet, req(2), 0.0) is fleet[1]  # fastest wins

    def test_empty_fleet_routes_none(self):
        for name in ROUTER_NAMES:
            assert make_router(name).route([], req(), 0.0) is None

    def test_unknown_router(self):
        with pytest.raises(ConfigurationError):
            make_router("oracle")
