"""Workload generators: rates, determinism, closed-loop backpressure."""

import pytest

from repro.common.clock import EventScheduler
from repro.common.errors import ConfigurationError
from repro.serve.workload import PoissonWorkload, VehicleFleetWorkload


class RecordingService:
    """Minimal service stand-in: accepts everything, optionally replies."""

    def __init__(self, respond=None):
        self.scheduler = EventScheduler()
        self.requests = []
        self._respond = respond

    def submit(self, request):
        self.requests.append(request)
        if self._respond is not None:
            self._respond(request)
        return True


class TestPoissonWorkload:
    def run(self, rate=200.0, seed=3, duration=5.0):
        service = RecordingService()
        workload = PoissonWorkload(rate, seed=seed)
        workload.start(service, duration)
        service.scheduler.run_until(duration)
        return service, workload

    def test_rate_approximately_honoured(self):
        service, workload = self.run(rate=200.0, duration=5.0)
        assert workload.submitted == len(service.requests)
        assert 800 <= workload.submitted <= 1200  # ~1000 expected

    def test_same_seed_same_trace(self):
        service_a, _ = self.run(seed=11)
        service_b, _ = self.run(seed=11)
        trace_a = [(r.request_id, r.arrival_s) for r in service_a.requests]
        trace_b = [(r.request_id, r.arrival_s) for r in service_b.requests]
        assert trace_a == trace_b

    def test_different_seeds_differ(self):
        service_a, _ = self.run(seed=1)
        service_b, _ = self.run(seed=2)
        assert [r.arrival_s for r in service_a.requests] != [
            r.arrival_s for r in service_b.requests
        ]

    def test_deadlines_are_relative(self):
        service, _ = self.run()
        for request in service.requests:
            assert request.deadline_s == pytest.approx(request.arrival_s + 0.1)

    def test_frame_pool(self):
        service = RecordingService()
        workload = PoissonWorkload(100.0, seed=0, frame_shape=(8, 10, 3))
        assert workload.provides_frames
        workload.start(service, 1.0)
        service.scheduler.run_until(1.0)
        assert all(
            r.frame is not None and r.frame.shape == (8, 10, 3)
            for r in service.requests
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonWorkload(0.0)
        with pytest.raises(ConfigurationError):
            PoissonWorkload(10.0, deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            PoissonWorkload(10.0, frame_shape=(8, 10))


class TestVehicleFleetWorkload:
    def test_tick_rate_per_vehicle(self):
        workload = VehicleFleetWorkload(10, dt=0.05, seed=0)
        service = RecordingService(respond=workload.on_response)
        workload.start(service, 2.0)
        service.scheduler.run_until(2.0)
        # 10 vehicles x ~40 ticks in 2 s, responses instant -> all submit.
        assert 350 <= workload.submitted <= 400
        assert workload.stale_ticks == 0
        sources = {r.source for r in service.requests}
        assert sources == {f"veh-{i:04d}" for i in range(10)}

    def test_max_one_outstanding_per_vehicle(self):
        service = RecordingService()
        workload = VehicleFleetWorkload(4, dt=0.05, seed=0)
        workload.start(service, 1.0)
        service.scheduler.run_until(1.0)  # nothing ever responds
        # Each vehicle submits exactly once, then rides stale commands.
        per_vehicle = {}
        for request in service.requests:
            per_vehicle[request.source] = per_vehicle.get(request.source, 0) + 1
        assert set(per_vehicle.values()) == {1}
        assert workload.stale_ticks > 0

    def test_response_reopens_the_slot(self):
        service = RecordingService()
        workload = VehicleFleetWorkload(1, dt=0.05, seed=0)
        workload.start(service, 0.30)
        service.scheduler.run_until(0.06)
        assert workload.submitted == 1
        workload.on_response(service.requests[0])
        service.scheduler.run_until(0.30)
        assert workload.submitted > 1

    def test_loss_also_reopens_the_slot(self):
        service = RecordingService()
        workload = VehicleFleetWorkload(1, dt=0.05, seed=0)
        workload.start(service, 0.30)
        service.scheduler.run_until(0.06)
        workload.on_loss(service.requests[0])
        service.scheduler.run_until(0.30)
        assert workload.submitted > 1

    def test_phases_are_staggered_and_deterministic(self):
        make = lambda: VehicleFleetWorkload(8, dt=0.05, seed=9)  # noqa: E731
        assert make()._phases == make()._phases
        assert len(set(make()._phases)) == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VehicleFleetWorkload(0)
        with pytest.raises(ConfigurationError):
            VehicleFleetWorkload(4, dt=0.0)
        with pytest.raises(ConfigurationError):
            VehicleFleetWorkload(4, deadline_ticks=0)
