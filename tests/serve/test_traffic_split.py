"""Traffic-split routing and per-replica model-version pinning."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.ml.models.factory import create_model
from repro.serve.batcher import make_batcher
from repro.serve.queueing import AdmissionQueue
from repro.serve.replica import BatchLatencyModel, Replica
from repro.serve.request import Request
from repro.serve.router import (
    ROUTER_NAMES,
    TrafficSplitRouter,
    make_router,
)
from repro.serve.service import InferenceService
from repro.testbed.hardware import GPU_SPECS

GPU_MODEL = BatchLatencyModel.from_gpu(GPU_SPECS["V100"], 1e8)


def make_replica(rid, version=""):
    replica = Replica(
        rid,
        BatchLatencyModel(0.005, 0.0001),
        AdmissionQueue(16),
        make_batcher("adaptive"),
        rng=7,
        model_version=version,
    )
    replica.mark_ready(0.0)
    return replica


def req(i=0, pin=""):
    return Request(f"req-{i:04d}", "test", 0.0, 1.0, pin_version=pin)


class TestTrafficSplit:
    def fleet(self):
        return [
            make_replica("replica-0001", "v001"),
            make_replica("replica-0002", "v001"),
            make_replica("replica-0003", "v002"),
        ]

    def test_realised_split_tracks_weights(self):
        router = TrafficSplitRouter({"v001": 0.7, "v002": 0.3})
        fleet = self.fleet()
        sent = {"v001": 0, "v002": 0}
        for i in range(1, 101):
            choice = router.route(fleet, req(i), 0.0)
            sent[choice.model_version] += 1
            # Deficit routing keeps every prefix within one request of
            # the configured split, not just the final tally.
            assert abs(sent["v001"] - 0.7 * i) <= 1.0
        assert sent == {"v001": 70, "v002": 30}

    def test_split_is_deterministic(self):
        picks = []
        for _ in range(2):
            router = TrafficSplitRouter({"v001": 0.5, "v002": 0.5})
            fleet = self.fleet()
            picks.append(
                [router.route(fleet, req(i), 0.0).replica_id for i in range(20)]
            )
        assert picks[0] == picks[1]

    def test_pinned_requests_only_reach_their_version(self):
        router = TrafficSplitRouter({"v001": 1.0})
        fleet = self.fleet()
        for i in range(8):
            choice = router.route(fleet, req(i, pin="v002"), 0.0)
            assert choice.model_version == "v002"
        # A pin with no live replica is lost, never rerouted.
        assert router.route(fleet, req(9, pin="v009"), 0.0) is None

    def test_failover_when_no_weighted_version_is_live(self):
        """Every canary crashed: unpinned traffic falls back to the
        whole fleet instead of dropping."""
        router = TrafficSplitRouter({"v009": 1.0})
        fleet = self.fleet()
        assert router.route(fleet, req(), 0.0) in fleet

    def test_set_weights_resets_the_deficit(self):
        router = TrafficSplitRouter({"v001": 1.0})
        fleet = self.fleet()
        for i in range(10):
            router.route(fleet, req(i), 0.0)
        router.set_weights({"v002": 1.0})
        assert router.route(fleet, req(11), 0.0).model_version == "v002"
        with pytest.raises(ConfigurationError):
            router.set_weights({})
        with pytest.raises(ConfigurationError):
            router.set_weights({"v001": 0.0})

    def test_weight_validation(self):
        with pytest.raises(ConfigurationError):
            TrafficSplitRouter({})
        with pytest.raises(ConfigurationError):
            TrafficSplitRouter({"v001": -0.1})
        with pytest.raises(ConfigurationError):
            TrafficSplitRouter({"v001": 0.0, "v002": 0.0})

    def test_registered_with_make_router(self):
        assert "traffic-split" in ROUTER_NAMES
        router = make_router("traffic-split")
        assert isinstance(router, TrafficSplitRouter)
        assert router.weights == {"": 1.0}


class TestReplicaPinning:
    def make_service(self, model_a, model_b):
        service = InferenceService(
            GPU_MODEL,
            model=model_a,
            model_version="v001",
            n_replicas=1,
            router=TrafficSplitRouter({"v001": 1.0}),
            batch_policy="single",
            seed=3,
        )
        service.add_replica(model=model_b, model_version="v002")
        return service

    def test_version_of(self):
        model_a = create_model("linear", input_shape=(8, 8, 3), seed=0)
        model_b = create_model("linear", input_shape=(8, 8, 3), seed=9)
        service = self.make_service(model_a, model_b)
        assert service.version_of("replica-0001") == "v001"
        assert service.version_of("replica-0002") == "v002"
        with pytest.raises(ConfigurationError):
            service.version_of("replica-0404")

    def test_pinned_replica_serves_its_own_model(self):
        model_a = create_model("linear", input_shape=(8, 8, 3), seed=0)
        model_b = create_model("linear", input_shape=(8, 8, 3), seed=9)
        service = self.make_service(model_a, model_b)
        frame = np.random.default_rng(0).integers(
            0, 256, size=(8, 8, 3), dtype=np.uint8
        ).astype(np.uint8)
        stable = Request("req-0001", "t", 0.0, 5.0, frame=frame, pin_version="v001")
        canary = Request("req-0002", "t", 0.0, 5.0, frame=frame, pin_version="v002")
        assert service.submit(stable) and service.submit(canary)
        service.scheduler.run_all()
        batch = frame[np.newaxis]
        want_a = float(model_a.predict_frames(batch)[0][0])
        want_b = float(model_b.predict_frames(batch)[0][0])
        assert stable.angle == pytest.approx(want_a)
        assert canary.angle == pytest.approx(want_b)
        assert stable.angle != canary.angle
