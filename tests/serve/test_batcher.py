"""Micro-batching decisions: policies, caps, waits, adaptivity."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.serve.batcher import BATCH_POLICIES, MicroBatcher, make_batcher


def decide(batcher, depth, now=0.0, oldest=0.0, deadline=10.0, expected=0.01):
    return batcher.decide(
        depth=depth,
        now=now,
        oldest_admitted_s=oldest,
        earliest_deadline_s=deadline,
        expected_latency_s=expected,
    )


class TestPolicies:
    def test_empty_queue_always_waits(self):
        for policy in BATCH_POLICIES:
            decision = decide(make_batcher(policy), 0)
            assert decision.size == 0 and math.isinf(decision.wake_at)

    def test_single_always_fires_one(self):
        batcher = make_batcher("single")
        assert batcher.max_batch == 1
        assert decide(batcher, 7).size == 1

    def test_size_policy_fires_backlog_up_to_cap(self):
        batcher = make_batcher("size", max_batch=8)
        assert decide(batcher, 3).size == 3
        assert decide(batcher, 20).size == 8

    def test_wait_policy_holds_until_window(self):
        batcher = make_batcher("wait", max_batch=8, max_wait_s=0.010)
        early = decide(batcher, 3, now=0.004, oldest=0.0)
        assert early.size == 0
        assert early.wake_at == pytest.approx(0.010)
        due = decide(batcher, 3, now=0.011, oldest=0.0)
        assert due.size == 3

    def test_wait_policy_full_batch_fires_immediately(self):
        batcher = make_batcher("wait", max_batch=4, max_wait_s=1.0)
        assert decide(batcher, 4, now=0.0).size == 4

    def test_adaptive_fires_when_deadline_slack_is_gone(self):
        batcher = make_batcher("adaptive", max_batch=32)
        # Deadline at 0.020, expected latency 0.015, margin 0.001 -> no slack.
        decision = decide(batcher, 5, now=0.005, deadline=0.020, expected=0.015)
        assert decision.size == 5

    def test_adaptive_waits_while_slack_remains(self):
        batcher = make_batcher("adaptive", max_batch=32)
        decision = decide(batcher, 5, now=0.0, deadline=0.100, expected=0.010)
        assert decision.size == 0
        assert 0.0 < decision.wake_at <= 0.100

    def test_adaptive_wait_bounded_by_fill_estimate(self):
        batcher = make_batcher("adaptive", max_batch=4, max_wait_s=1.0)
        # 1 kHz arrivals: 2 open slots should fill in ~2 ms, so do not
        # wait anywhere near the full deadline slack.
        for t in range(5):
            batcher.observe_arrival(t * 0.001)
        decision = decide(batcher, 2, now=0.004, deadline=1.0, expected=0.001)
        assert decision.size == 0
        assert decision.wake_at - 0.004 <= 0.002 + 1e-9


class TestRateEstimator:
    def test_rate_tracks_interarrival_gaps(self):
        batcher = make_batcher("adaptive")
        assert batcher.arrival_rate_hz == 0.0
        for t in range(10):
            batcher.observe_arrival(t * 0.01)
        assert batcher.arrival_rate_hz == pytest.approx(100.0, rel=0.01)


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(policy="psychic")

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_wait_s=-1.0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(ewma_alpha=0.0)
