"""Reactive autoscaling: watermarks, provisioning lag, cooldown."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.eventlog import EventLog
from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.replica import BatchLatencyModel
from repro.serve.service import InferenceService
from repro.serve.workload import PoissonWorkload

FAST = BatchLatencyModel(0.005, 0.0001)  # GPU-like: batches amortise
SLOW = BatchLatencyModel(0.002, 0.010)  # 10 ms/frame: one replica drowns


def run(rate, policy, latency_model=SLOW, duration=6.0, **service_kw):
    log = EventLog()
    service = InferenceService(
        latency_model,
        n_replicas=policy.min_replicas,
        seed=5,
        log=log,
        **service_kw,
    )
    autoscaler = Autoscaler(service, policy)
    workload = PoissonWorkload(rate, deadline_s=0.5, seed=5)
    summary = service.run(workload, duration, autoscaler=autoscaler)
    return summary, autoscaler, service, log


class TestScaleUp:
    def test_overload_adds_replicas(self):
        policy = AutoscalePolicy(
            min_replicas=1, max_replicas=4, queue_high=4.0,
            provision_delay_s=0.5, cooldown_s=1.0,
        )
        summary, autoscaler, service, log = run(rate=300.0, policy=policy)
        assert autoscaler.scale_ups >= 1
        assert summary.scale_ups == autoscaler.scale_ups
        assert len(log.filter(kind="serve.scale.up")) == autoscaler.scale_ups
        assert len(service.replicas) > 1

    def test_max_replicas_is_a_hard_cap(self):
        policy = AutoscalePolicy(
            min_replicas=1, max_replicas=2, queue_high=2.0,
            provision_delay_s=0.1, cooldown_s=0.0,
        )
        _, _, service, _ = run(rate=400.0, policy=policy)
        assert len(service.replicas) <= 2

    def test_provisioning_lag_delays_capacity(self):
        policy = AutoscalePolicy(
            min_replicas=1, max_replicas=4, queue_high=2.0,
            provision_delay_s=1.0, cooldown_s=0.5,
        )
        _, _, service, log = run(rate=300.0, policy=policy)
        ready = log.filter(kind="serve.replica.ready")
        ups = log.filter(kind="serve.scale.up")
        assert ready and ups
        # A replica becomes routable one provisioning delay after the
        # scale-up decision that created it.
        assert ready[0].time == pytest.approx(ups[0].time + 1.0)

    def test_cooldown_throttles_consecutive_ups(self):
        eager = AutoscalePolicy(
            min_replicas=1, max_replicas=8, queue_high=1.0,
            provision_delay_s=2.0, cooldown_s=0.0, interval_s=0.25,
        )
        cautious = AutoscalePolicy(
            min_replicas=1, max_replicas=8, queue_high=1.0,
            provision_delay_s=2.0, cooldown_s=2.0, interval_s=0.25,
        )
        _, eager_scaler, _, _ = run(rate=300.0, policy=eager)
        _, cautious_scaler, _, _ = run(rate=300.0, policy=cautious)
        assert cautious_scaler.scale_ups < eager_scaler.scale_ups


class TestScaleDown:
    def test_quiet_fleet_drains_to_min(self):
        policy = AutoscalePolicy(
            min_replicas=1, max_replicas=4, queue_low=0.5,
            provision_delay_s=0.1, cooldown_s=0.5, p95_target_s=10.0,
        )
        # Trickle load on a fast fleet of 2: scale-down should trigger.
        log = EventLog()
        service = InferenceService(FAST, n_replicas=2, seed=5, log=log)
        autoscaler = Autoscaler(service, policy)
        workload = PoissonWorkload(5.0, deadline_s=0.5, seed=5)
        service.run(workload, 8.0, autoscaler=autoscaler)
        assert autoscaler.scale_downs >= 1
        assert len(service.routable_replicas()) >= policy.min_replicas
        assert log.filter(kind="serve.scale.down")

    def test_never_below_min_replicas(self):
        policy = AutoscalePolicy(
            min_replicas=2, max_replicas=4, queue_low=1.0,
            provision_delay_s=0.1, cooldown_s=0.0, p95_target_s=10.0,
        )
        service = InferenceService(FAST, n_replicas=2, seed=5)
        autoscaler = Autoscaler(service, policy)
        workload = PoissonWorkload(5.0, deadline_s=0.5, seed=5)
        service.run(workload, 6.0, autoscaler=autoscaler)
        assert autoscaler.scale_downs == 0
        assert len(service.routable_replicas()) == 2


class TestPolicyValidation:
    def test_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_replicas=0)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_replicas=4, max_replicas=2)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(interval_s=0.0)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(queue_high=0.2, queue_low=0.5)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(p95_target_s=0.0)
