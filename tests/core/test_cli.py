"""The autolearn CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("tracks", "collect", "clean", "train", "evaluate",
                        "pipeline"):
            args = {
                "tracks": [],
                "collect": ["/tmp/x"],
                "clean": ["/tmp/x"],
                "train": ["/tmp/x", "/tmp/m.npz"],
                "evaluate": ["/tmp/m.npz"],
                "pipeline": ["digital"],
            }[command]
            parsed = parser.parse_args([command, *args])
            assert parsed.command == command


class TestCommands:
    def test_tracks(self, capsys):
        assert main(["tracks"]) == 0
        out = capsys.readouterr().out
        assert "default-tape-oval" in out
        assert "waveshare" in out

    def test_collect_clean_train_evaluate(self, tmp_path, capsys):
        tub = str(tmp_path / "tub")
        model = str(tmp_path / "m.npz")
        assert main([
            "collect", tub, "--records", "300", "--seed", "3",
            "--camera", "40x56", "--skill", "0.6",
        ]) == 0
        assert "collected 300 records" in capsys.readouterr().out

        assert main(["clean", tub, "--dry-run"]) == 0
        assert main(["clean", tub]) == 0
        out = capsys.readouterr().out
        assert "marked" in out

        assert main([
            "train", tub, model, "--model", "linear", "--epochs", "2",
            "--scale", "0.25",
        ]) == 0
        assert "val loss" in capsys.readouterr().out

        assert main(["evaluate", model, "--ticks", "100"]) == 0
        out = capsys.readouterr().out
        assert "mean speed" in out
        assert "laps" in out
