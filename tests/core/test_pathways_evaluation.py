"""Learning pathways, assignments, and on-track evaluation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.evaluation import EvaluationReport, evaluate_model
from repro.core.pathways import (
    ASSIGNMENTS,
    PATHWAYS,
    LearningPathway,
    assignments_for_level,
    pathway,
)
from repro.sim.renderer import CameraParams

from tests.conftest import TEST_H, TEST_W


class TestPathways:
    def test_three_published_pathways(self):
        assert set(PATHWAYS) == {"regular", "classroom", "digital"}

    def test_regular_needs_everything(self):
        regular = pathway("regular")
        assert regular.needs_car and regular.needs_testbed
        assert regular.stages == ("physical", "cloud-gpu", "physical")

    def test_digital_is_self_contained(self):
        digital = pathway("digital")
        assert not digital.needs_car and not digital.needs_testbed
        assert digital.audience == "self-learner"

    def test_classroom_has_no_car(self):
        classroom = pathway("classroom")
        assert not classroom.needs_car
        assert classroom.collection == "sample"

    def test_unknown_pathway(self):
        with pytest.raises(ConfigurationError):
            pathway("weekend")

    def test_invalid_alternative_rejected(self):
        with pytest.raises(ConfigurationError):
            LearningPathway(
                name="bad", collection="telepathy", training="local",
                evaluation="simulator", audience="student",
                needs_car=False, needs_testbed=False,
            )


class TestAssignments:
    def test_catalog_covers_paper_extensions(self):
        keys = {a.key for a in ASSIGNMENTS}
        for expected in (
            "new-track", "tubclean", "model-comparison", "race", "gps-path",
            "vision", "edge-cloud-inference", "reinforcement-learning",
            "digital-twin",
        ):
            assert expected in keys

    def test_levels_partition(self):
        total = sum(
            len(assignments_for_level(level))
            for level in ("beginner", "intermediate", "advanced")
        )
        assert total == len(ASSIGNMENTS)

    def test_each_assignment_names_modules(self):
        for assignment in ASSIGNMENTS:
            assert assignment.modules, assignment.key
            for module in assignment.modules:
                assert module.startswith("repro.")

    def test_unknown_level(self):
        with pytest.raises(ConfigurationError):
            assignments_for_level("impossible")


class TestEvaluation:
    def test_trained_model_evaluates(self, trained_linear, oval_track):
        report = evaluate_model(
            trained_linear, oval_track, ticks=300, seed=9,
            camera=CameraParams(height=TEST_H, width=TEST_W),
        )
        assert isinstance(report, EvaluationReport)
        assert report.ticks == 300
        assert report.mean_speed > 0.2
        assert report.sim_seconds == pytest.approx(300 / 20.0)

    def test_combined_score_penalises_errors(self):
        clean = EvaluationReport(
            model_name="a", ticks=600, sim_seconds=30.0, laps=3,
            mean_lap_time=9.0, lap_time_std=0.1, mean_speed=1.2,
            errors=0, mean_abs_cte=0.05, distance=36.0,
        )
        crashy = EvaluationReport(
            model_name="b", ticks=600, sim_seconds=30.0, laps=3,
            mean_lap_time=9.0, lap_time_std=0.1, mean_speed=1.2,
            errors=6, mean_abs_cte=0.05, distance=36.0,
        )
        assert clean.combined_score() > crashy.combined_score()
        assert clean.errors_per_lap == 0.0
        assert crashy.errors_per_lap == 2.0

    def test_errors_per_lap_no_laps(self):
        report = EvaluationReport(
            model_name="x", ticks=10, sim_seconds=0.5, laps=0,
            mean_lap_time=0.0, lap_time_std=0.0, mean_speed=0.1,
            errors=1, mean_abs_cte=0.2, distance=0.1,
        )
        assert report.errors_per_lap == float("inf")

    def test_invalid_ticks(self, trained_linear, oval_track):
        with pytest.raises(ConfigurationError):
            evaluate_model(trained_linear, oval_track, ticks=0)

    def test_race_mode_evaluation(self, trained_linear, oval_track):
        report = evaluate_model(
            trained_linear, oval_track, ticks=200, seed=10,
            camera=CameraParams(height=TEST_H, width=TEST_W),
            mode="local_angle", user_throttle=0.4,
        )
        assert report.mean_speed > 0.0
