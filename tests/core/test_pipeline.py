"""The full AutoLearn pipeline (Fig. 1) per pathway."""

import pytest

from repro.core.pipeline import AutoLearnPipeline
from repro.testbed.leases import LeaseState

from tests.conftest import TEST_H, TEST_W

FAST = dict(
    n_records=400,
    epochs=3,
    camera_hw=(TEST_H, TEST_W),
    model_scale=0.3,
    eval_ticks=150,
)


@pytest.fixture(scope="module")
def digital_report(tmp_path_factory):
    pipe = AutoLearnPipeline(
        "digital", tmp_path_factory.mktemp("digital"), seed=2, **FAST
    )
    return pipe.run(), pipe


class TestDigitalPathway:
    def test_all_stages_present(self, digital_report):
        report, _ = digital_report
        stages = [s.stage for s in report.stages]
        assert stages == [
            "setup", "collection", "cleaning", "training", "deployment",
            "evaluation",
        ]

    def test_collection_used_simulator(self, digital_report):
        report, _ = digital_report
        assert report.stage("collection").alternative == "simulator"
        assert report.stage("collection").details["records"] == 400

    def test_training_local(self, digital_report):
        report, _ = digital_report
        training = report.stage("training")
        assert training.alternative == "local"
        assert "laptop_seconds" in training.details
        assert training.details["best_val_loss"] < 0.2

    def test_model_stored(self, digital_report):
        report, pipe = digital_report
        container = pipe.chameleon.object_store.container("models")
        assert container.list() == ["digital-linear.npz"]

    def test_evaluation_produced(self, digital_report):
        report, _ = digital_report
        assert report.evaluation is not None
        assert report.evaluation.ticks == 150
        assert report.total_sim_seconds > 0

    def test_stage_lookup_error(self, digital_report):
        report, _ = digital_report
        with pytest.raises(KeyError):
            report.stage("nonexistent")


class TestClassroomPathway:
    def test_sample_data_and_cloud_gpu(self, tmp_path):
        pipe = AutoLearnPipeline("classroom", tmp_path, seed=3, **FAST)
        report = pipe.run()
        assert report.stage("collection").alternative == "sample"
        training = report.stage("training")
        assert training.alternative == "cloud-gpu"
        assert training.details["gpu"] == "V100"
        assert training.details["gpu_seconds"] > 0
        # The lease was terminated after training (refund path).
        leases = pipe.chameleon.leases.leases_for_project(
            report.stage("setup").details["project"]
        )
        assert any(l.state is LeaseState.TERMINATED for l in leases)

    def test_sample_datasets_published_once(self, tmp_path):
        pipe = AutoLearnPipeline("classroom", tmp_path, seed=3, **FAST)
        pipe.run()
        container = pipe.chameleon.object_store.container("sample-datasets")
        assert len(container.list()) == 1


class TestRegularPathway:
    def test_full_edge_to_cloud_loop(self, tmp_path):
        pipe = AutoLearnPipeline("regular", tmp_path, seed=4, **FAST)
        report = pipe.run()
        setup = report.stage("setup")
        assert "device" in setup.details
        assert setup.details["container_deploy_s"] > 0
        assert report.stage("collection").alternative == "physical"
        # Model deployed to the car over the network.
        deploy = report.stage("deployment")
        assert deploy.details["scp_seconds"] > 0
        assert report.evaluation is not None

    def test_regular_costs_more_student_time(self, tmp_path, digital_report):
        digital, _ = digital_report
        pipe = AutoLearnPipeline("regular", tmp_path, seed=4, **FAST)
        regular = pipe.run()
        assert regular.total_sim_seconds > digital.total_sim_seconds
