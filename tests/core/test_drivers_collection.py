"""Scripted drivers and the three collection paths (Fig. 2)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.collection import (
    collect_sample_dataset,
    collect_via_physical_car,
    collect_via_simulator,
    generate_sample_datasets,
)
from repro.core.drivers import PurePursuitDriver, ReplayDriver, StudentDriver
from repro.net.topology import autolearn_topology
from repro.objectstore.store import ObjectStore

from tests.conftest import TEST_H, TEST_W


class TestPurePursuit:
    def test_expert_laps_cleanly(self, session_factory):
        session = session_factory(render=False)
        driver = PurePursuitDriver(session)
        obs = session.reset()
        for _ in range(600):
            s, t = driver(obs.image, obs.cte, obs.speed)
            obs = session.step(s, t)
        assert session.stats.laps_completed >= 2
        assert session.stats.crashes == 0
        assert session.stats.mean_abs_cte < 0.08

    def test_slows_for_corners(self, session_factory):
        session = session_factory(render=False)
        driver = PurePursuitDriver(session, target_speed=3.0)
        # Straight (s near quarter lap on the bottom straight) vs corner.
        straight_target = driver.speed_target(0.3)
        corner_s = session.track.length * 0.25
        corner_target = driver.speed_target(corner_s)
        assert corner_target < straight_target

    def test_validation(self, session_factory):
        with pytest.raises(ConfigurationError):
            PurePursuitDriver(session_factory(render=False), target_speed=0.0)


class TestStudentDriver:
    def test_low_skill_crashes_more(self, session_factory):
        def crashes(skill, seed):
            session = session_factory(render=False, seed=seed)
            driver = StudentDriver(
                PurePursuitDriver(session), skill=skill, rng=seed
            )
            obs = session.reset()
            for _ in range(500):
                s, t = driver(obs.image, obs.cte, obs.speed)
                obs = session.step(s, t)
            return session.stats.crashes

        sloppy = sum(crashes(0.15, seed) for seed in (1, 2, 3))
        skilled = sum(crashes(0.95, seed) for seed in (1, 2, 3))
        assert sloppy > skilled

    def test_skill_bounds(self, session_factory):
        session = session_factory(render=False)
        with pytest.raises(ConfigurationError):
            StudentDriver(PurePursuitDriver(session), skill=1.5)

    def test_commands_clipped(self, session_factory):
        session = session_factory(render=False)
        driver = StudentDriver(PurePursuitDriver(session), skill=0.0, rng=0)
        obs = session.reset()
        for _ in range(100):
            s, t = driver(obs.image, obs.cte, obs.speed)
            assert -1.0 <= s <= 1.0
            assert 0.0 <= t <= 1.0
            obs = session.step(s, t)


class TestReplayDriver:
    def test_replays_and_loops(self):
        driver = ReplayDriver([(0.1, 0.5), (0.2, 0.6)])
        frames = [driver(None, 0, 0) for _ in range(5)]
        assert frames == [(0.1, 0.5), (0.2, 0.6), (0.1, 0.5), (0.2, 0.6), (0.1, 0.5)]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplayDriver([])


class TestCollectionPaths:
    def test_simulator_path(self, oval_track, tmp_path):
        report = collect_via_simulator(
            oval_track, tmp_path / "sim", n_records=150,
            camera_hw=(TEST_H, TEST_W), seed=3,
        )
        assert report.path == "simulator"
        assert report.records == 150
        assert report.wall_seconds == pytest.approx(150 / 20.0)
        assert report.records_per_minute == pytest.approx(1200.0)

    def test_physical_path_includes_transfer(self, oval_track, tmp_path):
        route = autolearn_topology().route("car-pi", "chi-uc")
        report = collect_via_physical_car(
            oval_track, tmp_path / "car", route_to_cloud=route,
            n_records=150, camera_hw=(TEST_H, TEST_W), seed=3,
        )
        assert report.path == "physical"
        assert report.transfer is not None
        assert report.transfer.seconds > 0
        # Transfer time makes the physical path slower per record.
        assert report.wall_seconds > 150 / 20.0

    def test_physical_uses_web_controller_latency(self, oval_track, tmp_path):
        route = autolearn_topology().route("car-pi", "chi-uc")
        phys = collect_via_physical_car(
            oval_track, tmp_path / "p", route_to_cloud=route, n_records=20,
            camera_hw=(TEST_H, TEST_W), skill=1.0, seed=5,
        )
        sim = collect_via_simulator(
            oval_track, tmp_path / "s", n_records=20,
            camera_hw=(TEST_H, TEST_W), skill=1.0, seed=5,
        )
        # The web controller's two in-flight ticks record neutral
        # commands at the start of the physical tub; the joystick path
        # records live commands immediately.
        phys_first = [f["user/throttle"] for f in phys.tub.iter_fields()][:2]
        sim_first = [f["user/throttle"] for f in sim.tub.iter_fields()][:2]
        assert phys_first == [0.0, 0.0]
        assert any(t != 0.0 for t in sim_first)

    def test_sample_path_round_trip(self, oval_track, tmp_path):
        store = ObjectStore()
        published = generate_sample_datasets(
            store, [oval_track], tmp_path / "publish", n_records=120,
            camera_hw=(TEST_H, TEST_W),
        )
        assert published[oval_track.name] == 120
        report = collect_sample_dataset(
            store, oval_track.name, tmp_path / "download",
            route=autolearn_topology().route("laptop", "chi-uc"),
        )
        assert report.path == "sample"
        assert report.records == 120
        # Downloading is much faster than driving 120 records.
        assert report.wall_seconds < 120 / 20.0

    def test_invalid_record_count(self, oval_track, tmp_path):
        with pytest.raises(ConfigurationError):
            collect_via_simulator(oval_track, tmp_path / "x", n_records=0)
