"""Property-based invariants for the serving subsystem.

Conservation (no request lost or double-served), FIFO within a
priority class, batch-size caps, and seed determinism must hold for
*any* workload shape — hypothesis drives the parameter space.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve.queueing import AdmissionQueue
from repro.serve.replica import BatchLatencyModel
from repro.serve.request import Request, RequestStatus, TERMINAL_STATUSES
from repro.serve.service import InferenceService
from repro.serve.workload import PoissonWorkload

LATENCY = BatchLatencyModel(0.004, 0.0002)

SLOW_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_service(seed, rate, capacity, policy, batch_policy, replicas):
    service = InferenceService(
        LATENCY,
        n_replicas=replicas,
        batch_policy=batch_policy,
        queue_capacity=capacity,
        queue_policy=policy,
        seed=seed,
        keep_requests=True,
    )
    service.run(PoissonWorkload(rate, deadline_s=0.05, seed=seed), 1.0)
    return service


service_params = {
    "seed": st.integers(0, 2**16),
    "rate": st.floats(50.0, 3000.0),
    "capacity": st.integers(1, 64),
    "policy": st.sampled_from(["drop", "shed", "backpressure"]),
    "batch_policy": st.sampled_from(["single", "size", "wait", "adaptive"]),
    "replicas": st.integers(1, 4),
}


class TestConservation:
    @SLOW_SETTINGS
    @given(**service_params)
    def test_no_request_lost_or_double_served(
        self, seed, rate, capacity, policy, batch_policy, replicas
    ):
        service = run_service(
            seed, rate, capacity, policy, batch_policy, replicas
        )
        # Every submitted request ends in exactly one terminal status...
        assert all(
            r.status in TERMINAL_STATUSES for r in service.requests
        )
        # ...and the SLO ledger balances against the request list.
        by_status = Counter(r.status for r in service.requests)
        slo = service.slo
        assert slo.offered == len(service.requests)
        assert slo.completed == by_status[RequestStatus.COMPLETED]
        assert slo.offered == slo.completed + slo.losses
        # No double service: completed requests belong to exactly one batch.
        completed = [
            r for r in service.requests if r.status is RequestStatus.COMPLETED
        ]
        assert all(r.batch_id for r in completed)
        served = sum(replica.served for replica in service.replicas)
        assert served == len(completed)

    @SLOW_SETTINGS
    @given(**service_params)
    def test_batches_never_exceed_cap(
        self, seed, rate, capacity, policy, batch_policy, replicas
    ):
        service = run_service(
            seed, rate, capacity, policy, batch_policy, replicas
        )
        sizes = Counter(
            r.batch_id
            for r in service.requests
            if r.status is RequestStatus.COMPLETED
        )
        cap = 1 if batch_policy == "single" else 32
        assert all(size <= cap for size in sizes.values())


class TestFifoWithinPriority:
    @settings(max_examples=30, deadline=None)
    @given(
        priorities=st.lists(st.integers(0, 2), min_size=1, max_size=30),
        limit=st.integers(1, 30),
    )
    def test_pop_preserves_arrival_order_per_class(self, priorities, limit):
        queue = AdmissionQueue(capacity=64)
        for i, priority in enumerate(priorities):
            queue.offer(
                Request(f"req-{i:04d}", "test", float(i), 100.0, priority),
                float(i),
            )
        popped = queue.pop(limit)
        for priority in set(r.priority for r in popped):
            klass = [r.admitted_s for r in popped if r.priority == priority]
            assert klass == sorted(klass)

    @SLOW_SETTINGS
    @given(**service_params)
    def test_dispatch_order_fifo_within_class(
        self, seed, rate, capacity, policy, batch_policy, replicas
    ):
        service = run_service(
            seed, rate, capacity, policy, batch_policy, replicas
        )
        # Per replica and priority class, dispatch order follows admission.
        per_key = {}
        completed = [
            r for r in service.requests if r.status is RequestStatus.COMPLETED
        ]
        for request in sorted(
            completed, key=lambda r: (r.dispatched_s, r.batch_id)
        ):
            per_key.setdefault(
                (request.replica_id, request.priority), []
            ).append(request.admitted_s)
        for admissions in per_key.values():
            assert admissions == sorted(admissions)


class TestSeedDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_identical_seeds_identical_traces(self, seed):
        def trace():
            service = run_service(seed, 500.0, 32, "drop", "adaptive", 2)
            return [
                (r.request_id, r.status.value, r.completed_s, r.batch_id)
                for r in service.requests
            ]

        assert trace() == trace()


@pytest.mark.parametrize("jitter", [0.0, 0.1])
def test_latency_model_sample_positive(jitter):
    model = BatchLatencyModel(0.005, 0.0001, jitter=jitter)
    assert model.sample(0, 16) > 0.0
