"""Property-based invariants for the discrete-event scheduler.

The scheduler contract — timestamp order, FIFO within an instant,
``pending`` equal to a brute-force live count, compaction never
dropping or reordering live events, same-seed-same-firing-sequence —
must hold for *any* interleaving of schedule / cancel / run calls;
hypothesis drives the interleavings.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import EventScheduler

# Coarse delays force plenty of same-instant collisions (FIFO stress).
DELAYS = st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0])

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), DELAYS),
        st.tuples(st.just("cancel"), st.integers(0, 1_000_000)),
        st.tuples(st.just("reschedule"), st.integers(0, 1_000_000), DELAYS),
        st.tuples(st.just("run"), DELAYS),
    ),
    max_size=120,
)


def interpret(sched, ops, fired):
    """Apply ``ops`` against ``sched`` next to a brute-force model.

    The model gives every (re)scheduled incarnation an ``order`` stamp
    mirroring the scheduler's ``seq``, so FIFO-within-instant covers
    rescheduled events too.  Returns the model and the firing sequence
    a correct scheduler must produce.
    """
    model = []
    expected = []
    order = [0]

    def stamp():
        order[0] += 1
        return order[0]

    for op in ops:
        kind = op[0]
        if kind == "schedule":
            at = sched.clock.now + op[1]
            eid = len(model)
            event = sched.schedule_at(at, lambda eid=eid: fired.append(eid))
            model.append(
                {"time": at, "id": eid, "order": stamp(), "event": event,
                 "fired": False, "cancelled": False}
            )
        elif kind == "cancel":
            if model:
                entry = model[op[1] % len(model)]
                entry["event"].cancel()
                if not entry["fired"]:
                    entry["cancelled"] = True
        elif kind == "reschedule":
            if model:
                entry = model[op[1] % len(model)]
                at = sched.clock.now + op[2]
                entry["event"] = sched.reschedule(entry["event"], at)
                entry.update(time=at, order=stamp(), fired=False, cancelled=False)
        else:  # run
            target = sched.clock.now + op[1]
            sched.run_until(target)
            due = sorted(
                (e for e in model
                 if not e["fired"] and not e["cancelled"] and e["time"] <= target),
                key=lambda e: (e["time"], e["order"]),
            )
            for entry in due:
                entry["fired"] = True
                expected.append(entry["id"])
        live = sum(1 for e in model if not e["fired"] and not e["cancelled"])
        assert sched.pending == live, "pending diverged from brute-force count"
    return model, expected


@settings(max_examples=120, deadline=None)
@given(ops=OPS)
def test_interleaved_ops_match_brute_force(ops):
    sched = EventScheduler()
    fired = []
    _, expected = interpret(sched, ops, fired)
    assert fired == expected


@settings(max_examples=120, deadline=None)
@given(ops=OPS)
def test_aggressive_compaction_changes_nothing(ops):
    """A scheduler compacting on every cancel fires the same sequence."""
    relaxed, eager = EventScheduler(), EventScheduler()
    eager._COMPACT_FLOOR = 0  # instance override: compact constantly
    fired_relaxed, fired_eager = [], []
    interpret(relaxed, ops, fired_relaxed)
    interpret(eager, ops, fired_eager)
    assert fired_relaxed == fired_eager
    assert relaxed.pending == eager.pending
    assert relaxed.clock.now == eager.clock.now


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 150),
    cancel_fraction=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**16),
)
def test_cancel_heavy_drain_preserves_live_order(n, cancel_fraction, seed):
    """However many events die, the survivors fire in (time, seq) order."""
    rng = random.Random(seed)
    sched = EventScheduler()
    sched._COMPACT_FLOOR = 4  # make compaction routine, not rare
    fired = []
    events = []
    for i in range(n):
        at = rng.choice([0.0, 1.0, 1.0, 2.0, 3.0])
        events.append((sched.schedule_at(at, lambda i=i: fired.append(i)), at, i))
    victims = {i for _, _, i in events if rng.random() < cancel_fraction}
    for event, _, i in events:
        if i in victims:
            event.cancel()
    sched.run_all()
    survivors = [(at, i) for _, at, i in events if i not in victims]
    assert fired == [i for _, i in sorted(survivors)]
    assert sched.pending == 0


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 40),
    seed=st.integers(0, 2**16),
    floor=st.sampled_from([0, 1, 4]),
)
def test_callback_driven_cancels_never_double_fire(n, seed, floor):
    """Cancels issued *inside* callbacks (compacting mid-drain) deliver
    every live event exactly once — the watchdog-rotation pattern
    serve's batcher uses."""
    rng = random.Random(seed)
    sched = EventScheduler()
    sched._COMPACT_FLOOR = floor
    fired = []
    watchdogs = {}

    def tick(v, remaining):
        fired.append(v)
        old = watchdogs.get(v)
        if old is not None:
            old.cancel()
        watchdogs[v] = sched.schedule_in(100.0, lambda: None)
        if remaining:
            sched.schedule_in(rng.choice([0.0, 0.5, 1.0]),
                              lambda: tick(v, remaining - 1))

    beats = {v: rng.randint(1, 6) for v in range(n)}
    for v, remaining in beats.items():
        sched.schedule_in(rng.choice([0.0, 0.5]), lambda v=v, r=remaining: tick(v, r))
    sched.run_until(50.0)
    from collections import Counter

    counts = Counter(fired)
    assert counts == Counter({v: r + 1 for v, r in beats.items()})
    assert sched.pending == len(watchdogs)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_same_seed_same_firing_sequence(seed):
    """One seeded workload, two schedulers: identical firing sequences,
    including callbacks that schedule and cancel further events."""

    def run_once():
        rng = random.Random(seed)
        sched = EventScheduler()
        fired = []
        cancellable = []

        def tick(tag):
            fired.append((sched.clock.now, tag))
            if rng.random() < 0.6:
                child = sched.schedule_in(
                    rng.choice([0.0, 0.25, 1.0]), lambda t=tag * 31: tick(t)
                )
                cancellable.append(child)
            if cancellable and rng.random() < 0.4:
                cancellable.pop(rng.randrange(len(cancellable))).cancel()

        for i in range(20):
            sched.schedule_at(rng.choice([0.0, 1.0, 2.0]), lambda i=i: tick(i))
        sched.run_all(max_events=5000)
        return fired

    assert run_once() == run_once()
