"""Property-based invariants for the fault/resilience layer.

Backoff schedules must be monotone and capped for *any* policy, a
circuit breaker must never jump OPEN -> CLOSED without a half-open
probe, and crash requeues must preserve deadline order for *any*
deadline mix — hypothesis drives the parameter space.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.eventlog import EventLog
from repro.faults.breaker import BreakerPolicy, BreakerState, CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy
from repro.serve.replica import BatchLatencyModel
from repro.serve.request import Request
from repro.serve.service import InferenceService

SLOW_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRetryPolicyProps:
    @settings(max_examples=100, deadline=None)
    @given(
        base_s=st.floats(1e-3, 2.0),
        factor=st.floats(1.0, 4.0),
        cap_mult=st.floats(1.0, 100.0),
        max_attempts=st.integers(1, 12),
    )
    def test_schedule_monotone_nondecreasing_and_capped(
        self, base_s, factor, cap_mult, max_attempts
    ):
        policy = RetryPolicy(
            base_s=base_s, factor=factor, cap_s=base_s * cap_mult,
            max_attempts=max_attempts, jitter=0.0,
        )
        schedule = policy.schedule()
        assert len(schedule) == max_attempts - 1
        assert all(a <= b for a, b in zip(schedule, schedule[1:]))
        assert all(base_s <= delay <= policy.cap_s for delay in schedule)

    @settings(max_examples=50, deadline=None)
    @given(
        jitter=st.floats(0.0, 1.0),
        attempt=st.integers(0, 8),
        seed=st.integers(0, 2**16),
    )
    def test_jittered_backoff_stays_within_bounds(self, jitter, attempt, seed):
        policy = RetryPolicy(base_s=0.1, factor=2.0, cap_s=5.0,
                             max_attempts=10, jitter=jitter)
        raw = min(policy.cap_s, policy.base_s * policy.factor**attempt)
        delay = policy.backoff_s(attempt, rng=seed)
        assert raw <= delay <= raw * (1.0 + jitter) + 1e-12


breaker_ops = st.lists(
    st.tuples(
        st.sampled_from(["failure", "success", "allow", "trip", "peek"]),
        st.floats(0.0, 2.0),
    ),
    max_size=60,
)


class TestBreakerProps:
    @settings(max_examples=100, deadline=None)
    @given(
        ops=breaker_ops,
        threshold=st.integers(1, 4),
        open_s=st.floats(0.1, 3.0),
        probes=st.integers(1, 3),
    )
    def test_closed_is_only_reachable_through_half_open(
        self, ops, threshold, open_s, probes
    ):
        breaker = CircuitBreaker(BreakerPolicy(
            failure_threshold=threshold, open_s=open_s,
            half_open_probes=probes,
        ))
        now = 0.0
        for op, dt in ops:
            now += dt
            if op == "failure":
                breaker.record_failure(now)
            elif op == "success":
                breaker.record_success(now)
            elif op == "allow":
                breaker.allow(now)
            elif op == "trip":
                breaker.trip(now)
            else:
                breaker.peek(now)
        for _, frm, to in breaker.transitions:
            assert (frm, to) != (BreakerState.OPEN, BreakerState.CLOSED)
            if to is BreakerState.CLOSED:
                assert frm is BreakerState.HALF_OPEN

    @settings(max_examples=100, deadline=None)
    @given(ops=breaker_ops)
    def test_peek_agrees_with_allow_and_mutates_nothing(self, ops):
        breaker = CircuitBreaker(CircuitBreaker().policy)
        now = 0.0
        for op, dt in ops:
            now += dt
            peeked = breaker.peek(now)
            state = breaker.state
            assert breaker.peek(now) == peeked  # stable under repetition
            assert breaker.state is state
            if op == "failure":
                breaker.record_failure(now)
            elif op == "success":
                breaker.record_success(now)
            elif op == "allow":
                assert breaker.allow(now) == peeked
            elif op == "trip":
                breaker.trip(now)


class TestRequeueProps:
    @SLOW_SETTINGS
    @given(
        deadlines=st.lists(st.floats(0.5, 50.0), min_size=2, max_size=20),
        seed=st.integers(0, 2**16),
    )
    def test_requeues_never_violate_deadline_order(self, deadlines, seed):
        log = EventLog()
        plan = FaultPlan([
            FaultSpec(FaultKind.REPLICA_CRASH, "replica-0001", at_s=0.05)
        ])
        service = InferenceService(
            BatchLatencyModel(0.2, 0.01, jitter=0.0),
            n_replicas=1, batch_policy="single", queue_capacity=64,
            seed=seed, injector=FaultInjector(plan, seed=seed),
            log=log, log_requests=True, keep_requests=True,
        )
        for i, deadline in enumerate(deadlines):
            service.submit(Request(f"req-{i:06d}", "test", 0.0, deadline))
        service.scheduler.run_all()
        assert service.crashes == 1
        requeued = [
            e.payload["deadline_s"]
            for e in log.filter(kind="serve.request.requeue")
        ]
        assert requeued, "the crash must orphan the queued requests"
        assert requeued == sorted(requeued)
