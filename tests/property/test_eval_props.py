"""Property-based invariants for the evaluation harness.

The spec algebra (merge associativity, override-wins), the scorecard
determinism contract (same seed → same bytes; instrumentation on/off
does not move a metric), and the cross-track-error geometry (non-
negative, monotone under added lateral disturbance) must hold for *any*
input — hypothesis drives the space.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.eval.library import MATRIX_BASE
from repro.eval.metrics import trajectory_cte
from repro.eval.runner import run_scenario
from repro.eval.scorecard import Evaluator
from repro.eval.spec import merge_overrides
from repro.sim.tracks import default_tape_oval

SLOW_SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Dot paths over a small alphabet (so maps collide often) in which no
#: path is a strict prefix of another — composition never rejects.
paths = st.sampled_from(
    ["a.b", "a.c", "b.x", "b.y.z", "c", "d.e", "d.f"]
)
values = st.one_of(
    st.integers(-5, 5), st.booleans(), st.text(max_size=3), st.none()
)
override_maps = st.dictionaries(paths, values, max_size=4)


class TestSpecAlgebra:
    @given(a=override_maps, b=override_maps, c=override_maps)
    def test_merge_is_associative(self, a, b, c):
        flat = merge_overrides(a, b, c)
        left = merge_overrides(merge_overrides(a, b), c)
        right = merge_overrides(a, merge_overrides(b, c))
        assert left == right == flat

    @given(a=override_maps, b=override_maps)
    def test_later_override_wins(self, a, b):
        merged = merge_overrides(a, b)
        for key, value in b.items():
            assert merged[key] == value
        for key, value in a.items():
            if key not in b:
                assert merged[key] == value

    @given(a=override_maps)
    def test_merge_is_idempotent(self, a):
        once = merge_overrides(a)
        assert merge_overrides(once, once) == once

    def test_conflicts_reject_in_every_association_order(self):
        """A prefix conflict is rejected however the merge is grouped,
        so error behavior is associativity-preserving too."""
        a, b, c = {"a": 1}, {"a.b": 2}, {"c": 3}
        for grouping in (
            lambda: merge_overrides(a, b, c),
            lambda: merge_overrides(merge_overrides(a, c), b),
            lambda: merge_overrides(a, merge_overrides(b, c)),
        ):
            with pytest.raises(ConfigurationError, match="prefix"):
                grouping()


# One fast serving cell: half a simulated second, 8 closed-loop
# vehicles.  Small enough for hypothesis to run it repeatedly.
FAST_SPEC = MATRIX_BASE.with_overrides(
    {"duration_s": 0.5, "workload.n_vehicles": 8}, name="props-fast"
)


class TestScorecardDeterminism:
    @SLOW_SETTINGS
    @given(seed=st.integers(0, 2**16))
    def test_same_seed_same_scorecard_bytes(self, seed):
        first = Evaluator().evaluate(run_scenario(FAST_SPEC, seed=seed))
        second = Evaluator().evaluate(run_scenario(FAST_SPEC, seed=seed))
        assert first.to_json() == second.to_json()

    @SLOW_SETTINGS
    @given(seed=st.integers(0, 2**16))
    def test_metrics_invariant_under_instrumentation(self, seed):
        traced = Evaluator().evaluate(
            run_scenario(FAST_SPEC, seed=seed, instrument=True)
        )
        bare = Evaluator().evaluate(
            run_scenario(FAST_SPEC, seed=seed, instrument=False)
        )
        assert traced.to_json() == bare.to_json()


TRACK = default_tape_oval()


class TestCrossTrackError:
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 24))
    def test_cte_non_negative_and_bounded_by_offset(self, seed, n):
        rng = ensure_rng(seed)
        s = rng.uniform(0.0, TRACK.length, n)
        offsets = rng.uniform(0.0, TRACK.half_width * 0.9, n)
        points = [
            TRACK.pose_at(float(si), float(di))[:2]
            for si, di in zip(s, offsets)
        ]
        cte = np.abs(trajectory_cte(TRACK, points))
        assert np.all(cte >= 0.0)
        assert np.all(cte <= offsets + 1e-9)

    @given(seed=st.integers(0, 2**16))
    def test_mean_cte_monotone_under_added_disturbance(self, seed):
        """Scaling the same lateral disturbance up never shrinks the
        mean unsigned cross-track error."""
        rng = ensure_rng(seed)
        n = 32
        s = rng.uniform(0.0, TRACK.length, n)
        base = rng.uniform(0.0, TRACK.half_width * 0.9, n)
        means = []
        for scale in (0.25, 0.5, 1.0):
            points = [
                TRACK.pose_at(float(si), float(scale * di))[:2]
                for si, di in zip(s, base)
            ]
            means.append(float(np.mean(np.abs(trajectory_cte(TRACK, points)))))
        assert means[0] <= means[1] + 1e-6
        assert means[1] <= means[2] + 1e-6

    def test_points_shape_is_validated(self):
        with pytest.raises(ConfigurationError, match="N x 2"):
            trajectory_cte(TRACK, np.zeros((3, 3)))
