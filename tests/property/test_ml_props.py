"""Property-based tests for the ML framework invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.datasets import linear_bin, linear_unbin
from repro.ml.layers import Activation, Dense
from repro.ml.losses import categorical_crossentropy, huber, mae, mse
from repro.ml.network import Sequential
from repro.ml.optimizers import Adam, SGD

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def batch(shape):
    return arrays(np.float64, shape, elements=finite_floats)


class TestLossProperties:
    @given(pred=batch((4, 3)), target=batch((4, 3)))
    @settings(max_examples=60, deadline=None)
    def test_losses_nonnegative_and_zero_at_target(self, pred, target):
        for loss in (mse, mae, huber):
            value, grad = loss(pred, target)
            assert value >= 0.0
            assert np.isfinite(grad).all()
            zero, zgrad = loss(target, target)
            assert zero == 0.0
            assert np.allclose(zgrad, 0.0)

    @given(pred=batch((4, 3)), target=batch((4, 3)))
    @settings(max_examples=60, deadline=None)
    def test_mse_symmetry(self, pred, target):
        a, _ = mse(pred, target)
        b, _ = mse(target, pred)
        assert a == b

    @given(logits=batch((5, 4)), labels=st.lists(st.integers(0, 3), min_size=5, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_crossentropy_nonnegative_on_softmax(self, logits, labels):
        act = Activation("softmax")
        probs = act.forward(logits.astype(np.float32))
        onehot = np.zeros((5, 4))
        onehot[np.arange(5), labels] = 1.0
        value, grad = categorical_crossentropy(probs, onehot)
        assert value >= 0.0
        # Fused gradient rows sum to zero (probability simplex tangent).
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-6)


class TestBinning:
    @given(values=st.lists(st.floats(-1, 1, allow_nan=False), min_size=1, max_size=32))
    @settings(max_examples=80, deadline=None)
    def test_round_trip_within_half_bin(self, values):
        arr = np.asarray(values)
        recovered = linear_unbin(linear_bin(arr))
        assert np.abs(recovered - arr).max() <= 1.0 / 14 + 1e-9

    @given(values=st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_always_one_hot(self, values):
        bins = linear_bin(np.asarray(values))
        assert ((bins == 0) | (bins == 1)).all()
        assert np.allclose(bins.sum(axis=1), 1.0)


class TestNetworkProperties:
    @given(x=batch((6, 5)), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_forward_deterministic_at_inference(self, x, seed):
        net = Sequential(
            [Dense(7, activation="tanh"), Dense(2)], (5,), seed=seed
        )
        x32 = x.astype(np.float32)
        assert np.array_equal(net.forward(x32), net.forward(x32))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_weight_round_trip_identity(self, seed):
        net = Sequential([Dense(4), Dense(2)], (3,), seed=seed)
        weights = net.get_weights()
        net.set_weights(weights)
        for original, current in zip(weights, net.params):
            assert np.array_equal(original, current)

    @given(x=batch((4, 3)))
    @settings(max_examples=30, deadline=None)
    def test_gradient_descent_reduces_loss_one_step(self, x):
        # A single small SGD step along the analytic gradient must not
        # increase the loss on the same batch (convex head, tiny lr).
        net = Sequential([Dense(1)], (3,), seed=0)
        x32 = x.astype(np.float32)
        y = np.ones((4, 1), dtype=np.float32)
        pred = net.forward(x32)
        before, grad = mse(pred, y)
        net.backward(grad.astype(np.float32))
        SGD(learning_rate=1e-4).step(net.params, net.grads)
        after, _ = mse(net.forward(x32), y)
        assert after <= before + 1e-9


class TestOptimizerProperties:
    @given(
        grads=st.lists(st.floats(-5, 5, allow_nan=False), min_size=3, max_size=3),
        lr=st.floats(1e-4, 0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_adam_step_bounded_by_lr(self, grads, lr):
        # Adam's per-step displacement is bounded by ~lr (its signature
        # trust-region property).
        param = np.zeros(3, dtype=np.float32)
        Adam(learning_rate=lr).step(
            [param], [np.asarray(grads, dtype=np.float32)]
        )
        assert np.abs(param).max() <= lr * 1.01 + 1e-7

    @given(lr=st.floats(1e-4, 0.1), steps=st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_sgd_zero_grad_is_identity(self, lr, steps):
        param = np.full(4, 2.5, dtype=np.float32)
        opt = SGD(lr, momentum=0.5)
        for _ in range(steps):
            opt.step([param], [np.zeros(4, dtype=np.float32)])
        assert np.allclose(param, 2.5)
