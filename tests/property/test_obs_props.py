"""Property-based invariants for the observability layer.

Hypothesis drives random span programs (arbitrary nesting, clock
advances, manual interleavings) and random metric update sequences;
the structural invariants — child containment, non-negative durations,
resolvable parents, unique ids, counter monotonicity, byte-identical
same-seed exports — must hold for all of them.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.clock import Clock
from repro.common.errors import ConfigurationError
from repro.obs.export import chrome_trace, normalized_trace, span_children, text_tree
from repro.obs.metrics import MetricsRegistry, StreamingHistogram
from repro.obs.tracer import Tracer

SLOW_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: One instruction of a random span program.
#:   ("push", dt)  — advance dt, open a nested span
#:   ("pop", dt)   — advance dt, close the innermost span (if any)
#:   ("event", dt) — advance dt, record an instant
program_steps = st.lists(
    st.tuples(
        st.sampled_from(["push", "pop", "event"]),
        st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=40,
)


def run_program(steps) -> Tracer:
    """Execute one random span program; all spans closed at the end."""
    clock = Clock()
    tracer = Tracer(clock)
    stack = []
    for index, (op, dt) in enumerate(steps):
        clock.advance(dt)
        if op == "push":
            cm = tracer.span(f"op.{index}", step=index)
            cm.__enter__()
            stack.append(cm)
        elif op == "pop" and stack:
            stack.pop().__exit__(None, None, None)
        elif op == "event":
            tracer.event(f"tick.{index}", step=index)
    while stack:
        stack.pop().__exit__(None, None, None)
    return tracer


class TestSpanStructure:
    @SLOW_SETTINGS
    @given(steps=program_steps)
    def test_children_are_contained_in_their_parents(self, steps):
        tracer = run_program(steps)
        by_id = {span.span_id: span for span in tracer.spans}
        for span in tracer.spans:
            assert not span.open
            if span.parent_id:
                parent = by_id[span.parent_id]
                assert parent.start_s <= span.start_s
                assert span.end_s <= parent.end_s

    @SLOW_SETTINGS
    @given(steps=program_steps)
    def test_durations_are_non_negative(self, steps):
        tracer = run_program(steps)
        for span in tracer.spans:
            assert span.duration_s >= 0.0

    @SLOW_SETTINGS
    @given(steps=program_steps)
    def test_no_orphan_parents_and_unique_ids(self, steps):
        tracer = run_program(steps)
        ids = [span.span_id for span in tracer.spans]
        assert len(ids) == len(set(ids))
        # span_children raises on an unresolvable parent; reaching the
        # return means every tree edge resolves.
        roots, children = span_children(tracer)
        reachable = sum(1 for _ in roots)

        def count(span):
            return 1 + sum(count(c) for c in children.get(span.span_id, []))

        assert sum(count(root) for root in roots) == len(tracer.spans)

    @SLOW_SETTINGS
    @given(steps=program_steps)
    def test_exports_are_deterministic_functions_of_the_program(self, steps):
        first = run_program(steps)
        second = run_program(steps)
        assert chrome_trace(first) == chrome_trace(second)
        assert text_tree(first) == text_tree(second)
        assert normalized_trace(first) == normalized_trace(second)


class TestMetricsInvariants:
    @SLOW_SETTINGS
    @given(increments=st.lists(st.floats(0.0, 1e6), max_size=50))
    def test_counter_is_monotone(self, increments):
        registry = MetricsRegistry()
        counter = registry.counter("prop.count")
        seen = []
        for value in increments:
            counter.inc(value)
            seen.append(counter.value)
        assert seen == sorted(seen)
        assert counter.value == pytest.approx(sum(increments))

    def test_counter_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("prop.count")
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)

    @SLOW_SETTINGS
    @given(
        values=st.lists(
            st.floats(1e-4, 60.0, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=80,
        )
    )
    def test_histogram_percentiles_are_bounded_and_ordered(self, values):
        histogram = StreamingHistogram()
        for value in values:
            histogram.record(value)
        p50, p95, p99 = (
            histogram.percentile(0.50),
            histogram.percentile(0.95),
            histogram.percentile(0.99),
        )
        assert p50 <= p95 <= p99
        # Percentiles report a bucket upper edge clamped to the observed
        # max, so they never exceed it — and never undershoot the min.
        assert p99 <= max(values)
        assert p50 >= min(values) * 0.9

    @SLOW_SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        labels=st.lists(
            st.sampled_from(["a", "b", "c"]), min_size=1, max_size=8
        ),
    )
    def test_registry_snapshot_is_deterministic(self, seed, labels):
        def build():
            registry = MetricsRegistry()
            for index, label in enumerate(labels):
                registry.counter("prop.events", kind=label).inc()
                registry.gauge("prop.level", kind=label).set(seed + index)
                registry.histogram("prop.size").observe(index + 1.0)
            return registry

        assert build().to_json() == build().to_json()
        assert build().to_text() == build().to_text()


class TestSameSeedSameBytes:
    @SLOW_SETTINGS
    @given(seed=st.integers(0, 2**16), rate=st.floats(20.0, 400.0))
    def test_traced_serve_run_exports_identically(self, seed, rate):
        from repro.common.clock import EventScheduler
        from repro.serve.replica import BatchLatencyModel
        from repro.serve.service import InferenceService
        from repro.serve.workload import PoissonWorkload

        def run():
            scheduler = EventScheduler()
            tracer = Tracer(scheduler.clock)
            metrics = MetricsRegistry()
            service = InferenceService(
                BatchLatencyModel(0.004, 0.0002),
                scheduler=scheduler,
                n_replicas=2,
                seed=seed,
                tracer=tracer,
                metrics=metrics,
                trace_requests=True,
            )
            service.run(PoissonWorkload(rate, deadline_s=0.05, seed=seed), 0.5)
            tracer.close_all()
            return chrome_trace(tracer), metrics.to_json()

        assert run() == run()
