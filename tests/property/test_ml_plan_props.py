"""Property-based tests for the compiled execution plans.

Hypothesis draws random stack *recipes* (layer kinds + hyperparameters,
not instances, so a recipe can build identical fresh networks) and
random inputs, then checks the plan contract from ``repro.ml.plan``:

* inference parity holds for every generatable stack (float32
  tolerances — the plan reorders floating-point accumulation);
* ``run`` never mutates its input array;
* repeated ``run`` on the same input is byte-identical (the plan's
  buffer reuse is deterministic);
* the training plan reproduces reference forward activations and
  gradients bitwise.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.layers import (
    Activation,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
)
from repro.ml.network import Sequential

RTOL, ATOL = 1e-4, 1e-5

activations = st.sampled_from(["relu", "tanh", "sigmoid", "linear"])


@st.composite
def dense_recipes(draw):
    """(recipe, input_shape) for a random dense stack."""
    width = draw(st.integers(2, 24))
    recipe = []
    for i in range(draw(st.integers(1, 4))):
        recipe.append(("dense", draw(st.integers(2, 16)), draw(activations)))
        if draw(st.booleans()):
            recipe.append(("dropout", draw(st.floats(0.1, 0.6)), i))
    recipe.append(("dense", draw(st.integers(1, 4)), "linear"))
    return recipe, (width,)


@st.composite
def conv_recipes(draw):
    """(recipe, input_shape) for a random small conv stack."""
    h = draw(st.integers(8, 16))
    w = draw(st.integers(8, 16))
    c = draw(st.integers(1, 3))
    recipe = [
        (
            "conv2d",
            draw(st.integers(2, 6)),
            draw(st.sampled_from([3, 5])),
            draw(st.sampled_from([1, 2])),
            draw(activations),
        )
    ]
    if draw(st.booleans()):
        recipe.append(("maxpool", 2))
    recipe.append(("flatten",))
    if draw(st.booleans()):
        recipe.append(("activation", "tanh"))
    if draw(st.booleans()):
        recipe.append(("dropout", draw(st.floats(0.1, 0.5)), 9))
    recipe.append(("dense", draw(st.integers(1, 4)), "linear"))
    return recipe, (h, w, c)


def build(recipe):
    """Fresh layer instances from a recipe (identical every call)."""
    layers = []
    for spec in recipe:
        kind = spec[0]
        if kind == "dense":
            layers.append(Dense(spec[1], activation=spec[2]))
        elif kind == "dropout":
            layers.append(Dropout(spec[1], seed=spec[2]))
        elif kind == "conv2d":
            layers.append(Conv2D(spec[1], spec[2], spec[3], activation=spec[4]))
        elif kind == "maxpool":
            layers.append(MaxPool2D(spec[1]))
        elif kind == "flatten":
            layers.append(Flatten())
        elif kind == "activation":
            layers.append(Activation(spec[1]))
    return layers


recipes = st.one_of(dense_recipes(), conv_recipes())


def _x(shape, batch, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch, *shape)).astype(np.float32)


class TestInferencePlanProperties:
    @given(recipe=recipes, batch=st.integers(1, 9), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_random_stack_parity(self, recipe, batch, seed):
        spec, shape = recipe
        net = Sequential(build(spec), shape, seed=seed % 1000)
        x = _x(shape, batch, seed)
        ref = net.forward(x, training=False)
        got = net.plan().run(x)
        np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)

    @given(recipe=recipes, batch=st.integers(1, 6), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_run_is_side_effect_free_on_input(self, recipe, batch, seed):
        spec, shape = recipe
        net = Sequential(build(spec), shape, seed=3)
        x = _x(shape, batch, seed)
        snapshot = x.copy()
        net.plan().run(x)
        assert np.array_equal(x, snapshot)
        assert x.dtype == snapshot.dtype

    @given(recipe=recipes, batch=st.integers(1, 6), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_repeated_run_is_byte_identical(self, recipe, batch, seed):
        spec, shape = recipe
        net = Sequential(build(spec), shape, seed=5)
        plan = net.plan()
        x = _x(shape, batch, seed)
        first = plan.run(x).tobytes()
        # Interleave another batch size to exercise workspace re-keying.
        plan.run(_x(shape, batch + 1, seed + 1))
        second = plan.run(x).tobytes()
        assert first == second


class TestTrainingPlanProperties:
    @given(recipe=recipes, batch=st.integers(1, 6), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_forward_and_gradients_bitwise_equal_reference(
        self, recipe, batch, seed
    ):
        spec, shape = recipe
        net_ref = Sequential(build(spec), shape, seed=7)
        net_fast = Sequential(build(spec), shape, seed=7)
        net_fast.set_weights(net_ref.get_weights())
        x = _x(shape, batch, seed)

        ref_out = net_ref.forward(x, training=True)
        net_ref.backward(np.ones_like(ref_out))

        plan = net_fast.training_plan()
        out = plan.forward(x)
        assert np.array_equal(out, ref_out)
        plan.backward(np.ones_like(out))
        for ga, gb in zip(net_ref.grads, net_fast.grads):
            assert np.array_equal(ga, gb)
