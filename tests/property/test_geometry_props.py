"""Property-based tests for the geometry core."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.sim.geometry import (
    offset_closed,
    point_in_closed_polyline,
    polyline_length,
    project_points,
    resample_closed,
)


@st.composite
def convex_loops(draw):
    """Random convex closed polylines (ellipses with noise-free radii)."""
    n = draw(st.integers(min_value=16, max_value=96))
    a = draw(st.floats(min_value=0.5, max_value=5.0))
    b = draw(st.floats(min_value=0.5, max_value=5.0))
    phase = draw(st.floats(min_value=0.0, max_value=np.pi))
    t = np.linspace(0, 2 * np.pi, n, endpoint=False) + phase
    return np.column_stack([a * np.cos(t), b * np.sin(t)])


@st.composite
def query_points(draw):
    xs = draw(st.lists(st.floats(-8, 8), min_size=1, max_size=8))
    ys = draw(st.lists(st.floats(-8, 8), min_size=len(xs), max_size=len(xs)))
    return np.column_stack([xs, ys[: len(xs)]])


class TestResample:
    @given(loop=convex_loops(), n=st.integers(16, 200))
    @settings(max_examples=40, deadline=None)
    def test_length_preserved(self, loop, n):
        resampled = resample_closed(loop, n)
        assert len(resampled) == n
        # Resampling a convex loop cannot grow its length.  Uniform
        # arclength spacing cuts the tight corners of an eccentric
        # loop, losing up to ~8% at n == len(loop) (10:1 ellipse,
        # measured worst 0.919), so the floor is 0.88, not 0.95.
        original = polyline_length(loop)
        assert polyline_length(resampled) <= original + 1e-9
        if n >= len(loop):
            assert polyline_length(resampled) > 0.88 * original

    @given(loop=convex_loops())
    @settings(max_examples=30, deadline=None)
    def test_spacing_uniform(self, loop):
        resampled = resample_closed(loop, 64)
        seg = np.linalg.norm(np.roll(resampled, -1, axis=0) - resampled, axis=1)
        assert seg.std() <= 0.2 * seg.mean()


class TestProjection:
    @given(loop=convex_loops(), pts=query_points())
    @settings(max_examples=40, deadline=None)
    def test_distance_nonnegative_and_arclength_in_range(self, loop, pts):
        dist, s, side = project_points(pts, loop)
        assert (dist >= 0).all()
        total = polyline_length(loop)
        assert (s >= 0).all() and (s <= total + 1e-9).all()
        assert np.isin(side, (-1.0, 0.0, 1.0)).all()

    @given(loop=convex_loops())
    @settings(max_examples=30, deadline=None)
    def test_vertices_project_to_zero_distance(self, loop):
        dist, _, _ = project_points(loop[::5], loop)
        assert dist.max() < 1e-9

    @given(loop=convex_loops(), pts=query_points())
    @settings(max_examples=30, deadline=None)
    def test_projection_is_idempotent_on_distance(self, loop, pts):
        # Projecting the closest points back must give ~zero distance.
        dist, s, _ = project_points(pts, loop)
        # Reconstruct closest points by walking the arclength coordinate.
        from repro.sim.geometry import cumulative_arclength

        s_vertices = cumulative_arclength(loop)
        ring = np.vstack([loop, loop[:1]])
        s_ring = np.concatenate([s_vertices, [polyline_length(loop)]])
        cx = np.interp(s, s_ring, ring[:, 0])
        cy = np.interp(s, s_ring, ring[:, 1])
        dist2, _, _ = project_points(np.column_stack([cx, cy]), loop)
        assert dist2.max() < 1e-6


def _min_curvature_radius(loop: np.ndarray) -> float:
    """Smallest circumradius over consecutive vertex triples.

    A vertex-normal offset is only well-defined up to the loop's
    minimum radius of curvature — past it the offset self-intersects
    (an eccentric 10:1 ellipse has min radius b**2/a ~ 0.05, far below
    the 0.3 the strategy can draw).  The offset properties therefore
    quantify only over distances the geometry can support.
    """
    p0 = loop
    p1 = np.roll(loop, -1, axis=0)
    p2 = np.roll(loop, -2, axis=0)
    a = np.linalg.norm(p1 - p0, axis=1)
    b = np.linalg.norm(p2 - p1, axis=1)
    c = np.linalg.norm(p2 - p0, axis=1)
    cross = np.abs(
        (p1 - p0)[:, 0] * (p2 - p0)[:, 1]
        - (p1 - p0)[:, 1] * (p2 - p0)[:, 0]
    )
    return float(np.min(a * b * c / (2.0 * cross + 1e-12)))


class TestOffsets:
    @given(loop=convex_loops(), distance=st.floats(0.01, 0.3))
    @settings(max_examples=30, deadline=None)
    def test_inward_offset_shrinks_convex_loops(self, loop, distance):
        assume(distance < 0.9 * _min_curvature_radius(loop))
        inner = offset_closed(loop, distance)  # left of CCW = inward
        assert polyline_length(inner) < polyline_length(loop)

    @given(loop=convex_loops(), distance=st.floats(0.01, 0.3))
    @settings(max_examples=30, deadline=None)
    def test_offset_points_inside_original(self, loop, distance):
        assume(distance < 0.9 * _min_curvature_radius(loop))
        inner = offset_closed(loop, distance)
        inside = point_in_closed_polyline(inner[::4], loop)
        assert inside.all()


class TestPointInPolygon:
    @given(loop=convex_loops())
    @settings(max_examples=30, deadline=None)
    def test_centroid_inside_far_point_outside(self, loop):
        centroid = loop.mean(axis=0, keepdims=True)
        far = centroid + np.array([[100.0, 0.0]])
        assert point_in_closed_polyline(centroid, loop)[0]
        assert not point_in_closed_polyline(far, loop)[0]
