"""Property-based tests for data storage and the simulation substrate."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.clock import Clock, EventScheduler
from repro.data.records import DriveRecord
from repro.data.tub import Tub
from repro.sim.dynamics import BicycleModel, CarState


@st.composite
def drive_records(draw):
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    return DriveRecord(
        image=rng.integers(0, 255, (6, 8, 3), dtype=np.uint8),
        angle=draw(st.floats(-1, 1, allow_nan=False)),
        throttle=draw(st.floats(-1, 1, allow_nan=False)),
        mode=draw(st.sampled_from(["user", "pilot", "local_angle"])),
        cte=draw(st.floats(-2, 2, allow_nan=False)),
        speed=draw(st.floats(0, 5, allow_nan=False)),
        off_track=draw(st.booleans()),
        timestamp_ms=draw(st.integers(0, 10**9)),
    )


class TestTubRoundTrip:
    @given(records=st.lists(drive_records(), min_size=1, max_size=12))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_record_survives_round_trip(self, tmp_path_factory, records):
        root = tmp_path_factory.mktemp("proptub")
        tub = Tub.create(root / "tub")
        with tub.bulk():
            for record in records:
                tub.write_record(record)
        reloaded = Tub(root / "tub")
        assert len(reloaded) == len(records)
        for i, original in enumerate(records):
            loaded = reloaded.read_record(i)
            assert loaded.angle == pytest.approx(original.angle)
            assert loaded.throttle == pytest.approx(original.throttle)
            assert loaded.mode == original.mode
            assert loaded.off_track == original.off_track
            assert np.array_equal(loaded.image, original.image)


class TestDynamicsProperties:
    @given(
        steering=st.floats(-1, 1, allow_nan=False),
        throttle=st.floats(-1, 1, allow_nan=False),
        steps=st.integers(1, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_speed_bounded_and_heading_wrapped(self, steering, throttle, steps):
        model = BicycleModel()
        state = CarState()
        for _ in range(steps):
            state = model.step(state, steering, throttle, 0.05)
        assert 0.0 <= state.speed <= model.params.max_speed * 1.05
        assert -np.pi <= state.heading <= np.pi
        assert np.isfinite([state.x, state.y]).all()

    @given(throttle=st.floats(0.1, 1.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_straight_driving_stays_on_axis(self, throttle):
        model = BicycleModel()
        state = CarState()
        for _ in range(100):
            state = model.step(state, 0.0, throttle, 0.05)
        assert abs(state.y) < 1e-9
        assert state.x > 0


class TestClockProperties:
    @given(durations=st.lists(st.floats(0, 100, allow_nan=False), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_clock_monotone(self, durations):
        clock = Clock()
        last = 0.0
        for duration in durations:
            clock.advance(duration)
            assert clock.now >= last
            last = clock.now

    @given(times=st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_scheduler_fires_everything_in_order(self, times):
        scheduler = EventScheduler()
        fired = []
        for t in times:
            scheduler.schedule_at(t, lambda t=t: fired.append(t))
        scheduler.run_until(max(times))
        assert len(fired) == len(times)
        assert fired == sorted(fired)
