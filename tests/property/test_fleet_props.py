"""Property-based invariants for the fleet continuum loop.

Whatever the seed and whatever goes wrong (poisoned data, crashed
canaries), three promises hold:

* the promotion lattice never skips a stage — a candidate reaches
  ``stable`` only through shadow *and* canary, and any failure ends in
  ``rolled-back``;
* a rollback restores the prior stable tag (the fleet never drives on
  an unvetted model);
* the whole run is a pure function of its seed: same seed, byte-equal
  summary.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.fleet import (
    OUTCOME_BOOTSTRAPPED,
    OUTCOME_PROMOTED,
    OUTCOME_ROLLED_BACK,
    FleetConfig,
    FleetLoop,
)
from repro.fleet.gates import GateThresholds

SLOW_SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

VALID_HISTORIES = {
    OUTCOME_BOOTSTRAPPED: {("candidate", "stable")},
    OUTCOME_PROMOTED: {("candidate", "shadow", "canary", "stable")},
    OUTCOME_ROLLED_BACK: {
        ("candidate", "shadow", "rolled-back"),
        ("candidate", "shadow", "canary", "rolled-back"),
    },
}

CANARY_CRASH = FaultPlan(
    [FaultSpec(FaultKind.REPLICA_CRASH, "replica-0003", at_s=0.1)]
)


def run_loop(seed, poison=False, crash=False):
    config = FleetConfig(
        n_vehicles=3,
        records_per_flush=8,
        frame_hw=(8, 12),
        epochs=3,
        min_fresh_records=48,
        eval_records=32,
        stage_vehicles=4,
        stage_duration_s=0.6,
        gates=GateThresholds(min_completions=10),
        canary_fraction=0.35,
        rounds=2,
        poison_rounds=(2,) if poison else (),
        canary_fault_plans=((2, CANARY_CRASH),) if crash else (),
        seed=seed,
    )
    return FleetLoop(config).run()


class TestLattice:
    @SLOW_SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        poison=st.booleans(),
        crash=st.booleans(),
    )
    def test_never_skips_a_stage(self, seed, poison, crash):
        summary = run_loop(seed, poison=poison, crash=crash)
        for report in summary.rounds:
            rollout = report.rollout
            if rollout is None:
                continue
            assert rollout.history in VALID_HISTORIES[rollout.outcome], (
                rollout.outcome, rollout.history,
            )
            # Stage reports mirror the history between the endpoints.
            stages = tuple(stage.stage for stage in rollout.stages)
            assert stages == rollout.history[1:-1]

    @SLOW_SETTINGS
    @given(seed=st.integers(0, 2**16), crash=st.booleans())
    def test_rollback_restores_prior_stable(self, seed, crash):
        summary = run_loop(seed, poison=not crash, crash=crash)
        for report in summary.rounds:
            rollout = report.rollout
            if rollout is None:
                continue
            if rollout.outcome == OUTCOME_ROLLED_BACK:
                assert rollout.new_stable == rollout.prior_stable
                assert report.stable_version == rollout.prior_stable
            else:
                assert rollout.new_stable == rollout.candidate_version
                assert report.stable_version == rollout.candidate_version


class TestDeterminism:
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**16))
    def test_same_seed_byte_identical_summary(self, seed):
        first = run_loop(seed)
        second = run_loop(seed)
        assert first.to_text() == second.to_text()
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )
