"""Property-based tests for actuator math and serialization invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import bytes_to_mbit, inches_to_m, m_to_inches, mbit_to_bytes
from repro.ml.models.factory import create_model
from repro.ml.serialize import load_model_bytes, save_model_bytes
from repro.vehicle.parts import DriveMode, PWMSteering, PWMThrottle


class TestPWMProperties:
    @given(command=st.floats(-1, 1, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_steering_round_trip_within_quantisation(self, command):
        pwm = PWMSteering()
        recovered = pwm.run(command)
        # One pulse step of error at most (pulse span ~85 per side).
        assert abs(recovered - command) <= 1.0 / 60.0

    @given(command=st.floats(-1, 1, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_throttle_round_trip_within_quantisation(self, command):
        pwm = PWMThrottle()
        assert abs(pwm.run(command) - command) <= 1.0 / 100.0

    @given(command=st.floats(-3, 3, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_pulse_always_within_calibration(self, command):
        pwm = PWMSteering(left_pulse=460, right_pulse=290)
        pulse = pwm.to_pulse(command)
        assert 290 <= pulse <= 460

    @given(
        a=st.floats(-1, 1, allow_nan=False),
        b=st.floats(-1, 1, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_steering_monotone(self, a, b):
        pwm = PWMSteering()
        if a < b:
            # More positive command = more rightward = smaller pulse.
            assert pwm.to_pulse(a) >= pwm.to_pulse(b)


class TestDriveModeProperties:
    @given(
        mode=st.sampled_from(["user", "pilot", "local_angle"]),
        user=st.tuples(st.floats(-1, 1), st.floats(-1, 1)),
        pilot=st.tuples(st.floats(-1, 1), st.floats(-1, 1)),
    )
    @settings(max_examples=80, deadline=None)
    def test_output_always_from_declared_source(self, mode, user, pilot):
        angle, throttle = DriveMode().run(mode, user[0], user[1], pilot[0], pilot[1])
        if mode == "user":
            assert (angle, throttle) == user
        elif mode == "pilot":
            assert (angle, throttle) == pilot
        else:
            assert (angle, throttle) == (pilot[0], user[1])


class TestUnitProperties:
    @given(value=st.floats(0, 1e6, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_inch_metre_inverse(self, value):
        assert m_to_inches(inches_to_m(value)) == pytest.approx(value, rel=1e-12)

    @given(value=st.floats(0, 1e6, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_mbit_bytes_inverse(self, value):
        assert bytes_to_mbit(mbit_to_bytes(value)) == pytest.approx(value, rel=1e-12)


class TestSerializationProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_any_seeded_linear_model_round_trips(self, seed):
        model = create_model("linear", input_shape=(16, 16, 3), scale=0.2,
                             seed=seed)
        clone = load_model_bytes(save_model_bytes(model))
        x = np.random.default_rng(0).random((2, 16, 16, 3), dtype=np.float32)
        a1, t1 = model.predict_batch(x)
        a2, t2 = clone.predict_batch(x)
        assert np.allclose(a1, a2) and np.allclose(t1, t2)
