"""Golden-scorecard regression harness.

Every matrix cell (at two seeds) and every library scenario (at seed 0)
is run, scored by the :class:`~repro.eval.scorecard.Evaluator`, and
compared byte for byte against ``tests/eval/golden/<name>-seed<N>.json``
— the same canonical files ``autolearn eval`` diffs against.

Any behavioral drift in the scored layers (routing, batching, fault
timing, driving dynamics, tracker association) shows up here as a
readable JSON diff.  To accept an intentional change::

    pytest tests/eval/test_golden_scorecards.py --update-goldens

which rewrites the files and skips (so a tier-1 run can never silently
regenerate its own expectations).
"""

from __future__ import annotations

import difflib
from pathlib import Path

import pytest

from repro.eval.library import BASE_SPECS, matrix_specs, scenario_spec
from repro.eval.runner import run_scenario
from repro.eval.scorecard import Evaluator

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Every golden cell: each matrix cell at two seeds, each library
#: scenario at seed 0.
CASES = [
    (spec.name, seed) for spec in matrix_specs() for seed in (0, 1)
] + [(name, 0) for name in BASE_SPECS]


def render_scorecard(name: str, seed: int) -> str:
    """The canonical golden bytes for one scored scenario run."""
    run = run_scenario(scenario_spec(name), seed=seed)
    return Evaluator().evaluate(run).to_json()


@pytest.mark.parametrize("name,seed", CASES)
def test_golden_scorecard(name, seed, request):
    current = render_scorecard(name, seed)
    path = GOLDEN_DIR / f"{name}-seed{seed}.json"
    if request.config.getoption("--update-goldens"):
        path.write_text(current)
        pytest.skip(f"golden {path.name} regenerated")
    assert path.exists(), (
        f"missing golden {path}; generate it with "
        "pytest tests/eval/test_golden_scorecards.py --update-goldens"
    )
    golden = path.read_text()
    if current != golden:
        diff = "\n".join(
            difflib.unified_diff(
                golden.splitlines(),
                current.splitlines(),
                fromfile=f"golden/{path.name}",
                tofile="current",
                lineterm="",
                n=3,
            )
        )
        pytest.fail(
            f"scorecard for {name!r} seed={seed} drifted from its "
            f"golden:\n{diff}"
        )


def test_matrix_has_at_least_eight_cells():
    """The acceptance bar: ``autolearn eval --matrix`` scores >= 8 cells."""
    assert len(matrix_specs()) >= 8


def test_no_orphan_goldens():
    """Every checked-in golden corresponds to a known (name, seed) cell."""
    expected = {f"{name}-seed{seed}.json" for name, seed in CASES}
    actual = {path.name for path in GOLDEN_DIR.glob("*.json")}
    assert actual <= expected, sorted(actual - expected)


def test_seed_changes_the_scorecard():
    """The canonical form is seed-sensitive (nothing is over-rounded)."""
    assert render_scorecard("serve-load", 0) != render_scorecard("serve-load", 1)
