"""Unit tests for the declarative spec layer (merge, apply, round trip)."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.eval.spec import (
    SCENARIO_KINDS,
    ScenarioSpec,
    apply_overrides,
    canonical_json,
    merge_overrides,
)


class TestMergeOverrides:
    def test_union_of_disjoint_maps(self):
        merged = merge_overrides({"a.b": 1}, {"c": "x"})
        assert merged == {"a.b": 1, "c": "x"}

    def test_later_map_wins_on_equal_keys(self):
        assert merge_overrides({"a.b": 1}, {"a.b": 2}) == {"a.b": 2}

    def test_empty_merge_is_empty(self):
        assert merge_overrides() == {}

    @pytest.mark.parametrize("key", ["", ".a", "a.", ".", 7])
    def test_bad_paths_rejected(self, key):
        with pytest.raises(ConfigurationError):
            merge_overrides({key: 1})

    def test_prefix_conflict_rejected(self):
        with pytest.raises(ConfigurationError, match="prefix"):
            merge_overrides({"a": 1}, {"a.b": 2})

    def test_shared_parent_is_not_a_conflict(self):
        merged = merge_overrides({"a.b": 1}, {"a.c": 2})
        assert merged == {"a.b": 1, "a.c": 2}

    def test_non_json_value_rejected(self):
        with pytest.raises(ConfigurationError, match="not a JSON type"):
            merge_overrides({"a": object()})

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(ConfigurationError, match="non-string key"):
            merge_overrides({"a": {1: "x"}})


class TestApplyOverrides:
    def test_sets_nested_path(self):
        out = apply_overrides({"a": {"b": 1}}, {"a.b": 2})
        assert out == {"a": {"b": 2}}

    def test_creates_intermediate_dicts(self):
        assert apply_overrides({}, {"a.b.c": 3}) == {"a": {"b": {"c": 3}}}

    def test_does_not_mutate_input(self):
        params = {"a": {"b": 1}}
        apply_overrides(params, {"a.b": 2})
        assert params == {"a": {"b": 1}}

    def test_traversing_scalar_is_an_error(self):
        with pytest.raises(ConfigurationError, match="non-dict"):
            apply_overrides({"a": 1}, {"a.b": 2})

    def test_replacing_dict_with_scalar_is_allowed(self):
        assert apply_overrides({"a": {"b": 1}}, {"a": 5}) == {"a": 5}


class TestScenarioSpec:
    def test_kind_must_be_known(self):
        with pytest.raises(ConfigurationError, match="unknown scenario kind"):
            ScenarioSpec(name="x", kind="nope")

    def test_name_must_be_non_empty(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            ScenarioSpec(name="", kind="serve")

    def test_round_trip(self):
        spec = ScenarioSpec(
            name="x", kind="serve", params={"a": {"b": [1, 2]}}
        )
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown spec keys"):
            ScenarioSpec.from_dict({"name": "x", "kind": "serve", "extra": 1})

    def test_from_dict_requires_name_and_kind(self):
        with pytest.raises(ConfigurationError, match="name and kind"):
            ScenarioSpec.from_dict({"name": "x"})

    def test_with_overrides_returns_new_spec(self):
        base = ScenarioSpec(name="x", kind="serve", params={"a": 1})
        child = base.with_overrides({"a": 2}, name="y")
        assert base.params == {"a": 1}
        assert child.name == "y"
        assert child.kind == "serve"
        assert child.params == {"a": 2}

    def test_digest_tracks_params(self):
        a = ScenarioSpec(name="x", kind="serve", params={"a": 1})
        b = ScenarioSpec(name="x", kind="serve", params={"a": 2})
        assert a.digest() != b.digest()
        assert len(a.digest()) == 12

    def test_kinds_are_stable(self):
        assert SCENARIO_KINDS == (
            "pipeline", "serve", "chaos", "fleet", "drive"
        )


def test_canonical_json_sorts_keys_and_ends_with_newline():
    text = canonical_json({"b": 1, "a": 2})
    assert text.index('"a"') < text.index('"b"')
    assert text.endswith("\n")
