"""Unit tests for the MOT metrics and the greedy perception tracker."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.eval.drive import GreedyTracker
from repro.eval.mot import evaluate_tracking, trajectory_jitter


def frames(*per_frame):
    """Shorthand: each arg is one frame dict."""
    return list(per_frame)


class TestEvaluateTracking:
    def test_perfect_tracking(self):
        gt = frames({"a": (0.0, 0.0)}, {"a": (1.0, 0.0)})
        tracked = frames({"t1": (0.0, 0.0)}, {"t1": (1.0, 0.0)})
        report = evaluate_tracking(gt, tracked)
        assert report.mota == 1.0
        assert report.matches == 2
        assert report.misses == 0
        assert report.false_positives == 0
        assert report.id_switches == 0
        assert report.association_accuracy == 1.0
        assert report.mean_match_error_m == 0.0

    def test_miss_and_false_positive(self):
        gt = frames({"a": (0.0, 0.0)})
        tracked = frames({"t1": (9.0, 9.0)})  # out of gate
        report = evaluate_tracking(gt, tracked)
        assert report.misses == 1
        assert report.false_positives == 1
        assert report.matches == 0
        assert report.mota == 1.0 - 2.0 / 1.0

    def test_id_switch_counted_once(self):
        gt = frames({"a": (0.0, 0.0)}, {"a": (0.0, 0.0)}, {"a": (0.0, 0.0)})
        tracked = frames(
            {"t1": (0.0, 0.0)}, {"t2": (0.0, 0.0)}, {"t2": (0.0, 0.0)}
        )
        report = evaluate_tracking(gt, tracked)
        assert report.id_switches == 1
        assert report.matches == 3
        # switches + consistent matches partition all matches
        assert report.association_accuracy == pytest.approx(2.0 / 3.0)

    def test_continuity_beats_distance(self):
        """An established pairing survives even when another track is
        momentarily closer, so tracker crossings do not flap ids."""
        gt = frames(
            {"a": (0.0, 0.0), "b": (1.0, 0.0)},
            {"a": (0.0, 0.0), "b": (1.0, 0.0)},
        )
        tracked = frames(
            {"t1": (0.0, 0.0), "t2": (1.0, 0.0)},
            # t2 drifted right next to a; continuity keeps a<->t1.
            {"t1": (0.1, 0.0), "t2": (0.05, 0.0)},
        )
        report = evaluate_tracking(gt, tracked, match_radius_m=2.0)
        assert report.id_switches == 0

    def test_gating_radius_is_enforced(self):
        gt = frames({"a": (0.0, 0.0)})
        tracked = frames({"t1": (0.0, 0.6)})
        near = evaluate_tracking(gt, tracked, match_radius_m=1.0)
        far = evaluate_tracking(gt, tracked, match_radius_m=0.5)
        assert near.matches == 1
        assert far.matches == 0

    def test_empty_frames_score_perfect(self):
        report = evaluate_tracking(frames({}, {}), frames({}, {}))
        assert report.mota == 1.0
        assert report.gt_total == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="differ in length"):
            evaluate_tracking(frames({}), frames({}, {}))

    def test_bad_radius_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            evaluate_tracking(frames({}), frames({}), match_radius_m=0.0)

    def test_deterministic_tie_breaking(self):
        """Two equidistant candidates resolve by sorted ids, always."""
        gt = frames({"a": (0.0, 0.0), "b": (0.0, 0.0)})
        tracked = frames({"t1": (0.0, 0.0), "t2": (0.0, 0.0)})
        first = evaluate_tracking(gt, tracked)
        second = evaluate_tracking(gt, tracked)
        assert first == second
        assert first.matches == 2


class TestTrajectoryJitter:
    def test_uniform_motion_has_zero_jitter(self):
        track = [{"t": (float(i), 2.0 * i)} for i in range(5)]
        assert trajectory_jitter(track) == 0.0

    def test_oscillation_is_positive(self):
        track = [{"t": (0.0, (-1.0) ** i)} for i in range(5)]
        assert trajectory_jitter(track) == pytest.approx(4.0)

    def test_short_or_gappy_tracks_are_skipped(self):
        assert trajectory_jitter([{"t": (0.0, 0.0)}]) == 0.0
        gappy = [{"t": (0.0, 0.0)}, {}, {"t": (2.0, 0.0)}]
        assert trajectory_jitter(gappy) == 0.0


class TestGreedyTracker:
    def test_noise_free_tracking_is_perfect(self):
        tracker = GreedyTracker(noise_m=0.0, dropout=0.0, seed=0)
        gt = [{"a": (0.0, 0.0), "b": (3.0, 0.0)} for _ in range(4)]
        tracked = [tracker.observe(frame) for frame in gt]
        report = evaluate_tracking(gt, tracked)
        assert report.mota == 1.0
        assert tracker.spawned == 2

    def test_track_retired_after_coast_budget(self):
        tracker = GreedyTracker(noise_m=0.0, dropout=0.0, max_coast=0, seed=0)
        tracker.observe({"a": (0.0, 0.0)})
        tracker.observe({})  # miss: coast budget exhausted, track dies
        out = tracker.observe({"a": (0.0, 0.0)})
        assert list(out) == ["trk-0002"]  # re-acquired under a new id

    def test_detection_outside_gate_spawns_new_track(self):
        tracker = GreedyTracker(noise_m=0.0, dropout=0.0, gate_m=0.5, seed=0)
        tracker.observe({"a": (0.0, 0.0)})
        out = tracker.observe({"a": (5.0, 0.0)})
        assert list(out) == ["trk-0002"]

    @pytest.mark.parametrize(
        "kwargs", [dict(noise_m=-1.0), dict(dropout=1.0), dict(max_coast=-1),
                   dict(gate_m=0.0)]
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GreedyTracker(**kwargs)
