"""``autolearn eval`` CLI behavior: listing, scoring, diffing, exit codes."""

from __future__ import annotations

from repro.cli import main
from repro.eval.library import scenario_names

# A fast cell to keep CLI runs cheap (4s of simulated serving).
CELL = "matrix-v016-nofault-lan"


def test_list_names_library_and_matrix(capsys):
    assert main(["eval", "--list"]) == 0
    listed = capsys.readouterr().out.split()
    assert listed == list(scenario_names(matrix=True))
    assert "serve-load" in listed
    assert CELL in listed


def test_update_then_match_then_diff(tmp_path, capsys):
    golden = tmp_path / "golden"
    args = ["eval", "--scenario", CELL, "--golden", str(golden)]

    # No golden yet: the run is NEW and fails the pin.
    assert main(args) == 1
    assert "NEW" in capsys.readouterr().out

    # Write the golden, then the same run matches byte for byte.
    assert main(args + ["--update-goldens"]) == 0
    capsys.readouterr()
    assert main(args) == 0
    assert "ok" in capsys.readouterr().out

    # Tamper with the golden: the diff is reported and the exit is 1.
    path = golden / f"{CELL}-seed0.json"
    path.write_text(path.read_text().replace('"completed"', '"completedX"'))
    assert main(args) == 1
    out = capsys.readouterr().out
    assert "DIFF" in out
    assert "completedX" in out


def test_out_dir_receives_scorecards(tmp_path, capsys):
    out = tmp_path / "cards"
    code = main([
        "eval", "--scenario", CELL, "--out", str(out), "--no-golden",
    ])
    capsys.readouterr()
    assert code == 0
    cards = sorted(p.name for p in out.iterdir())
    assert cards == [f"{CELL}-seed0.json"]


def test_multiple_seeds(tmp_path, capsys):
    out = tmp_path / "cards"
    code = main([
        "eval", "--scenario", CELL, "--seed", "0", "--seed", "1",
        "--out", str(out), "--no-golden",
    ])
    capsys.readouterr()
    assert code == 0
    assert {p.name for p in out.iterdir()} == {
        f"{CELL}-seed0.json", f"{CELL}-seed1.json"
    }


def test_unknown_scenario_exits_2(capsys):
    assert main(["eval", "--scenario", "nope"]) == 2
    assert "unknown eval scenario" in capsys.readouterr().out
