"""Links, topology routing, and transfer emulation."""

import numpy as np
import pytest

from repro.common.clock import Clock
from repro.common.errors import NetworkError, TransferError, UnreachableHostError
from repro.net.links import (
    CAMPUS_LAN,
    FABRIC_MANAGED,
    WAN_INTERNET,
    WIFI_EDGE,
    Link,
    fabric_link,
)
from repro.net.topology import Topology, autolearn_topology
from repro.net.transfer import SSHTunnel, rsync_tub, scp_bytes


class TestLinks:
    def test_deterministic_link_no_jitter(self):
        samples = FABRIC_MANAGED.sample_latency(rng=0, n=100)
        assert np.allclose(samples, FABRIC_MANAGED.base_latency_s)

    def test_jittery_link_varies(self):
        samples = WAN_INTERNET.sample_latency(rng=0, n=200)
        assert samples.std() > 0
        assert samples.min() > 0

    def test_loss_adds_retransmit_tails(self):
        lossy = Link("lossy", 0.01, 0.0, 1e9, loss_rate=0.3)
        clean = Link("clean", 0.01, 0.0, 1e9, loss_rate=0.0)
        assert lossy.sample_latency(rng=0, n=500).mean() > clean.sample_latency(
            rng=0, n=500
        ).mean()

    def test_transfer_latency_bound_for_small_payloads(self):
        tiny = WAN_INTERNET.transfer_time(10, rng=0)
        assert tiny < 1.0

    def test_transfer_bandwidth_bound_for_bulk(self):
        bulk = 1_000_000_000  # 1 GB
        t = WAN_INTERNET.transfer_time(bulk, rng=0)
        assert t >= 8.0 * bulk / WAN_INTERNET.bandwidth_bps

    def test_fabric_link_factory(self):
        link = fabric_link(0.025)
        assert link.base_latency_s == 0.025
        assert link.jitter_scale == 0.0
        with pytest.raises(NetworkError):
            fabric_link(-0.1)

    def test_validation(self):
        with pytest.raises(NetworkError):
            Link("bad", -1.0, 0.0, 1e6)
        with pytest.raises(NetworkError):
            Link("bad", 0.0, 0.0, 1e6, loss_rate=1.0)
        with pytest.raises(NetworkError):
            WAN_INTERNET.transfer_time(-5)


class TestTopology:
    def test_autolearn_hosts(self):
        topo = autolearn_topology()
        assert topo.hosts(kind="car") == ["car-pi"]
        assert set(topo.hosts(kind="cloud")) == {"chi-tacc", "chi-uc"}

    def test_route_car_to_cloud(self):
        topo = autolearn_topology()
        route = topo.route("car-pi", "chi-uc")
        names = [l.name for l in route.links]
        assert names == ["wifi-edge", "wan-internet"]
        assert route.bottleneck_bps == WIFI_EDGE.bandwidth_bps

    def test_intersite_route_uses_fabric(self):
        topo = autolearn_topology()
        route = topo.route("chi-uc", "chi-tacc")
        assert [l.name for l in route.links] == ["fabric"]

    def test_rtt_sums_hops(self):
        topo = autolearn_topology()
        route = topo.route("laptop", "chi-tacc")
        floor = 2 * (CAMPUS_LAN.base_latency_s + WAN_INTERNET.base_latency_s)
        assert route.base_rtt_s == pytest.approx(floor)

    def test_unknown_host(self):
        topo = autolearn_topology()
        with pytest.raises(UnreachableHostError):
            topo.route("car-pi", "mars")

    def test_disconnected_hosts(self):
        topo = Topology()
        topo.add_host("a")
        topo.add_host("b")
        with pytest.raises(UnreachableHostError):
            topo.route("a", "b")

    def test_same_host_rejected(self):
        topo = autolearn_topology()
        with pytest.raises(UnreachableHostError):
            topo.route("car-pi", "car-pi")

    def test_connect_unknown_host(self):
        topo = Topology()
        topo.add_host("a")
        with pytest.raises(UnreachableHostError):
            topo.connect("a", "ghost", CAMPUS_LAN)


class TestTransfers:
    def test_rsync_tub_accounts_jpeg_compression(self, tub_factory):
        tub = tub_factory(n_records=30)
        route = autolearn_topology().route("car-pi", "chi-uc")
        result = rsync_tub(tub, route, rng=0)
        assert result.nbytes_wire < result.nbytes_logical
        assert result.seconds > 0
        assert result.files > 30

    def test_rsync_raw_mode(self, tub_factory):
        tub = tub_factory(n_records=10)
        route = autolearn_topology().route("car-pi", "chi-uc")
        raw = rsync_tub(tub, route, as_jpeg=False, rng=0)
        assert raw.nbytes_wire == raw.nbytes_logical

    def test_incremental_rsync_cheaper(self, tub_factory):
        tub = tub_factory(n_records=30)
        route = autolearn_topology().route("car-pi", "chi-uc")
        full = rsync_tub(tub, route, rng=0)
        incremental = rsync_tub(tub, route, already_synced_fraction=0.9, rng=0)
        assert incremental.nbytes_wire < full.nbytes_wire / 5

    def test_clock_advanced(self, tub_factory):
        tub = tub_factory(n_records=10)
        route = autolearn_topology().route("car-pi", "chi-uc")
        clock = Clock()
        result = rsync_tub(tub, route, clock=clock, rng=0)
        assert clock.now == pytest.approx(result.seconds)

    def test_scp_model_weights(self):
        route = autolearn_topology().route("chi-uc", "car-pi")
        result = scp_bytes(3_000_000, route, rng=0)
        assert result.files == 1
        assert result.throughput_bps > 0
        with pytest.raises(TransferError):
            scp_bytes(-1, route)

    def test_bad_synced_fraction(self, tub_factory):
        tub = tub_factory(n_records=5)
        route = autolearn_topology().route("car-pi", "chi-uc")
        with pytest.raises(TransferError):
            rsync_tub(tub, route, already_synced_fraction=1.5)

    def test_ssh_tunnel_counts_requests(self):
        route = autolearn_topology().route("laptop", "car-pi")
        tunnel = SSHTunnel(route, rng=0)
        t1 = tunnel.request(2048)
        t2 = tunnel.request(2048)
        assert tunnel.requests == 2
        assert t1 > 0 and t2 > 0


class TestTransferResilience:
    def route(self):
        return autolearn_topology().route("car-pi", "chi-uc")

    def plan(self, at_s=0.0, duration_s=1.0):
        from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec

        return FaultInjector(FaultPlan([
            FaultSpec(FaultKind.LINK_PARTITION, "car-pi->chi-uc",
                      at_s=at_s, duration_s=duration_s),
        ]))

    def test_partition_without_retry_raises(self, tub_factory):
        from repro.common.errors import LinkPartitionError

        tub = tub_factory(n_records=10)
        clock = Clock()
        with pytest.raises(LinkPartitionError):
            rsync_tub(tub, self.route(), clock=clock, rng=0,
                      injector=self.plan())

    def test_partition_is_a_transfer_error_too(self):
        from repro.common.errors import LinkPartitionError

        with pytest.raises(TransferError):
            raise LinkPartitionError("dual-typed")

    def test_retry_rides_out_the_partition(self, tub_factory):
        from repro.faults import RetryPolicy

        tub = tub_factory(n_records=10)
        clock = Clock()
        retry = RetryPolicy(base_s=0.4, factor=2.0, cap_s=2.0,
                            max_attempts=6, jitter=0.0)
        result = rsync_tub(tub, self.route(), clock=clock, rng=0,
                           injector=self.plan(duration_s=1.0), retry=retry)
        # Backoff sleeps (0.4 + 0.8 s) carried the loop past the window.
        assert clock.now == pytest.approx(1.2 + result.seconds)

    def test_retry_exhaustion_on_long_partition(self):
        from repro.common.errors import RetryExhaustedError
        from repro.faults import RetryPolicy

        clock = Clock()
        retry = RetryPolicy(base_s=0.1, factor=1.0, cap_s=0.1,
                            max_attempts=3, jitter=0.0)
        with pytest.raises(RetryExhaustedError):
            scp_bytes(1_000, self.route(), clock=clock, rng=0,
                      injector=self.plan(duration_s=100.0), retry=retry)

    def test_deadline_bounds_the_retry_loop(self):
        from repro.common.errors import RetryExhaustedError
        from repro.faults import RetryPolicy

        clock = Clock()
        retry = RetryPolicy(base_s=1.0, factor=1.0, cap_s=1.0,
                            max_attempts=100, jitter=0.0)
        with pytest.raises(RetryExhaustedError):
            scp_bytes(1_000, self.route(), clock=clock, rng=0,
                      injector=self.plan(duration_s=100.0), retry=retry,
                      deadline_s=3.0)
        assert clock.now <= 3.0

    def test_breaker_opens_and_fails_fast(self):
        from repro.common.errors import CircuitOpenError, LinkPartitionError
        from repro.faults import BreakerPolicy, CircuitBreaker

        clock = Clock()
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2,
                                               open_s=10.0))
        injector = self.plan(duration_s=100.0)
        for _ in range(2):
            with pytest.raises(LinkPartitionError):
                scp_bytes(1_000, self.route(), clock=clock, rng=0,
                          injector=injector, breaker=breaker)
        with pytest.raises(CircuitOpenError):
            scp_bytes(1_000, self.route(), clock=clock, rng=0,
                      injector=injector, breaker=breaker)

    def test_degraded_link_inflates_wire_time(self):
        from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec

        injector = FaultInjector(FaultPlan([
            FaultSpec(FaultKind.LINK_DEGRADE, "car-pi->chi-uc",
                      at_s=0.0, duration_s=10.0, factor=5.0),
        ]))
        clean = scp_bytes(5_000_000, self.route(), rng=0)
        degraded = scp_bytes(5_000_000, self.route(), rng=0,
                             injector=injector, clock=Clock())
        assert degraded.seconds == pytest.approx(5.0 * clean.seconds)
