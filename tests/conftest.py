"""Shared fixtures: small tracks, tubs, and trained models.

Everything here is sized for speed: 40x56 camera frames, ~0.2-scale
networks, short drives.  Session-scoped fixtures amortise the expensive
artefacts (a recorded tub, a trained model) across the whole run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.rng import ensure_rng
from repro.core.drivers import PurePursuitDriver, StudentDriver
from repro.data.records import DriveRecord
from repro.data.tub import Tub
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.serve.replica import BatchLatencyModel
from repro.serve.service import InferenceService
from repro.sim.renderer import CameraParams
from repro.sim.session import DrivingSession
from repro.sim.tracks import default_tape_oval, waveshare_track
from repro.testbed.hardware import GPU_SPECS
from repro.vehicle.builder import build_recording_vehicle

#: Small camera used across the suite.
TEST_H, TEST_W = 40, 56


def pytest_addoption(parser):
    """Register ``--update-goldens`` (regenerate golden-trace files).

    Tier-1 runs never pass it, so goldens are read-only in CI; a human
    (or a deliberate tooling run) updates them after reviewing a diff.
    """
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden files (tests/obs/golden/*.json, "
             "tests/eval/golden/*.json) from the current code",
    )


@pytest.fixture(scope="session")
def oval_track():
    """The paper's default tape oval."""
    return default_tape_oval()


@pytest.fixture(scope="session")
def waveshare():
    """The Waveshare mat."""
    return waveshare_track()


@pytest.fixture()
def small_camera():
    """Low-res camera parameters for fast rendering."""
    return CameraParams(height=TEST_H, width=TEST_W)


@pytest.fixture()
def session_factory(oval_track):
    """Factory for small driving sessions on the oval."""

    def make(seed=0, render=True, track=None, **kwargs):
        return DrivingSession(
            track if track is not None else oval_track,
            camera=CameraParams(height=TEST_H, width=TEST_W),
            seed=seed,
            render=render,
            **kwargs,
        )

    return make


def make_records(n: int, seed: int = 0, h: int = TEST_H, w: int = TEST_W):
    """Synthetic drive records with plausible telemetry."""
    rng = ensure_rng(seed)
    records = []
    for i in range(n):
        records.append(
            DriveRecord(
                image=rng.integers(0, 255, (h, w, 3), dtype=np.uint8),
                angle=float(np.clip(np.sin(i / 9.0) + rng.normal(0, 0.05), -1, 1)),
                throttle=float(np.clip(0.5 + rng.normal(0, 0.05), -1, 1)),
                cte=float(rng.normal(0, 0.05)),
                speed=float(abs(rng.normal(1.0, 0.2))),
                off_track=False,
                timestamp_ms=i * 50,
            )
        )
    return records


@pytest.fixture()
def tub_factory(tmp_path):
    """Create tubs filled with synthetic records."""

    counter = {"n": 0}

    def make(n_records=60, seed=0, metadata=None):
        counter["n"] += 1
        tub = Tub.create(
            tmp_path / f"tub{counter['n']}",
            metadata=metadata or {"track_half_width": 0.35},
        )
        with tub.bulk():
            for record in make_records(n_records, seed=seed):
                tub.write_record(record)
        return tub

    return make


@pytest.fixture()
def fault_plan_factory():
    """Build :class:`FaultPlan`s from specs or compact tuples.

    Accepts ready :class:`FaultSpec` objects or ``(kind, target, at_s,
    ...)`` tuples in :class:`FaultSpec` argument order.
    """

    def make(*specs):
        built = [
            spec if isinstance(spec, FaultSpec) else FaultSpec(*spec)
            for spec in specs
        ]
        return FaultPlan(built)

    return make


@pytest.fixture()
def chaos_service(fault_plan_factory):
    """Factory for inference services, optionally under fault injection.

    ``plan=None`` gives a plain fault-free service (the baseline the
    chaos assertions compare against); otherwise the plan is wired
    through a seeded :class:`FaultInjector`.
    """

    def make(
        plan=None, seed=5, gpu="V100", flops_per_frame=1e8, tracer=None, **kw
    ):
        if plan is not None and not isinstance(plan, FaultPlan):
            plan = fault_plan_factory(*plan)
        injector = (
            FaultInjector(plan, seed=seed, tracer=tracer)
            if plan is not None
            else None
        )
        kw.setdefault("keep_requests", True)
        latency_model = BatchLatencyModel.from_gpu(
            GPU_SPECS[gpu], flops_per_frame
        )
        return InferenceService(
            latency_model, seed=seed, injector=injector, tracer=tracer, **kw
        )

    return make


@pytest.fixture(scope="session")
def driven_tub(tmp_path_factory, oval_track):
    """A tub recorded by a decent scripted student on the oval."""
    root = tmp_path_factory.mktemp("driven")
    session = DrivingSession(
        oval_track, camera=CameraParams(height=TEST_H, width=TEST_W), seed=11
    )
    driver = StudentDriver(PurePursuitDriver(session), skill=0.9, rng=12)
    tub = Tub.create(
        root / "tub",
        metadata={"track": oval_track.name, "track_half_width": oval_track.half_width},
    )
    vehicle = build_recording_vehicle(session, driver, tub)
    vehicle.start(max_loop_count=700)
    return tub


@pytest.fixture(scope="session")
def trained_linear(driven_tub):
    """A small linear model trained on the driven tub (session-scoped)."""
    from repro.data.datasets import TubDataset
    from repro.ml.models.factory import create_model
    from repro.ml.training import Trainer

    dataset = TubDataset(driven_tub)
    split = dataset.split(val_fraction=0.15, rng=5, targets="both")
    model = create_model("linear", input_shape=(TEST_H, TEST_W, 3), scale=0.4, seed=7)
    Trainer(batch_size=64, epochs=6, shuffle_seed=3).fit(model, split)
    return model
