"""Flip augmentation inside the split pipeline."""

import numpy as np
import pytest

from repro.common.errors import DataError
from repro.data.datasets import TubDataset


class TestFlipAugmentSplit:
    def test_doubles_samples(self, tub_factory):
        dataset = TubDataset(tub_factory(n_records=30))
        plain = dataset.split(rng=0, val_fraction=0.2)
        flipped = dataset.split(rng=0, val_fraction=0.2, flip_augment=True)
        total_plain = len(plain.x_train) + len(plain.x_val)
        total_flipped = len(flipped.x_train) + len(flipped.x_val)
        assert total_flipped == 2 * total_plain

    def test_angle_distribution_symmetric(self, tub_factory):
        dataset = TubDataset(tub_factory(n_records=60, seed=3))
        split = dataset.split(rng=0, val_fraction=0.2, flip_augment=True)
        angles = np.concatenate([split.y_train[:, 0], split.y_val[:, 0]])
        assert angles.mean() == pytest.approx(0.0, abs=1e-6)

    def test_mirrored_images_present(self, tub_factory):
        tub = tub_factory(n_records=10, seed=5)
        dataset = TubDataset(tub)
        images, angles, _ = dataset.load_arrays()
        split = dataset.split(rng=0, val_fraction=0.2, flip_augment=True)
        everything = np.concatenate([split.x_train, split.x_val])
        original = images[0].astype(np.float32) / 255.0
        mirrored = original[:, ::-1]
        found_mirror = any(
            np.allclose(sample, mirrored, atol=1e-6) for sample in everything
        )
        assert found_mirror

    def test_incompatible_with_sequences(self, tub_factory):
        dataset = TubDataset(tub_factory(n_records=20))
        with pytest.raises(DataError):
            dataset.split(sequence_length=3, flip_augment=True)

    def test_throttle_unchanged_by_flip(self, tub_factory):
        dataset = TubDataset(tub_factory(n_records=30, seed=7))
        plain = dataset.split(rng=0, val_fraction=0.2)
        flipped = dataset.split(rng=0, val_fraction=0.2, flip_augment=True)
        plain_throttles = np.sort(
            np.concatenate([plain.y_train[:, 1], plain.y_val[:, 1]])
        )
        flip_throttles = np.sort(
            np.concatenate([flipped.y_train[:, 1], flipped.y_val[:, 1]])
        )
        # Every original throttle appears exactly twice.
        assert np.allclose(flip_throttles[::2], plain_throttles)
        assert np.allclose(flip_throttles[1::2], plain_throttles)
