"""Dataset loading: splits, windows, binning, augmentation, batching."""

import numpy as np
import pytest

from repro.common.errors import DataError
from repro.data.datasets import (
    N_STEERING_BINS,
    TubDataset,
    augment_brightness,
    augment_flip,
    images_to_float,
    linear_bin,
    linear_unbin,
)


class TestBinning:
    def test_bin_extremes(self):
        bins = linear_bin(np.array([-1.0, 0.0, 1.0]))
        assert bins.shape == (3, N_STEERING_BINS)
        assert bins[0].argmax() == 0
        assert bins[1].argmax() == 7
        assert bins[2].argmax() == 14

    def test_one_hot(self):
        bins = linear_bin(np.linspace(-1, 1, 20))
        assert np.allclose(bins.sum(axis=1), 1.0)

    def test_round_trip_error_bounded(self):
        values = np.linspace(-1, 1, 101)
        recovered = linear_unbin(linear_bin(values))
        # Max quantisation error is half a bin width.
        assert np.abs(recovered - values).max() <= 1.0 / (N_STEERING_BINS - 1) + 1e-9

    def test_out_of_range_clipped(self):
        bins = linear_bin(np.array([5.0, -5.0]))
        assert bins[0].argmax() == 14
        assert bins[1].argmax() == 0

    def test_unbin_validates_shape(self):
        with pytest.raises(DataError):
            linear_unbin(np.zeros((2, 7)))


class TestAugmentation:
    def test_flip_negates_steering(self):
        rng = np.random.default_rng(0)
        images = rng.integers(0, 255, (4, 8, 10, 3), dtype=np.uint8)
        angles = np.array([0.5, -0.2, 0.0, 1.0])
        flipped, neg = augment_flip(images, angles)
        assert np.array_equal(neg, -angles)
        assert np.array_equal(flipped[:, :, ::-1], images)

    def test_brightness_preserves_dtype_and_shape(self):
        images = np.full((3, 8, 10, 3), 128, dtype=np.uint8)
        out = augment_brightness(images, rng=0)
        assert out.dtype == np.uint8
        assert out.shape == images.shape
        # Per-frame gains differ.
        means = out.reshape(3, -1).mean(axis=1)
        assert means.std() > 1.0

    def test_images_to_float_range(self):
        images = np.array([[[[0, 128, 255]]]], dtype=np.uint8)
        out = images_to_float(images)
        assert out.dtype == np.float32
        assert out.min() == 0.0 and out.max() == 1.0

    def test_images_to_float_rejects_float(self):
        with pytest.raises(DataError):
            images_to_float(np.zeros((1, 2, 2, 3), dtype=np.float32))


class TestSplits:
    def test_split_sizes(self, tub_factory):
        dataset = TubDataset(tub_factory(n_records=50))
        split = dataset.split(val_fraction=0.2, rng=0)
        assert len(split.x_train) == 40
        assert len(split.x_val) == 10
        assert split.x_train.dtype == np.float32

    def test_targets_layouts(self, tub_factory):
        dataset = TubDataset(tub_factory(n_records=30))
        assert dataset.split(rng=0, targets="both").y_train.shape[1] == 2
        assert dataset.split(rng=0, targets="angle").y_train.shape[1] == 1
        assert dataset.split(rng=0, targets="throttle").y_train.shape[1] == 1
        cat = dataset.split(rng=0, targets="categorical")
        assert cat.y_train.shape[1] == N_STEERING_BINS + 1

    def test_unknown_targets(self, tub_factory):
        with pytest.raises(DataError):
            TubDataset(tub_factory(n_records=10)).split(targets="waypoints")

    def test_deleted_records_excluded(self, tub_factory):
        tub = tub_factory(n_records=30)
        tub.mark_deleted(range(10))
        dataset = TubDataset(tub)
        assert len(dataset) == 20
        images, angles, throttles = dataset.load_arrays()
        assert len(images) == 20

    def test_split_deterministic(self, tub_factory):
        tub = tub_factory(n_records=30)
        a = TubDataset(tub).split(rng=7)
        b = TubDataset(tub).split(rng=7)
        assert np.array_equal(a.y_train, b.y_train)

    def test_sequence_windows(self, tub_factory):
        dataset = TubDataset(tub_factory(n_records=20))
        split = dataset.split(rng=0, sequence_length=4, val_fraction=0.2)
        total = len(split.x_train) + len(split.x_val)
        assert total == 20 - 3  # windows per tub: n - T + 1
        assert split.x_train.shape[1:4] == (4, 40, 56)

    def test_sequence_windows_do_not_cross_tubs(self, tub_factory):
        tubs = [tub_factory(n_records=10, seed=i) for i in range(2)]
        dataset = TubDataset(tubs)
        split = dataset.split(rng=0, sequence_length=4, val_fraction=0.2)
        assert len(split.x_train) + len(split.x_val) == 2 * (10 - 3)

    def test_sequence_too_long(self, tub_factory):
        dataset = TubDataset(tub_factory(n_records=5))
        with pytest.raises(DataError):
            dataset.split(sequence_length=10)

    def test_memory_split(self, tub_factory):
        dataset = TubDataset(tub_factory(n_records=20))
        split = dataset.split_memory(mem_length=3, rng=0)
        x_img, x_hist = split.x_train
        assert x_hist.shape[1:] == (3, 2)
        assert len(x_img) == len(x_hist) == len(split.y_train)
        total = len(split.y_train) + len(split.y_val)
        assert total == 20 - 3

    def test_memory_history_matches_labels(self, tub_factory):
        # History at window t must equal the labels of records t-3..t-1.
        tub = tub_factory(n_records=12, seed=4)
        dataset = TubDataset(tub)
        images, angles, throttles = dataset.load_arrays()
        split = dataset.split_memory(mem_length=2, rng=0, val_fraction=0.2)
        x_img, x_hist = split.x_train
        # Find which record each training sample is by matching images.
        floats = images.astype(np.float32) / 255.0
        for sample in range(min(4, len(x_img))):
            match = np.where(
                np.all(np.isclose(floats, x_img[sample]), axis=(1, 2, 3))
            )[0]
            t = int(match[0])
            expected = np.column_stack(
                [angles[t - 2 : t], throttles[t - 2 : t]]
            )
            assert np.allclose(x_hist[sample], expected, atol=1e-6)

    def test_bad_val_fraction(self, tub_factory):
        with pytest.raises(DataError):
            TubDataset(tub_factory(n_records=10)).split(val_fraction=0.0)

    def test_empty_dataset(self, tub_factory):
        tub = tub_factory(n_records=5)
        tub.mark_deleted(range(5))
        with pytest.raises(DataError):
            TubDataset(tub).load_arrays()

    def test_no_tubs(self):
        with pytest.raises(DataError):
            TubDataset([])


class TestBatches:
    def test_covers_everything_once(self):
        x = np.arange(10)[:, None]
        y = np.arange(10)[:, None]
        seen = []
        for xb, yb in TubDataset.batches(x, y, batch_size=3, rng=0):
            seen.extend(xb[:, 0].tolist())
        assert sorted(seen) == list(range(10))

    def test_no_shuffle_preserves_order(self):
        x = np.arange(6)[:, None]
        batches = list(TubDataset.batches(x, x, 4, shuffle=False))
        assert batches[0][0][:, 0].tolist() == [0, 1, 2, 3]

    def test_tuple_x_sliced_consistently(self):
        x = (np.arange(10)[:, None], np.arange(10)[:, None] * 2)
        y = np.arange(10)[:, None]
        for (xa, xb), yb in TubDataset.batches(x, y, 4, rng=1):
            assert np.array_equal(xb, xa * 2)
            assert np.array_equal(yb, xa)

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            list(TubDataset.batches(np.zeros(5), np.zeros(4), 2))

    def test_statistics(self, tub_factory):
        stats = TubDataset(tub_factory(n_records=25)).statistics()
        assert stats["records"] == 25
        assert 0 <= stats["throttle_mean"] <= 1
