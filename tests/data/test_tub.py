"""Tub storage: layout, round-trips, deletion, corruption detection."""

import json

import numpy as np
import pytest

from repro.common.errors import (
    CorruptCatalogError,
    DataError,
    RecordNotFoundError,
    TubError,
)
from repro.data.catalog import Catalog
from repro.data.records import DriveRecord
from repro.data.tub import Tub

from tests.conftest import make_records


class TestLayout:
    def test_on_disk_structure(self, tub_factory):
        tub = tub_factory(n_records=5)
        assert (tub.path / "manifest.json").exists()
        assert (tub.path / "catalog_0.catalog").exists()
        assert (tub.path / "catalog_0.catalog_manifest").exists()
        assert len(list((tub.path / "images").glob("*.npy"))) == 5

    def test_image_named_by_index(self, tub_factory):
        tub = tub_factory(n_records=3)
        fields = tub.read_fields(2)
        assert fields["cam/image_array"] == "2_cam_image_array_.npy"

    def test_catalog_rotation(self, tmp_path):
        tub = Tub.create(tmp_path / "rot", max_catalog_len=10)
        with tub.bulk():
            for record in make_records(25):
                tub.write_record(record)
        names = sorted(p.name for p in tub.path.glob("*.catalog"))
        assert names == ["catalog_0.catalog", "catalog_1.catalog", "catalog_2.catalog"]

    def test_create_twice_rejected(self, tmp_path):
        Tub.create(tmp_path / "t")
        with pytest.raises(TubError):
            Tub.create(tmp_path / "t")

    def test_open_non_tub_rejected(self, tmp_path):
        with pytest.raises(TubError):
            Tub(tmp_path)


class TestRoundTrip:
    def test_record_fields_survive(self, tub_factory):
        tub = tub_factory(n_records=10, seed=3)
        originals = make_records(10, seed=3)
        reopened = Tub(tub.path)
        for i, original in enumerate(originals):
            loaded = reopened.read_record(i)
            assert loaded.angle == pytest.approx(original.angle, abs=1e-6)
            assert loaded.throttle == pytest.approx(original.throttle, abs=1e-6)
            assert loaded.mode == original.mode
            assert np.array_equal(loaded.image, original.image)

    def test_extras_survive(self, tmp_path):
        tub = Tub.create(tmp_path / "x")
        record = make_records(1)[0]
        record.extras["gps/lat"] = 38.95
        tub.write_record(record)
        assert Tub(tub.path).read_record(0).extras["gps/lat"] == 38.95

    def test_iteration_order(self, tub_factory):
        tub = tub_factory(n_records=15)
        indexes = [r.timestamp_ms for r in tub]
        assert indexes == sorted(indexes)

    def test_missing_record(self, tub_factory):
        tub = tub_factory(n_records=3)
        with pytest.raises(RecordNotFoundError):
            tub.read_fields(99)


class TestDeletion:
    def test_mark_and_restore(self, tub_factory):
        tub = tub_factory(n_records=10)
        tub.mark_deleted([2, 3, 4])
        assert tub.active_count == 7
        assert 3 not in tub.indexes()
        tub.restore([3])
        assert tub.active_count == 8
        assert 3 in tub.indexes()

    def test_deletion_persists_in_manifest(self, tub_factory):
        tub = tub_factory(n_records=10)
        tub.mark_deleted(range(0, 5))
        reopened = Tub(tub.path)
        assert reopened.deleted_indexes == {0, 1, 2, 3, 4}

    def test_mark_invalid_index_rejected(self, tub_factory):
        tub = tub_factory(n_records=3)
        with pytest.raises(RecordNotFoundError):
            tub.mark_deleted([42])

    def test_iter_skips_deleted(self, tub_factory):
        tub = tub_factory(n_records=6)
        tub.mark_deleted([0, 1])
        assert len(list(tub)) == 4

    def test_vacuum_removes_images(self, tub_factory):
        tub = tub_factory(n_records=6)
        tub.mark_deleted([1, 2])
        removed = tub.vacuum()
        assert removed == 2
        assert not (tub.images_dir / "1_cam_image_array_.npy").exists()
        with pytest.raises(TubError):
            tub.load_image(1)
        # Non-deleted images untouched.
        assert tub.load_image(0).shape[2] == 3


class TestCorruption:
    def test_truncated_catalog_detected(self, tub_factory):
        tub = tub_factory(n_records=5)
        catalog = tub.path / "catalog_0.catalog"
        data = catalog.read_bytes()
        catalog.write_bytes(data[: len(data) - 10])
        with pytest.raises(CorruptCatalogError):
            Tub(tub.path)

    def test_missing_sidecar_detected(self, tub_factory):
        tub = tub_factory(n_records=5)
        (tub.path / "catalog_0.catalog_manifest").unlink()
        with pytest.raises(CorruptCatalogError):
            Tub(tub.path)

    def test_unparseable_sidecar(self, tub_factory):
        tub = tub_factory(n_records=2)
        (tub.path / "catalog_0.catalog_manifest").write_text("{broken")
        with pytest.raises(CorruptCatalogError):
            Tub(tub.path)

    def test_catalog_index_mismatch(self, tmp_path):
        cat = Catalog(tmp_path / "c.catalog", start_index=0)
        cat.append({"user/angle": 0.1})
        # Tamper with the stored index but keep the line length equal.
        text = (tmp_path / "c.catalog").read_text().replace('"_index":0', '"_index":7')
        (tmp_path / "c.catalog").write_text(text)
        with pytest.raises(CorruptCatalogError):
            cat.read(0)


class TestBulk:
    def test_bulk_defers_manifest(self, tmp_path):
        tub = Tub.create(tmp_path / "b")
        with tub.bulk():
            for record in make_records(30):
                tub.write_record(record)
            # Inside the bulk block the tub-level manifest is stale.
            manifest = json.loads((tub.path / "manifest.json").read_text())
            assert manifest["catalogs"] == []
        manifest = json.loads((tub.path / "manifest.json").read_text())
        assert manifest["catalogs"] == ["catalog_0.catalog"]
        assert len(Tub(tub.path)) == 30

    def test_size_and_clone(self, tub_factory, tmp_path):
        tub = tub_factory(n_records=4)
        assert tub.size_bytes() > 4 * 40 * 56 * 3
        clone = tub.clone_to(tmp_path / "cloned")
        assert len(clone) == 4
        with pytest.raises(TubError):
            tub.clone_to(tmp_path / "cloned")


class TestDriveRecordValidation:
    def test_bad_image(self):
        with pytest.raises(DataError):
            DriveRecord(image=np.zeros((4, 4), dtype=np.uint8), angle=0, throttle=0)

    def test_bad_dtype(self):
        with pytest.raises(DataError):
            DriveRecord(image=np.zeros((4, 4, 3), dtype=np.float32), angle=0, throttle=0)

    def test_angle_out_of_range(self):
        img = np.zeros((4, 4, 3), dtype=np.uint8)
        with pytest.raises(DataError):
            DriveRecord(image=img, angle=1.5, throttle=0)

    def test_bad_mode(self):
        img = np.zeros((4, 4, 3), dtype=np.uint8)
        with pytest.raises(DataError):
            DriveRecord(image=img, angle=0, throttle=0, mode="autopilot")
