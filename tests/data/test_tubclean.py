"""tubclean: manual review segments and automatic bad-span detection."""

import numpy as np
import pytest

from repro.data.records import DriveRecord
from repro.data.tub import Tub
from repro.data.tubclean import TubCleaner


def build_tub(tmp_path, spec):
    """spec: list of (count, kwargs) runs of records."""
    tub = Tub.create(tmp_path / "tub", metadata={"track_half_width": 0.35})
    rng = np.random.default_rng(0)
    index = 0
    with tub.bulk():
        for count, kwargs in spec:
            for _ in range(count):
                defaults = dict(
                    angle=0.1, throttle=0.5, cte=0.02, speed=1.0, off_track=False
                )
                defaults.update(kwargs)
                tub.write_record(
                    DriveRecord(
                        image=rng.integers(0, 255, (8, 10, 3), dtype=np.uint8),
                        timestamp_ms=index * 50,
                        **defaults,
                    )
                )
                index += 1
    return tub


class TestAutomaticDetection:
    def test_crash_span_padded(self, tmp_path):
        tub = build_tub(tmp_path, [(50, {}), (4, {"off_track": True}), (50, {})])
        spans = TubCleaner(tub, crash_margin=5).find_bad_spans()
        crash = [s for s in spans if s.reason == "crash"]
        assert len(crash) == 1
        assert crash[0].start == 45  # 50 - margin
        assert crash[0].stop == 59  # 54 + margin

    def test_offside_detected(self, tmp_path):
        tub = build_tub(tmp_path, [(30, {}), (6, {"cte": 0.34}), (30, {})])
        spans = TubCleaner(tub).find_bad_spans(half_width=0.35)
        offside = [s for s in spans if s.reason == "offside"]
        assert len(offside) == 1
        assert offside[0].start == 30
        assert offside[0].stop == 36

    def test_stall_requires_min_length(self, tmp_path):
        tub = build_tub(
            tmp_path,
            [(20, {}), (5, {"speed": 0.0}), (20, {}), (30, {"speed": 0.0}), (10, {})],
        )
        spans = TubCleaner(tub, stall_min_steps=20).find_bad_spans()
        stalls = [s for s in spans if s.reason == "stalled"]
        assert len(stalls) == 1
        assert stalls[0].start == 45

    def test_clean_marks_records(self, tmp_path):
        tub = build_tub(tmp_path, [(40, {}), (4, {"off_track": True}), (40, {})])
        cleaner = TubCleaner(tub, crash_margin=3)
        marked = cleaner.clean()
        assert marked == 10  # 4 crash + 2*3 margin
        assert tub.active_count == 74

    def test_clean_idempotent(self, tmp_path):
        tub = build_tub(tmp_path, [(40, {}), (4, {"off_track": True}), (40, {})])
        cleaner = TubCleaner(tub, crash_margin=3)
        first = cleaner.clean()
        second = cleaner.clean()
        assert first == 10
        assert second == 0

    def test_clean_on_clean_data_is_noop(self, tmp_path):
        tub = build_tub(tmp_path, [(60, {})])
        assert TubCleaner(tub).clean() == 0

    def test_empty_tub(self, tmp_path):
        tub = Tub.create(tmp_path / "empty", metadata={})
        assert TubCleaner(tub).find_bad_spans() == []

    def test_half_width_from_metadata(self, tmp_path):
        tub = build_tub(tmp_path, [(30, {"cte": 0.33})])
        # With metadata half width 0.35, cte 0.33 > 0.9*0.35 -> offside.
        spans = TubCleaner(tub).find_bad_spans()
        assert any(s.reason == "offside" for s in spans)


class TestManualReview:
    def test_segments_cover_all_records(self, tmp_path):
        tub = build_tub(tmp_path, [(105, {})])
        segments = TubCleaner(tub).review(segment_len=25)
        assert len(segments) == 5
        assert segments[0].start == 0
        assert segments[-1].stop == 105

    def test_segment_statistics(self, tmp_path):
        tub = build_tub(tmp_path, [(50, {}), (50, {"off_track": True, "cte": 0.4})])
        segments = TubCleaner(tub).review(segment_len=50)
        assert segments[0].crash_count == 0
        assert segments[1].crash_count == 50
        assert segments[1].max_abs_cte > segments[0].max_abs_cte

    def test_mark_segment(self, tmp_path):
        tub = build_tub(tmp_path, [(60, {})])
        cleaner = TubCleaner(tub)
        segment = cleaner.review(segment_len=20)[1]
        cleaner.mark_segment(segment)
        assert tub.deleted_indexes == set(range(20, 40))

    def test_mark_range_skips_missing(self, tmp_path):
        tub = build_tub(tmp_path, [(30, {})])
        cleaner = TubCleaner(tub)
        cleaner.mark_range(25, 40)  # extends past the end
        assert tub.deleted_indexes == set(range(25, 30))

    def test_bad_segment_len(self, tmp_path):
        tub = build_tub(tmp_path, [(10, {})])
        with pytest.raises(ValueError):
            TubCleaner(tub).review(segment_len=0)
