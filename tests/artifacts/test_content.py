"""The shipped educational materials (§3.1/§3.5)."""

import pytest

from repro.artifacts.content import (
    COURSE_OBJECTIVES,
    HARDWARE_KIT,
    TA_CHECKLIST,
    build_autolearn_gitbook,
    kit_total_usd,
    notebook_bundle,
)


class TestHardwareKit:
    def test_kit_costs_about_200_dollars(self):
        # §3.1: "inexpensive ~($200) ... car kits and accessories".
        assert 180.0 <= kit_total_usd() <= 230.0

    def test_optional_items_excluded_from_required_total(self):
        assert kit_total_usd(required_only=False) > kit_total_usd()

    def test_alternatives_documented(self):
        with_alt = [item for item in HARDWARE_KIT if item.alternative]
        assert len(with_alt) >= 3  # "what hardware to buy and alternatives"


class TestCourseMaterials:
    def test_objectives_cover_paper_outcomes(self):
        text = " ".join(COURSE_OBJECTIVES)
        for topic in ("hardware", "cloud", "simulation", "ML"):
            assert topic in text

    def test_ta_checklist_is_one_page(self):
        assert 5 <= len(TA_CHECKLIST) <= 15
        assert any("330" in step for step in TA_CHECKLIST)  # track dims


class TestGitBookContent:
    @pytest.fixture(scope="class")
    def book(self):
        return build_autolearn_gitbook()

    def test_educator_pathway(self, book):
        paths = [p.path for p in book.pages_for("educator")]
        assert "educator/ta-checklist.md" in paths
        assert "educator/hardware.md" in paths

    def test_student_pathway_has_four_steps(self, book):
        student = [p for p in book.pages_for("student")
                   if p.path.startswith("student/")]
        assert len(student) == 4

    def test_self_learner_gets_everything(self, book):
        all_paths = {p.path for p in book.pages_for("self-learner")}
        assert any(p.startswith("educator/") for p in all_paths)
        assert any(p.startswith("student/") for p in all_paths)

    def test_pages_have_substance(self, book):
        for path, _title in book.toc():
            assert book.page(path).word_count() >= 10, path

    def test_extensions_page_lists_assignments(self, book):
        content = book.page("educator/extensions.md").content
        for key_phrase in ("reinforcement", "digital twin", "tubclean"):
            assert key_phrase.lower() in content.lower()


class TestNotebookBundle:
    def test_bundle_publishable_to_trovi(self):
        from repro.artifacts.trovi import TroviHub

        bundle = notebook_bundle()
        assert any(name.endswith(".ipynb") for name in bundle)
        hub = TroviHub()
        artifact = hub.publish("AutoLearn", "alicia", files=bundle)
        assert len(artifact.latest.files) == len(bundle)
