"""Trovi hub, §5 impact metrics, GitBook contribution loop."""

import pytest

from repro.artifacts.gitbook import FeedbackChannel, GitBook
from repro.artifacts.metrics import compute_outcomes
from repro.artifacts.trovi import TroviHub
from repro.common.errors import (
    ArtifactError,
    TagNotFoundError,
    VersionNotFoundError,
)


@pytest.fixture()
def hub():
    return TroviHub()


@pytest.fixture()
def artifact(hub):
    return hub.publish(
        "AutoLearn: Learning in the Edge to Cloud Continuum",
        owner="alicia",
        files={"01-collect.ipynb": b"cells", "02-train.ipynb": b"cells"},
        tags={"education", "edge"},
    )


class TestArtifacts:
    def test_publish_creates_first_version(self, artifact):
        assert artifact.latest.number == 1
        assert artifact.latest.files == ("01-collect.ipynb", "02-train.ipynb")

    def test_versions_accumulate(self, hub, artifact):
        hub.publish_version(artifact.artifact_id, {"01-collect.ipynb": b"v2"})
        assert artifact.latest.number == 2
        assert artifact.version(1).number == 1
        with pytest.raises(VersionNotFoundError):
            artifact.version(9)

    def test_content_addressing(self, hub, artifact):
        v2 = hub.publish_version(artifact.artifact_id, {"x": b"same"})
        v3 = hub.publish_version(artifact.artifact_id, {"x": b"same"})
        assert v2.contents_id == v3.contents_id

    def test_empty_artifact_rejected(self, hub):
        with pytest.raises(ArtifactError):
            hub.publish("empty", "o", files={})

    def test_search_by_tag_and_text(self, hub, artifact):
        hub.publish("Other module", "bob", {"x": b"1"}, tags={"wireless"})
        assert hub.search(tag="education") == [artifact]
        assert hub.search(text="edge to cloud") == [artifact]
        assert hub.search(tag="education", text="nonexistent") == []

    def test_import_from_repo_adds_author(self, hub, artifact):
        version = hub.import_from_repo(
            artifact.artifact_id, {"03-eval.ipynb": b"new"}, contributor="kyle"
        )
        assert version.changelog == "merge request from kyle"
        assert "kyle" in artifact.authors

    def test_export_payload(self, hub, artifact):
        payload = hub.export_to_repo(artifact.artifact_id)
        assert payload["version"] == 1
        assert "01-collect.ipynb" in payload["files"]


class TestVersionTags:
    def test_tag_resolve_and_move(self, hub, artifact):
        hub.publish_version(artifact.artifact_id, {"x.ipynb": b"v2"})
        hub.tag_version(artifact.artifact_id, "stable", 1)
        assert hub.resolve(artifact.artifact_id, "stable").number == 1
        hub.tag_version(artifact.artifact_id, "stable", 2)
        assert hub.resolve(artifact.artifact_id, "stable").number == 2

    def test_untag_returns_the_version(self, hub, artifact):
        hub.tag_version(artifact.artifact_id, "canary", 1)
        assert hub.untag_version(artifact.artifact_id, "canary") == 1
        with pytest.raises(TagNotFoundError):
            hub.resolve(artifact.artifact_id, "canary")
        with pytest.raises(TagNotFoundError):
            hub.untag_version(artifact.artifact_id, "canary")

    def test_tag_validation(self, hub, artifact):
        with pytest.raises(ArtifactError):
            hub.tag_version(artifact.artifact_id, "", 1)
        with pytest.raises(VersionNotFoundError):
            hub.tag_version(artifact.artifact_id, "stable", 99)
        with pytest.raises(ArtifactError):
            hub.tag_version("artifact-9999", "stable", 1)

    def test_export_serialises_tags_sorted(self, hub, artifact):
        """Set-typed tags must leave the hub in sorted order only."""
        hub.tag_version(artifact.artifact_id, "stable", 1)
        hub.tag_version(artifact.artifact_id, "candidate", 1)
        payload = hub.export_to_repo(artifact.artifact_id)
        assert payload["tags"] == sorted(payload["tags"])
        assert {"candidate", "stable"} <= set(payload["tags"])
        assert list(payload["version_tags"]) == ["candidate", "stable"]
        assert artifact.sorted_tags == tuple(sorted(artifact.tags))


class TestImpactMetrics:
    def seed_paper_numbers(self, hub, artifact):
        """Reproduce §5's exact counters."""
        for _ in range(7):  # versions 2..8
            hub.clock.advance(60)
            hub.publish_version(artifact.artifact_id, {"01-collect.ipynb": b"x"})
        users = [f"user{i}" for i in range(9)]
        clicks = [4] * 8 + [3]  # 35 total over 9 users
        for user, n in zip(users, clicks):
            hub.view(artifact.artifact_id, user)
            for _ in range(n):
                hub.clock.advance(1)
                hub.launch(artifact.artifact_id, user)
        for user in users[:2]:
            hub.execute_cell(artifact.artifact_id, user)

    def test_section5_counters(self, hub, artifact):
        self.seed_paper_numbers(hub, artifact)
        report = compute_outcomes(hub, artifact.artifact_id)
        assert report.as_row() == {
            "launch_clicks": 35,
            "launching_users": 9,
            "executing_users": 2,
            "versions": 8,
        }

    def test_views_counted_separately(self, hub, artifact):
        self.seed_paper_numbers(hub, artifact)
        report = compute_outcomes(hub, artifact.artifact_id)
        assert report.views == 9

    def test_window_filtering(self, hub, artifact):
        hub.launch(artifact.artifact_id, "early")
        hub.clock.advance(1000)
        hub.launch(artifact.artifact_id, "late")
        report = compute_outcomes(hub, artifact.artifact_id, since=500.0)
        assert report.launch_clicks == 1
        assert report.launching_users == 1

    def test_impact_notes_carried(self, hub, artifact):
        report = compute_outcomes(
            hub, artifact.artifact_id,
            impact_notes=("REU poster: Fowler", "REU poster: Zheng"),
        )
        assert len(report.impact_notes) == 2

    def test_interaction_requires_existing_artifact(self, hub):
        with pytest.raises(ArtifactError):
            hub.view("artifact-9999", "u")
        with pytest.raises(ArtifactError):
            hub.launch("artifact-9999", "u")


class TestGitBook:
    def test_pages_and_toc(self):
        book = GitBook()
        book.add_page("setup/car.md", "Assemble the car", "...", audience="student")
        book.add_page("teach/checklist.md", "TA checklist", "...", audience="educator")
        assert len(book.toc()) == 2
        with pytest.raises(ArtifactError):
            book.add_page("setup/car.md", "dup", "...")

    def test_audience_pathways(self):
        book = GitBook()
        book.add_page("s.md", "Student page", "...", audience="student")
        book.add_page("e.md", "Educator page", "...", audience="educator")
        student_paths = [p.path for p in book.pages_for("student")]
        assert student_paths == ["s.md"]
        # Self-learners combine both documentation modules (§3.5).
        self_paths = [p.path for p in book.pages_for("self-learner")]
        assert self_paths == ["e.md", "s.md"]

    def test_invalid_audience(self):
        with pytest.raises(ArtifactError):
            GitBook().add_page("x.md", "t", "c", audience="robot")

    def test_merge_request_lifecycle(self):
        book = GitBook()
        book.add_page("a.md", "A", "old")
        mr = book.fork_and_edit("kyle", "improve A", {"a.md": "new", "b.md": "added"})
        assert mr.state == "open"
        book.merge(mr.mr_id)
        assert book.page("a.md").content == "new"
        assert book.page("b.md").content == "added"
        with pytest.raises(ArtifactError):
            book.merge(mr.mr_id)  # already merged

    def test_close_merge_request(self):
        book = GitBook()
        book.add_page("a.md", "A", "old")
        mr = book.fork_and_edit("kyle", "bad idea", {"a.md": "worse"})
        book.close(mr.mr_id)
        assert book.page("a.md").content == "old"

    def test_empty_mr_rejected(self):
        with pytest.raises(ArtifactError):
            GitBook().fork_and_edit("kyle", "nothing", {})

    def test_feedback_channel(self):
        channel = FeedbackChannel()
        channel.post("prof", "Used AutoLearn in my robotics class this semester")
        channel.post("stu", "The rsync step failed for me")
        assert len(channel.posts) == 2
        assert len(channel.case_studies()) == 1
        with pytest.raises(ArtifactError):
            channel.post("x", "   ")
