"""Hardware catalog and the GPU cost model (E2 shape)."""

import pytest

from repro.common.errors import ConfigurationError, NoSuchResourceError
from repro.testbed.compute import (
    TrainingJob,
    estimate_batch_time,
    estimate_training_time,
)
from repro.testbed.hardware import GPU_SPECS, NODE_TYPES, gpu_spec, node_type


class TestCatalog:
    def test_paper_inventory_counts(self):
        # "40 nodes with a single Nvidia RTX6000 GPU"
        rtx = node_type("gpu_rtx_6000")
        assert rtx.node_count == 40
        assert rtx.gpu_count == 1
        # "sets of 4 nodes each with 4x Nvidia V100, P100, or A100"
        for name in ("gpu_v100", "gpu_p100", "gpu_a100"):
            nt = node_type(name)
            assert nt.node_count == 4
            assert nt.gpu_count == 4
            assert nt.interconnect == "InfiniBand"

    def test_other_architectures_present(self):
        # "Smaller numbers ... (Nvidia M40, K80, AMD MI100)"
        for gpu in ("M40", "K80", "MI100"):
            assert gpu in GPU_SPECS

    def test_paper_training_matrix_gpus(self):
        # §3.3: "A100, V100, v100NVLINK, RTX6000, and P100"
        for gpu in ("A100", "V100", "V100-NVLINK", "RTX6000", "P100"):
            assert gpu_spec(gpu).effective_flops > 0

    def test_unknown_lookups(self):
        with pytest.raises(NoSuchResourceError):
            gpu_spec("H100")
        with pytest.raises(NoSuchResourceError):
            node_type("gpu_h100")

    def test_cpu_nodes_have_no_gpu(self):
        assert node_type("compute_skylake").gpu_spec() is None


class TestCostModel:
    def job(self, **kw):
        defaults = dict(flops_per_sample=3e8, n_samples=8000, epochs=10)
        defaults.update(kw)
        return TrainingJob(**defaults)

    def test_paper_ordering_single_gpu(self):
        times = {
            g: estimate_training_time(self.job(), GPU_SPECS[g])
            for g in ("A100", "V100-NVLINK", "V100", "RTX6000", "P100")
        }
        ranked = sorted(times, key=times.get)
        assert ranked == ["A100", "V100-NVLINK", "V100", "RTX6000", "P100"]

    def test_legacy_gpus_slowest(self):
        modern = estimate_training_time(self.job(), GPU_SPECS["A100"])
        for old in ("K80", "M40"):
            assert estimate_training_time(self.job(), GPU_SPECS[old]) > modern

    def test_multi_gpu_speedup_sublinear(self):
        v100 = GPU_SPECS["V100"]
        one = estimate_training_time(self.job(), v100, gpu_count=1)
        four = estimate_training_time(self.job(), v100, gpu_count=4)
        assert four < one
        assert four > one / 4.0  # sub-linear

    def test_nvlink_scales_better(self):
        plain = GPU_SPECS["V100"]
        nvlink = GPU_SPECS["V100-NVLINK"]
        ratio_plain = estimate_training_time(self.job(), plain, 4) / (
            estimate_training_time(self.job(), plain, 1)
        )
        ratio_nvlink = estimate_training_time(self.job(), nvlink, 4) / (
            estimate_training_time(self.job(), nvlink, 1)
        )
        assert ratio_nvlink < ratio_plain

    def test_time_scales_with_work(self):
        small = estimate_training_time(self.job(epochs=5), GPU_SPECS["V100"])
        big = estimate_training_time(self.job(epochs=50), GPU_SPECS["V100"])
        assert big > small

    def test_roofline_vs_simple_ablation(self):
        # A memory-heavy job diverges between the two cost modes.
        heavy = self.job(bytes_per_sample=5e8)
        v100 = GPU_SPECS["V100"]
        simple = estimate_batch_time(heavy, v100, mode="simple")
        roofline = estimate_batch_time(heavy, v100, mode="roofline")
        assert roofline > simple

    def test_roofline_memory_bound_gpu_order_can_flip(self):
        # RTX6000 beats P100 on compute but loses on pure memory traffic.
        heavy = self.job(flops_per_sample=1e6, bytes_per_sample=5e8)
        rtx = estimate_batch_time(heavy, GPU_SPECS["RTX6000"], mode="roofline")
        p100 = estimate_batch_time(heavy, GPU_SPECS["P100"], mode="roofline")
        assert p100 < rtx

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrainingJob(flops_per_sample=0, n_samples=1, epochs=1)
        with pytest.raises(ConfigurationError):
            estimate_batch_time(self.job(), GPU_SPECS["V100"], mode="vibes")
        with pytest.raises(ConfigurationError):
            estimate_batch_time(self.job(), GPU_SPECS["V100"], gpu_count=0)

    def test_total_flops(self):
        job = self.job(flops_per_sample=100.0, n_samples=10, epochs=3)
        assert job.total_flops == 3000.0
