"""Federated identity, projects, and the lease manager."""

import pytest

from repro.common.clock import EventScheduler
from repro.common.errors import (
    AuthenticationError,
    LeaseError,
    QuotaExceededError,
    ReservationConflictError,
)
from repro.testbed.identity import IdentityProvider
from repro.testbed.leases import LeaseManager, LeaseState


@pytest.fixture()
def identity():
    provider = IdentityProvider()
    provider.register_user("keahey", "uchicago", role="instructor")
    provider.register_user("alice", "missouri")
    return provider


@pytest.fixture()
def env(identity):
    scheduler = EventScheduler()
    leases = LeaseManager(scheduler, identity)
    project = identity.create_project("AutoLearn", pi="keahey", allocation_su=100.0)
    identity.add_member(project.project_id, "alice")
    session = identity.login("alice", project.project_id)
    return scheduler, leases, project, session


class TestIdentity:
    def test_duplicate_user(self, identity):
        with pytest.raises(AuthenticationError):
            identity.register_user("alice", "elsewhere")

    def test_project_membership_required_for_login(self, identity):
        project = identity.create_project("P", pi="keahey")
        with pytest.raises(AuthenticationError):
            identity.login("alice", project.project_id)

    def test_login_and_authenticate(self, identity):
        project = identity.create_project("P", pi="keahey")
        session = identity.login("keahey", project.project_id)
        assert identity.authenticate(session.token).username == "keahey"

    def test_logout_invalidates(self, identity):
        project = identity.create_project("P", pi="keahey")
        session = identity.login("keahey", project.project_id)
        identity.logout(session.token)
        with pytest.raises(AuthenticationError):
            identity.authenticate(session.token)

    def test_unknown_pi(self, identity):
        with pytest.raises(AuthenticationError):
            identity.create_project("P", pi="nobody")

    def test_allocation_charging(self, identity):
        project = identity.create_project("P", pi="keahey", allocation_su=10.0)
        project.charge(4.0)
        assert project.remaining_su == 6.0
        with pytest.raises(QuotaExceededError):
            project.charge(7.0)


class TestLeases:
    def test_on_demand_lease_active_immediately(self, env):
        _, leases, _, session = env
        lease = leases.create_lease(session, "gpu_rtx_6000", duration_s=3600)
        assert lease.state is LeaseState.ACTIVE
        assert len(lease.node_ids) == 1

    def test_su_charged(self, env):
        _, leases, project, session = env
        leases.create_lease(session, "gpu_v100", node_count=2, duration_s=2 * 3600)
        assert project.charged_su == pytest.approx(4.0)  # 2 nodes x 2 h

    def test_allocation_exhaustion(self, env):
        _, leases, _, session = env
        with pytest.raises(QuotaExceededError):
            leases.create_lease(
                session, "gpu_rtx_6000", node_count=10, duration_s=100 * 3600
            )

    def test_advance_reservation_pending_then_active(self, env):
        scheduler, leases, _, session = env
        lease = leases.create_lease(
            session, "gpu_a100", start=1000.0, duration_s=3600
        )
        assert lease.state is LeaseState.PENDING
        scheduler.run_until(1000.0)
        assert lease.state is LeaseState.ACTIVE
        scheduler.run_until(1000.0 + 3600.0)
        assert lease.state is LeaseState.EXPIRED

    def test_conflicting_reservation_rejected(self, env):
        _, leases, _, session = env
        # gpu_a100 has exactly 4 nodes; grab all of them.
        leases.create_lease(session, "gpu_a100", node_count=4, duration_s=3600)
        with pytest.raises(ReservationConflictError):
            leases.create_lease(session, "gpu_a100", node_count=1, duration_s=60)

    def test_non_overlapping_windows_coexist(self, env):
        _, leases, _, session = env
        leases.create_lease(
            session, "gpu_a100", node_count=4, start=0.0, duration_s=1000
        )
        lease2 = leases.create_lease(
            session, "gpu_a100", node_count=4, start=2000.0, duration_s=1000
        )
        assert lease2.state is LeaseState.PENDING

    def test_classroom_scenario_reserves_ahead(self, env):
        # "guarantee resource availability at a specific time slot for a
        # class" — the instructor reserves next week; walk-ins still get
        # the other nodes today.
        _, leases, _, session = env
        week = 7 * 24 * 3600.0
        leases.create_lease(
            session, "gpu_v100", node_count=3, start=week, duration_s=7200
        )
        today = leases.create_lease(session, "gpu_v100", node_count=4, duration_s=3600)
        assert today.state is LeaseState.ACTIVE

    def test_terminate_refunds_unused(self, env):
        scheduler, leases, project, session = env
        lease = leases.create_lease(session, "gpu_v100", duration_s=4 * 3600)
        charged = project.charged_su
        scheduler.run_until(3600.0)  # use 1 of 4 hours
        leases.terminate(lease.lease_id)
        assert lease.state is LeaseState.TERMINATED
        assert project.charged_su == pytest.approx(charged - 3.0)

    def test_terminate_twice_rejected(self, env):
        _, leases, _, session = env
        lease = leases.create_lease(session, "gpu_v100", duration_s=3600)
        leases.terminate(lease.lease_id)
        with pytest.raises(LeaseError):
            leases.terminate(lease.lease_id)

    def test_expired_lease_frees_nodes(self, env):
        scheduler, leases, _, session = env
        leases.create_lease(session, "gpu_a100", node_count=4, duration_s=1000)
        scheduler.run_until(1001.0)
        again = leases.create_lease(session, "gpu_a100", node_count=4, duration_s=100)
        assert again.state is LeaseState.ACTIVE

    def test_lease_in_past_rejected(self, env):
        scheduler, leases, _, session = env
        scheduler.run_until(500.0)
        with pytest.raises(LeaseError):
            leases.create_lease(session, "gpu_v100", start=100.0)

    def test_invalid_token_rejected(self, env, identity):
        _, leases, _, _ = env
        from repro.testbed.identity import Session

        fake = Session(token="tok-9999", username="alice", project_id="proj-0001",
                       issued_at=0.0)
        with pytest.raises(AuthenticationError):
            leases.create_lease(fake, "gpu_v100")

    def test_leases_for_project(self, env):
        _, leases, project, session = env
        leases.create_lease(session, "gpu_v100", duration_s=100)
        leases.create_lease(session, "gpu_p100", duration_s=100)
        assert len(leases.leases_for_project(project.project_id)) == 2
