"""Bare-metal provisioning, software installs, and training jobs."""

import pytest

from repro.common.errors import ProvisioningError
from repro.testbed.chameleon import Chameleon
from repro.testbed.compute import TrainingJob
from repro.testbed.images import CC_UBUNTU20, CC_UBUNTU20_CUDA
from repro.testbed.leases import LeaseState
from repro.testbed.provisioning import BARE_METAL_DEPLOY_S, InstanceState


@pytest.fixture()
def chi():
    testbed = Chameleon()
    project, _ = testbed.onboard_class("prof", "uni", ["stu"])
    session = testbed.login("stu", project.project_id)
    return testbed, session


class TestDeploy:
    def test_deploy_takes_bare_metal_time(self, chi):
        testbed, session = chi
        lease = testbed.reserve_gpu_node(session, "gpu_v100")
        t0 = testbed.clock.now
        instance = testbed.provisioning.deploy(lease, CC_UBUNTU20_CUDA)
        assert instance.state is InstanceState.ACTIVE
        assert testbed.clock.now - t0 == pytest.approx(BARE_METAL_DEPLOY_S)

    def test_deploy_requires_active_lease(self, chi):
        testbed, session = chi
        lease = testbed.leases.create_lease(
            session, "gpu_v100", start=testbed.clock.now + 5000, duration_s=3600
        )
        with pytest.raises(ProvisioningError):
            testbed.provisioning.deploy(lease, CC_UBUNTU20_CUDA)

    def test_gpu_image_rejected_on_cpu_node(self, chi):
        testbed, session = chi
        lease = testbed.leases.create_lease(session, "compute_skylake")
        with pytest.raises(ProvisioningError):
            testbed.provisioning.deploy(lease, CC_UBUNTU20_CUDA)

    def test_node_exhaustion_within_lease(self, chi):
        testbed, session = chi
        lease = testbed.reserve_gpu_node(session, "gpu_v100")
        testbed.provisioning.deploy(lease, CC_UBUNTU20)
        with pytest.raises(ProvisioningError):
            testbed.provisioning.deploy(lease, CC_UBUNTU20)

    def test_delete_frees_node(self, chi):
        testbed, session = chi
        lease = testbed.reserve_gpu_node(session, "gpu_v100")
        instance = testbed.provisioning.deploy(lease, CC_UBUNTU20)
        testbed.provisioning.delete(instance.instance_id)
        assert instance.state is InstanceState.DELETED
        again = testbed.provisioning.deploy(lease, CC_UBUNTU20)
        assert again.node_id == instance.node_id


class TestSoftware:
    def test_install_advances_time(self, chi):
        testbed, session = chi
        lease = testbed.reserve_gpu_node(session)
        instance = testbed.provisioning.deploy(lease, CC_UBUNTU20_CUDA)
        t0 = testbed.clock.now
        spent = testbed.provisioning.install(instance, "donkeycar", "tensorflow")
        assert spent > 0
        assert testbed.clock.now - t0 == pytest.approx(spent)
        assert instance.has_software("donkeycar")

    def test_preinstalled_software_free(self, chi):
        testbed, session = chi
        lease = testbed.reserve_gpu_node(session)
        instance = testbed.provisioning.deploy(lease, CC_UBUNTU20_CUDA)
        assert instance.has_software("cuda")
        assert testbed.provisioning.install(instance, "cuda") == 0.0

    def test_install_idempotent(self, chi):
        testbed, session = chi
        lease = testbed.reserve_gpu_node(session)
        instance = testbed.provisioning.deploy(lease, CC_UBUNTU20_CUDA)
        first = testbed.provisioning.install(instance, "donkeycar")
        second = testbed.provisioning.install(instance, "donkeycar")
        assert first > 0 and second == 0.0


class TestTrainingJobs:
    def job(self):
        return TrainingJob(flops_per_sample=3e8, n_samples=2000, epochs=5)

    def test_training_requires_software(self, chi):
        testbed, session = chi
        lease = testbed.reserve_gpu_node(session)
        instance = testbed.provisioning.deploy(lease, CC_UBUNTU20_CUDA)
        with pytest.raises(ProvisioningError, match="tensorflow"):
            testbed.provisioning.run_training_job(instance, self.job())

    def test_training_advances_clock(self, chi):
        testbed, session = chi
        lease = testbed.reserve_gpu_node(session)
        instance = testbed.deploy_training_server(lease)
        t0 = testbed.clock.now
        run = testbed.provisioning.run_training_job(instance, self.job())
        assert run.simulated_seconds > 0
        assert testbed.clock.now - t0 == pytest.approx(run.simulated_seconds)
        assert run.gpu_name == "V100"
        assert run.gpu_count == 4

    def test_training_outliving_lease_rejected(self, chi):
        testbed, session = chi
        lease = testbed.reserve_gpu_node(session, duration_hours=0.3)
        instance = testbed.deploy_training_server(lease)
        huge = TrainingJob(flops_per_sample=3e12, n_samples=50000, epochs=100)
        with pytest.raises(ProvisioningError, match="outlive"):
            testbed.provisioning.run_training_job(instance, huge)

    def test_lease_expires_during_simulated_training_window(self, chi):
        testbed, session = chi
        lease = testbed.reserve_gpu_node(session, duration_hours=4)
        instance = testbed.deploy_training_server(lease)
        testbed.provisioning.run_training_job(instance, self.job())
        # Lease still active after a short job.
        assert testbed.leases.get(lease.lease_id).state is LeaseState.ACTIVE


class TestChameleonFacade:
    def test_onboard_class(self):
        testbed = Chameleon()
        project, users = testbed.onboard_class("prof", "uni", ["s1", "s2"])
        assert users["prof"].role == "instructor"
        assert {"prof", "s1", "s2"} <= project.members

    def test_full_notebook_flow(self, chi):
        testbed, session = chi
        lease = testbed.reserve_gpu_node(session, "gpu_a100", duration_hours=6)
        instance = testbed.deploy_training_server(lease)
        for package in ("donkeycar", "tensorflow", "cudnn", "jupyter", "rsync"):
            assert instance.has_software(package)
        run = testbed.provisioning.run_training_job(
            instance, TrainingJob(flops_per_sample=3e8, n_samples=5000, epochs=8)
        )
        assert run.gpu_name == "A100"
