"""The whole-program layer: shards, the class hierarchy, the call graph."""

from __future__ import annotations

import ast
import json

from repro.analysis.graph import (
    CallRef,
    ClassHierarchy,
    ModuleShard,
    ProjectGraph,
    extract_shard,
)


def _shard(module: str, source: str) -> ModuleShard:
    path = "src/" + module.replace(".", "/") + ".py"
    return extract_shard(path, module, ast.parse(source))


def _graph(**modules: str) -> ProjectGraph:
    graph = ProjectGraph()
    for module, source in modules.items():
        graph.add_shard(_shard(module, source))
    return graph


# ------------------------------------------------------------- extraction


def test_shard_records_classes_functions_imports():
    shard = _shard(
        "repro.sim.demo",
        "import os\n"
        "from repro.common.rng import ensure_rng\n"
        "class Car(Base):\n"
        "    def drive(self):\n"
        "        pass\n"
        "def top():\n"
        "    pass\n",
    )
    assert shard.classes["Car"]["bases"] == ["Base"]
    assert "drive" in shard.classes["Car"]["methods"]
    assert "top" in shard.top_functions
    assert "os" in shard.imports and "repro.common.rng" in shard.imports
    assert shard.bindings["ensure_rng"] == "repro.common.rng.ensure_rng"


def test_shard_records_mutable_and_rng_slots():
    shard = _shard(
        "repro.sim.demo",
        "STATE = []\nTABLE = dict()\nSTREAM = ensure_rng(3)\nSCALAR = 4\n",
    )
    assert {s.name: s.kind for s in shard.mutables} == {
        "STATE": "list",
        "TABLE": "dict",
    }
    assert [s.name for s in shard.rng_slots] == ["STREAM"]


def test_shard_records_scheduler_callbacks_and_lambdas():
    shard = _shard(
        "repro.sim.demo",
        "def install(sched):\n"
        "    sched.schedule_at(0.0, tick)\n"
        "    sched.schedule_in(1.0, lambda: tock())\n"
        "def tick():\n"
        "    pass\n"
        "def tock():\n"
        "    pass\n",
    )
    install = shard.defs["install"]
    kinds = {(ref.kind, ref.target) for ref in install.callbacks}
    assert ("name", "tick") in kinds
    assert any(kind == "local" and "lambda" in target for kind, target in kinds)
    # The lambda body became a pseudo-function that calls tock.
    lambda_qual = next(q for q in shard.defs if "lambda" in q)
    assert CallRef("name", "tock") in shard.defs[lambda_qual].calls


def test_shard_json_round_trip():
    shard = _shard(
        "repro.sim.demo",
        "from repro.common.clock import EventScheduler\n"
        "LOG = []\n"
        "RNG = ensure_rng(0)\n"
        "class A(ValueError):\n"
        "    def m(self):\n"
        "        self.helper()\n"
        "def f(sched):\n"
        "    sched.schedule_at(0.0, g)\n"
        "def g():\n"
        "    LOG.append(RNG.random())\n",
    )
    clone = ModuleShard.from_json(json.loads(json.dumps(shard.to_json())))
    assert clone.to_json() == shard.to_json()


# -------------------------------------------------------------- hierarchy


def test_hierarchy_transitive_repro_error():
    hierarchy = ClassHierarchy()
    hierarchy.add("ReproError", ["Exception"])
    hierarchy.add("TubError", ["ReproError"])
    hierarchy.add("TubCorrupt", ["TubError"])
    hierarchy.add("Rogue", ["RuntimeError"])
    assert hierarchy.is_repro_error("TubCorrupt")
    assert not hierarchy.is_repro_error("Rogue")
    assert not hierarchy.is_repro_error("Unknown")


def test_hierarchy_survives_cycles():
    hierarchy = ClassHierarchy()
    hierarchy.add("A", ["B"])
    hierarchy.add("B", ["A"])
    assert not hierarchy.is_repro_error("A")
    assert hierarchy.mro_names("A")[0] == "A"


def test_builtin_exception_lookup():
    assert ClassHierarchy.is_builtin_exception("ValueError")
    assert not ClassHierarchy.is_builtin_exception("int")
    assert not ClassHierarchy.is_builtin_exception("nonsense")


# ------------------------------------------------------------- the graph


def test_import_edges_restricted_to_project():
    graph = _graph(**{
        "repro.common.rng": "def ensure_rng(seed):\n    pass\n",
        "repro.sim.world": "import os\nfrom repro.common.rng import ensure_rng\n",
    })
    edges = graph.import_edges()
    assert edges["repro.sim.world"] == frozenset({"repro.common.rng"})


def test_call_graph_resolves_across_modules():
    graph = _graph(**{
        "repro.sim.engine": (
            "def step():\n"
            "    helper()\n"
            "def helper():\n"
            "    pass\n"
        ),
        "repro.sim.driver": (
            "from repro.sim.engine import step\n"
            "def run():\n"
            "    step()\n"
        ),
    })
    assert "repro.sim.engine.step" in graph.edges()["repro.sim.driver.run"]
    reach = graph.reachable("repro.sim.driver.run")
    assert "repro.sim.engine.helper" in reach


def test_method_resolution_walks_hierarchy():
    graph = _graph(**{
        "repro.sim.base": (
            "class Base:\n"
            "    def on_tick(self):\n"
            "        pass\n"
        ),
        "repro.sim.child": (
            "from repro.sim.base import Base\n"
            "class Child(Base):\n"
            "    def go(self):\n"
            "        self.on_tick()\n"
        ),
    })
    assert (
        "repro.sim.base.Base.on_tick"
        in graph.edges()["repro.sim.child.Child.go"]
    )


def test_race_detected_across_modules():
    graph = _graph(**{
        "repro.sim.state": (
            "LOG = []\n"
            "def tick():\n"
            "    LOG.append(1)\n"
            "def tock():\n"
            "    LOG.append(2)\n"
        ),
        "repro.sim.setup": (
            "from repro.sim.state import tick, tock\n"
            "def install(sched):\n"
            "    sched.schedule_at(0.0, tick)\n"
            "    sched.schedule_at(0.0, tock)\n"
        ),
    })
    races = [f for f in graph.flow_findings() if f.kind == "race"]
    assert {f.subject for f in races} == {"LOG"}
    assert all(
        f.roots == ("repro.sim.state.tick", "repro.sim.state.tock")
        for f in races
    )
    # Findings are attributed to the write sites in the owning file.
    assert {f.path for f in races} == {"src/repro/sim/state.py"}


def test_single_root_is_not_a_race():
    graph = _graph(**{
        "repro.sim.state": (
            "LOG = []\n"
            "def tick():\n"
            "    LOG.append(1)\n"
            "    more()\n"
            "def more():\n"
            "    LOG.append(2)\n"
            "def install(sched):\n"
            "    sched.schedule_at(0.0, tick)\n"
        ),
    })
    assert graph.flow_findings() == []


def test_shared_rng_stream_detected():
    graph = _graph(**{
        "repro.sim.streams": (
            "STREAM = ensure_rng(7)\n"
            "def a():\n"
            "    return STREAM.random()\n"
            "def b():\n"
            "    return STREAM.random()\n"
            "def install(sched):\n"
            "    sched.schedule_at(0.0, a)\n"
            "    sched.schedule_in(1.0, b)\n"
        ),
    })
    shared = [f for f in graph.flow_findings() if f.kind == "shared-rng"]
    assert len(shared) == 1
    assert shared[0].subject == "STREAM"
    assert shared[0].line == 1  # reported at the construction site


def test_flow_findings_for_filters_by_path():
    graph = _graph(**{
        "repro.sim.state": (
            "LOG = []\n"
            "def tick():\n"
            "    LOG.append(1)\n"
            "def tock():\n"
            "    LOG.append(2)\n"
            "def install(sched):\n"
            "    sched.schedule_at(0.0, tick)\n"
            "    sched.schedule_at(0.0, tock)\n"
        ),
    })
    assert graph.flow_findings_for("src/repro/sim/state.py")
    assert graph.flow_findings_for("src/repro/sim/other.py") == []
