"""RL501: cross-module layering."""

from __future__ import annotations

from repro.analysis import LintConfig

from tests.analysis.conftest import rule_ids


def test_common_may_not_import_ml(lint):
    findings = lint(
        "from repro.ml.layers import Dense\n",
        filename="src/repro/common/widget.py",
    )
    flagged = [f for f in findings if f.rule_id == "RL501"]
    assert flagged and "'common'" in flagged[0].message
    assert "repro.ml" in flagged[0].message


def test_common_may_not_import_sim_via_plain_import(lint):
    findings = lint(
        "import repro.sim.tracks\n",
        filename="src/repro/common/widget.py",
    )
    assert "RL501" in rule_ids(findings)


def test_from_repro_import_package_checked(lint):
    findings = lint(
        "from repro import testbed\n",
        filename="src/repro/common/widget.py",
    )
    assert "RL501" in rule_ids(findings)


def test_allowed_edge_to_testbed_passes(lint):
    findings = lint(
        "from repro.testbed.leases import Lease\n",
        filename="src/repro/edge/widget.py",
    )
    assert "RL501" not in rule_ids(findings)


def test_intra_package_import_passes(lint):
    findings = lint(
        "from repro.common.errors import ReproError\n",
        filename="src/repro/common/widget.py",
    )
    assert "RL501" not in rule_ids(findings)


def test_root_modules_exempt(lint):
    findings = lint(
        "from repro.core.pipeline import AutoLearnPipeline\n",
        filename="src/repro/cli.py",
    )
    assert "RL501" not in rule_ids(findings)


def test_files_outside_repro_tree_exempt(lint):
    findings = lint("from repro.ml.layers import Dense\n", filename="script.py")
    assert "RL501" not in rule_ids(findings)


def test_unknown_package_flagged(lint):
    findings = lint(
        "X = 1\n",
        filename="src/repro/newpkg/widget.py",
    )
    assert any(
        f.rule_id == "RL501" and "layering map" in f.message for f in findings
    )


def test_layering_override_from_config(lint):
    config = LintConfig(layering={"common": ("ml",)})
    findings = lint(
        "from repro.ml.layers import Dense\n",
        filename="src/repro/common/widget.py",
        config=config,
    )
    assert "RL501" not in rule_ids(findings)


def test_function_local_import_still_checked(lint):
    findings = lint(
        """
        def late():
            from repro.testbed.leases import Lease

            return Lease
        """,
        filename="src/repro/common/widget.py",
    )
    assert "RL501" in rule_ids(findings)


def test_relative_import_resolved(lint):
    findings = lint(
        "from . import links\n",
        filename="src/repro/net/topology.py",
    )
    assert "RL501" not in rule_ids(findings)
