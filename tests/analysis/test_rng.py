"""RL101/RL102: RNG discipline."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids


def test_default_rng_flagged(lint):
    findings = lint(
        """
        import numpy as np

        def sample(seed):
            return np.random.default_rng(seed).normal()
        """
    )
    flagged = [f for f in findings if f.rule_id == "RL101"]
    assert flagged and flagged[0].line == 5
    assert "numpy.random.default_rng" in flagged[0].message


def test_legacy_global_seed_flagged(lint):
    findings = lint("import numpy as np\nnp.random.seed(0)\n")
    assert "RL101" in rule_ids(findings)


def test_from_numpy_random_import_flagged(lint):
    findings = lint("from numpy.random import default_rng\n")
    assert "RL101" in rule_ids(findings)


def test_stdlib_random_flagged(lint):
    findings = lint(
        """
        import random

        def roll():
            return random.randint(1, 6)
        """
    )
    assert "RL101" in rule_ids(findings)


def test_from_stdlib_random_flagged(lint):
    findings = lint("from random import choice\n")
    assert "RL101" in rule_ids(findings)


def test_generator_type_annotation_allowed(lint):
    findings = lint(
        """
        import numpy as np

        def sample(rng: np.random.Generator) -> float:
            return float(rng.normal())
        """
    )
    assert "RL101" not in rule_ids(findings)


def test_isinstance_check_allowed(lint):
    findings = lint(
        """
        import numpy as np

        def is_rng(value) -> bool:
            return isinstance(value, (np.random.Generator, np.random.SeedSequence))
        """
    )
    assert "RL101" not in rule_ids(findings)


def test_common_rng_module_exempt(lint):
    findings = lint(
        """
        import numpy as np

        def ensure_rng(seed):
            return np.random.default_rng(seed)
        """,
        filename="src/repro/common/rng.py",
    )
    assert "RL101" not in rule_ids(findings)


def test_pragma_suppresses_rng(lint):
    findings = lint(
        """
        import numpy as np

        rng = np.random.default_rng(0)  # reprolint: disable=rng-outside-common
        """
    )
    assert "RL101" not in rule_ids(findings)


# ------------------------------------------------------------- RL102


def test_ignored_seed_flagged(lint):
    findings = lint(
        """
        def simulate(track, seed=0):
            return track
        """
    )
    flagged = [f for f in findings if f.rule_id == "RL102"]
    assert flagged and "'seed'" in flagged[0].message


def test_ignored_rng_param_flagged(lint):
    findings = lint(
        """
        class Sampler:
            def draw(self, rng):
                return 4  # chosen by fair dice roll
        """
    )
    assert "RL102" in rule_ids(findings)


def test_used_seed_passes(lint):
    findings = lint(
        """
        from repro.common.rng import ensure_rng

        def simulate(track, seed=0):
            rng = ensure_rng(seed)
            return rng.normal()
        """
    )
    assert "RL102" not in rule_ids(findings)


def test_forwarded_seed_passes(lint):
    findings = lint(
        """
        def simulate(track, seed=0):
            return make_session(track, seed=seed)
        """
    )
    assert "RL102" not in rule_ids(findings)


def test_private_function_exempt(lint):
    findings = lint(
        """
        def _helper(seed):
            return 1
        """
    )
    assert "RL102" not in rule_ids(findings)


def test_interface_stub_exempt(lint):
    findings = lint(
        """
        class Backend:
            def request_latency(self, rng):
                raise NotImplementedError
        """
    )
    assert "RL102" not in rule_ids(findings)


def test_abstractmethod_exempt(lint):
    findings = lint(
        """
        import abc

        class Backend(abc.ABC):
            @abc.abstractmethod
            def request_latency(self, rng):
                return 0.0
        """
    )
    assert "RL102" not in rule_ids(findings)
