"""Cache correctness: a warm run must equal a cold run, always.

The cache is pure latency — any observable difference between cached
and uncached results is a bug.  The hypothesis block drives the key
invariant: after an *arbitrary* single-file edit, a warm run against
the stale cache equals a cold run against a fresh one.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cache import CACHE_FILENAME, LintCache
from repro.analysis.config import LintConfig
from repro.analysis.runner import lint_paths


def _rows(result):
    return [f.to_dict() for f in result.findings]


CLEAN = '__all__ = ["x"]\n\nx = 1\n'
WALL_CLOCK = "import time\nstamp = time.time()\n"
MUTABLE = "def f(xs=[]):\n    return xs\n"
RACY = (
    "_LOG = []\n"
    "def _a():\n"
    "    _LOG.append(1)\n"
    "def _b():\n"
    "    _LOG.append(2)\n"
    "def _install(s):\n"
    "    s.schedule_at(0.0, _a)\n"
    "    s.schedule_at(0.0, _b)\n"
)
BROKEN = "def broken(:\n"

EDITS = (CLEAN, WALL_CLOCK, MUTABLE, RACY, BROKEN)


def _tree(root):
    (root / "a.py").write_text(WALL_CLOCK)
    (root / "b.py").write_text(CLEAN)
    (root / "c.py").write_text(RACY)
    return root


def test_warm_equals_cold_and_parses_nothing_new(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    _tree(tree)
    cache_dir = tmp_path / "cache"
    cold = lint_paths([tree], cache_dir=cache_dir)
    warm = lint_paths([tree], cache_dir=cache_dir)
    assert _rows(warm) == _rows(cold)
    assert warm.files_checked == cold.files_checked
    assert (cache_dir / CACHE_FILENAME).exists()


def test_corrupt_cache_is_ignored(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    _tree(tree)
    cache_dir = tmp_path / "cache"
    baseline = lint_paths([tree])
    cache_dir.mkdir()
    (cache_dir / CACHE_FILENAME).write_text("{{{ not json")
    result = lint_paths([tree], cache_dir=cache_dir)
    assert _rows(result) == _rows(baseline)


def test_config_change_invalidates(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    _tree(tree)
    cache_dir = tmp_path / "cache"
    strict = lint_paths([tree], cache_dir=cache_dir)
    assert any(f.rule_id == "RL001" for f in strict.findings)
    relaxed = lint_paths(
        [tree], LintConfig(disable=("RL001",)), cache_dir=cache_dir
    )
    assert not any(f.rule_id == "RL001" for f in relaxed.findings)
    # And back: the original config still sees the wall-clock read.
    again = lint_paths([tree], cache_dir=cache_dir)
    assert _rows(again) == _rows(strict)


def test_pass_version_mismatch_discards_cache(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    _tree(tree)
    cache_dir = tmp_path / "cache"
    cold = lint_paths([tree], cache_dir=cache_dir)
    payload = json.loads((cache_dir / CACHE_FILENAME).read_text())
    payload["passes"] = "stale-fingerprint"
    (cache_dir / CACHE_FILENAME).write_text(json.dumps(payload))
    cache = LintCache.load(cache_dir, LintConfig())
    assert cache._files == {}
    warm = lint_paths([tree], cache_dir=cache_dir)
    assert _rows(warm) == _rows(cold)


def test_syntax_error_files_stay_uncached_but_correct(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "bad.py").write_text(BROKEN)
    (tree / "ok.py").write_text(CLEAN)
    cache_dir = tmp_path / "cache"
    cold = lint_paths([tree], cache_dir=cache_dir)
    warm = lint_paths([tree], cache_dir=cache_dir)
    assert _rows(warm) == _rows(cold)
    assert [f.rule_id for f in warm.findings] == ["RL000"]
    assert warm.files_checked == cold.files_checked == 1


@given(
    target=st.sampled_from(("a.py", "b.py", "c.py")),
    new_content=st.sampled_from(EDITS),
)
@settings(max_examples=20, deadline=None)
def test_warm_equals_cold_after_any_single_file_edit(
    tmp_path_factory, target, new_content
):
    root = tmp_path_factory.mktemp("lintcache")
    tree = root / "tree"
    tree.mkdir()
    _tree(tree)
    cache_dir = root / "cache"
    lint_paths([tree], cache_dir=cache_dir)  # populate

    (tree / target).write_text(new_content)
    warm = lint_paths([tree], cache_dir=cache_dir)
    cold = lint_paths([tree], cache_dir=root / "fresh")
    plain = lint_paths([tree])
    assert _rows(warm) == _rows(cold) == _rows(plain)
    assert warm.files_checked == cold.files_checked == plain.files_checked
