"""Reporters, the reprolint CLI, and the autolearn lint subcommand."""

from __future__ import annotations

import json

from repro.analysis import render_json, render_text
from repro.analysis.cli import main as reprolint_main
from repro.analysis.runner import lint_paths
from repro.cli import main as autolearn_main

VIOLATION = "import time\nstamp = time.time()\n"
CLEAN = '__all__ = ["x"]\n\nx = 1\n'


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


def test_render_text_lists_findings(tmp_path):
    path = _write(tmp_path, "bad.py", VIOLATION)
    result = lint_paths([path])
    report = render_text(result)
    assert f"{path}:2:" in report
    assert "RL001" in report and "[wall-clock]" in report
    assert "1 error(s)" in report


def test_render_text_clean(tmp_path):
    path = _write(tmp_path, "good.py", CLEAN)
    report = render_text(lint_paths([path]))
    assert "1 file(s) clean" in report


def test_render_json_round_trips(tmp_path):
    path = _write(tmp_path, "bad.py", VIOLATION)
    payload = json.loads(render_json(lint_paths([path])))
    assert payload["errors"] == 1
    assert payload["findings"][0]["rule"] == "RL001"
    assert payload["findings"][0]["line"] == 2


def test_syntax_error_reported_not_raised(tmp_path):
    path = _write(tmp_path, "broken.py", "def broken(:\n")
    result = lint_paths([path])
    assert [f.rule_id for f in result.findings] == ["RL000"]


def test_cli_exit_codes(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", VIOLATION)
    good = _write(tmp_path, "good.py", CLEAN)
    assert reprolint_main([str(good)]) == 0
    assert reprolint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out


def test_cli_disable_flag(tmp_path):
    bad = _write(tmp_path, "bad.py", VIOLATION)
    assert reprolint_main([str(bad), "--disable", "RL001"]) == 0


def test_cli_ignore_flag(tmp_path):
    # --ignore is the documented spelling; --disable stays as an alias.
    bad = _write(tmp_path, "bad.py", VIOLATION)
    assert reprolint_main([str(bad), "--ignore", "RL001"]) == 0
    assert reprolint_main([str(bad), "--ignore", "wall-clock"]) == 0


def test_cli_select_flag(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", VIOLATION + "def f(xs=[]):\n    return xs\n")
    assert reprolint_main([str(bad), "--select", "RL401"]) == 1
    out = capsys.readouterr().out
    assert "RL401" in out and "RL001" not in out
    assert reprolint_main([str(bad), "--select", "RL202"]) == 0


def test_cli_unknown_disable_rejected(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", VIOLATION)
    assert reprolint_main([str(bad), "--disable", "RL00X"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_unknown_select_rejected(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", VIOLATION)
    assert reprolint_main([str(bad), "--select", "RL00X"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_file_reported_not_raised(tmp_path):
    result = lint_paths([tmp_path / "ghost.py"])
    assert [f.rule_id for f in result.findings] == ["RL000"]
    assert "cannot read file" in result.findings[0].message


def test_cli_json_format(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", VIOLATION)
    assert reprolint_main([str(bad), "--format", "json"]) == 1
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert payload["errors"] == 1
    # Keys are emitted sorted so diffs of CI artifacts stay stable.
    assert out == json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_cli_sarif_format(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", VIOLATION)
    assert reprolint_main([str(bad), "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    assert payload["runs"][0]["results"][0]["ruleId"] == "RL001"


def test_cli_fix_applies_and_is_idempotent(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", "def f(xs=[]):\n    return xs\n")
    reprolint_main([str(bad), "--fix"])
    fixed = bad.read_text()
    assert "xs=None" in fixed and "if xs is None:" in fixed
    reprolint_main([str(bad), "--fix"])
    assert bad.read_text() == fixed
    capsys.readouterr()


def test_cli_cache_flags(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", VIOLATION)
    cache_dir = tmp_path / "lint-cache"
    assert reprolint_main([str(bad), "--cache-dir", str(cache_dir)]) == 1
    assert cache_dir.exists()
    assert reprolint_main([str(bad), "--cache-dir", str(cache_dir)]) == 1
    assert reprolint_main(
        [str(bad), "--cache-dir", str(cache_dir), "--no-cache"]
    ) == 1
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert reprolint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL101", "RL201", "RL301", "RL401", "RL501"):
        assert rule_id in out


def test_cli_respects_pyproject(tmp_path):
    bad = _write(tmp_path, "bad.py", VIOLATION)
    pyproject = _write(
        tmp_path, "pyproject.toml", "[tool.reprolint]\ndisable = [\"RL001\"]\n"
    )
    assert reprolint_main([str(bad), "--pyproject", str(pyproject)]) == 0
    # And it is discovered automatically from the linted path's parents.
    assert reprolint_main([str(bad)]) == 0


def test_autolearn_lint_subcommand(tmp_path, capsys):
    bad = _write(tmp_path, "bad.py", VIOLATION)
    good = _write(tmp_path, "good.py", CLEAN)
    assert autolearn_main(["lint", str(good)]) == 0
    assert autolearn_main(["lint", str(bad)]) == 1
    assert "RL001" in capsys.readouterr().out
