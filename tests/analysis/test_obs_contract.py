"""The obs layer's lint contract.

Observability sits just above ``common`` in the layering DAG: every
subsystem may trace, but the tracer may never reach back up into the
subsystems it observes — and, since spans carry *simulated* time, a
wall-clock read inside obs is a determinism bug, not a style issue.
"""

from __future__ import annotations

from repro.analysis.passes.layering import DEFAULT_LAYERS

from tests.analysis.conftest import rule_ids


class TestLayeringMap:
    def test_obs_sits_just_above_common(self):
        assert DEFAULT_LAYERS["obs"] == ("common",)

    def test_every_instrumented_layer_may_import_obs(self):
        for package in ("faults", "net", "objectstore", "serve", "core"):
            assert "obs" in DEFAULT_LAYERS[package], package


class TestObsMayNotReachUp:
    def test_obs_importing_serve_is_flagged(self, lint):
        findings = lint(
            "from repro.serve.service import InferenceService\n",
            filename="src/repro/obs/widget.py",
        )
        flagged = [f for f in findings if f.rule_id == "RL501"]
        assert flagged and "repro.serve" in flagged[0].message

    def test_obs_importing_core_is_flagged(self, lint):
        findings = lint(
            "import repro.core.pipeline\n",
            filename="src/repro/obs/widget.py",
        )
        assert "RL501" in rule_ids(findings)

    def test_obs_importing_common_passes(self, lint):
        findings = lint(
            "from repro.common.clock import Clock\n",
            filename="src/repro/obs/widget.py",
        )
        assert "RL501" not in rule_ids(findings)

    def test_serve_importing_obs_passes(self, lint):
        findings = lint(
            "from repro.obs.tracer import Tracer\n",
            filename="src/repro/serve/widget.py",
        )
        assert "RL501" not in rule_ids(findings)


class TestNoWallClockInObs:
    def test_time_time_in_obs_is_flagged(self, lint):
        findings = lint(
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            filename="src/repro/obs/widget.py",
        )
        assert "RL001" in rule_ids(findings)

    def test_datetime_now_in_obs_is_flagged(self, lint):
        findings = lint(
            "import datetime\n\n\ndef stamp():\n"
            "    return datetime.datetime.now()\n",
            filename="src/repro/obs/widget.py",
        )
        assert "RL001" in rule_ids(findings)
