"""Baseline files: load, subtract, ratchet, and the CLI workflow."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import Baseline, apply_baseline, write_baseline
from repro.analysis.cli import main as reprolint_main
from repro.analysis.runner import lint_paths
from repro.common.errors import ConfigurationError

WALL_CLOCK = "import time\nstamp = time.time()\n"


def test_missing_baseline_is_empty(tmp_path):
    assert len(Baseline.load(tmp_path / "nope.json")) == 0


def test_malformed_baseline_raises_config_error(tmp_path):
    bad = tmp_path / "bl.json"
    bad.write_text("{{{ nope")
    with pytest.raises(ConfigurationError):
        Baseline.load(bad)
    bad.write_text('{"version": 1}')
    with pytest.raises(ConfigurationError):
        Baseline.load(bad)
    bad.write_text('{"version": 1, "findings": [{"path": "x"}]}')
    with pytest.raises(ConfigurationError):
        Baseline.load(bad)


def test_write_then_load_round_trips(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(WALL_CLOCK)
    result = lint_paths([target])
    bl_path = tmp_path / "bl.json"
    count = write_baseline(bl_path, result)
    assert count == len(result.findings) == 1
    baseline = Baseline.load(bl_path)
    filtered, matched = apply_baseline(result, baseline)
    assert matched == 1
    assert filtered.findings == []
    assert filtered.files_checked == result.files_checked


def test_matching_ignores_line_numbers(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(WALL_CLOCK)
    bl_path = tmp_path / "bl.json"
    write_baseline(bl_path, lint_paths([target]))
    # Shift the finding down two lines; the baseline still matches.
    target.write_text("import time\n\n\nstamp = time.time()\n")
    filtered, matched = apply_baseline(
        lint_paths([target]), Baseline.load(bl_path)
    )
    assert matched == 1
    assert filtered.findings == []


def test_duplicates_are_counted_not_keyed(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(WALL_CLOCK)
    bl_path = tmp_path / "bl.json"
    write_baseline(bl_path, lint_paths([target]))
    # A second identical violation appears: only one is absorbed.
    target.write_text("import time\nstamp = time.time()\nagain = time.time()\n")
    filtered, matched = apply_baseline(
        lint_paths([target]), Baseline.load(bl_path)
    )
    assert matched == 1
    assert len(filtered.findings) == 1


def test_baseline_file_is_sorted_and_versioned(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(WALL_CLOCK + "def f(xs=[]):\n    return xs\n")
    bl_path = tmp_path / "bl.json"
    write_baseline(bl_path, lint_paths([target]))
    payload = json.loads(bl_path.read_text())
    assert payload["version"] == 1
    rows = [(r["path"], r["rule"], r["message"]) for r in payload["findings"]]
    assert rows == sorted(rows)


def test_cli_update_then_clean_then_ratchet(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(WALL_CLOCK)
    bl_path = tmp_path / "bl.json"

    assert reprolint_main(
        [str(target), "--update-baseline", "--baseline", str(bl_path)]
    ) == 0
    # Baselined debt no longer fails the run...
    assert reprolint_main([str(target), "--baseline", str(bl_path)]) == 0
    # ...but a *new* violation still does.
    target.write_text(WALL_CLOCK + "def f(xs=[]):\n    return xs\n")
    assert reprolint_main([str(target), "--baseline", str(bl_path)]) == 1
    out = capsys.readouterr().out
    assert "RL401" in out and "RL001" not in out
