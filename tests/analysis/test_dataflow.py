"""RL601/RL602/RL603 dataflow rules and the RL103 stream-sharing rule."""

from __future__ import annotations

from repro.analysis import lint_source
from repro.analysis.fixes import apply_fixes

FILE = "src/repro/sim/demo.py"


def _by_rule(source: str, rule_id: str, filename: str = FILE):
    return [f for f in lint_source(source, filename=filename) if f.rule_id == rule_id]


# ---------------------------------------------------------------- RL601


def test_set_literal_in_for_loop_fires():
    findings = _by_rule("for item in {1, 2, 3}:\n    print(item)\n", "RL601")
    assert len(findings) == 1


def test_listdir_into_list_fires():
    source = "import os\n\ndef scan(p):\n    return list(os.listdir(p))\n"
    assert _by_rule(source, "RL601")


def test_glob_iterated_fires():
    source = (
        "import glob\n\ndef scan(p):\n"
        "    return [x for x in glob.glob(p)]\n"
    )
    assert _by_rule(source, "RL601")


def test_tainted_variable_propagates():
    source = "def scan(xs):\n    names = {1, 2}\n    return tuple(names)\n"
    assert _by_rule(source, "RL601")


def test_reassignment_clears_taint():
    source = (
        "def scan(xs):\n"
        "    names = {1, 2}\n"
        "    names = [3, 4]\n"
        "    return tuple(names)\n"
    )
    assert _by_rule(source, "RL601") == []


def test_sorted_consumption_is_clean():
    for source in (
        "def scan(p):\n    return sorted({1, 2, 3})\n",
        "import os\n\ndef scan(p):\n    return sorted(os.listdir(p))\n",
        "def scan(xs):\n    return sum(x for x in {1, 2})\n",
        "def scan(xs):\n    return {x for x in {1, 2}}\n",
        "def scan(xs):\n    return len({1, 2})\n",
    ):
        assert _by_rule(source, "RL601") == [], source


def test_rl601_fix_wraps_in_sorted():
    source = "NAMES = list({1, 2})\n\n__all__ = [\"NAMES\"]\n"
    findings = _by_rule(source, "RL601")
    assert findings and findings[0].fixes
    fixed, applied = apply_fixes(source, findings)
    assert applied == 1
    assert "sorted({1, 2})" in fixed
    assert _by_rule(fixed, "RL601") == []


# ---------------------------------------------------------------- RL602


def test_sorted_key_id_fires():
    assert _by_rule("def rank(rows):\n    return sorted(rows, key=id)\n", "RL602")


def test_sort_method_key_id_fires():
    assert _by_rule("def rank(rows):\n    rows.sort(key=id)\n", "RL602")


def test_lambda_id_key_fires():
    source = "def rank(rows):\n    return min(rows, key=lambda r: id(r))\n"
    assert _by_rule(source, "RL602")


def test_stable_key_is_clean():
    source = "def rank(rows):\n    return sorted(rows, key=len)\n"
    assert _by_rule(source, "RL602") == []


# --------------------------------------------------------- RL603 / RL103

RACY = (
    "_EVENTS = []\n"
    "def _tick():\n"
    "    _EVENTS.append(1)\n"
    "def _tock():\n"
    "    _EVENTS.append(2)\n"
    "def _install(sched):\n"
    "    sched.schedule_at(0.0, _tick)\n"
    "    sched.schedule_at(0.0, _tock)\n"
)


def test_two_callbacks_writing_module_state_race():
    findings = _by_rule(RACY, "RL603")
    assert [f.line for f in findings] == [3, 5]
    assert all("_EVENTS" in f.message for f in findings)


def test_single_callback_is_not_a_race():
    source = RACY.replace("    sched.schedule_at(0.0, _tock)\n", "")
    assert _by_rule(source, "RL603") == []


def test_race_pragma_suppresses_at_write_site():
    source = RACY.replace(
        "    _EVENTS.append(1)",
        "    _EVENTS.append(1)  # reprolint: disable=RL603",
    )
    assert [f.line for f in _by_rule(source, "RL603")] == [5]


def test_shared_stream_between_callbacks_fires():
    source = (
        "from repro.common.rng import ensure_rng\n"
        "_STREAM = ensure_rng(3)\n"
        "def _a():\n"
        "    return _STREAM.random()\n"
        "def _b():\n"
        "    return _STREAM.random()\n"
        "def _install(sched):\n"
        "    sched.schedule_at(0.0, _a)\n"
        "    sched.schedule_in(1.0, _b)\n"
    )
    findings = _by_rule(source, "RL103")
    assert [f.line for f in findings] == [2]


def test_per_entity_streams_are_clean():
    source = (
        "from repro.common.rng import ensure_rng\n"
        "def _a(rng):\n"
        "    return rng.random()\n"
        "def _install(sched):\n"
        "    sched.schedule_at(0.0, _a)\n"
    )
    assert _by_rule(source, "RL103") == []
