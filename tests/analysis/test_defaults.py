"""RL401: mutable default arguments."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids


def test_list_literal_default_flagged(lint):
    findings = lint(
        """
        def collect(records=[]):
            return records
        """
    )
    flagged = [f for f in findings if f.rule_id == "RL401"]
    assert flagged and "'records'" in flagged[0].message
    assert flagged[0].line == 2


def test_dict_call_default_flagged(lint):
    findings = lint(
        """
        def configure(options=dict()):
            return options
        """
    )
    assert "RL401" in rule_ids(findings)


def test_kwonly_default_flagged(lint):
    findings = lint(
        """
        def configure(*, tags={"a"}):
            return tags
        """
    )
    assert "RL401" in rule_ids(findings)


def test_lambda_default_flagged(lint):
    findings = lint("f = lambda xs=[]: xs\n")
    assert "RL401" in rule_ids(findings)


def test_comprehension_default_flagged(lint):
    findings = lint(
        """
        def squares(values=[i * i for i in range(3)]):
            return values
        """
    )
    assert "RL401" in rule_ids(findings)


def test_none_and_immutable_defaults_pass(lint):
    findings = lint(
        """
        def configure(options=None, shape=(3, 4), name="x", scale=1.0):
            return options or {}
        """
    )
    assert "RL401" not in rule_ids(findings)


def test_pragma_suppresses_mutable_default(lint):
    findings = lint(
        """
        def collect(records=[]):  # reprolint: disable=mutable-default
            return records
        """
    )
    assert "RL401" not in rule_ids(findings)
