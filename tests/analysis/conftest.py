"""Helpers for the reprolint test suite."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import LintConfig, lint_source


@pytest.fixture
def lint():
    """Lint a dedented source snippet; returns the finding list."""

    def _lint(source, filename="snippet.py", config=None, extra=None):
        return lint_source(
            textwrap.dedent(source),
            filename=filename,
            config=config or LintConfig(),
            extra_sources={
                name: textwrap.dedent(text) for name, text in (extra or {}).items()
            },
        )

    return _lint


def rule_ids(findings):
    """The rule IDs of ``findings``, in report order."""
    return [finding.rule_id for finding in findings]
