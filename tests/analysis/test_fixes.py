"""The fix engine: span edits, overlap handling, and idempotence.

The hypothesis block is the load-bearing part: for *any* composition of
fixable violations, ``fix_source`` must (a) converge, (b) produce
source that still parses, (c) leave no fixable finding behind, and
(d) be idempotent — fixing twice equals fixing once with zero further
edits.
"""

from __future__ import annotations

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lint_source
from repro.analysis.findings import (
    Finding,
    Severity,
    TextEdit,
)
from repro.analysis.fixes import (
    FIXABLE_RULES,
    apply_edits,
    apply_fixes,
    fix_source,
)

FILE = "src/repro/common/fixture.py"


def _finding(line, col, end_line, end_col, replacement, rule="RL401"):
    return Finding(
        path=FILE,
        line=line,
        col=col,
        rule_id=rule,
        rule_name="x",
        severity=Severity.ERROR,
        message="m",
        fixes=(
            TextEdit(
                start_line=line,
                start_col=col,
                end_line=end_line,
                end_col=end_col,
                replacement=replacement,
            ),
        ),
    )


# ------------------------------------------------------------ mechanics


def test_apply_edits_replacement_and_insertion():
    source = "alpha\nbeta\n"
    edits = [
        TextEdit(1, 0, 1, 5, "ALPHA"),
        TextEdit(2, 0, 2, 0, "inserted\n"),
    ]
    assert apply_edits(source, edits) == "ALPHA\ninserted\nbeta\n"


def test_overlapping_finding_groups_one_wins():
    source = "abcdef\n"
    first = _finding(1, 0, 1, 4, "XXXX")
    second = _finding(1, 2, 1, 6, "YYYY")
    fixed, applied = apply_fixes(source, [first, second])
    assert applied == 1
    assert fixed in ("XXXXef\n", "abYYYY\n")


def test_duplicate_groups_are_deduplicated():
    source = "abcdef\n"
    twin_a = _finding(1, 0, 1, 3, "Z")
    twin_b = _finding(1, 0, 1, 3, "Z")
    fixed, applied = apply_fixes(source, [twin_a, twin_b])
    assert (fixed, applied) == ("Zdef\n", 1)


def test_finding_without_fixes_is_ignored():
    source = "abc\n"
    plain = Finding(
        path=FILE, line=1, col=0, rule_id="RL001", rule_name="x",
        severity=Severity.ERROR, message="m",
    )
    assert apply_fixes(source, [plain]) == (source, 0)


# ----------------------------------------------------- concrete fixers


def test_mutable_default_fix():
    source = (
        '__all__ = ["collect"]\n'
        "\n\n"
        "def collect(records=[]):\n"
        '    """Doc."""\n'
        "    return records\n"
    )
    fixed, total = fix_source(source, filename=FILE)
    assert total >= 1
    assert "records=None" in fixed
    assert "if records is None:" in fixed
    assert "records = []" in fixed
    # The guard lands after the docstring and the semantics survive.
    namespace: dict = {}
    exec(compile(fixed, FILE, "exec"), namespace)  # noqa: S102 (test-only)
    assert namespace["collect"]() == []
    assert namespace["collect"]([1]) == [1]


def test_all_repair_fix():
    source = (
        '__all__ = ["ghost", "keep", "keep"]\n'
        "\n\n"
        "def keep():\n"
        "    return 1\n"
        "\n\n"
        "def fresh():\n"
        "    return 2\n"
    )
    fixed, _ = fix_source(source, filename=FILE)
    tree = ast.parse(fixed)
    assign = next(s for s in tree.body if isinstance(s, ast.Assign))
    names = [c.value for c in assign.value.elts]
    assert names == ["keep", "fresh"]


def test_missing_all_insertion_fix():
    source = '"""Doc."""\n\nimport ast\n\n\ndef api():\n    return ast\n'
    fixed, _ = fix_source(source, filename=FILE)
    assert '__all__ = ["api"]' in fixed
    # Inserted after the docstring/import block, before the def.
    assert fixed.index("import ast") < fixed.index("__all__")
    assert fixed.index("__all__") < fixed.index("def api")


# --------------------------------------------------------- idempotence

_SNIPPETS = (
    'def collect{i}(records=[]):\n    return records\n',
    "def hosts{i}():\n    return list({{'a', 'b'}})\n",
    "def plain{i}():\n    return {i}\n",
    "def merge{i}(extra={{}}):\n    return dict(extra)\n",
)


@given(
    picks=st.lists(
        st.sampled_from(_SNIPPETS), min_size=1, max_size=5
    ),
    declare_all=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_fix_source_idempotent_for_any_composition(picks, declare_all):
    blocks = [pick.format(i=i) for i, pick in enumerate(picks)]
    header = '__all__ = []\n\n\n' if declare_all else ""
    source = header + "\n\n".join(blocks)

    fixed_once, applied_once = fix_source(source, filename=FILE)
    fixed_twice, applied_twice = fix_source(fixed_once, filename=FILE)

    assert applied_once >= 1  # every composition contains >= 1 fixable
    assert applied_twice == 0
    assert fixed_twice == fixed_once
    ast.parse(fixed_once)
    remaining = lint_source(fixed_once, filename=FILE)
    assert [f for f in remaining if f.rule_id in FIXABLE_RULES] == []
