"""The lint contract: what the rest of the repo may assume about reprolint.

Two promises are pinned here:

* **Layering** — ``analysis`` sits at the bottom of the package DAG,
  allowed to import only ``common``.  The linter judges every other
  package, so it must depend on none of them; a cycle between the judge
  and the judged would make the self-lint meaningless.  Checked both
  declaratively (the DAG entry) and empirically (the import graph of
  the real ``src/repro/analysis`` tree, via the linter's own
  :class:`~repro.analysis.graph.ProjectGraph`).
* **Exit codes** — ``0`` clean, ``1`` findings, ``2`` usage/config
  error.  CI scripts branch on these; they are API.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.cli import main as reprolint_main
from repro.analysis.passes.layering import DEFAULT_LAYERS
from repro.analysis.runner import collect_files
from repro.analysis.context import ModuleContext, ProjectIndex

REPO_ROOT = Path(__file__).resolve().parents[2]
ANALYSIS_ROOT = REPO_ROOT / "src" / "repro" / "analysis"
COMMON_ROOT = REPO_ROOT / "src" / "repro" / "common"


def test_analysis_is_bottom_of_layering_dag():
    assert DEFAULT_LAYERS["analysis"] == ("common",)


def test_common_is_bottom_of_layering_dag():
    """``common`` (clock, scheduler, errors, rng) is the true bottom:
    every package may import it, it may import nothing — the event core
    everything runs on cannot acquire upward dependencies."""
    assert DEFAULT_LAYERS["common"] == ()
    for package, deps in DEFAULT_LAYERS.items():
        if package != "common":
            assert "common" in deps, (
                f"'{package}' lost its 'common' layering entry"
            )


def test_common_tree_imports_only_common():
    """Empirical twin of the DAG entry: the real ``src/repro/common``
    tree has no repro imports outside itself."""
    index = ProjectIndex()
    for path in collect_files([COMMON_ROOT]):
        index.add_module(ModuleContext.from_path(path))
    offending = {}
    for module in sorted(index.graph.shards):
        shard = index.graph.shards[module]
        bad = sorted(
            target
            for target in shard.imports
            if target.startswith("repro.") and not target.startswith("repro.common")
        )
        if bad:
            offending[module] = bad
    assert not offending, offending


def test_fleet_sits_above_serve_and_artifacts():
    """``fleet`` composes serving and the registry; nothing below may
    import it back (the DAG stays acyclic with fleet near the top —
    only the ``eval`` harness, which scores fleet runs, sits higher)."""
    allowed = DEFAULT_LAYERS["fleet"]
    assert "serve" in allowed
    assert "artifacts" in allowed
    assert "objectstore" in allowed
    assert allowed == tuple(sorted(allowed))
    for package, deps in DEFAULT_LAYERS.items():
        if package not in ("fleet", "eval"):
            assert "fleet" not in deps, (
                f"'{package}' may not depend on 'fleet'"
            )


def test_eval_sits_at_the_top_of_the_dag():
    """``eval`` scores whole-stack runs, so it may import the serving,
    fleet, and fault layers — and nothing may import it back except the
    layering-exempt root modules (``repro.cli``, ``repro.scenarios``)."""
    allowed = DEFAULT_LAYERS["eval"]
    for needed in ("serve", "fleet", "faults", "sim", "core", "obs"):
        assert needed in allowed, f"'eval' lost its '{needed}' entry"
    assert allowed == tuple(sorted(allowed))
    for package, deps in DEFAULT_LAYERS.items():
        if package != "eval":
            assert "eval" not in deps, (
                f"'{package}' may not depend on 'eval'"
            )


def test_only_root_modules_import_eval():
    """Empirical twin: in the real tree, ``repro.eval`` is imported only
    from inside ``eval`` itself and from the root modules."""
    src_root = REPO_ROOT / "src" / "repro"
    index = ProjectIndex()
    for path in collect_files([src_root]):
        index.add_module(ModuleContext.from_path(path))
    importers = sorted(
        module
        for module, shard in index.graph.shards.items()
        if any(t.startswith("repro.eval") for t in shard.imports)
        and not module.startswith("repro.eval")
    )
    assert importers == ["repro.cli", "repro.scenarios"], importers


def test_eval_tree_imports_stay_in_its_layer():
    """The real ``src/repro/eval`` tree imports only its allowed set."""
    eval_root = REPO_ROOT / "src" / "repro" / "eval"
    allowed = set(DEFAULT_LAYERS["eval"]) | {"eval"}
    index = ProjectIndex()
    for path in collect_files([eval_root]):
        index.add_module(ModuleContext.from_path(path))
    offending = {}
    for module in sorted(index.graph.shards):
        shard = index.graph.shards[module]
        bad = sorted(
            target
            for target in shard.imports
            if target.startswith("repro.")
            and target.split(".")[1] not in allowed
        )
        if bad:
            offending[module] = bad
    assert not offending, offending


def test_analysis_tree_imports_only_common():
    index = ProjectIndex()
    for path in collect_files([ANALYSIS_ROOT]):
        index.add_module(ModuleContext.from_path(path))
    offending = {}
    for module in sorted(index.graph.shards):
        shard = index.graph.shards[module]
        bad = sorted(
            target
            for target in shard.imports
            if target.startswith("repro.")
            and not target.startswith(("repro.analysis", "repro.common"))
        )
        if bad:
            offending[module] = bad
    assert not offending, offending


def test_exit_code_contract(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text('__all__ = ["x"]\n\nx = 1\n')
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nstamp = time.time()\n")

    assert reprolint_main([str(clean)]) == 0
    assert reprolint_main([str(dirty)]) == 1
    assert reprolint_main([str(clean), "--select", "RLnope"]) == 2
    assert reprolint_main([str(clean), "--ignore", "RLnope"]) == 2

    broken_toml = tmp_path / "pyproject.toml"
    broken_toml.write_text("this is [[ not toml\n")
    assert reprolint_main([str(clean), "--pyproject", str(broken_toml)]) == 2
    capsys.readouterr()
