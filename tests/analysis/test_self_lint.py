"""The repo-wide self-lint: every invariant holds on the real tree.

This is the tier-1 gate the tentpole exists for — any future PR that
reads the wall clock, forks an unmanaged RNG stream, shares one stream
across scheduler callbacks, raises outside the ``ReproError`` hierarchy,
breaks ``__all__``, adds a mutable default, iterates a set into an
order-sensitive consumer, sorts by ``id()``, writes module state from
concurrent simulated-time callbacks, or inverts the package layering
fails here with the exact file and line.

The tree must be clean under the **full v2 rule set with an empty
baseline** — debt is fixed, not baselined.  The companion test drives
every rule against a deliberately-broken fixture so the gate itself
cannot silently rot.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import LintConfig, all_rules, lint_paths, lint_source
from repro.analysis.baseline import BASELINE_FILENAME, Baseline

REPO_ROOT = Path(__file__).resolve().parents[2]

# One violation per rule, with the (1-based) line it must be reported on.
BROKEN_FIXTURE = textwrap.dedent(
    '''
    """A deliberately-broken module: one violation per reprolint rule."""

    import time
    import numpy as np
    from repro.ml.layers import Dense

    __all__ = ["vanished", "simulate", "collect", "fail", "load", "probe"]


    def simulate(track, seed=0):
        return track


    def collect(records=[]):
        return records


    class HomegrownError(RuntimeError):
        pass


    def fail():
        raise HomegrownError("not a ReproError")


    def load():
        try:
            return open("x")
        except:
            pass


    def probe():
        try:
            return np.random.default_rng(0)
        except Exception:
            return time.time()


    from repro.common.rng import ensure_rng

    _STATE = []
    _STREAM = ensure_rng(13)


    def _install(scheduler):
        scheduler.schedule_at(0.0, _tick)
        scheduler.schedule_in(1.0, _tock)


    def _tick():
        _STATE.append(_STREAM.random())


    def _tock():
        _STATE.append(int(_STREAM.integers(0, 2)))


    def _enumerate_hosts():
        return list({"edge-0", "edge-1"})


    def _rank(rows):
        return sorted(rows, key=id)
    '''
).strip("\n")

EXPECTED = {
    "RL001": 37,  # time.time() in probe
    "RL101": 35,  # np.random.default_rng in probe
    "RL102": 10,  # simulate ignores seed
    "RL103": 43,  # _STREAM drawn from by both _tick and _tock
    "RL201": 29,  # bare except in load
    "RL202": 36,  # except Exception without re-raise in probe
    "RL203": 23,  # raise HomegrownError
    "RL301": 7,   # __all__ lists "vanished"
    "RL302": 18,  # class HomegrownError missing from __all__
    "RL401": 14,  # mutable default in collect
    "RL501": 5,   # common/ importing repro.ml
    "RL601": 60,  # list(...) over a set literal
    "RL602": 64,  # sorted(..., key=id)
    "RL603": 56,  # _STATE written from both _tick and _tock (last site)
}


def test_src_tree_is_clean():
    config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    result = lint_paths([REPO_ROOT / "src" / "repro"], config)
    assert result.files_checked > 100
    assert result.findings == [], "\n".join(f.render() for f in result.findings)


def test_checked_in_baseline_is_empty():
    # The tree is clean outright; the baseline exists only so the
    # workflow is exercised, and it must never accumulate debt.
    baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
    assert len(baseline) == 0


def test_broken_fixture_triggers_every_rule():
    findings = lint_source(
        BROKEN_FIXTURE, filename="src/repro/common/broken_fixture.py"
    )
    located = {f.rule_id: f for f in findings}
    for rule_id, line in EXPECTED.items():
        assert rule_id in located, f"{rule_id} did not fire on the fixture"
        assert located[rule_id].line == line, (
            f"{rule_id} fired at line {located[rule_id].line}, expected {line}:"
            f" {located[rule_id].message}"
        )
    assert all(
        f.path == "src/repro/common/broken_fixture.py" for f in findings
    )


def test_fixture_covers_all_non_meta_rules():
    # Every registered rule except RL303 (mutually exclusive with RL301/
    # RL302, which need an __all__ present) must fire on the fixture.
    findings = lint_source(
        BROKEN_FIXTURE, filename="src/repro/common/broken_fixture.py"
    )
    fired = {f.rule_id for f in findings}
    registered = {rule.id for rule in all_rules()}
    assert registered - fired == {"RL303"}


def test_missing_all_rule_fires_separately():
    findings = lint_source(
        "def api():\n    return 1\n",
        filename="src/repro/common/no_all.py",
    )
    assert "RL303" in {f.rule_id for f in findings}
