"""RL201/RL202/RL203: error-hierarchy conformance."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids

# A stand-in for common/errors.py, folded into the project index to test
# cross-file hierarchy resolution.
ERRORS_MODULE = """
class ReproError(Exception):
    pass

class DataError(ReproError):
    pass

class TubError(DataError):
    pass
"""


def test_bare_except_flagged(lint):
    findings = lint(
        """
        def load():
            try:
                return open("x")
            except:
                return None
        """
    )
    flagged = [f for f in findings if f.rule_id == "RL201"]
    assert flagged and flagged[0].line == 5


def test_broad_except_without_reraise_flagged(lint):
    findings = lint(
        """
        def load():
            try:
                return open("x")
            except Exception:
                return None
        """
    )
    assert "RL202" in rule_ids(findings)


def test_broad_except_with_reraise_allowed(lint):
    findings = lint(
        """
        class WrapError(ReproError):
            pass

        def load():
            try:
                return open("x")
            except Exception as exc:
                raise WrapError(str(exc)) from exc
        """,
        extra={"errors.py": ERRORS_MODULE},
    )
    assert "RL202" not in rule_ids(findings)


def test_broad_except_pragma_allowed(lint):
    findings = lint(
        """
        def load():
            try:
                return open("x")
            except Exception:  # reprolint: disable=broad-except
                return None
        """
    )
    assert "RL202" not in rule_ids(findings)


def test_broad_except_in_tuple_flagged(lint):
    findings = lint(
        """
        def load():
            try:
                return open("x")
            except (ValueError, Exception):
                return None
        """
    )
    assert "RL202" in rule_ids(findings)


def test_narrow_except_allowed(lint):
    findings = lint(
        """
        def load():
            try:
                return open("x")
            except OSError:
                return None
        """
    )
    assert rule_ids(findings).count("RL202") == 0
    assert rule_ids(findings).count("RL201") == 0


def test_raise_of_non_repro_class_flagged(lint):
    findings = lint(
        """
        class HomegrownError(RuntimeError):
            pass

        def fail():
            raise HomegrownError("oops")
        """
    )
    flagged = [f for f in findings if f.rule_id == "RL203"]
    assert flagged and flagged[0].line == 6
    assert "HomegrownError" in flagged[0].message


def test_raise_of_repro_subclass_allowed_cross_file(lint):
    # TubError is defined in another module; the project-wide index must
    # resolve its lineage through DataError -> ReproError.
    findings = lint(
        """
        from errors import TubError

        def fail():
            raise TubError("bad tub")
        """,
        extra={"errors.py": ERRORS_MODULE},
    )
    assert "RL203" not in rule_ids(findings)


def test_raise_builtin_allowed(lint):
    findings = lint(
        """
        def fail(count):
            raise ValueError(f"bad count {count}")
        """
    )
    assert "RL203" not in rule_ids(findings)


def test_raise_unknown_third_party_skipped(lint):
    findings = lint(
        """
        import somelib

        def fail():
            raise somelib.SomeError("?")
        """
    )
    assert "RL203" not in rule_ids(findings)


def test_reraise_statement_allowed(lint):
    findings = lint(
        """
        def fail():
            try:
                work()
            except OSError:
                raise
        """
    )
    assert "RL203" not in rule_ids(findings)
