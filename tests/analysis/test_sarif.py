"""The SARIF 2.1.0 reporter: shape, columns, determinism."""

from __future__ import annotations

import json

from repro.analysis import all_rules, lint_paths
from repro.analysis.sarif import (
    SARIF_VERSION,
    TOOL_NAME,
    render_sarif,
    sarif_payload,
)

# The 2.1.0 shape this repo relies on: enough of the official schema to
# catch structural regressions (jsonschema validates it when present).
SARIF_SHAPE = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "level", "message", "locations"],
                            "properties": {
                                "level": {"enum": ["error", "warning"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

VIOLATIONS = (
    "import time\n\n\n"
    "def probe(xs=[]):\n"
    "    return time.time()\n"
)


def _payload(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(VIOLATIONS)
    return sarif_payload(lint_paths([path]))


def test_payload_matches_sarif_shape(tmp_path):
    payload = _payload(tmp_path)
    try:
        import jsonschema
    except ImportError:
        jsonschema = None
    if jsonschema is not None:
        jsonschema.validate(payload, SARIF_SHAPE)
    assert payload["version"] == SARIF_VERSION
    driver = payload["runs"][0]["tool"]["driver"]
    assert driver["name"] == TOOL_NAME


def test_driver_carries_full_rule_catalog(tmp_path):
    driver = _payload(tmp_path)["runs"][0]["tool"]["driver"]
    catalog = {rule["id"] for rule in driver["rules"]}
    assert catalog == {rule.id for rule in all_rules()}
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in ("error", "warning")


def test_results_point_into_rule_catalog(tmp_path):
    run = _payload(tmp_path)["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert run["results"], "fixture produced no findings"
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_columns_are_one_based(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text("import time\nstamp = time.time()\n")
    result = lint_paths([path])
    finding = result.findings[0]
    region = sarif_payload(result)["runs"][0]["results"][0]["locations"][0][
        "physicalLocation"
    ]["region"]
    assert region["startLine"] == finding.line
    assert region["startColumn"] == finding.col + 1


def test_render_is_deterministic(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(VIOLATIONS)
    result = lint_paths([path])
    first = render_sarif(result)
    second = render_sarif(lint_paths([path]))
    assert first == second
    assert json.loads(first)  # valid JSON
