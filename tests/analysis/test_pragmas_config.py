"""Pragma parsing and [tool.reprolint] configuration loading."""

from __future__ import annotations

import pytest

from repro.analysis import LintConfig, RuleConfig, Severity, lint_source
from repro.analysis.context import parse_pragmas
from repro.analysis.passes.wall_clock import RL001
from repro.common.errors import ConfigurationError

from tests.analysis.conftest import rule_ids

VIOLATION = "import time\nstamp = time.time()\n"


# ------------------------------------------------------------- pragmas


def test_parse_pragmas_basic():
    pragmas = parse_pragmas("x = 1  # reprolint: disable=RL001\n")
    assert pragmas == {1: frozenset({"RL001"})}


def test_parse_pragmas_multiple_rules():
    pragmas = parse_pragmas("x = 1  # reprolint: disable=RL001,broad-except\n")
    assert pragmas[1] == frozenset({"RL001", "broad-except"})


def test_pragma_inside_string_ignored():
    pragmas = parse_pragmas('x = "# reprolint: disable=RL001"\n')
    assert pragmas == {}


def test_disable_all_pragma():
    findings = lint_source("import time\nstamp = time.time()  # reprolint: disable=all\n")
    assert findings == []


def test_pragma_on_other_line_does_not_suppress():
    findings = lint_source(
        "# reprolint: disable=RL001\nimport time\nstamp = time.time()\n"
    )
    assert "RL001" in rule_ids(findings)


# -------------------------------------------------------------- config


def test_global_disable_by_id():
    config = LintConfig(disable=("RL001",))
    assert lint_source(VIOLATION, config=config) == []


def test_global_disable_by_name():
    config = LintConfig(disable=("wall-clock",))
    assert lint_source(VIOLATION, config=config) == []


def test_per_rule_disable():
    config = LintConfig(rules={"RL001": RuleConfig(enabled=False)})
    assert lint_source(VIOLATION, config=config) == []


def test_per_rule_path_exclude():
    config = LintConfig(rules={"RL001": RuleConfig(exclude=("legacy/*",))})
    assert lint_source(VIOLATION, filename="legacy/old.py", config=config) == []
    assert lint_source(VIOLATION, filename="fresh/new.py", config=config) != []


def test_per_rule_severity_override():
    config = LintConfig(rules={"RL001": RuleConfig(severity="warning")})
    findings = lint_source(VIOLATION, config=config)
    assert findings and findings[0].severity is Severity.WARNING
    assert config.severity_for(RL001) is Severity.WARNING


def test_from_pyproject(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        """
        [tool.reprolint]
        include = ["src/repro", "tools"]
        disable = ["RL302"]
        exclude = ["**/generated/**"]

        [tool.reprolint.rules.RL001]
        exclude = ["benchmarks/*"]
        severity = "warning"

        [tool.reprolint.layering]
        common = []
        ml = ["common"]
        """
    )
    config = LintConfig.from_pyproject(pyproject)
    assert config.include == ("src/repro", "tools")
    assert config.disable == ("RL302",)
    assert config.exclude == ("**/generated/**",)
    assert config.rules["RL001"].severity == "warning"
    assert config.rules["RL001"].exclude == ("benchmarks/*",)
    assert config.layering == {"common": (), "ml": ("common",)}


def test_from_pyproject_missing_section_gives_defaults(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text('[project]\nname = "x"\n')
    config = LintConfig.from_pyproject(pyproject)
    assert config == LintConfig()


def test_from_pyproject_bad_severity_rejected(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        "[tool.reprolint.rules.RL001]\nseverity = \"fatal\"\n"
    )
    with pytest.raises(ConfigurationError):
        LintConfig.from_pyproject(pyproject)


def test_from_pyproject_bad_toml_rejected(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.reprolint\n")
    with pytest.raises(ConfigurationError):
        LintConfig.from_pyproject(pyproject)


def test_repo_pyproject_parses():
    # The checked-in config must stay loadable.
    from pathlib import Path

    repo_pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    config = LintConfig.from_pyproject(repo_pyproject)
    assert "src/repro" in config.include
