"""RL001: the wall-clock ban."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids


def test_time_time_flagged(lint):
    findings = lint(
        """
        import time

        def stamp():
            return time.time()
        """
    )
    assert "RL001" in rule_ids(findings)
    flagged = [f for f in findings if f.rule_id == "RL001"]
    assert flagged[0].line == 5
    assert "time.time" in flagged[0].message


def test_aliased_import_resolved(lint):
    findings = lint(
        """
        import time as tm

        def stamp():
            return tm.perf_counter()
        """
    )
    assert any(
        f.rule_id == "RL001" and "time.perf_counter" in f.message for f in findings
    )


def test_from_import_flagged_at_import_and_use(lint):
    findings = lint(
        """
        from time import perf_counter

        def stamp():
            return perf_counter()
        """
    )
    lines = [f.line for f in findings if f.rule_id == "RL001"]
    assert 2 in lines  # the import itself
    assert 5 in lines  # the call site


def test_datetime_now_flagged(lint):
    findings = lint(
        """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """
    )
    assert "RL001" in rule_ids(findings)


def test_from_datetime_import_datetime_now(lint):
    findings = lint(
        """
        from datetime import datetime

        def stamp():
            return datetime.utcnow()
        """
    )
    assert "RL001" in rule_ids(findings)


def test_sleep_flagged(lint):
    findings = lint("import time\ntime.sleep(1)\n")
    assert "RL001" in rule_ids(findings)


def test_clean_simulated_clock_passes(lint):
    findings = lint(
        """
        from repro.common.clock import Clock

        def stamp(clock: Clock) -> float:
            return clock.now
        """
    )
    assert "RL001" not in rule_ids(findings)


def test_unrelated_time_variable_not_flagged(lint):
    # A local variable named "time" must not trigger without an import.
    findings = lint(
        """
        def run(time):
            return time.time()
        """
    )
    assert "RL001" not in rule_ids(findings)


def test_pragma_suppresses(lint):
    findings = lint(
        """
        import time

        def stamp():
            return time.time()  # reprolint: disable=RL001
        """
    )
    assert "RL001" not in rule_ids(findings)


def test_pragma_by_name_suppresses(lint):
    findings = lint(
        """
        import time

        def stamp():
            return time.time()  # reprolint: disable=wall-clock
        """
    )
    assert "RL001" not in rule_ids(findings)


def test_benchmarks_exempt_by_default(lint):
    findings = lint(
        """
        import time

        def bench():
            return time.time()
        """,
        filename="benchmarks/test_speed.py",
    )
    assert "RL001" not in rule_ids(findings)
