"""RL301/RL302/RL303: __all__ consistency."""

from __future__ import annotations

from tests.analysis.conftest import rule_ids


def test_stale_export_flagged(lint):
    findings = lint(
        """
        __all__ = ["present", "vanished"]

        def present():
            return 1
        """
    )
    flagged = [f for f in findings if f.rule_id == "RL301"]
    assert flagged and "vanished" in flagged[0].message
    assert flagged[0].line == 2  # the __all__ element's own line


def test_duplicate_export_flagged(lint):
    findings = lint(
        """
        __all__ = ["f", "f"]

        def f():
            return 1
        """
    )
    assert any(
        f.rule_id == "RL301" and "duplicate" in f.message for f in findings
    )


def test_public_def_missing_from_all_flagged(lint):
    findings = lint(
        """
        __all__ = ["listed"]

        def listed():
            return 1

        def forgotten():
            return 2
        """
    )
    flagged = [f for f in findings if f.rule_id == "RL302"]
    assert flagged and "forgotten" in flagged[0].message


def test_private_def_not_required(lint):
    findings = lint(
        """
        __all__ = ["listed"]

        def listed():
            return 1

        def _internal():
            return 2
        """
    )
    assert "RL302" not in rule_ids(findings)


def test_reexported_import_satisfies_all(lint):
    findings = lint(
        """
        from os.path import join

        __all__ = ["join"]
        """
    )
    assert "RL301" not in rule_ids(findings)


def test_module_without_all_flagged(lint):
    findings = lint(
        """
        def api():
            return 1
        """
    )
    assert "RL303" in rule_ids(findings)


def test_module_of_private_helpers_needs_no_all(lint):
    findings = lint(
        """
        def _helper():
            return 1
        """
    )
    assert "RL303" not in rule_ids(findings)


def test_dunder_main_exempt_from_missing_all(lint):
    findings = lint(
        """
        def main():
            return 0
        """,
        filename="src/repro/analysis/__main__.py",
    )
    assert "RL303" not in rule_ids(findings)


def test_dynamic_all_skipped(lint):
    findings = lint(
        """
        _NAMES = ["a", "b"]
        __all__ = _NAMES

        def a():
            return 1
        """
    )
    assert "RL301" not in rule_ids(findings)
    assert "RL302" not in rule_ids(findings)


def test_conditional_definition_counts(lint):
    findings = lint(
        """
        __all__ = ["fast_path"]

        try:
            from accelerator import fast_path
        except ImportError:
            def fast_path():
                return None
        """
    )
    assert "RL301" not in rule_ids(findings)
