"""Soak: a vehicle fleet rides out a randomized fault plan and recovers.

Bounded by simulated time (12 s) and fleet size, so the whole module
stays in tier-1 wall-clock budget.  The randomized plans put every
fault in the first 65% of the run (``quiet_tail_frac=0.35``), so the
tail is a clean recovery window to measure against the pre-fault level.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.replica import BatchLatencyModel
from repro.serve.service import InferenceService
from repro.serve.workload import VehicleFleetWorkload
from repro.testbed.hardware import GPU_SPECS

DURATION_S = 12.0
FLEET = 32
REPLICAS = 3

#: Seeds whose first fault lands after t=1 s, so the timeline has at
#: least one clean pre-fault bucket to compare the recovery against.
SOAK_SEEDS = [2, 3, 4]


def soak(seed):
    targets = [f"replica-{i:04d}" for i in range(1, REPLICAS + 1)]
    plan = FaultPlan.randomized(
        targets, duration_s=DURATION_S, rng=seed, n_faults=4
    )
    service = InferenceService(
        BatchLatencyModel.from_gpu(GPU_SPECS["V100"], 1e8),
        n_replicas=REPLICAS,
        seed=seed,
        injector=FaultInjector(plan, seed=seed),
    )
    workload = VehicleFleetWorkload(FLEET, deadline_ticks=4, seed=seed)
    autoscaler = Autoscaler(service, AutoscalePolicy(
        min_replicas=REPLICAS, max_replicas=2 * REPLICAS,
        interval_s=0.5, provision_delay_s=0.5,
    ))
    service.run(workload, DURATION_S, autoscaler=autoscaler)
    return plan, service, workload


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_fleet_rides_out_randomized_faults(seed):
    plan, service, workload = soak(seed)
    assert service.crashes + service.hangs > 0, "the plan must actually bite"
    assert plan.last_clear_s <= DURATION_S * 0.65 + 1e-9

    # Floor: the fleet keeps answering through the faults.
    assert workload.fresh_response_ratio >= 0.9

    # Conservation holds under randomized chaos too.
    slo = service.slo
    assert slo.offered == slo.completed + slo.losses

    # Recovery: once the last fault clears, the per-bucket fresh-tick
    # ratio returns to at least the pre-fault level.
    timeline = workload.fresh_ratio_timeline()
    first_fault = min(spec.at_s for spec in plan)
    pre = [
        ratio for start, ratio in timeline
        if start + workload.timeline_bucket_s <= first_fault
    ]
    assert pre, "seed must leave a clean pre-fault bucket"
    recovered = [
        ratio for start, ratio in timeline
        if start >= plan.last_clear_s + 1.0
        and start + workload.timeline_bucket_s <= DURATION_S
    ]
    assert recovered, "the quiet tail must span whole buckets"
    assert min(recovered) >= max(pre) - 0.02


def test_soak_is_deterministic_per_seed():
    def fingerprint():
        _, service, workload = soak(SOAK_SEEDS[0])
        return (
            service.slo.offered, service.slo.completed, service.crashes,
            service.hangs, workload.fresh_response_ratio,
            tuple(workload.fresh_ratio_timeline()),
        )

    assert fingerprint() == fingerprint()
