"""The fault injector: arming, dispatch, and pure window queries."""

import pytest

from repro.common.clock import EventScheduler
from repro.common.errors import ConfigurationError
from repro.common.eventlog import EventLog
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec


def hang(target="replica-0001", at_s=1.0, duration_s=2.0):
    return FaultSpec(FaultKind.REPLICA_HANG, target, at_s=at_s,
                     duration_s=duration_s)


class TestArming:
    def test_start_and_clear_fire_in_order(self):
        fired = []
        scheduler = EventScheduler()
        injector = FaultInjector(FaultPlan([hang()]))
        injector.on(FaultKind.REPLICA_HANG,
                    lambda spec, rng: fired.append(("start", spec.target)))
        injector.on_clear(FaultKind.REPLICA_HANG,
                          lambda spec, rng: fired.append(("clear", spec.target)))
        injector.arm(scheduler)
        scheduler.run_all()
        assert fired == [("start", "replica-0001"), ("clear", "replica-0001")]
        assert injector.started == 1 and injector.cleared == 1

    def test_crash_has_no_clear_event(self):
        scheduler = EventScheduler()
        injector = FaultInjector(FaultPlan([
            FaultSpec(FaultKind.REPLICA_CRASH, "replica-0001", at_s=1.0)
        ]))
        injector.arm(scheduler)
        scheduler.run_all()
        assert injector.started == 1 and injector.cleared == 0

    def test_arm_is_idempotent(self):
        fired = []
        scheduler = EventScheduler()
        injector = FaultInjector(FaultPlan([hang()]))
        injector.on(FaultKind.REPLICA_HANG, lambda s, r: fired.append(s))
        injector.arm(scheduler)
        injector.arm(scheduler)
        scheduler.run_all()
        assert len(fired) == 1

    def test_past_spec_is_rejected(self):
        scheduler = EventScheduler()
        scheduler.clock.advance(5.0)
        injector = FaultInjector(FaultPlan([hang(at_s=1.0)]))
        with pytest.raises(ConfigurationError):
            injector.arm(scheduler)

    def test_events_are_logged(self):
        log = EventLog()
        scheduler = EventScheduler()
        injector = FaultInjector(FaultPlan([hang()]), log=log)
        injector.arm(scheduler)
        scheduler.run_all()
        kinds = [e.kind for e in log]
        assert kinds == ["fault.start.replica-hang", "fault.clear.replica-hang"]


class TestQueries:
    def make(self):
        return FaultInjector(FaultPlan([
            FaultSpec(FaultKind.LINK_PARTITION, "a->b", at_s=1.0,
                      duration_s=2.0),
            FaultSpec(FaultKind.LINK_DEGRADE, "a->b", at_s=1.0,
                      duration_s=4.0, factor=3.0),
            FaultSpec(FaultKind.SLOW_NODE, "replica-*", at_s=0.0,
                      duration_s=10.0, factor=2.0),
            FaultSpec(FaultKind.STORE_ERROR, "store:models", at_s=0.0,
                      duration_s=5.0, error_rate=0.5),
        ]))

    def test_active_respects_windows_without_arming(self):
        injector = self.make()
        assert not injector.active(FaultKind.LINK_PARTITION, "a->b", 0.5)
        assert injector.active(FaultKind.LINK_PARTITION, "a->b", 1.5)
        assert not injector.active(FaultKind.LINK_PARTITION, "a->b", 3.0)
        assert not injector.active(FaultKind.LINK_PARTITION, "b->a", 1.5)

    def test_latency_factors_multiply(self):
        injector = self.make()
        assert injector.latency_factor("a->b", 2.0) == pytest.approx(3.0)
        assert injector.latency_factor("a->b", 5.5) == pytest.approx(1.0)
        assert injector.latency_factor("replica-0003", 5.0) == pytest.approx(2.0)

    def test_should_fail_draws_are_seeded(self):
        def draws(seed):
            injector = FaultInjector(self.make().plan, seed=seed)
            return [
                injector.should_fail(FaultKind.STORE_ERROR, "store:models", 1.0)
                for _ in range(50)
            ]

        assert draws(1) == draws(1)
        assert draws(1) != draws(2)
        assert any(draws(1)) and not all(draws(1))  # rate 0.5 mixes outcomes

    def test_should_fail_certain_rate_consumes_no_draws(self):
        injector = FaultInjector(FaultPlan([
            FaultSpec(FaultKind.STORE_ERROR, "store:m", at_s=0.0,
                      duration_s=5.0, error_rate=1.0),
        ]))
        assert all(
            injector.should_fail(FaultKind.STORE_ERROR, "store:m", 1.0)
            for _ in range(10)
        )
        assert not injector.should_fail(FaultKind.STORE_ERROR, "store:m", 9.0)
