"""Retry policies, circuit breakers, and the resilient-call loop."""

import pytest

from repro.common.clock import Clock
from repro.common.errors import (
    CircuitOpenError,
    ConfigurationError,
    InjectedFaultError,
    RetryExhaustedError,
)
from repro.faults.breaker import BreakerPolicy, BreakerState, CircuitBreaker
from repro.faults.retry import RetryPolicy, call_with_resilience


class TestRetryPolicy:
    def test_schedule_grows_to_cap(self):
        policy = RetryPolicy(base_s=0.1, factor=2.0, cap_s=0.5, max_attempts=5)
        assert policy.schedule() == (0.1, 0.2, 0.4, 0.5)

    def test_backoff_without_rng_is_deterministic(self):
        policy = RetryPolicy(base_s=0.05, factor=3.0, cap_s=10.0)
        assert policy.backoff_s(0) == 0.05
        assert policy.backoff_s(2) == pytest.approx(0.45)

    def test_jitter_stretches_within_bounds(self):
        policy = RetryPolicy(base_s=1.0, factor=1.0, cap_s=1.0, jitter=0.5)
        for seed in range(20):
            delay = policy.backoff_s(0, rng=seed)
            assert 1.0 <= delay <= 1.5

    def test_jittered_backoff_is_seeded(self):
        policy = RetryPolicy(jitter=0.3)
        assert policy.backoff_s(1, rng=7) == policy.backoff_s(1, rng=7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=1.0, cap_s=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_s(-1)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(0.5)

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, open_s=1.0))
        breaker.record_failure(0.0)
        assert not breaker.allow(0.9)
        assert breaker.allow(1.0)  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(1.0)  # probe budget spent
        breaker.record_success(1.1)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, open_s=1.0))
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(1.5)
        assert breaker.allow(2.0)

    def test_peek_has_no_side_effects(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, open_s=1.0,
                                               half_open_probes=1))
        breaker.record_failure(0.0)
        for _ in range(5):
            assert breaker.peek(1.0)
        assert breaker.state is BreakerState.OPEN  # peek never transitions
        assert breaker.allow(1.0)
        assert not breaker.allow(1.0)

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure(0.0)
        breaker.record_success(0.1)
        breaker.record_failure(0.2)
        assert breaker.state is BreakerState.CLOSED

    def test_forced_trip_and_retrip_refreshes_window(self):
        breaker = CircuitBreaker(BreakerPolicy(open_s=1.0))
        breaker.trip(0.0)
        assert breaker.state is BreakerState.OPEN
        breaker.trip(0.8)  # re-trip pushes the re-probe time out
        assert not breaker.allow(1.5)
        assert breaker.allow(1.8)

    def test_transitions_are_recorded(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, open_s=1.0))
        breaker.record_failure(0.0)
        breaker.allow(1.0)
        breaker.record_success(1.1)
        assert [(f.value, t.value) for _, f, t in breaker.transitions] == [
            ("closed", "open"), ("open", "half-open"), ("half-open", "closed"),
        ]

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(open_s=0.0)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(half_open_probes=0)


class FlakyOp:
    """Fails with InjectedFaultError until ``fail_until`` on the clock."""

    def __init__(self, clock, fail_until):
        self.clock = clock
        self.fail_until = fail_until
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.clock.now < self.fail_until:
            raise InjectedFaultError("still failing")
        return "ok"


class TestCallWithResilience:
    def test_retries_until_window_clears(self):
        clock = Clock()
        op = FlakyOp(clock, fail_until=0.2)
        retry = RetryPolicy(base_s=0.1, factor=2.0, cap_s=1.0,
                            max_attempts=5, jitter=0.0)
        assert call_with_resilience(op, retry=retry, clock=clock) == "ok"
        assert op.calls == 3  # fail@0, fail@0.1, ok@0.3
        assert clock.now == pytest.approx(0.3)

    def test_exhaustion_raises_and_chains(self):
        clock = Clock()
        op = FlakyOp(clock, fail_until=1e9)
        retry = RetryPolicy(base_s=0.01, max_attempts=3, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as err:
            call_with_resilience(op, retry=retry, clock=clock, target="x")
        assert op.calls == 3
        assert isinstance(err.value.__cause__, InjectedFaultError)

    def test_without_retry_fault_propagates(self):
        clock = Clock()
        op = FlakyOp(clock, fail_until=1e9)
        with pytest.raises(InjectedFaultError):
            call_with_resilience(op, clock=clock)
        assert op.calls == 1

    def test_deadline_stops_the_loop_early(self):
        clock = Clock()
        op = FlakyOp(clock, fail_until=1e9)
        retry = RetryPolicy(base_s=1.0, factor=1.0, cap_s=1.0,
                            max_attempts=10, jitter=0.0)
        with pytest.raises(RetryExhaustedError):
            call_with_resilience(
                op, retry=retry, clock=clock, deadline_s=2.5
            )
        assert op.calls == 3  # attempts at 0.0, 1.0, 2.0; next lands at 3.0
        assert clock.now <= 2.5

    def test_open_breaker_fails_fast(self):
        clock = Clock()
        breaker = CircuitBreaker(BreakerPolicy(open_s=10.0))
        breaker.trip(0.0)
        op = FlakyOp(clock, fail_until=0.0)
        with pytest.raises(CircuitOpenError):
            call_with_resilience(op, breaker=breaker, clock=clock)
        assert op.calls == 0

    def test_breaker_fed_failures_then_success(self):
        clock = Clock()
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=5))
        op = FlakyOp(clock, fail_until=0.15)
        retry = RetryPolicy(base_s=0.1, factor=1.0, cap_s=0.1,
                            max_attempts=5, jitter=0.0)
        assert (
            call_with_resilience(op, retry=retry, breaker=breaker, clock=clock)
            == "ok"
        )
        assert breaker.state is BreakerState.CLOSED
