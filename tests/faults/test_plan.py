"""Fault plans: validation, matching, windows, serialisation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.faults.plan import (
    ACTION_KINDS,
    WINDOW_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)


class TestFaultSpec:
    def test_window_kinds_need_duration(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.REPLICA_HANG, "replica-0001", at_s=1.0)

    def test_crash_needs_no_duration(self):
        spec = FaultSpec(FaultKind.REPLICA_CRASH, "replica-0001", at_s=1.0)
        assert spec.end_s == 1.0
        assert not spec.active_at(1.0)  # crashes are actions, not windows

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.REPLICA_CRASH, "", at_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.REPLICA_CRASH, "x", at_s=-1.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.SLOW_NODE, "x", at_s=0.0, duration_s=1.0,
                      factor=0.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.STORE_ERROR, "x", at_s=0.0, duration_s=1.0,
                      error_rate=1.5)

    def test_exact_and_wildcard_matching(self):
        exact = FaultSpec(FaultKind.REPLICA_CRASH, "replica-0001", at_s=0.0)
        assert exact.matches("replica-0001")
        assert not exact.matches("replica-0002")
        wild = FaultSpec(FaultKind.REPLICA_CRASH, "replica-*", at_s=0.0)
        assert wild.matches("replica-0001") and wild.matches("replica-0999")
        assert not wild.matches("store:models")

    def test_window_is_half_open(self):
        spec = FaultSpec(
            FaultKind.LINK_PARTITION, "a->b", at_s=2.0, duration_s=3.0
        )
        assert not spec.active_at(1.999)
        assert spec.active_at(2.0)
        assert spec.active_at(4.999)
        assert not spec.active_at(5.0)

    def test_dict_round_trip(self):
        spec = FaultSpec(FaultKind.SLOW_NODE, "replica-*", at_s=1.5,
                         duration_s=2.0, factor=3.0)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.from_dict({"kind": "meteor-strike", "target": "x",
                                 "at_s": 0.0})
        with pytest.raises(ConfigurationError):
            FaultSpec.from_dict({"kind": "replica-crash"})

    def test_kind_partition_covers_every_kind(self):
        assert WINDOW_KINDS | ACTION_KINDS == frozenset(FaultKind)


class TestFaultPlan:
    def test_specs_sorted_by_start_time(self):
        late = FaultSpec(FaultKind.REPLICA_CRASH, "a", at_s=5.0)
        early = FaultSpec(FaultKind.REPLICA_CRASH, "b", at_s=1.0)
        plan = FaultPlan([late, early])
        assert [s.target for s in plan] == ["b", "a"]
        assert len(plan) == 2

    def test_equal_times_keep_insertion_order(self):
        a = FaultSpec(FaultKind.REPLICA_CRASH, "a", at_s=1.0)
        b = FaultSpec(FaultKind.REPLICA_CRASH, "b", at_s=1.0)
        assert [s.target for s in FaultPlan([a, b])] == ["a", "b"]

    def test_last_clear(self):
        plan = FaultPlan([
            FaultSpec(FaultKind.REPLICA_HANG, "a", at_s=1.0, duration_s=4.0),
            FaultSpec(FaultKind.REPLICA_CRASH, "b", at_s=6.0),
        ])
        assert plan.last_clear_s == 6.0
        assert FaultPlan().last_clear_s == 0.0

    def test_dicts_round_trip(self):
        plan = FaultPlan([
            FaultSpec(FaultKind.STORE_ERROR, "store:models", at_s=0.5,
                      duration_s=1.0, error_rate=0.25),
            FaultSpec(FaultKind.REPLICA_CRASH, "replica:any", at_s=2.0),
        ])
        again = FaultPlan.from_dicts(plan.to_dicts())
        assert again.specs == plan.specs


class TestRandomizedPlan:
    def test_deterministic_per_seed(self):
        kw = dict(targets=["replica-0001", "replica-0002"], duration_s=20.0)
        assert (
            FaultPlan.randomized(rng=3, **kw).to_dicts()
            == FaultPlan.randomized(rng=3, **kw).to_dicts()
        )
        assert (
            FaultPlan.randomized(rng=3, **kw).to_dicts()
            != FaultPlan.randomized(rng=4, **kw).to_dicts()
        )

    def test_respects_quiet_tail_and_crash_budget(self):
        for seed in range(10):
            plan = FaultPlan.randomized(
                ["replica-0001"], duration_s=10.0, rng=seed, n_faults=6,
                max_crashes=1, quiet_tail_frac=0.3,
            )
            crashes = [
                s for s in plan if s.kind is FaultKind.REPLICA_CRASH
            ]
            assert len(crashes) <= 1
            assert all(spec.end_s <= 7.0 + 1e-9 for spec in plan)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.randomized([], duration_s=10.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.randomized(["a"], duration_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.randomized(["a"], duration_s=5.0, quiet_tail_frac=1.0)
