"""Chaos regressions: conservation under crashes, per-seed determinism."""

import json

import pytest

from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.common.eventlog import EventLog
from repro.faults.breaker import BreakerState
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.serve.chaos import ChaosScenario, default_plan, run_chaos
from repro.serve.replica import ReplicaState
from repro.serve.request import RequestStatus, TERMINAL_STATUSES
from repro.serve.workload import PoissonWorkload, VehicleFleetWorkload


class TestCrashConservation:
    def test_no_admitted_request_is_lost_or_double_completed(
        self, chaos_service
    ):
        service = chaos_service(
            plan=[(FaultKind.REPLICA_CRASH, "replica-0001", 0.5)],
            n_replicas=2,
        )
        service.run(PoissonWorkload(400.0, deadline_s=0.2, seed=5), 2.0)
        assert service.crashes == 1
        assert service.slo.requeued > 0
        assert service.requests
        assert all(r.status in TERMINAL_STATUSES for r in service.requests)
        slo = service.slo
        assert slo.offered == slo.completed + slo.losses
        completed = [
            r.request_id for r in service.requests
            if r.status is RequestStatus.COMPLETED
        ]
        assert len(completed) == len(set(completed))

    def test_crashed_replica_is_failed_and_circuit_open(self, chaos_service):
        service = chaos_service(
            plan=[(FaultKind.REPLICA_CRASH, "replica-0001", 0.5)],
            n_replicas=2,
        )
        service.run(PoissonWorkload(200.0, seed=5), 1.0)
        crashed = service.replicas[0]
        assert crashed.state is ReplicaState.FAILED
        assert service.breaker_for("replica-0001").state is BreakerState.OPEN
        assert crashed not in service.routable_replicas()

    def test_requeues_preserve_deadline_order(self, chaos_service, caplog):
        log = EventLog()
        service = chaos_service(
            plan=[(FaultKind.REPLICA_CRASH, "replica-0001", 0.5)],
            n_replicas=1, log=log, log_requests=True,
        )
        service.run(PoissonWorkload(600.0, deadline_s=0.5, seed=5), 1.0)
        requeues = [
            e.payload["deadline_s"]
            for e in log.filter(kind="serve.request.requeue")
        ]
        assert requeues, "the crash should have orphaned queued requests"
        assert requeues == sorted(requeues)

    def test_losing_every_replica_degrades_not_crashes(self, chaos_service):
        service = chaos_service(
            plan=[(FaultKind.REPLICA_CRASH, "replica-*", 0.5)],
            n_replicas=2,
        )
        summary = service.run(PoissonWorkload(200.0, seed=5), 2.0)
        assert service.crashes == 2
        assert summary.offered == summary.completed + (
            summary.dropped + summary.shed + summary.rejected + summary.expired
        )
        assert summary.dropped > 0  # post-crash arrivals fall back to drops


class TestHangs:
    def test_inflight_completion_is_postponed_past_the_hang(self):
        from repro.faults import FaultInjector, FaultPlan
        from repro.serve.replica import BatchLatencyModel
        from repro.serve.request import Request
        from repro.serve.service import InferenceService

        # Deterministic latency: the single-request batch takes 0.31 s,
        # so it is mid-flight when the hang lands at 0.1 s.
        plan = FaultPlan([FaultSpec(FaultKind.REPLICA_HANG, "replica-0001",
                                    at_s=0.1, duration_s=1.0)])
        service = InferenceService(
            BatchLatencyModel(0.3, 0.01, jitter=0.0),
            n_replicas=1, batch_policy="single", seed=5,
            injector=FaultInjector(plan, seed=5), keep_requests=True,
        )
        request = Request("req-000001", "test", arrival_s=0.0, deadline_s=10.0)
        assert service.submit(request)
        service.scheduler.run_all()
        assert service.hangs == 1
        assert request.status is RequestStatus.COMPLETED
        # Without the hang it would complete at 0.31; the hang freezes the
        # replica from 0.1 to 1.1, shifting completion by the full second.
        assert request.completed_s == pytest.approx(1.31)

    def test_hung_replica_is_unroutable_until_thaw(self, chaos_service):
        service = chaos_service(
            plan=[(FaultKind.REPLICA_HANG, "replica-0001", 0.5, 1.0)],
            n_replicas=1,
        )
        scheduler = service.scheduler
        scheduler.run_until(0.6)
        assert service.routable_replicas() == []
        scheduler.run_until(5.0)
        replica = service.replicas[0]
        assert not replica.is_hung(scheduler.clock.now)


class TestAutoscalerReplacement:
    def test_crashed_capacity_is_replaced(self, chaos_service):
        from repro.serve.autoscale import AutoscalePolicy, Autoscaler

        log = EventLog()
        service = chaos_service(
            plan=[(FaultKind.REPLICA_CRASH, "replica-0001", 0.5)],
            n_replicas=1, log=log,
        )
        autoscaler = Autoscaler(service, AutoscalePolicy(
            min_replicas=1, max_replicas=4, interval_s=0.25,
            provision_delay_s=0.25, queue_high=1e9, p95_target_s=1e9,
        ))
        summary = service.run(
            PoissonWorkload(50.0, deadline_s=2.0, seed=5), 4.0,
            autoscaler=autoscaler,
        )
        assert service.crashes == 1
        replacements = log.filter(kind="serve.scale.replace")
        assert replacements and replacements[0].time >= 0.5
        assert summary.scale_ups >= 1
        # The replacement serves: batches dispatch onto it once ready.
        ready = log.filter(kind="serve.replica.ready")
        assert ready
        late = [
            e for e in log.filter(kind="serve.batch.dispatch")
            if e.time > ready[0].time and e.actor == "replica-0002"
        ]
        assert late


class TestDeterminism:
    def scenario(self):
        return ChaosScenario(
            name="det", duration_s=6.0, vehicles=32, replicas=2,
            plan=default_plan(2), provision_delay_s=0.5,
        )

    def test_run_chaos_byte_identical_per_seed(self):
        a = run_chaos(self.scenario(), seed=3)
        b = run_chaos(self.scenario(), seed=3)
        assert a.to_text() == b.to_text()
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        a = run_chaos(self.scenario(), seed=3)
        b = run_chaos(self.scenario(), seed=4)
        assert a.to_text() != b.to_text()

    def test_cli_chaos_byte_identical(self, capsys):
        argv = ["chaos", "--seed", "3", "--duration", "5", "--vehicles", "24"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert "conserved yes" in first

    def test_cli_scenario_file(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(self.scenario().to_dict()))
        assert main(["chaos", "--scenario", str(path), "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "chaos scenario 'det' seed=2" in out


class TestScenario:
    def test_dict_round_trip(self):
        scenario = ChaosScenario(name="rt", replicas=2, plan=default_plan(2))
        again = ChaosScenario.from_dict(scenario.to_dict())
        assert again.to_dict() == scenario.to_dict()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosScenario.from_dict({"name": "x", "blast_radius": 3})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosScenario(duration_s=0.0)
        with pytest.raises(ConfigurationError):
            ChaosScenario(vehicles=0)
        with pytest.raises(ConfigurationError):
            default_plan(0)

    def test_summary_embeds_serve_report(self):
        summary = run_chaos(
            ChaosScenario(duration_s=4.0, vehicles=16, replicas=2,
                          plan=default_plan(2)),
            seed=1,
        )
        text = summary.to_text()
        assert "serve summary" in text
        assert "faults    crashes=" in text
        assert summary.conserved
