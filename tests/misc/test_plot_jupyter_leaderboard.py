"""SVG plotting, notebook emulation, and the class leaderboard."""

import json

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.core.evaluation import EvaluationReport
from repro.core.leaderboard import CRITERIA, Leaderboard
from repro.sim.plot import save_svg, track_svg, trajectory_svg
from repro.testbed.jupyter import Notebook, NotebookError


def make_report(laps=3, errors=2, speed=1.0, lap_time=10.0, cte=0.05):
    return EvaluationReport(
        model_name="m", ticks=600, sim_seconds=30.0, laps=laps,
        mean_lap_time=lap_time, lap_time_std=0.2, mean_speed=speed,
        errors=errors, mean_abs_cte=cte, distance=speed * 30.0,
    )


class TestSVG:
    def test_track_svg_valid(self, oval_track):
        svg = track_svg(oval_track)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<polyline") >= 3  # inner, outer, centreline
        assert "#e87722" in svg  # orange tape

    def test_waveshare_palette(self, waveshare):
        assert "#d9d9d9" in track_svg(waveshare)

    def test_trajectory_overlay(self, oval_track):
        laps = oval_track.point_at(np.linspace(0, oval_track.length, 50))
        svg = trajectory_svg(
            oval_track,
            {"expert": laps, "student": laps + 0.05},
            crash_points=np.array([[1.0, -1.0]]),
        )
        assert svg.count("<polyline") >= 5
        assert "<circle" in svg  # crash marker
        assert "expert" in svg and "student" in svg  # legend

    def test_bad_trajectory_rejected(self, oval_track):
        with pytest.raises(SimulationError):
            trajectory_svg(oval_track, {"bad": np.zeros((1, 2))})

    def test_save_svg(self, tmp_path, oval_track):
        path = save_svg(track_svg(oval_track), tmp_path / "track.svg")
        assert path.exists()
        with pytest.raises(SimulationError):
            save_svg("not svg", tmp_path / "x.svg")


class TestNotebook:
    def build(self):
        nb = Notebook("03-train-on-gpu")
        nb.add_markdown("# Train a model\nReserve, deploy, train.")
        nb.add_code("lease = reserve()", lambda ctx: ctx.setdefault("lease", "L1"))
        nb.add_code("print(lease)", lambda ctx: ctx["lease"])
        return nb

    def test_run_all_shares_context(self):
        nb = self.build()
        results = nb.run_all()
        assert [r.ok for r in results] == [True, True]
        assert results[1].value == "L1"
        assert nb.context["lease"] == "L1"

    def test_execution_counts_increment(self):
        nb = self.build()
        nb.run_cell(1)
        result = nb.run_cell(1)
        assert result.execution_count == 2

    def test_markdown_cells_not_executable(self):
        nb = self.build()
        with pytest.raises(ConfigurationError):
            nb.run_cell(0)

    def test_failure_modes(self):
        nb = Notebook("broken")
        nb.add_code("1/0", lambda ctx: 1 / 0)
        result = nb.run_cell(0)
        assert not result.ok
        assert "ZeroDivisionError" in result.error
        with pytest.raises(NotebookError):
            nb.run_all()

    def test_hub_integration_counts_executions(self):
        from repro.artifacts.metrics import compute_outcomes
        from repro.artifacts.trovi import TroviHub

        hub = TroviHub()
        artifact = hub.publish("A", "alicia", {"nb.ipynb": b"x"})
        nb = self.build()
        nb.attach_hub(hub, artifact.artifact_id, "student1")
        nb.run_all()
        outcome = compute_outcomes(hub, artifact.artifact_id)
        assert outcome.executing_users == 1

    def test_ipynb_export_is_valid_nbformat4(self):
        nb = self.build()
        nb.run_all()
        doc = json.loads(nb.to_ipynb())
        assert doc["nbformat"] == 4
        assert len(doc["cells"]) == 3
        assert doc["cells"][0]["cell_type"] == "markdown"
        code = doc["cells"][2]
        assert code["execution_count"] == 2
        assert code["outputs"][0]["data"]["text/plain"] == ["'L1'"]

    def test_name_normalised(self):
        assert Notebook("x").name == "x.ipynb"
        with pytest.raises(ConfigurationError):
            Notebook("")


class TestLeaderboard:
    def test_ranking_speed_and_errors(self):
        board = Leaderboard()
        board.submit("alice", "inferred", "oval", make_report(speed=1.6, errors=1))
        board.submit("bob", "linear", "oval", make_report(speed=0.9, errors=5))
        assert board.winner().student == "alice"

    def test_fewest_errors_criterion(self):
        board = Leaderboard()
        board.submit("alice", "inferred", "oval", make_report(speed=1.6, errors=4))
        board.submit("bob", "categorical", "oval", make_report(speed=1.2, errors=0))
        assert board.winner("fewest-errors").student == "bob"

    def test_fastest_lap_handles_no_lap(self):
        board = Leaderboard()
        board.submit("alice", "m", "oval", make_report(laps=0, lap_time=0.0))
        board.submit("bob", "m", "oval", make_report(laps=2, lap_time=9.0))
        assert board.winner("fastest-lap").student == "bob"

    def test_resubmission_replaces(self):
        board = Leaderboard()
        board.submit("alice", "v1", "oval", make_report(errors=9))
        board.submit("alice", "v2", "oval", make_report(errors=0))
        assert len(board) == 1
        assert board.entries()[0].model_name == "v2"

    def test_multi_track_standings_require_all_tracks(self):
        board = Leaderboard()
        board.submit("alice", "m", "oval", make_report(cte=0.03))
        board.submit("alice", "m", "waveshare", make_report(cte=0.04))
        board.submit("bob", "m", "oval", make_report(cte=0.02))
        standings = board.multi_track_standings("accuracy")
        assert [s for s, _ in standings] == ["alice"]  # bob skipped a track

    def test_multi_track_winner(self):
        board = Leaderboard()
        for track in ("oval", "waveshare"):
            board.submit("alice", "m", track, make_report(cte=0.02))
            board.submit("bob", "m", track, make_report(cte=0.08))
        standings = board.multi_track_standings("accuracy")
        assert standings[0] == ("alice", 1.0)
        assert standings[1][0] == "bob"

    def test_table_renders(self):
        board = Leaderboard("friday-race")
        board.submit("alice", "inferred", "oval", make_report())
        text = board.table()
        assert "friday-race" in text and "alice" in text

    def test_unknown_criterion(self):
        board = Leaderboard()
        board.submit("alice", "m", "oval", make_report())
        with pytest.raises(ConfigurationError):
            board.rank("style-points")
        assert set(CRITERIA) == {
            "speed-and-errors", "fastest-lap", "fewest-errors", "accuracy"
        }

    def test_empty_board(self):
        with pytest.raises(ConfigurationError):
            Leaderboard().winner()
