"""Direct unit tests for :mod:`repro.scenarios`.

The golden-trace suite covers the scenarios end to end; these tests pin
the module's own contract: every name resolves to a declarative spec
that round-trips, unknown names raise, the requested seed reaches the
scenario's seeded components, and the scratch work dir never leaks —
even when the scenario body raises.
"""

from __future__ import annotations

import tempfile

import pytest

from repro.common.errors import ConfigurationError
from repro.eval.spec import ScenarioSpec
from repro.scenarios import (
    TRACE_SCENARIOS,
    run_trace_scenario,
    trace_scenario_spec,
)


class TestSpecs:
    @pytest.mark.parametrize("name", TRACE_SCENARIOS)
    def test_every_scenario_has_a_round_tripping_spec(self, name):
        spec = trace_scenario_spec(name)
        assert spec.name == name
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_scenario_names_are_stable(self):
        assert TRACE_SCENARIOS == (
            "pipeline-quickstart",
            "serve-load",
            "chaos-crash",
            "fleet-canary-chaos",
        )

    @pytest.mark.parametrize("func", [run_trace_scenario, trace_scenario_spec])
    def test_unknown_name_raises_configuration_error(self, func):
        with pytest.raises(ConfigurationError, match="unknown trace scenario"):
            func("no-such-scenario")


class _Abort(Exception):
    """Raised by capture stubs to stop the run after the seed is seen."""


class TestSeedPlumbing:
    """The seed argument must reach every seeded component unchanged."""

    SEED = 7741

    def _capture_seed(self, monkeypatch, module, attr, captured):
        def stub(*args, **kwargs):
            captured[attr] = kwargs.get("seed")
            raise _Abort

        monkeypatch.setattr(module, attr, stub)

    def test_serve_load_service_seed(self, monkeypatch):
        import repro.serve.service as mod

        captured = {}
        self._capture_seed(monkeypatch, mod, "InferenceService", captured)
        with pytest.raises(_Abort):
            run_trace_scenario("serve-load", seed=self.SEED)
        assert captured["InferenceService"] == self.SEED

    def test_serve_load_workload_seed(self, monkeypatch):
        import repro.serve.workload as mod

        captured = {}
        self._capture_seed(monkeypatch, mod, "PoissonWorkload", captured)
        with pytest.raises(_Abort):
            run_trace_scenario("serve-load", seed=self.SEED)
        assert captured["PoissonWorkload"] == self.SEED

    def test_chaos_crash_run_seed(self, monkeypatch):
        import repro.serve.chaos as mod

        captured = {}
        self._capture_seed(monkeypatch, mod, "run_chaos", captured)
        with pytest.raises(_Abort):
            run_trace_scenario("chaos-crash", seed=self.SEED)
        assert captured["run_chaos"] == self.SEED

    def test_fleet_config_seed(self, monkeypatch):
        import repro.fleet as mod

        captured = {}
        self._capture_seed(monkeypatch, mod, "FleetConfig", captured)
        with pytest.raises(_Abort):
            run_trace_scenario("fleet-canary-chaos", seed=self.SEED)
        assert captured["FleetConfig"] == self.SEED

    def test_pipeline_seed(self, monkeypatch, tmp_path):
        import repro.core.pipeline as mod

        captured = {}
        self._capture_seed(monkeypatch, mod, "AutoLearnPipeline", captured)
        with pytest.raises(_Abort):
            run_trace_scenario(
                "pipeline-quickstart", seed=self.SEED, work_dir=tmp_path
            )
        assert captured["AutoLearnPipeline"] == self.SEED

    def test_seed_is_coerced_to_int(self, monkeypatch):
        import repro.serve.chaos as mod

        captured = {}
        self._capture_seed(monkeypatch, mod, "run_chaos", captured)
        with pytest.raises(_Abort):
            run_trace_scenario("chaos-crash", seed="11")
        assert captured["run_chaos"] == 11


class TestWorkDirCleanup:
    def test_temp_work_dir_removed_on_scenario_exception(
        self, monkeypatch, tmp_path
    ):
        """The implicit temp work dir must not leak when the scenario
        body raises mid-run."""
        import repro.core.pipeline as mod

        def explode(*args, **kwargs):
            raise RuntimeError("scenario body failure")

        monkeypatch.setattr(mod, "AutoLearnPipeline", explode)
        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        with pytest.raises(RuntimeError, match="scenario body failure"):
            run_trace_scenario("pipeline-quickstart", seed=0)
        assert list(tmp_path.iterdir()) == []

    def test_explicit_work_dir_is_kept(self, tmp_path):
        result = run_trace_scenario(
            "pipeline-quickstart", seed=0, work_dir=tmp_path
        )
        assert result.summary.startswith("pipeline-quickstart")
        assert list(tmp_path.iterdir()), "work dir should hold artifacts"
