"""Batched serving surface: every model head takes (B, H, W, 3) frames."""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.ml.models import MODEL_NAMES, create_model

H, W = 40, 56


def frames(batch, h=H, w=W, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 255, (batch, h, w, 3), dtype=np.uint8)


@pytest.fixture(scope="module", params=sorted(MODEL_NAMES))
def model(request):
    return create_model(
        request.param, input_shape=(H, W, 3), scale=0.25, seed=3
    )


class TestPredictFrames:
    def test_shape_contract(self, model):
        out = model.predict_frames(frames(6))
        assert out.shape == (6, 2)
        assert out.dtype == np.float32

    def test_outputs_in_command_range(self, model):
        out = model.predict_frames(frames(6))
        assert np.all(out >= -1.0) and np.all(out <= 1.0)

    def test_batch_matches_per_frame(self, model):
        """Batched inference computes the same commands as frame-at-a-time."""
        batch = frames(5)
        batched = model.predict_frames(batch)
        singly = np.concatenate(
            [model.predict_frames(batch[i : i + 1]) for i in range(5)]
        )
        np.testing.assert_allclose(batched, singly, rtol=1e-5, atol=1e-6)

    def test_float_frames_accepted(self, model):
        x = frames(3).astype(np.float32) / 255.0
        out = model.predict_frames(x)
        assert out.shape == (3, 2)

    def test_rejects_wrong_shapes(self, model):
        with pytest.raises(ShapeError):
            model.predict_frames(frames(3)[0])  # missing batch dim
        with pytest.raises(ShapeError):
            model.predict_frames(frames(3, h=H + 2))  # wrong H

    def test_batch_of_one(self, model):
        assert model.predict_frames(frames(1)).shape == (1, 2)


def test_full_resolution_frames():
    """The paper's native 120x160 camera shape serves batched too."""
    model = create_model("linear", input_shape=(120, 160, 3), scale=0.2, seed=1)
    out = model.predict_frames(frames(2, h=120, w=160))
    assert out.shape == (2, 2)


def test_stateless_match_with_run():
    """For single-frame models the serving surface agrees with run()."""
    model = create_model("linear", input_shape=(H, W, 3), scale=0.25, seed=3)
    batch = frames(4)
    served = model.predict_frames(batch)
    model.reset_state()
    driven = np.array([model.run(frame) for frame in batch], dtype=np.float32)
    np.testing.assert_allclose(served, driven, rtol=1e-5, atol=1e-6)
