"""The six DonkeyCar models: shapes, training, driving interface."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, ShapeError
from repro.data.datasets import ArraySplit, N_STEERING_BINS, linear_bin
from repro.ml.models.factory import MODEL_NAMES, create_model, register_model
from repro.ml.optimizers import Adam
from repro.ml.training import Trainer, estimate_flops_per_sample

H, W = 32, 40


def make_split(model, n=60, seed=0):
    rng = np.random.default_rng(seed)
    seq = model.sequence_length
    if seq:
        x = rng.random((n, seq, H, W, 3), dtype=np.float32)
    else:
        x = rng.random((n, H, W, 3), dtype=np.float32)
    angles = rng.uniform(-1, 1, n).astype(np.float32)
    throttles = rng.uniform(0, 1, n).astype(np.float32)
    if model.targets == "both" or model.targets == "memory":
        y = np.column_stack([angles, throttles])
    elif model.targets == "angle":
        y = angles[:, None]
    elif model.targets == "categorical":
        y = np.column_stack([linear_bin(angles), throttles[:, None]]).astype(np.float32)
    if model.targets == "memory":
        hist = rng.uniform(-1, 1, (n, model.mem_length, 2)).astype(np.float32)
        k = n - 12
        return ArraySplit((x[:k], hist[:k]), y[:k], (x[k:], hist[k:]), y[k:])
    k = n - 12
    return ArraySplit(x[:k], y[:k], x[k:], y[k:])


def model_for(name):
    return create_model(name, input_shape=(H, W, 3), scale=0.25, seed=1)


class TestFactory:
    def test_six_paper_models(self):
        assert set(MODEL_NAMES) == {"linear", "memory", "3d", "categorical",
                                    "inferred", "rnn"}

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError):
            create_model("transformer")

    def test_register_custom(self):
        from repro.ml.models.linear import LinearModel

        register_model("custom-linear-test", LinearModel)
        model = create_model("custom-linear-test", input_shape=(H, W, 3), scale=0.2)
        assert model.name == "linear"
        with pytest.raises(ConfigurationError):
            register_model("custom-linear-test", LinearModel)


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestAllModels:
    def test_one_epoch_reduces_loss(self, name):
        model = model_for(name)
        split = make_split(model)
        history = Trainer(Adam(0.002), batch_size=16, epochs=3, shuffle_seed=0).fit(
            model, split
        )
        assert history.train_loss[-1] <= history.train_loss[0]

    def test_predict_batch_ranges(self, name):
        model = model_for(name)
        split = make_split(model)
        x = split.x_val
        angles, throttles = model.predict_batch(x)
        n = len(x[0]) if isinstance(x, tuple) else len(x)
        assert angles.shape == (n,)
        assert throttles.shape == (n,)
        assert np.all(np.abs(angles) <= 1.0)
        assert np.all(np.abs(throttles) <= 1.0)

    def test_run_interface(self, name):
        model = model_for(name)
        frame = np.random.default_rng(0).integers(0, 255, (H, W, 3), dtype=np.uint8)
        steering, throttle = model.run(frame)
        assert -1.0 <= steering <= 1.0
        assert -1.0 <= throttle <= 1.0

    def test_run_rejects_wrong_frame_shape(self, name):
        model = model_for(name)
        with pytest.raises(ShapeError):
            model.run(np.zeros((H + 1, W, 3), dtype=np.uint8))

    def test_reset_state(self, name):
        model = model_for(name)
        frame = np.random.default_rng(1).integers(0, 255, (H, W, 3), dtype=np.uint8)
        model.run(frame)
        model.reset_state()
        assert len(model._frame_buffer) == 0

    def test_flops_positive(self, name):
        model = model_for(name)
        assert model.flops_per_sample() > 0
        assert estimate_flops_per_sample(model) > model.flops_per_sample()


class TestInferred:
    def test_throttle_rule_fast_straight_slow_turns(self):
        model = model_for("inferred")
        straight = model.infer_throttle(np.array([0.0]))
        turning = model.infer_throttle(np.array([1.0]))
        assert straight[0] == pytest.approx(model.max_throttle)
        assert turning[0] == pytest.approx(model.min_throttle)
        assert straight[0] > turning[0]

    def test_invalid_throttle_range(self):
        with pytest.raises(ConfigurationError):
            create_model(
                "inferred", input_shape=(H, W, 3),
                max_throttle=0.2, min_throttle=0.5,
            )


class TestCategorical:
    def test_loss_shape_validation(self):
        model = model_for("categorical")
        pred = np.zeros((4, N_STEERING_BINS + 1), dtype=np.float32)
        with pytest.raises(ShapeError):
            model.compute_loss(pred, np.zeros((4, 3), dtype=np.float32))

    def test_forward_probability_head(self):
        model = model_for("categorical")
        x = np.random.default_rng(0).random((4, H, W, 3), dtype=np.float32)
        out = model.forward(x)
        probs = out[:, :N_STEERING_BINS]
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-5)


class TestMemory:
    def test_requires_tuple_input(self):
        model = model_for("memory")
        with pytest.raises(ShapeError):
            model.forward(np.zeros((2, H, W, 3), dtype=np.float32))

    def test_history_shape_validated(self):
        model = model_for("memory")
        x = np.zeros((2, H, W, 3), dtype=np.float32)
        bad_hist = np.zeros((2, model.mem_length + 1, 2), dtype=np.float32)
        with pytest.raises(ShapeError):
            model.forward((x, bad_hist))

    def test_run_builds_control_buffer(self):
        model = model_for("memory")
        frame = np.zeros((H, W, 3), dtype=np.uint8)
        model.run(frame)
        model.run(frame)
        assert len(model._control_buffer) == model.mem_length

    def test_bad_mem_length(self):
        with pytest.raises(ShapeError):
            create_model("memory", input_shape=(H, W, 3), mem_length=0)


class TestSequenceModels:
    def test_3d_needs_min_sequence(self):
        with pytest.raises(ValueError):
            create_model("3d", input_shape=(H, W, 3), sequence_length=3)

    def test_rnn_sequence_configurable(self):
        model = create_model("rnn", input_shape=(H, W, 3), scale=0.25,
                             sequence_length=4)
        assert model.sequence_length == 4
        x = np.zeros((2, 4, H, W, 3), dtype=np.float32)
        assert model.forward(x).shape == (2, 2)

    def test_run_fills_frame_buffer(self):
        model = model_for("rnn")
        frame = np.zeros((H, W, 3), dtype=np.uint8)
        model.run(frame)
        assert len(model._frame_buffer) == model.sequence_length
