"""Sequential container and the training loop."""

import numpy as np
import pytest

from repro.common.errors import MLError, ShapeError
from repro.data.datasets import ArraySplit
from repro.ml.layers import Dense
from repro.ml.models.factory import create_model
from repro.ml.network import Sequential
from repro.ml.optimizers import Adam
from repro.ml.training import EarlyStopping, History, Trainer


def tiny_net(seed=0):
    return Sequential(
        [Dense(8, activation="relu"), Dense(1, activation="linear")],
        input_shape=(3,),
        seed=seed,
    )


def make_regression(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 3)).astype(np.float32)
    y = (x @ np.array([[0.5], [-1.0], [0.25]])).astype(np.float32)
    k = int(0.8 * n)
    return ArraySplit(x[:k], y[:k], x[k:], y[k:])


class TestSequential:
    def test_shapes_propagate(self):
        net = tiny_net()
        assert net.output_shape == (1,)

    def test_wrong_input_shape_rejected(self):
        with pytest.raises(ShapeError):
            tiny_net().forward(np.zeros((2, 5), dtype=np.float32))

    def test_deterministic_init(self):
        a, b = tiny_net(seed=3), tiny_net(seed=3)
        for pa, pb in zip(a.params, b.params):
            assert np.array_equal(pa, pb)

    def test_predict_batches_match_forward(self):
        net = tiny_net()
        x = np.random.default_rng(1).standard_normal((300, 3)).astype(np.float32)
        assert np.allclose(net.predict(x, batch_size=64), net.forward(x), atol=1e-6)

    def test_get_set_weights_roundtrip(self):
        a, b = tiny_net(seed=1), tiny_net(seed=2)
        b.set_weights(a.get_weights())
        x = np.ones((2, 3), dtype=np.float32)
        assert np.allclose(a.forward(x), b.forward(x))

    def test_set_weights_validates(self):
        net = tiny_net()
        with pytest.raises(ShapeError):
            net.set_weights([np.zeros((2, 2))])

    def test_summary_and_flops(self):
        net = tiny_net()
        assert "Dense" in net.summary()
        assert net.flops_per_sample() > 0
        assert net.n_params == 3 * 8 + 8 + 8 + 1

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ShapeError):
            Sequential([], (3,))


class TestTrainer:
    def test_loss_decreases_on_learnable_problem(self):
        model = create_model("linear", input_shape=(16, 16, 3), scale=0.2, seed=0)
        rng = np.random.default_rng(0)
        x = rng.random((80, 16, 16, 3), dtype=np.float32)
        # A learnable target: mean red channel, scaled.
        target = (x[..., 0].mean(axis=(1, 2)) * 2 - 1).astype(np.float32)
        y = np.column_stack([target, np.full_like(target, 0.5)])
        split = ArraySplit(x[:64], y[:64], x[64:], y[64:])
        history = Trainer(Adam(0.003), batch_size=16, epochs=8, shuffle_seed=0).fit(
            model, split
        )
        assert history.train_loss[-1] < history.train_loss[0] * 0.7

    def test_history_tracks_best(self):
        history = History()
        assert history.improved(1.0)
        history.epochs += 1
        assert not history.improved(1.5)
        history.epochs += 1
        assert history.improved(0.5)
        assert history.best_val_loss == 0.5
        assert history.best_epoch == 2

    def test_early_stopping_triggers(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(True)
        assert not stopper.update(False)
        assert stopper.update(False)

    def test_early_stopping_resets_on_improvement(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(False)
        stopper.update(True)
        assert not stopper.update(False)

    def test_trainer_early_stops(self):
        model = create_model("linear", input_shape=(16, 16, 3), scale=0.2, seed=0)
        rng = np.random.default_rng(0)
        x = rng.random((40, 16, 16, 3), dtype=np.float32)
        y = rng.uniform(-1, 1, (40, 2)).astype(np.float32)  # pure noise
        split = ArraySplit(x[:32], y[:32], x[32:], y[32:])
        trainer = Trainer(
            Adam(0.01), batch_size=16, epochs=50,
            early_stopping=EarlyStopping(patience=2), shuffle_seed=0,
        )
        history = trainer.fit(model, split)
        assert history.stopped_early
        assert history.epochs < 50

    def test_restore_best_weights(self):
        model = create_model("linear", input_shape=(16, 16, 3), scale=0.2, seed=0)
        rng = np.random.default_rng(1)
        x = rng.random((40, 16, 16, 3), dtype=np.float32)
        y = rng.uniform(-1, 1, (40, 2)).astype(np.float32)
        split = ArraySplit(x[:32], y[:32], x[32:], y[32:])
        trainer = Trainer(Adam(0.05), batch_size=16, epochs=6, shuffle_seed=0)
        history = trainer.fit(model, split)
        final_val = trainer.evaluate(model, split.x_val, split.y_val)
        assert final_val == pytest.approx(history.best_val_loss, rel=1e-5)

    def test_invalid_config(self):
        with pytest.raises(MLError):
            Trainer(batch_size=0)
        with pytest.raises(MLError):
            Trainer(epochs=0)
