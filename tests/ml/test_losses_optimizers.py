"""Loss functions and optimizers."""

import numpy as np
import pytest

from repro.common.errors import MLError, ShapeError
from repro.ml.losses import categorical_crossentropy, get_loss, huber, mae, mse
from repro.ml.optimizers import SGD, Adam, RMSProp, get_optimizer


def numgrad(fn, pred, eps=1e-5):
    g = np.zeros_like(pred, dtype=np.float64)
    flat = pred.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        gf[i] = (hi - lo) / (2 * eps)
    return g


class TestLosses:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.pred = rng.standard_normal((4, 3)).astype(np.float64)
        self.target = rng.standard_normal((4, 3)).astype(np.float64)

    def test_mse_value(self):
        value, _ = mse(self.pred, self.target)
        assert value == pytest.approx(np.mean((self.pred - self.target) ** 2))

    def test_mse_gradient_numerical(self):
        _, grad = mse(self.pred, self.target)
        num = numgrad(lambda: mse(self.pred, self.target)[0], self.pred)
        assert np.allclose(grad, num, atol=1e-5)

    def test_mae_gradient_numerical(self):
        _, grad = mae(self.pred, self.target)
        num = numgrad(lambda: mae(self.pred, self.target)[0], self.pred)
        assert np.allclose(grad, num, atol=1e-4)

    def test_huber_quadratic_near_zero(self):
        pred = np.array([[0.1]])
        target = np.array([[0.0]])
        value, _ = huber(pred, target)
        assert value == pytest.approx(0.5 * 0.01)

    def test_huber_linear_in_tails(self):
        value, _ = huber(np.array([[10.0]]), np.array([[0.0]]), delta=1.0)
        assert value == pytest.approx(1.0 * (10.0 - 0.5))

    def test_huber_gradient_numerical(self):
        _, grad = huber(self.pred, self.target)
        num = numgrad(lambda: huber(self.pred, self.target)[0], self.pred)
        assert np.allclose(grad, num, atol=1e-4)

    def test_cce_perfect_prediction_near_zero(self):
        onehot = np.eye(3)
        value, _ = categorical_crossentropy(onehot, onehot)
        assert value < 1e-5

    def test_cce_fused_gradient(self):
        probs = np.full((2, 3), 1 / 3.0)
        target = np.array([[1, 0, 0], [0, 1, 0]], dtype=float)
        _, grad = categorical_crossentropy(probs, target)
        assert np.allclose(grad, (probs - target) / 2)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mse(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_registry(self):
        assert get_loss("mse") is mse
        with pytest.raises(ShapeError):
            get_loss("hinge")


def rosenbrock_step_test(optimizer, steps=400, tol=1.0):
    """Optimizers should descend a simple quadratic bowl."""
    param = np.array([3.0, -2.0], dtype=np.float32)
    for _ in range(steps):
        grad = 2.0 * param  # d/dp ||p||^2
        optimizer.step([param], [grad])
    return float(np.abs(param).max())


class TestOptimizers:
    def test_sgd_descends(self):
        assert rosenbrock_step_test(SGD(0.05)) < 0.01

    def test_sgd_momentum_descends(self):
        assert rosenbrock_step_test(SGD(0.02, momentum=0.9)) < 0.01

    def test_adam_descends(self):
        assert rosenbrock_step_test(Adam(0.05)) < 0.05

    def test_rmsprop_descends(self):
        assert rosenbrock_step_test(RMSProp(0.02)) < 0.05

    def test_updates_in_place(self):
        param = np.ones(3, dtype=np.float32)
        ref = param
        Adam(0.01).step([param], [np.ones(3, dtype=np.float32)])
        assert ref is param  # no reallocation
        assert not np.allclose(param, 1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MLError):
            SGD().step([np.zeros(3)], [np.zeros(4)])

    def test_count_mismatch_rejected(self):
        with pytest.raises(MLError):
            SGD().step([np.zeros(3)], [])

    def test_adam_bias_correction_first_step(self):
        param = np.zeros(1, dtype=np.float32)
        Adam(learning_rate=0.1).step([param], [np.ones(1, dtype=np.float32)])
        # With bias correction the first step is ~ -lr regardless of betas.
        assert param[0] == pytest.approx(-0.1, rel=1e-3)

    def test_registry(self):
        assert isinstance(get_optimizer("adam", learning_rate=0.01), Adam)
        with pytest.raises(MLError):
            get_optimizer("lion")

    def test_invalid_hyperparameters(self):
        with pytest.raises(MLError):
            SGD(learning_rate=0.0)
        with pytest.raises(MLError):
            SGD(momentum=1.0)
        with pytest.raises(MLError):
            Adam(beta1=1.0)
        with pytest.raises(MLError):
            RMSProp(rho=-0.1)

    def test_iterations_counted(self):
        opt = SGD(0.01)
        param = np.zeros(1, dtype=np.float32)
        for _ in range(5):
            opt.step([param], [np.zeros(1, dtype=np.float32)])
        assert opt.iterations == 5
