"""Checkpoint round-trips through the compiled fast path.

A plan compiled from a *loaded* checkpoint must behave exactly like a
plan compiled from the original network: serialization stores the
weights, and plans share parameter storage with the layers they were
compiled from.  Also covers the fleet warm-start route (registry
checkpoint -> load -> keep training on the fast path).
"""

import numpy as np
import pytest

from repro.ml import (
    Adam,
    Trainer,
    create_model,
    load_model_bytes,
    save_model_bytes,
)
from repro.data.datasets import ArraySplit

MODELS = ["linear", "categorical", "inferred", "memory", "rnn", "3d"]


def _frames(model, batch, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 255, (batch, *model.input_shape), dtype=np.uint8)


@pytest.mark.parametrize("name", MODELS)
def test_roundtrip_plan_matches_original_plan(name):
    original = create_model(name, input_shape=(24, 32, 3), scale=0.25)
    assert original.compile_plans()

    restored = load_model_bytes(save_model_bytes(original), compile_plans=True)
    # compile_plans=True pre-compiled every sub-network's inference plan.
    for net in restored._networks():
        assert net._plan is not None

    frames = _frames(original, 7)
    # Same weights through the same compiled kernels: bitwise equal.
    assert np.array_equal(
        original.predict_frames(frames), restored.predict_frames(frames)
    )


def test_load_without_compile_is_lazy():
    original = create_model("linear", input_shape=(24, 32, 3), scale=0.25)
    restored = load_model_bytes(save_model_bytes(original))
    assert all(net._plan is None for net in restored._networks())
    # First predict compiles on demand; outputs still match.
    frames = _frames(original, 3)
    assert np.array_equal(
        original.predict_frames(frames), restored.predict_frames(frames)
    )


def test_warm_start_training_stays_bitwise_on_fast_path():
    """Fleet warm-start: publish a checkpoint, reload it, keep training.

    The reloaded model trained through the compiled plans must produce
    the same weights as the reloaded model trained on the reference
    layers — i.e. warm-starting does not fork the numerics.
    """
    rng = np.random.default_rng(5)
    x = rng.random((12, 24, 32, 3)).astype(np.float32)
    y = rng.random((12, 2)).astype(np.float32)
    split = ArraySplit(x_train=x, y_train=y, x_val=x[:4], y_val=y[:4])

    first = create_model("linear", input_shape=(24, 32, 3), scale=0.25)
    Trainer(optimizer=Adam(), batch_size=4, epochs=1, shuffle_seed=1).fit(
        first, split
    )
    checkpoint = save_model_bytes(first)

    results = []
    for use_plan in (True, False):
        warm = load_model_bytes(checkpoint, compile_plans=use_plan)
        trainer = Trainer(
            optimizer=Adam(),
            batch_size=4,
            epochs=2,
            shuffle_seed=2,
            use_plan=use_plan,
        )
        history = trainer.fit(warm, split)
        results.append((history.train_loss, warm.get_weights()))

    (loss_fast, weights_fast), (loss_ref, weights_ref) = results
    assert loss_fast == loss_ref
    for wf, wr in zip(weights_fast, weights_ref):
        assert np.array_equal(wf, wr)


def test_plans_survive_set_weights_without_recompile():
    """Registry rollback loads new weights into a warm model: the plan
    must track them because it shares parameter storage."""
    model = create_model("linear", input_shape=(24, 32, 3), scale=0.25)
    model.compile_plans()
    frames = _frames(model, 5)
    before = model.predict_frames(frames)

    other = create_model("linear", input_shape=(24, 32, 3), scale=0.25, seed=9)
    model.set_weights(other.get_weights())
    after = model.predict_frames(frames)
    assert not np.array_equal(before, after)
    assert np.array_equal(after, other.predict_frames(frames))
