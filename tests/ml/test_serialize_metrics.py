"""Model serialization round-trips and evaluation metrics."""

import numpy as np
import pytest

from repro.common.errors import SerializationError, ShapeError
from repro.ml.metrics import (
    categorical_accuracy,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    steering_accuracy,
)
from repro.ml.models.factory import MODEL_NAMES, create_model
from repro.ml.serialize import (
    load_model,
    load_model_bytes,
    save_model,
    save_model_bytes,
)

H, W = 32, 40


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_round_trip_preserves_predictions(name):
    model = create_model(name, input_shape=(H, W, 3), scale=0.25, seed=4)
    clone = load_model_bytes(save_model_bytes(model))
    assert clone.name == model.name
    assert clone.input_shape == model.input_shape
    rng = np.random.default_rng(0)
    if name == "memory":
        x = (
            rng.random((3, H, W, 3), dtype=np.float32),
            rng.uniform(-1, 1, (3, model.mem_length, 2)).astype(np.float32),
        )
    elif model.sequence_length:
        x = rng.random((3, model.sequence_length, H, W, 3), dtype=np.float32)
    else:
        x = rng.random((3, H, W, 3), dtype=np.float32)
    a_angle, a_throttle = model.predict_batch(x)
    b_angle, b_throttle = clone.predict_batch(x)
    assert np.allclose(a_angle, b_angle, atol=1e-6)
    assert np.allclose(a_throttle, b_throttle, atol=1e-6)


class TestSerializeEdgeCases:
    def test_file_round_trip(self, tmp_path):
        model = create_model("linear", input_shape=(H, W, 3), scale=0.25)
        path = tmp_path / "model.npz"
        save_model(model, path)
        clone = load_model(path)
        assert clone.n_params == model.n_params

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_model(tmp_path / "absent.npz")

    def test_garbage_payload(self):
        with pytest.raises(SerializationError):
            load_model_bytes(b"not a model")

    def test_inferred_throttle_rule_survives(self):
        model = create_model(
            "inferred", input_shape=(H, W, 3), scale=0.25,
            max_throttle=0.9, min_throttle=0.2,
        )
        clone = load_model_bytes(save_model_bytes(model))
        assert clone.max_throttle == pytest.approx(0.9)
        assert clone.min_throttle == pytest.approx(0.2)


class TestMetrics:
    def test_mse_mae(self):
        pred = np.array([1.0, 2.0])
        target = np.array([0.0, 4.0])
        assert mean_squared_error(pred, target) == pytest.approx(2.5)
        assert mean_absolute_error(pred, target) == pytest.approx(1.5)

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(np.full(3, 2.0), y) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        const = np.ones(3)
        assert r2_score(const, const) == 1.0
        assert r2_score(np.zeros(3), const) == 0.0

    def test_steering_accuracy(self):
        pred = np.array([0.0, 0.5, -0.5])
        true = np.array([0.05, 0.8, -0.55])
        assert steering_accuracy(pred, true, tolerance=0.1) == pytest.approx(2 / 3)

    def test_steering_accuracy_validation(self):
        with pytest.raises(ShapeError):
            steering_accuracy(np.zeros(3), np.zeros(3), tolerance=0.0)
        with pytest.raises(ShapeError):
            steering_accuracy(np.zeros(3), np.zeros(4))

    def test_categorical_accuracy(self):
        pred = np.array([[0.7, 0.3], [0.2, 0.8]])
        true = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert categorical_accuracy(pred, true) == pytest.approx(0.5)
