"""Layer forward/backward correctness, including numerical gradient checks."""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.common.rng import ensure_rng
from repro.ml.layers import (
    LSTM,
    Activation,
    Conv2D,
    Conv3D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    TimeDistributed,
)


def numerical_grad(f, x, eps=1e-3):
    """Central-difference gradient of scalar f w.r.t. array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_input_gradient(layer, x, atol=2e-2):
    """Compare analytic dL/dx against central differences (L = sum(out^2)/2)."""
    out = layer.forward(x, training=False)
    dx = layer.backward(out.copy())  # dL/dout = out for L = sum(out^2)/2

    def loss():
        return 0.5 * float((layer.forward(x, training=False) ** 2).sum())

    numeric = numerical_grad(loss, x)
    assert np.allclose(dx, numeric, atol=atol), (
        f"max err {np.abs(dx - numeric).max():.4f}"
    )


def check_param_gradient(layer, x, atol=2e-2):
    """Compare analytic parameter gradients against central differences."""
    out = layer.forward(x, training=False)
    layer.backward(out.copy())
    analytic = [g.copy() for g in layer.grads]

    for p_idx, param in enumerate(layer.params):
        def loss():
            return 0.5 * float((layer.forward(x, training=False) ** 2).sum())

        numeric = numerical_grad(loss, param)
        assert np.allclose(analytic[p_idx], numeric, atol=atol), (
            f"param {p_idx}: max err "
            f"{np.abs(analytic[p_idx] - numeric).max():.4f}"
        )


rng = ensure_rng(0)


class TestDense:
    def make(self):
        layer = Dense(3)
        layer.build((4,), ensure_rng(1))
        return layer

    def test_forward_matches_matmul(self):
        layer = self.make()
        x = rng.standard_normal((5, 4)).astype(np.float32)
        assert np.allclose(layer.forward(x), x @ layer.w + layer.b, atol=1e-6)

    def test_input_gradient(self):
        layer = self.make()
        x = rng.standard_normal((3, 4)).astype(np.float32)
        check_input_gradient(layer, x)

    def test_param_gradient(self):
        layer = self.make()
        x = rng.standard_normal((3, 4)).astype(np.float32)
        check_param_gradient(layer, x)

    def test_gradient_with_relu(self):
        layer = Dense(3, activation="relu")
        layer.build((4,), ensure_rng(2))
        x = rng.standard_normal((3, 4)).astype(np.float32) + 0.5
        check_input_gradient(layer, x)
        check_param_gradient(layer, x)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            Dense(0)
        layer = Dense(3)
        with pytest.raises(ShapeError):
            layer.build((4, 4), ensure_rng(0))

    def test_use_before_build(self):
        with pytest.raises(ShapeError):
            Dense(3).forward(np.zeros((1, 4), dtype=np.float32))


class TestConv2D:
    def make(self, strides=1, k=3):
        layer = Conv2D(2, k, strides)
        layer.build((7, 8, 3), ensure_rng(3))
        return layer

    def test_output_shape(self):
        assert self.make().output_shape((7, 8, 3)) == (5, 6, 2)
        assert self.make(strides=2).output_shape((7, 8, 3)) == (3, 3, 2)

    def test_forward_matches_naive(self):
        layer = self.make()
        x = rng.standard_normal((2, 7, 8, 3)).astype(np.float32)
        out = layer.forward(x)
        # Naive reference at one output location.
        patch = x[0, 2:5, 3:6, :]
        ref = (patch[..., None] * layer.k).sum(axis=(0, 1, 2)) + layer.b
        assert np.allclose(out[0, 2, 3], ref, atol=1e-4)

    def test_input_gradient_stride1(self):
        layer = self.make()
        x = rng.standard_normal((2, 7, 8, 3)).astype(np.float32)
        check_input_gradient(layer, x)

    def test_input_gradient_stride2(self):
        layer = self.make(strides=2)
        x = rng.standard_normal((2, 7, 8, 3)).astype(np.float32)
        check_input_gradient(layer, x)

    def test_param_gradient(self):
        layer = self.make(strides=2)
        x = rng.standard_normal((2, 7, 8, 3)).astype(np.float32)
        check_param_gradient(layer, x)

    def test_kernel_too_large(self):
        layer = Conv2D(2, 9)
        with pytest.raises(ShapeError):
            layer.build((7, 8, 3), ensure_rng(0))
            layer.output_shape((7, 8, 3))

    def test_flops_positive(self):
        assert self.make().flops((7, 8, 3)) > 0


class TestConv3D:
    def make(self):
        layer = Conv3D(2, (2, 3, 3), (1, 2, 2))
        layer.build((4, 7, 8, 3), ensure_rng(4))
        return layer

    def test_output_shape(self):
        assert self.make().output_shape((4, 7, 8, 3)) == (3, 3, 3, 2)

    def test_input_gradient(self):
        layer = self.make()
        x = rng.standard_normal((1, 4, 7, 8, 3)).astype(np.float32)
        check_input_gradient(layer, x, atol=3e-2)

    def test_param_gradient(self):
        layer = self.make()
        x = rng.standard_normal((1, 4, 7, 8, 3)).astype(np.float32)
        check_param_gradient(layer, x, atol=3e-2)


class TestMaxPool:
    def test_forward(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = layer.forward(x)
        assert out.shape == (1, 2, 2, 1)
        assert out[0, 0, 0, 0] == 5.0  # max of [[0,1],[4,5]]

    def test_input_gradient(self):
        layer = MaxPool2D(2)
        x = rng.standard_normal((2, 6, 6, 2)).astype(np.float32)
        check_input_gradient(layer, x)

    def test_gradient_with_ties(self):
        layer = MaxPool2D(2)
        x = np.ones((1, 4, 4, 1), dtype=np.float32)
        out = layer.forward(x)
        dx = layer.backward(np.ones_like(out))
        # Gradient mass must be conserved across ties.
        assert dx.sum() == pytest.approx(out.size)


class TestFlattenDropout:
    def test_flatten_round_trip(self):
        layer = Flatten()
        x = rng.standard_normal((3, 4, 5, 2)).astype(np.float32)
        out = layer.forward(x)
        assert out.shape == (3, 40)
        assert layer.backward(out).shape == x.shape

    def test_dropout_identity_at_inference(self):
        layer = Dropout(0.5, seed=0)
        x = rng.standard_normal((4, 10)).astype(np.float32)
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_dropout_scales_at_training(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((200, 50), dtype=np.float32)
        out = layer.forward(x, training=True)
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted dropout scaling
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((10, 10), dtype=np.float32)
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        assert np.array_equal(grad != 0, out != 0)

    def test_bad_rate(self):
        with pytest.raises(ShapeError):
            Dropout(1.0)


class TestActivation:
    @pytest.mark.parametrize("name", ["relu", "tanh", "sigmoid", "linear"])
    def test_gradients(self, name):
        layer = Activation(name)
        x = rng.standard_normal((4, 6)).astype(np.float32)
        check_input_gradient(layer, x)

    def test_softmax_rows_sum_to_one(self):
        layer = Activation("softmax")
        out = layer.forward(rng.standard_normal((5, 7)).astype(np.float32))
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-6)
        assert (out > 0).all()

    def test_softmax_numerically_stable(self):
        layer = Activation("softmax")
        out = layer.forward(np.array([[1000.0, 1000.0, -1000.0]], dtype=np.float32))
        assert np.isfinite(out).all()

    def test_unknown_name(self):
        with pytest.raises(ShapeError):
            Activation("swish")


class TestTimeDistributed:
    def test_folds_time_into_batch(self):
        inner = Dense(3)
        layer = TimeDistributed(inner)
        layer.build((5, 4), ensure_rng(5))
        x = rng.standard_normal((2, 5, 4)).astype(np.float32)
        out = layer.forward(x)
        assert out.shape == (2, 5, 3)
        # Equivalent to applying the inner layer per timestep.
        ref = inner.forward(x.reshape(10, 4)).reshape(2, 5, 3)
        assert np.allclose(out, ref, atol=1e-6)

    def test_gradients(self):
        layer = TimeDistributed(Dense(3))
        layer.build((4, 5), ensure_rng(6))
        x = rng.standard_normal((2, 4, 5)).astype(np.float32)
        check_input_gradient(layer, x)
        check_param_gradient(layer, x)


class TestLSTM:
    def make(self, return_sequences=False):
        layer = LSTM(4, return_sequences=return_sequences)
        layer.build((3, 5), ensure_rng(7))
        return layer

    def test_output_shapes(self):
        assert self.make().output_shape((3, 5)) == (4,)
        assert self.make(True).output_shape((3, 5)) == (3, 4)

    def test_forward_bounded(self):
        layer = self.make()
        x = rng.standard_normal((2, 3, 5)).astype(np.float32)
        out = layer.forward(x)
        assert np.abs(out).max() < 1.0  # o * tanh(c) is in (-1, 1)

    def test_input_gradient_last(self):
        layer = self.make()
        x = 0.5 * rng.standard_normal((2, 3, 5)).astype(np.float32)
        check_input_gradient(layer, x, atol=3e-2)

    def test_input_gradient_sequences(self):
        layer = self.make(return_sequences=True)
        x = 0.5 * rng.standard_normal((2, 3, 5)).astype(np.float32)
        check_input_gradient(layer, x, atol=3e-2)

    def test_param_gradient(self):
        layer = self.make()
        x = 0.5 * rng.standard_normal((1, 3, 5)).astype(np.float32)
        check_param_gradient(layer, x, atol=3e-2)

    def test_forget_bias_initialised_to_one(self):
        layer = self.make()
        assert np.allclose(layer.b[4:8], 1.0)
        assert np.allclose(layer.b[:4], 0.0)
