"""Numeric parity: compiled execution plans vs the reference layer stack.

The contract under test (see ``repro.ml.plan``):

* **Inference** — ``InferencePlan.run`` matches ``Sequential.forward``
  at float32 tolerances (the im2col GEMM changes floating-point
  accumulation order, so bitwise equality is not promised).
* **Training** — ``TrainingPlan`` mirrors the reference math op for
  op: forward activations, gradients, and therefore post-optimizer-step
  weights are **bitwise identical** to training on the layers directly.

Every layer type with a compiled kernel is covered alone and inside
full DonkeyModel-shaped stacks, at batch sizes 1 / 7 / 32 including
batch-size changes against a warm plan (workspace re-keying).
"""

import numpy as np
import pytest

from repro.common.errors import PlanError
from repro.ml.layers import (
    LSTM,
    Activation,
    Conv2D,
    Conv3D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    TimeDistributed,
)
from repro.ml.models.factory import create_model
from repro.ml.network import Sequential
from repro.ml.optimizers import Adam
from repro.ml.plan import MAX_BATCH_KEYS, InferencePlan, TrainingPlan

RTOL, ATOL = 1e-4, 1e-5
BATCH_SIZES = (1, 7, 32)


def _input(shape, batch, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch, *shape)).astype(np.float32)


def _assert_inference_parity(net, shape, batch, seed=0):
    x = _input(shape, batch, seed)
    ref = net.forward(x, training=False)
    got = net.plan().run(x)
    np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)


# --------------------------------------------------------- per-layer


LAYER_CASES = [
    ("dense-relu", lambda: [Dense(13, activation="relu")], (9,)),
    ("dense-linear", lambda: [Dense(4, activation="linear")], (17,)),
    ("dense-tanh", lambda: [Dense(6, activation="tanh")], (5,)),
    ("dense-sigmoid", lambda: [Dense(6, activation="sigmoid")], (5,)),
    ("dense-softmax", lambda: [Dense(15, activation="softmax")], (11,)),
    ("conv2d", lambda: [Conv2D(8, 5, 2, activation="relu")], (20, 26, 3)),
    ("conv2d-stride1", lambda: [Conv2D(4, 3, 1, activation="linear")], (9, 9, 2)),
    ("conv3d", lambda: [Conv3D(6, (3, 5, 5), (1, 2, 2), activation="relu")], (5, 16, 20, 3)),
    ("maxpool", lambda: [MaxPool2D(2)], (8, 10, 4)),
    ("flatten", lambda: [Flatten()], (4, 5, 2)),
    ("dropout", lambda: [Dropout(0.4, seed=3)], (23,)),
    ("activation", lambda: [Activation("tanh")], (7,)),
    ("timedistributed", lambda: [TimeDistributed(Conv2D(5, 3, 2, activation="relu"))], (3, 11, 13, 2)),
    ("lstm-last", lambda: [LSTM(10, return_sequences=False)], (4, 6)),
    ("lstm-seq", lambda: [LSTM(10, return_sequences=True)], (4, 6)),
]


@pytest.mark.parametrize(
    "make_layers,shape", [(m, s) for _, m, s in LAYER_CASES],
    ids=[n for n, _, _ in LAYER_CASES],
)
@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_single_layer_inference_parity(make_layers, shape, batch):
    net = Sequential(make_layers(), shape, seed=1)
    _assert_inference_parity(net, shape, batch)


# ------------------------------------------------------- full stacks


def _stacks():
    return {
        "linear-backbone": (
            [
                Conv2D(6, 5, 2, activation="relu"),
                Dropout(0.2, seed=1),
                Conv2D(8, 5, 2, activation="relu"),
                Dropout(0.2, seed=2),
                Flatten(),
                Dense(16, activation="relu"),
                Dropout(0.2, seed=3),
                Dense(2, activation="linear"),
            ],
            (24, 32, 3),
        ),
        "categorical-head": (
            [
                Conv2D(4, 5, 2, activation="relu"),
                Flatten(),
                Dense(12, activation="relu"),
                Dense(15, activation="softmax"),
            ],
            (20, 24, 3),
        ),
        "pooled": (
            [
                Conv2D(5, 3, 1, activation="relu"),
                MaxPool2D(2),
                Flatten(),
                Dense(8, activation="tanh"),
                Dense(2, activation="linear"),
            ],
            (12, 14, 3),
        ),
        "rnn": (
            [
                TimeDistributed(Conv2D(4, 5, 2, activation="relu")),
                TimeDistributed(Flatten()),
                TimeDistributed(Dense(10, activation="relu")),
                LSTM(8, return_sequences=True),
                LSTM(6, return_sequences=False),
                Dropout(0.1, seed=4),
                Dense(2, activation="linear"),
            ],
            (3, 16, 20, 3),
        ),
        "conv3d": (
            [
                Conv3D(4, (3, 5, 5), (1, 2, 2), activation="relu"),
                Dropout(0.2, seed=5),
                Flatten(),
                Dense(10, activation="relu"),
                Dense(2, activation="linear"),
            ],
            (5, 16, 20, 3),
        ),
    }


@pytest.mark.parametrize("name", sorted(_stacks()))
@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_stack_inference_parity(name, batch):
    layers, shape = _stacks()[name]
    net = Sequential(layers, shape, seed=2)
    _assert_inference_parity(net, shape, batch)


def test_warm_plan_batch_size_changes():
    """A warm plan re-keys its workspaces when the batch size changes."""
    layers, shape = _stacks()["linear-backbone"]
    net = Sequential(layers, shape, seed=3)
    plan = net.plan()
    for batch in (32, 1, 7, 32, 1):  # revisit warm keys in mixed order
        x = _input(shape, batch, seed=batch)
        ref = net.forward(x, training=False)
        np.testing.assert_allclose(plan.run(x), ref, rtol=RTOL, atol=ATOL)
    assert set(plan.batch_keys) == {1, 7, 32}


def test_workspace_lru_eviction():
    net = Sequential([Dense(3, activation="relu")], (5,), seed=4)
    plan = net.plan()
    for batch in range(1, MAX_BATCH_KEYS + 4):
        plan.run(_input((5,), batch))
    assert len(plan.batch_keys) == MAX_BATCH_KEYS
    # Oldest keys were evicted; the most recent survive.
    assert plan.batch_keys[-1] == MAX_BATCH_KEYS + 3
    assert 1 not in plan.batch_keys


def test_plan_output_is_plan_owned():
    """run() returns a workspace buffer: the next run at the same batch
    size overwrites it (callers that keep results must copy)."""
    net = Sequential([Dense(4, activation="linear")], (6,), seed=5)
    plan = net.plan()
    first = plan.run(_input((6,), 3, seed=1))
    kept = first.copy()
    second = plan.run(_input((6,), 3, seed=2))
    assert second is first  # same buffer object
    assert not np.array_equal(kept, first)  # ... overwritten in place


def test_unsupported_layer_raises_plan_error():
    class Custom(Layer):
        def build(self, input_shape, rng):
            self.built = True

        def output_shape(self, input_shape):
            return input_shape

        def forward(self, x, training=False):
            return x

        def backward(self, grad):
            return grad

    net = Sequential([Dense(3), Custom()], (4,), seed=6)
    with pytest.raises(PlanError, match="no compiled kernel"):
        net.plan()
    # predict still works through the reference fallback.
    out = net.predict(_input((4,), 5))
    assert out.shape == (5, 3)


def test_plan_tracks_in_place_weight_updates():
    """Compiled plans share parameter storage with the layers, so
    set_weights / optimizer steps take effect without recompiling."""
    net = Sequential([Dense(4, activation="relu")], (6,), seed=7)
    plan = net.plan()
    x = _input((6,), 5)
    before = plan.run(x).copy()
    net.set_weights([w * 2.0 for w in net.get_weights()])
    after = plan.run(x)
    np.testing.assert_allclose(after, net.forward(x), rtol=RTOL, atol=ATOL)
    assert not np.array_equal(before, after)


# ------------------------------------------------- training parity


def _train_steps(net_layers, shape, batch, steps, use_plan, seed):
    """Run a few optimizer steps; returns (predictions, losses, weights)."""
    net = Sequential(net_layers(), shape, seed=seed)
    opt = Adam(learning_rate=1e-3)
    plan = net.training_plan() if use_plan else None
    rng = np.random.default_rng(seed + 100)
    losses = []
    for _ in range(steps):
        x = rng.standard_normal((batch, *shape)).astype(np.float32)
        y = rng.standard_normal((batch, *net.output_shape)).astype(np.float32)
        if use_plan:
            pred = plan.forward(x)
        else:
            pred = net.forward(x, training=True)
        diff = pred - y
        loss = float(np.mean(diff**2))
        grad = (2.0 / diff.size) * diff
        if use_plan:
            plan.backward(grad)
        else:
            net.backward(grad)
        opt.step(net.params, net.grads)
        losses.append(loss)
    return losses, net.get_weights()


TRAIN_CASES = [
    ("dense", lambda: [Dense(8, activation="relu"), Dropout(0.3, seed=2), Dense(2, activation="linear")], (7,)),
    ("conv", lambda: [Conv2D(4, 3, 2, activation="relu"), Dropout(0.2, seed=3), Flatten(), Dense(2, activation="linear")], (10, 12, 3)),
    ("pool", lambda: [Conv2D(3, 3, 1, activation="relu"), MaxPool2D(2), Flatten(), Dense(2, activation="tanh")], (9, 11, 2)),
    ("softmax", lambda: [Dense(6, activation="relu"), Dense(15, activation="softmax")], (5,)),
    ("rnn", lambda: [
        TimeDistributed(Conv2D(3, 3, 2, activation="relu")),
        TimeDistributed(Flatten()),
        TimeDistributed(Dense(6, activation="relu")),
        LSTM(5, return_sequences=True),
        LSTM(4, return_sequences=False),
        Dense(2, activation="linear"),
    ], (3, 9, 11, 3)),
    ("conv3d", lambda: [Conv3D(3, (3, 3, 3), (1, 2, 2), activation="relu"), Flatten(), Dense(2, activation="linear")], (5, 9, 11, 3)),
]


@pytest.mark.parametrize(
    "make_layers,shape", [(m, s) for _, m, s in TRAIN_CASES],
    ids=[n for n, _, _ in TRAIN_CASES],
)
@pytest.mark.parametrize("batch", (1, 7))
def test_training_plan_bitwise_parity(make_layers, shape, batch):
    """Same seed, same data: the fast path reproduces the reference
    losses AND post-step weights exactly (not just approximately)."""
    losses_fast, weights_fast = _train_steps(
        make_layers, shape, batch, steps=3, use_plan=True, seed=11
    )
    losses_ref, weights_ref = _train_steps(
        make_layers, shape, batch, steps=3, use_plan=False, seed=11
    )
    assert losses_fast == losses_ref
    assert len(weights_fast) == len(weights_ref)
    for wf, wr in zip(weights_fast, weights_ref):
        assert np.array_equal(wf, wr)


def test_training_plan_backward_requires_forward():
    net = Sequential([Dense(3)], (4,), seed=8)
    with pytest.raises(PlanError, match="before forward"):
        net.training_plan().backward(np.zeros((2, 3), dtype=np.float32))


def test_training_plan_input_grad_matches_reference():
    layers, shape = _stacks()["pooled"]
    net = Sequential(layers, shape, seed=9)
    x = _input(shape, 4, seed=3)
    ref_out = net.forward(x, training=True)
    ref_gin = net.backward(np.ones_like(ref_out))
    # Fresh net with identical weights: dropout RNG must restart too.
    net2 = Sequential(_stacks()["pooled"][0], shape, seed=9)
    net2.set_weights(net.get_weights())
    plan = net2.training_plan()
    out = plan.forward(x)
    assert np.array_equal(out, ref_out)
    gin = plan.backward(np.ones_like(out))
    assert np.array_equal(gin, ref_gin)


# ------------------------------------------- DonkeyModel-shaped nets


def _reference_commands(model, frames):
    """predict_frames semantics routed through the reference layers:
    same model-specific head post-processing, no compiled plans."""
    from repro.data.datasets import N_STEERING_BINS, images_to_float, linear_unbin

    x = model._serving_batch(images_to_float(frames))
    pred = model.forward(x, training=False)
    if model.name == "categorical":
        angle = linear_unbin(pred[:, :N_STEERING_BINS])
        throttle = np.clip(pred[:, N_STEERING_BINS], -1.0, 1.0)
    elif model.name == "inferred":
        angle = np.clip(pred[:, 0], -1.0, 1.0)
        throttle = model.infer_throttle(angle)
    else:
        angle = np.clip(pred[:, 0], -1, 1)
        throttle = np.clip(pred[:, 1], -1, 1)
    return np.stack([np.asarray(angle), np.asarray(throttle)], axis=1)


@pytest.mark.parametrize(
    "name", ["linear", "categorical", "inferred", "memory", "rnn", "3d"]
)
def test_model_fast_forward_matches_reference(name):
    model = create_model(name, input_shape=(24, 32, 3), scale=0.25)
    assert model.supports_fast_path()
    rng = np.random.default_rng(17)
    for batch in BATCH_SIZES:
        frames = rng.integers(0, 255, (batch, 24, 32, 3), dtype=np.uint8)
        ref = _reference_commands(model, frames)
        got = model.predict_frames(frames)
        np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)
