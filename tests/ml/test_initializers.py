"""Weight initializers: distributions and determinism."""

import numpy as np
import pytest

from repro.ml.initializers import glorot_uniform, he_normal, orthogonal, zeros


class TestGlorot:
    def test_limit_respected(self):
        w = glorot_uniform((100, 50), rng=0)
        limit = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= limit
        assert w.dtype == np.float32

    def test_conv_fans_include_receptive_field(self):
        w = glorot_uniform((5, 5, 3, 8), rng=0)
        limit = np.sqrt(6.0 / (25 * 3 + 25 * 8))
        assert np.abs(w).max() <= limit

    def test_deterministic(self):
        assert np.array_equal(glorot_uniform((4, 4), rng=5), glorot_uniform((4, 4), rng=5))

    def test_roughly_zero_mean(self):
        w = glorot_uniform((200, 200), rng=1)
        assert abs(w.mean()) < 0.01


class TestHeNormal:
    def test_std_scales_with_fan_in(self):
        w = he_normal((1000, 10), rng=0)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)


class TestOrthogonal:
    def test_square_is_orthogonal(self):
        q = orthogonal((16, 16), rng=0)
        assert np.allclose(q @ q.T, np.eye(16), atol=1e-5)

    def test_tall_has_orthonormal_columns(self):
        q = orthogonal((20, 8), rng=0)
        assert np.allclose(q.T @ q, np.eye(8), atol=1e-5)

    def test_wide_has_orthonormal_rows(self):
        q = orthogonal((8, 20), rng=0)
        assert np.allclose(q @ q.T, np.eye(8), atol=1e-5)


def test_zeros():
    z = zeros((3, 2))
    assert z.dtype == np.float32
    assert not z.any()
