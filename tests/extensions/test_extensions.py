"""Extension assignments: GPS following, classical vision, RL."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.drivers import PurePursuitDriver
from repro.extensions.gps import GPSReceiver, GPSTrace, PathFollower, record_gps_path
from repro.extensions.rl import CEMConfig, LinearPolicy, train_cem
from repro.extensions.vision import (
    LineFollowPilot,
    StopGoPilot,
    classify_signal_color,
    detect_obstacle,
    line_offset,
    paint_signal_object,
)


class TestGPS:
    def test_receiver_noise_bounded(self):
        receiver = GPSReceiver(white_sigma=0.02, bias_walk_sigma=0.0, rng=0)
        fixes = np.array([receiver.fix(1.0, 2.0) for _ in range(300)])
        assert np.allclose(fixes.mean(axis=0), [1.0, 2.0], atol=0.01)
        assert fixes.std(axis=0).max() < 0.05

    def test_bias_random_walk_drifts(self):
        receiver = GPSReceiver(white_sigma=0.0, bias_walk_sigma=0.01, rng=0)
        fixes = np.array([receiver.fix(0.0, 0.0) for _ in range(500)])
        assert np.abs(fixes[-50:]).mean() > np.abs(fixes[:50]).mean()

    def test_record_path(self, session_factory):
        session = session_factory(render=False)
        driver = PurePursuitDriver(session)
        trace = record_gps_path(session, driver, ticks=120)
        assert trace.points.shape == (120, 2)
        assert trace.dt == session.dt

    def test_decimate(self):
        trace = GPSTrace(np.random.default_rng(0).random((100, 2)), dt=0.05)
        thin = trace.decimate(5)
        assert len(thin.points) == 20
        assert thin.dt == pytest.approx(0.25)
        with pytest.raises(ConfigurationError):
            trace.decimate(0)

    def test_follower_tracks_recorded_path(self, session_factory):
        record_session = session_factory(render=False, seed=2)
        trace = record_gps_path(
            record_session, PurePursuitDriver(record_session), ticks=400,
            receiver=GPSReceiver(rng=5),
        )
        follow_session = session_factory(render=False, seed=3)
        follower = PathFollower(trace, follow_session, GPSReceiver(rng=6))
        obs = follow_session.reset()
        errors = []
        for i in range(400):
            s, t = follower(obs.image, obs.cte, obs.speed)
            obs = follow_session.step(s, t)
            if i > 60:
                errors.append(follower.cross_track_error())
        assert np.mean(errors) < 0.08
        assert follow_session.stats.crashes == 0

    def test_cheap_receiver_degrades_following(self, session_factory):
        def mean_error(white_sigma, seed):
            rec = session_factory(render=False, seed=seed)
            trace = record_gps_path(
                rec, PurePursuitDriver(rec), ticks=300,
                receiver=GPSReceiver(white_sigma=0.0, bias_walk_sigma=0.0),
            )
            fol = session_factory(render=False, seed=seed + 1)
            follower = PathFollower(
                trace, fol,
                GPSReceiver(white_sigma=white_sigma, bias_walk_sigma=0.0, rng=9),
            )
            obs = fol.reset()
            errs = []
            for i in range(300):
                s, t = follower(obs.image, obs.cte, obs.speed)
                obs = fol.step(s, t)
                if i > 60:
                    errs.append(follower.cross_track_error())
            return np.mean(errs)

        assert mean_error(0.30, seed=11) > mean_error(0.005, seed=11)

    def test_trace_validation(self):
        with pytest.raises(ConfigurationError):
            GPSTrace(np.zeros((1, 2)), dt=0.05)


class TestVision:
    @pytest.fixture()
    def track_frame(self, session_factory):
        return session_factory(seed=7).reset().image

    def test_no_object_classifies_none(self, track_frame):
        assert classify_signal_color(track_frame) == "none"

    def test_red_and_green_detected(self, track_frame):
        assert classify_signal_color(
            paint_signal_object(track_frame, "red", rng=0)) == "red"
        assert classify_signal_color(
            paint_signal_object(track_frame, "green", rng=0)) == "green"

    def test_orange_tape_not_mistaken_for_red(self, session_factory):
        # Frames full of orange tape must stay 'none'.
        session = session_factory(seed=8)
        obs = session.reset()
        for _ in range(20):
            obs = session.step(0.0, 0.3)
            assert classify_signal_color(obs.image) == "none"

    def test_paint_validation(self, track_frame):
        with pytest.raises(ConfigurationError):
            paint_signal_object(track_frame, "blue")

    def test_stop_go_pilot_brakes_on_red(self, track_frame):
        class Cruise:
            def run(self, image):
                return 0.1, 0.7

        pilot = StopGoPilot(Cruise())
        _, throttle_clear = pilot.run(track_frame)
        assert throttle_clear == 0.7
        _, throttle_red = pilot.run(paint_signal_object(track_frame, "red", rng=0))
        assert throttle_red < 0.0
        assert pilot.stopped_ticks == 1
        _, throttle_green = pilot.run(paint_signal_object(track_frame, "green", rng=0))
        assert throttle_green == 0.7

    def test_line_offset_signed(self, session_factory, oval_track):
        session = session_factory(seed=9)
        # Offset the car left of centre: the lane's tape pattern shifts.
        left = session.reset(s=1.0, lateral_offset=0.15)
        right = session.reset(s=1.0, lateral_offset=-0.15)
        off_left = line_offset(left.image)
        off_right = line_offset(right.image)
        assert off_left is not None and off_right is not None
        assert off_left != pytest.approx(off_right, abs=1e-3)

    def test_line_follow_pilot_laps(self, session_factory):
        session = session_factory(seed=10)
        pilot = LineFollowPilot(gain=1.2, throttle=0.4)
        obs = session.reset()
        for _ in range(500):
            s, t = pilot.run(obs.image)
            obs = session.step(s, t)
        assert session.stats.laps_completed >= 1
        assert session.stats.crashes == 0

    def test_obstacle_detection(self, track_frame):
        blocked = paint_signal_object(track_frame, "red", size=20, rng=0)
        assert detect_obstacle(blocked, track_frame)
        assert not detect_obstacle(track_frame, track_frame)

    def test_obstacle_shape_mismatch(self, track_frame):
        with pytest.raises(ConfigurationError):
            detect_obstacle(track_frame, track_frame[:-2])


class TestRL:
    def test_cem_improves_reward(self):
        _, curve = train_cem(
            config=CEMConfig(iterations=6, population=12, episode_steps=120),
            seed=4,
        )
        assert len(curve) == 6
        assert curve[-1] > curve[0]

    def test_trained_policy_drives(self):
        from repro.sim.server import SimulatorServer

        policy, _ = train_cem(
            config=CEMConfig(iterations=8, population=14, episode_steps=150),
            seed=4,
        )
        server = SimulatorServer(render=False, seed=99, max_episode_steps=400)
        server.reset()
        total = 0.0
        for _ in range(400):
            features = policy.features(server)
            _, reward, done, info = server.step(policy.act(features))
            total += reward
            if done:
                break
        assert total > 3.0  # progressed metres around the track
        assert not info["crashed"]

    def test_policy_weight_validation(self):
        with pytest.raises(ConfigurationError):
            LinearPolicy(np.zeros(2))

    def test_cem_config_validation(self):
        with pytest.raises(ConfigurationError):
            CEMConfig(population=1)
        with pytest.raises(ConfigurationError):
            CEMConfig(elite_fraction=0.0)
