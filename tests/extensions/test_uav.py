"""UAV / precision agriculture future-work extension (§6)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.extensions.uav import (
    CropField,
    Quadrotor,
    UAVParams,
    UAVState,
    fly_survey,
    lawnmower_waypoints,
)


class TestQuadrotor:
    def test_reaches_waypoint(self):
        uav = Quadrotor()
        state = UAVState()
        target = np.array([10.0, 5.0])
        for _ in range(600):
            state = uav.step(state, target, 0.1)
        assert np.linalg.norm(state.position - target) < 0.6

    def test_speed_limited(self):
        params = UAVParams(max_speed=2.0)
        uav = Quadrotor(params)
        state = UAVState()
        for _ in range(300):
            state = uav.step(state, np.array([100.0, 0.0]), 0.1)
            assert state.speed <= params.max_speed + 1e-6

    def test_acceleration_limited(self):
        params = UAVParams(max_accel=1.0)
        uav = Quadrotor(params)
        state = UAVState()
        new = uav.step(state, np.array([100.0, 0.0]), 0.1)
        assert new.speed <= params.max_accel * 0.1 + 1e-9

    def test_brakes_near_target(self):
        uav = Quadrotor()
        state = UAVState()
        target = np.array([6.0, 0.0])
        speeds = []
        for _ in range(400):
            state = uav.step(state, target, 0.05)
            speeds.append(state.speed)
        assert max(speeds) > 1.0
        assert speeds[-1] < 0.6  # slowed down at arrival

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            UAVParams(max_speed=0.0)
        with pytest.raises(SimulationError):
            Quadrotor().step(UAVState(), np.zeros(2), 0.0)


class TestLawnmower:
    def test_covers_both_edges(self):
        wp = lawnmower_waypoints(20.0, 10.0, swath=2.0)
        assert wp[:, 0].min() == 0.0 and wp[:, 0].max() == 20.0
        assert wp[:, 1].min() == 0.0 and wp[:, 1].max() == 10.0

    def test_row_count_scales_with_swath(self):
        coarse = lawnmower_waypoints(20.0, 10.0, swath=5.0)
        fine = lawnmower_waypoints(20.0, 10.0, swath=1.0)
        assert len(fine) > len(coarse)

    def test_alternating_direction(self):
        wp = lawnmower_waypoints(10.0, 4.0, swath=2.0)
        # Rows alternate left->right, right->left.
        assert wp[0][0] == 0.0 and wp[1][0] == 10.0
        assert wp[2][0] == 10.0 and wp[3][0] == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lawnmower_waypoints(0.0, 10.0, 1.0)


class TestCropField:
    def test_stress_bounded(self):
        fieldmap = CropField(30.0, 20.0, n_hotspots=5, rng=1)
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 20, (200, 2))
        stress = fieldmap.stress(pts)
        assert (stress >= 0).all() and (stress <= 1).all()

    def test_hotspots_are_hot(self):
        fieldmap = CropField(30.0, 20.0, n_hotspots=3, rng=2)
        at_hotspots = fieldmap.stress(fieldmap.hotspots)
        background = fieldmap.stress(np.array([[1.0, 1.0]]))
        assert at_hotspots.min() > background[0] + 0.3

    def test_no_hotspots(self):
        fieldmap = CropField(10.0, 10.0, n_hotspots=0)
        assert fieldmap.stress(np.array([[5.0, 5.0]]))[0] < 0.3


class TestSurvey:
    def test_survey_finds_hotspots(self):
        fieldmap = CropField(24.0, 16.0, n_hotspots=4, rng=3)
        report = fly_survey(fieldmap, swath=2.0)
        assert report.coverage_fraction > 0.5
        assert report.recall >= 0.75  # finds most hotspots
        assert report.flight_seconds > 0
        assert report.distance > 24.0 * (16.0 / 2.0) * 0.8

    def test_coarser_swath_flies_less_but_sees_less(self):
        fieldmap = CropField(24.0, 16.0, n_hotspots=4, rng=3)
        fine = fly_survey(fieldmap, swath=2.0)
        coarse = fly_survey(fieldmap, swath=8.0)
        assert coarse.distance < fine.distance
        assert coarse.coverage_fraction < fine.coverage_fraction

    def test_empty_field_no_detections(self):
        fieldmap = CropField(12.0, 8.0, n_hotspots=0)
        report = fly_survey(fieldmap, swath=2.0)
        assert report.detections == []
        assert report.recall == 1.0
