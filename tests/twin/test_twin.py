"""Digital twin comparison (E9)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sim.dynamics import PIRACER_PARAMS
from repro.sim.renderer import CameraParams
from repro.twin.digital_twin import TwinReport, perturbed_reality, run_twin_comparison

from tests.conftest import TEST_H, TEST_W


class TestPerturbedReality:
    def test_zero_severity_is_nominal(self):
        params = perturbed_reality(severity=0.0)
        assert params.max_speed == PIRACER_PARAMS.max_speed
        assert params.throttle_tau == PIRACER_PARAMS.throttle_tau

    def test_reality_is_slower_and_laggier(self):
        params = perturbed_reality(severity=1.0)
        assert params.max_speed < PIRACER_PARAMS.max_speed
        assert params.max_accel < PIRACER_PARAMS.max_accel
        assert params.throttle_tau > PIRACER_PARAMS.throttle_tau
        assert params.steering_tau > PIRACER_PARAMS.steering_tau

    def test_severity_scales_offsets(self):
        mild = perturbed_reality(severity=0.5)
        harsh = perturbed_reality(severity=2.0)
        assert harsh.max_speed < mild.max_speed

    def test_deterministic_given_seed(self):
        assert perturbed_reality(seed=3) == perturbed_reality(seed=3)

    def test_negative_severity_rejected(self):
        with pytest.raises(ConfigurationError):
            perturbed_reality(severity=-1.0)


class TestTwinComparison:
    @pytest.fixture(scope="class")
    def report(self, trained_linear, oval_track):
        return run_twin_comparison(
            trained_linear, oval_track, ticks=400, severity=1.0, seed=2,
            camera=CameraParams(height=TEST_H, width=TEST_W),
        )

    def test_report_fields(self, report):
        assert isinstance(report, TwinReport)
        assert report.sim_mean_speed > 0
        assert report.real_mean_speed > 0
        assert report.cte_profile_rmse >= 0
        assert report.speed_profile_rmse >= 0

    def test_reality_is_slower(self, report):
        # The heavier, laggier real car covers less ground.
        assert report.real_mean_speed <= report.sim_mean_speed + 0.05

    def test_twin_gap_positive_under_perturbation(self, report):
        assert report.twin_gap > 0.0

    def test_zero_severity_shrinks_gap(self, trained_linear, oval_track):
        same = run_twin_comparison(
            trained_linear, oval_track, ticks=400, severity=0.0, seed=2,
            camera=CameraParams(height=TEST_H, width=TEST_W),
        )
        harsh = run_twin_comparison(
            trained_linear, oval_track, ticks=400, severity=2.0, seed=2,
            camera=CameraParams(height=TEST_H, width=TEST_W),
        )
        assert same.speed_profile_rmse < harsh.speed_profile_rmse

    def test_validation(self, trained_linear, oval_track):
        with pytest.raises(ConfigurationError):
            run_twin_comparison(trained_linear, oval_track, ticks=0)
