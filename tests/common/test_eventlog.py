"""Event-log grouping and filtering (:mod:`repro.common.eventlog`).

Migrated from ``test_support.py`` and expanded with the filter
combinations the serve/faults layers rely on (subject filters, payload
isolation, criterion composition).
"""

import pytest

from repro.common.eventlog import Event, EventLog


class TestAppend:
    def test_append_and_count(self):
        log = EventLog()
        log.append(0.0, "view", "a1", "alice")
        log.append(1.0, "view", "a1", "bob")
        log.append(2.0, "launch", "a1", "alice")
        assert len(log) == 3
        assert log.count(kind="view") == 2
        assert log.count(kind="view", actor="alice") == 1

    def test_time_order_enforced(self):
        log = EventLog()
        log.append(5.0, "x", "s")
        with pytest.raises(ValueError):
            log.append(4.0, "x", "s")

    def test_equal_times_are_allowed(self):
        log = EventLog()
        log.append(1.0, "a", "s")
        log.append(1.0, "b", "s")
        assert [e.kind for e in log] == ["a", "b"]

    def test_append_returns_the_event(self):
        event = EventLog().append(0.5, "k", "subj", "actor", extra=3)
        assert isinstance(event, Event)
        assert event.time == 0.5
        assert event.payload == {"extra": 3}

    def test_payload_is_isolated_per_event(self):
        log = EventLog()
        first = log.append(0.0, "k", "s", value=1)
        second = log.append(1.0, "k", "s", value=2)
        assert first.payload == {"value": 1}
        assert second.payload == {"value": 2}


class TestFilter:
    def make_log(self):
        log = EventLog()
        log.append(0.0, "launch", "art-1", "u1", node="n1")
        log.append(1.0, "launch", "art-2", "u2", node="n2")
        log.append(2.0, "view", "art-1", "u1")
        log.append(3.0, "view", "art-1", "u3")
        log.append(4.0, "launch", "art-1", "u2", node="n1")
        return log

    def test_filter_window(self):
        log = EventLog()
        for t in range(5):
            log.append(float(t), "tick", "s")
        assert len(log.filter(since=1.0, until=3.0)) == 3

    def test_window_bounds_are_inclusive(self):
        log = self.make_log()
        assert [e.time for e in log.filter(since=1.0, until=3.0)] == [
            1.0, 2.0, 3.0,
        ]

    def test_filter_by_subject(self):
        log = self.make_log()
        assert log.count(subject="art-1") == 4
        assert log.count(subject="art-2") == 1

    def test_criteria_compose_conjunctively(self):
        log = self.make_log()
        hits = log.filter(kind="launch", subject="art-1", actor="u2")
        assert len(hits) == 1
        assert hits[0].time == 4.0

    def test_filter_predicate(self):
        log = EventLog()
        log.append(0.0, "x", "s", payload_value=1)
        log.append(1.0, "x", "s", payload_value=9)
        big = log.filter(predicate=lambda e: e.payload.get("payload_value", 0) > 5)
        assert len(big) == 1

    def test_predicate_composes_with_criteria(self):
        log = self.make_log()
        hits = log.filter(
            kind="launch", predicate=lambda e: e.payload.get("node") == "n1"
        )
        assert [e.time for e in hits] == [0.0, 4.0]

    def test_no_criteria_returns_everything(self):
        log = self.make_log()
        assert len(log.filter()) == len(log)


class TestGrouping:
    def test_distinct_actors(self):
        log = EventLog()
        log.append(0.0, "launch", "a", "u1")
        log.append(1.0, "launch", "a", "u1")
        log.append(2.0, "launch", "a", "u2")
        log.append(3.0, "view", "a", "u3")
        assert log.distinct_actors(kind="launch") == {"u1", "u2"}

    def test_distinct_actors_skips_system_events(self):
        log = EventLog()
        log.append(0.0, "tick", "s")  # actor defaults to ""
        log.append(1.0, "tick", "s", "daemon")
        assert log.distinct_actors() == {"daemon"}

    def test_group_by_kind_and_last(self):
        log = EventLog()
        log.append(0.0, "a", "s")
        log.append(1.0, "b", "s")
        log.append(2.0, "a", "s")
        assert log.group_by_kind() == {"a": 2, "b": 1}
        assert log.last().kind == "a"
        assert log.last(kind="b").time == 1.0
        assert log.last(kind="zzz") is None
        assert EventLog().last() is None

    def test_group_by_kind_empty(self):
        assert EventLog().group_by_kind() == {}

    def test_iteration_preserves_order(self):
        log = EventLog()
        for t in range(4):
            log.append(float(t), f"k{t}", "s")
        assert [e.kind for e in log] == ["k0", "k1", "k2", "k3"]
