"""Clock and discrete-event scheduler."""

import pytest

from repro.common.clock import Clock, EventScheduler
from repro.common.errors import ClockError


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            Clock(-1.0)

    def test_advance(self):
        clock = Clock()
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.5) == 3.0

    def test_advance_zero_is_ok(self):
        clock = Clock(1.0)
        assert clock.advance(0.0) == 1.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ClockError):
            Clock().advance(-0.1)

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_rejected(self):
        clock = Clock(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.9)


class TestEventScheduler:
    def test_fires_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule_at(3.0, lambda: fired.append("c"))
        sched.schedule_at(1.0, lambda: fired.append("a"))
        sched.schedule_at(2.0, lambda: fired.append("b"))
        sched.run_until(5.0)
        assert fired == ["a", "b", "c"]
        assert sched.clock.now == 5.0

    def test_fifo_for_same_timestamp(self):
        sched = EventScheduler()
        fired = []
        for tag in ("x", "y", "z"):
            sched.schedule_at(1.0, lambda t=tag: fired.append(t))
        sched.run_until(1.0)
        assert fired == ["x", "y", "z"]

    def test_schedule_in(self):
        sched = EventScheduler()
        sched.clock.advance(10.0)
        event = sched.schedule_in(5.0, lambda: None)
        assert event.time == 15.0

    def test_schedule_in_past_rejected(self):
        sched = EventScheduler()
        sched.clock.advance(10.0)
        with pytest.raises(ClockError):
            sched.schedule_at(9.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            EventScheduler().schedule_in(-1.0, lambda: None)

    def test_cancelled_event_skipped(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule_at(1.0, lambda: fired.append("no"))
        event.cancel()
        sched.schedule_at(2.0, lambda: fired.append("yes"))
        assert sched.run_until(3.0) == 1
        assert fired == ["yes"]

    def test_callback_may_schedule_more(self):
        sched = EventScheduler()
        fired = []

        def chain():
            fired.append(sched.clock.now)
            if len(fired) < 3:
                sched.schedule_in(1.0, chain)

        sched.schedule_at(1.0, chain)
        sched.run_all()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_does_not_fire_future(self):
        sched = EventScheduler()
        fired = []
        sched.schedule_at(10.0, lambda: fired.append("late"))
        sched.run_until(5.0)
        assert fired == []
        assert sched.pending == 1

    def test_overdue_event_fires_at_current_time(self):
        # Someone advances the shared clock directly past a queued event.
        sched = EventScheduler()
        seen = []
        sched.schedule_at(1.0, lambda: seen.append(sched.clock.now))
        sched.clock.advance(5.0)
        sched.run_until(6.0)
        assert seen == [5.0]

    def test_next_event_time(self):
        sched = EventScheduler()
        assert sched.next_event_time() is None
        event = sched.schedule_at(4.0, lambda: None)
        assert sched.next_event_time() == 4.0
        event.cancel()
        assert sched.next_event_time() is None

    def test_run_all_bounded(self):
        sched = EventScheduler()

        def forever():
            sched.schedule_in(1.0, forever)

        sched.schedule_at(1.0, forever)
        with pytest.raises(ClockError):
            sched.run_all(max_events=50)

    def test_run_all_bound_is_per_event(self):
        # Regression: events sharing one instant used to fire past the
        # bound (run_until drained the whole instant after the check).
        sched = EventScheduler()
        fired = []
        for i in range(10):
            sched.schedule_at(1.0, lambda i=i: fired.append(i))
        with pytest.raises(ClockError):
            sched.run_all(max_events=4)
        assert fired == [0, 1, 2, 3]
        assert sched.pending == 6

    def test_run_all_exact_bound_drains_cleanly(self):
        sched = EventScheduler()
        fired = []
        for i in range(4):
            sched.schedule_at(1.0, lambda i=i: fired.append(i))
        assert sched.run_all(max_events=4) == 4
        assert fired == [0, 1, 2, 3]

    def test_run_all_fires_overdue_events(self):
        # The shared clock moved past a queued event; run_all delivers
        # it at the current time instead of refusing to run.
        sched = EventScheduler()
        seen = []
        sched.schedule_at(1.0, lambda: seen.append(sched.clock.now))
        sched.clock.advance(5.0)
        assert sched.run_all() == 1
        assert seen == [5.0]


class TestExceptionSafety:
    """Failure contract: clock rests at the failing event's time, the
    failing event is consumed, later events stay queued, and the final
    jump to the target timestamp is skipped."""

    def test_raising_callback_contract(self):
        sched = EventScheduler()
        fired = []

        def boom():
            raise RuntimeError("callback failed")

        sched.schedule_at(1.0, lambda: fired.append("a"))
        sched.schedule_at(2.0, boom)
        sched.schedule_at(3.0, lambda: fired.append("c"))
        with pytest.raises(RuntimeError):
            sched.run_until(10.0)
        assert fired == ["a"]
        assert sched.clock.now == 2.0  # not 10.0: final advance skipped
        assert sched.pending == 1  # the 3.0 event survived intact
        # The scheduler stays usable: resume and drain the survivor.
        assert sched.run_until(10.0) == 1
        assert fired == ["a", "c"]
        assert sched.clock.now == 10.0

    def test_counters_consistent_after_raise(self):
        sched = EventScheduler()

        def boom():
            raise ValueError("nope")

        sched.schedule_at(1.0, boom)
        keep = sched.schedule_at(2.0, lambda: None)
        with pytest.raises(ValueError):
            sched.run_all()
        assert sched.pending == 1
        keep.cancel()
        assert sched.pending == 0


class TestBookkeeping:
    def test_pending_is_a_counter_not_a_scan(self):
        sched = EventScheduler()
        events = [sched.schedule_at(float(i + 1), lambda: None) for i in range(100)]
        assert sched.pending == 100
        for event in events[:40]:
            event.cancel()
        assert sched.pending == 60
        sched.run_until(50.0)
        assert sched.pending == 50

    def test_cancel_is_idempotent(self):
        sched = EventScheduler()
        event = sched.schedule_at(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sched.pending == 0

    def test_cancel_after_fire_is_noop(self):
        # serve's _pump cancels the wake event that is currently firing;
        # this must not corrupt the live count.
        sched = EventScheduler()
        holder = {}

        def wake():
            holder["event"].cancel()

        holder["event"] = sched.schedule_at(1.0, wake)
        sched.schedule_at(2.0, lambda: None)
        assert sched.run_until(1.0) == 1
        assert sched.pending == 1

    def test_compaction_evicts_tombstones(self):
        sched = EventScheduler()
        doomed = [sched.schedule_at(1000.0, lambda: None) for _ in range(500)]
        live = [sched.schedule_at(float(i + 1), lambda: None) for i in range(10)]
        for event in doomed:
            event.cancel()
        # Compaction keeps tombstones <= max(floor, live): the 500
        # cancels cannot leave 500 dead slots in the heap.
        floor = EventScheduler._COMPACT_FLOOR
        assert len(sched._heap) <= len(live) + max(floor, len(live)) + 1
        assert sched.pending == 10
        assert sched.run_until(2000.0) == 10

    def test_compaction_during_drain_never_double_fires(self):
        # Regression: a cancel inside a callback can trigger compaction
        # while run_until is mid-drain.  Compaction must mutate the heap
        # in place — rebinding it would leave the drain loop on a stale
        # list and re-deliver already-fired events on the next run.
        sched = EventScheduler()
        sched._COMPACT_FLOOR = 0  # compact on every cancel
        fired = []
        timeouts = []

        def tick(i):
            fired.append(i)
            if timeouts:
                timeouts.pop(0).cancel()
            timeouts.append(sched.schedule_in(60.0, lambda: None))
            if i < 40:
                sched.schedule_in(0.05, lambda: tick(i + 1))

        sched.schedule_at(0.0, lambda: tick(0))
        for step in range(1, 60):
            sched.run_until(step * 0.05)
        assert fired == list(range(41))

    def test_compaction_preserves_order(self):
        sched = EventScheduler()
        fired = []
        for i in range(200):
            sched.schedule_at(float(i % 7), lambda i=i: fired.append(i))
        victims = [sched.schedule_at(500.0, lambda: None) for _ in range(300)]
        for event in victims:
            event.cancel()
        sched.run_all()
        # FIFO within each instant, instants in timestamp order.
        expected = sorted(range(200), key=lambda i: (i % 7, i))
        assert fired == expected


class TestReschedule:
    """reschedule(): the allocation-free cancel-and-replace primitive."""

    def test_moves_a_live_event(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule_at(1.0, lambda: fired.append("x"))
        moved = sched.reschedule(event, 5.0)
        assert moved is event  # same object, new incarnation
        assert sched.pending == 1
        sched.run_until(2.0)
        assert fired == []  # old slot is a tombstone, not a firing
        sched.run_until(5.0)
        assert fired == ["x"]
        assert sched.pending == 0

    def test_ordering_matches_cancel_plus_schedule(self):
        # A rescheduled event takes a fresh seq: it fires after events
        # already queued at the same instant, exactly like cancel+schedule.
        sched = EventScheduler()
        fired = []
        moved = sched.schedule_at(1.0, lambda: fired.append("moved"))
        sched.schedule_at(3.0, lambda: fired.append("sibling"))
        sched.reschedule(moved, 3.0)
        sched.run_until(3.0)
        assert fired == ["sibling", "moved"]

    def test_revives_a_cancelled_event(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule_at(1.0, lambda: fired.append("x"))
        event.cancel()
        assert sched.pending == 0
        sched.reschedule(event, 2.0)
        assert sched.pending == 1
        sched.run_until(3.0)
        assert fired == ["x"]

    def test_reuses_a_fired_event(self):
        # The watchdog-rotation pattern: the callback re-arms its own
        # event with no new allocation.
        sched = EventScheduler()
        fired = []
        holder = {}

        def beat():
            fired.append(sched.clock.now)
            if len(fired) < 3:
                sched.reschedule(holder["event"], sched.clock.now + 1.0)

        holder["event"] = sched.schedule_at(1.0, beat)
        sched.run_all()
        assert fired == [1.0, 2.0, 3.0]

    def test_fresh_event_requires_callback(self):
        sched = EventScheduler()
        with pytest.raises(ClockError):
            sched.reschedule(None, 1.0)
        event = sched.reschedule(None, 1.0, lambda: None, "fresh")
        assert event.label == "fresh"
        assert sched.pending == 1

    def test_callback_and_label_override(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule_at(1.0, lambda: fired.append("old"), "old")
        sched.reschedule(event, 1.0, lambda: fired.append("new"), "new")
        sched.run_until(1.0)
        assert fired == ["new"]
        assert event.label == "new"

    def test_past_timestamp_rejected(self):
        sched = EventScheduler()
        event = sched.schedule_at(5.0, lambda: None)
        sched.clock.advance(3.0)
        with pytest.raises(ClockError):
            sched.reschedule(event, 2.0)

    def test_foreign_event_rejected(self):
        a, b = EventScheduler(), EventScheduler()
        event = a.schedule_at(1.0, lambda: None)
        with pytest.raises(ClockError):
            b.reschedule(event, 1.0)

    def test_heavy_rotation_keeps_heap_compact(self):
        sched = EventScheduler()
        watchdog = None
        for i in range(5000):
            watchdog = sched.reschedule(watchdog, float(i) + 60.0, lambda: None)
            sched.run_until(float(i) * 0.01)
        assert sched.pending == 1
        assert sched.heap_size <= EventScheduler._COMPACT_FLOOR * 2 + 2


class TestFireHook:
    def test_hook_sees_every_fired_event_in_order(self):
        sched = EventScheduler()
        seen = []
        sched.set_fire_hook(lambda event: seen.append((event.time, event.label)))
        sched.schedule_at(2.0, lambda: None, label="b")
        sched.schedule_at(1.0, lambda: None, label="a")
        skipped = sched.schedule_at(1.5, lambda: None, label="x")
        skipped.cancel()
        sched.run_all()
        assert seen == [(1.0, "a"), (2.0, "b")]

    def test_hook_clears(self):
        sched = EventScheduler()
        seen = []
        sched.set_fire_hook(seen.append)
        sched.set_fire_hook(None)
        sched.schedule_at(1.0, lambda: None)
        sched.run_all()
        assert seen == []
