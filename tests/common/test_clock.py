"""Clock and discrete-event scheduler."""

import pytest

from repro.common.clock import Clock, EventScheduler
from repro.common.errors import ClockError


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            Clock(-1.0)

    def test_advance(self):
        clock = Clock()
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.5) == 3.0

    def test_advance_zero_is_ok(self):
        clock = Clock(1.0)
        assert clock.advance(0.0) == 1.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ClockError):
            Clock().advance(-0.1)

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_rejected(self):
        clock = Clock(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.9)


class TestEventScheduler:
    def test_fires_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule_at(3.0, lambda: fired.append("c"))
        sched.schedule_at(1.0, lambda: fired.append("a"))
        sched.schedule_at(2.0, lambda: fired.append("b"))
        sched.run_until(5.0)
        assert fired == ["a", "b", "c"]
        assert sched.clock.now == 5.0

    def test_fifo_for_same_timestamp(self):
        sched = EventScheduler()
        fired = []
        for tag in ("x", "y", "z"):
            sched.schedule_at(1.0, lambda t=tag: fired.append(t))
        sched.run_until(1.0)
        assert fired == ["x", "y", "z"]

    def test_schedule_in(self):
        sched = EventScheduler()
        sched.clock.advance(10.0)
        event = sched.schedule_in(5.0, lambda: None)
        assert event.time == 15.0

    def test_schedule_in_past_rejected(self):
        sched = EventScheduler()
        sched.clock.advance(10.0)
        with pytest.raises(ClockError):
            sched.schedule_at(9.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            EventScheduler().schedule_in(-1.0, lambda: None)

    def test_cancelled_event_skipped(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule_at(1.0, lambda: fired.append("no"))
        event.cancel()
        sched.schedule_at(2.0, lambda: fired.append("yes"))
        assert sched.run_until(3.0) == 1
        assert fired == ["yes"]

    def test_callback_may_schedule_more(self):
        sched = EventScheduler()
        fired = []

        def chain():
            fired.append(sched.clock.now)
            if len(fired) < 3:
                sched.schedule_in(1.0, chain)

        sched.schedule_at(1.0, chain)
        sched.run_all()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_does_not_fire_future(self):
        sched = EventScheduler()
        fired = []
        sched.schedule_at(10.0, lambda: fired.append("late"))
        sched.run_until(5.0)
        assert fired == []
        assert sched.pending == 1

    def test_overdue_event_fires_at_current_time(self):
        # Someone advances the shared clock directly past a queued event.
        sched = EventScheduler()
        seen = []
        sched.schedule_at(1.0, lambda: seen.append(sched.clock.now))
        sched.clock.advance(5.0)
        sched.run_until(6.0)
        assert seen == [5.0]

    def test_next_event_time(self):
        sched = EventScheduler()
        assert sched.next_event_time() is None
        event = sched.schedule_at(4.0, lambda: None)
        assert sched.next_event_time() == 4.0
        event.cancel()
        assert sched.next_event_time() is None

    def test_run_all_bounded(self):
        sched = EventScheduler()

        def forever():
            sched.schedule_in(1.0, forever)

        sched.schedule_at(1.0, forever)
        with pytest.raises(ClockError):
            sched.run_all(max_events=50)
