"""Deterministic id allocation (:mod:`repro.common.ids`).

Migrated from ``test_support.py`` and expanded: the tracer's span ids,
the serve layer's batch/replica ids, and the testbed's lease ids all
come from :class:`IdFactory`, so its determinism underwrites every
byte-identical export in the repo.
"""

import pytest

from repro.common.ids import IdFactory, content_id


class TestIdFactory:
    def test_sequential_per_prefix(self):
        ids = IdFactory()
        assert ids.next("lease") == "lease-0001"
        assert ids.next("lease") == "lease-0002"
        assert ids.next("node") == "node-0001"

    def test_peek(self):
        ids = IdFactory()
        ids.next("a")
        ids.next("a")
        assert ids.peek("a") == 2
        assert ids.peek("b") == 0

    def test_peek_does_not_allocate(self):
        ids = IdFactory()
        assert ids.peek("a") == 0
        assert ids.next("a") == "a-0001"

    def test_invalid_prefix(self):
        with pytest.raises(ValueError):
            IdFactory().next("has-dash")
        with pytest.raises(ValueError):
            IdFactory().next("")

    def test_width(self):
        assert IdFactory(width=2).next("x") == "x-01"
        with pytest.raises(ValueError):
            IdFactory(width=0)

    def test_width_overflow_keeps_counting(self):
        ids = IdFactory(width=1)
        for _ in range(9):
            ids.next("x")
        assert ids.next("x") == "x-10"

    def test_two_factories_are_independent(self):
        a, b = IdFactory(), IdFactory()
        a.next("span")
        assert b.next("span") == "span-0001"

    def test_same_call_sequence_same_ids(self):
        def allocate():
            ids = IdFactory(width=6)
            return [ids.next(p) for p in ("span", "span", "batch", "span")]

        assert allocate() == allocate()


class TestContentId:
    def test_deterministic(self):
        assert content_id(b"hello") == content_id(b"hello")
        assert content_id(b"hello") != content_id(b"world")
        assert len(content_id(b"x", length=16)) == 16

    def test_pinned_value(self):
        # SHA-256 prefix — a change here means the hash function moved,
        # which would silently invalidate every stored artifact id.
        assert content_id(b"autolearn") == "9fcda89c93e9"

    def test_default_length(self):
        assert len(content_id(b"x")) == 12

    def test_length_bounds(self):
        with pytest.raises(ValueError):
            content_id(b"x", length=2)
        with pytest.raises(ValueError):
            content_id(b"x", length=65)
        assert len(content_id(b"x", length=64)) == 64
