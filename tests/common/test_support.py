"""IDs, RNG plumbing, units, and the event log."""

import numpy as np
import pytest

from repro.common.eventlog import EventLog
from repro.common.ids import IdFactory, content_id
from repro.common.rng import DEFAULT_SEED, ensure_rng, seed_from_name, spawn
from repro.common.units import (
    bytes_to_mbit,
    inches_to_m,
    m_to_inches,
    mbit_to_bytes,
    ms,
    tflops,
)


class TestIdFactory:
    def test_sequential_per_prefix(self):
        ids = IdFactory()
        assert ids.next("lease") == "lease-0001"
        assert ids.next("lease") == "lease-0002"
        assert ids.next("node") == "node-0001"

    def test_peek(self):
        ids = IdFactory()
        ids.next("a")
        ids.next("a")
        assert ids.peek("a") == 2
        assert ids.peek("b") == 0

    def test_invalid_prefix(self):
        with pytest.raises(ValueError):
            IdFactory().next("has-dash")
        with pytest.raises(ValueError):
            IdFactory().next("")

    def test_width(self):
        assert IdFactory(width=2).next("x") == "x-01"
        with pytest.raises(ValueError):
            IdFactory(width=0)

    def test_content_id_deterministic(self):
        assert content_id(b"hello") == content_id(b"hello")
        assert content_id(b"hello") != content_id(b"world")
        assert len(content_id(b"x", length=16)) == 16

    def test_content_id_length_bounds(self):
        with pytest.raises(ValueError):
            content_id(b"x", length=2)


class TestRng:
    def test_none_uses_default_seed(self):
        a = ensure_rng(None).random(4)
        b = ensure_rng(DEFAULT_SEED).random(4)
        assert np.allclose(a, b)

    def test_int_seed_reproducible(self):
        assert np.allclose(ensure_rng(7).random(4), ensure_rng(7).random(4))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_spawn_independent(self):
        children = spawn(ensure_rng(0), 3)
        draws = [c.random(8) for c in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)

    def test_seed_from_name_stable(self):
        assert seed_from_name("oval") == seed_from_name("oval")
        assert seed_from_name("oval") != seed_from_name("waveshare")
        assert 0 <= seed_from_name("anything") < 2**63


class TestUnits:
    def test_inches_round_trip(self):
        assert m_to_inches(inches_to_m(330.0)) == pytest.approx(330.0)

    def test_inch_value(self):
        assert inches_to_m(1.0) == pytest.approx(0.0254)

    def test_mbit_round_trip(self):
        assert bytes_to_mbit(mbit_to_bytes(100.0)) == pytest.approx(100.0)

    def test_tflops(self):
        assert tflops(19.5) == pytest.approx(19.5e12)

    def test_ms(self):
        assert ms(250.0) == pytest.approx(0.25)


class TestEventLog:
    def test_append_and_count(self):
        log = EventLog()
        log.append(0.0, "view", "a1", "alice")
        log.append(1.0, "view", "a1", "bob")
        log.append(2.0, "launch", "a1", "alice")
        assert len(log) == 3
        assert log.count(kind="view") == 2
        assert log.count(kind="view", actor="alice") == 1

    def test_time_order_enforced(self):
        log = EventLog()
        log.append(5.0, "x", "s")
        with pytest.raises(ValueError):
            log.append(4.0, "x", "s")

    def test_filter_window(self):
        log = EventLog()
        for t in range(5):
            log.append(float(t), "tick", "s")
        assert len(log.filter(since=1.0, until=3.0)) == 3

    def test_filter_predicate(self):
        log = EventLog()
        log.append(0.0, "x", "s", payload_value=1)
        log.append(1.0, "x", "s", payload_value=9)
        big = log.filter(predicate=lambda e: e.payload.get("payload_value", 0) > 5)
        assert len(big) == 1

    def test_distinct_actors(self):
        log = EventLog()
        log.append(0.0, "launch", "a", "u1")
        log.append(1.0, "launch", "a", "u1")
        log.append(2.0, "launch", "a", "u2")
        log.append(3.0, "view", "a", "u3")
        assert log.distinct_actors(kind="launch") == {"u1", "u2"}

    def test_group_by_kind_and_last(self):
        log = EventLog()
        log.append(0.0, "a", "s")
        log.append(1.0, "b", "s")
        log.append(2.0, "a", "s")
        assert log.group_by_kind() == {"a": 2, "b": 1}
        assert log.last().kind == "a"
        assert log.last(kind="b").time == 1.0
        assert log.last(kind="zzz") is None
        assert EventLog().last() is None
