"""RNG plumbing and units.

Id-factory and event-log coverage lives in ``test_ids.py`` and
``test_eventlog.py``.
"""

import numpy as np
import pytest

from repro.common.rng import DEFAULT_SEED, ensure_rng, seed_from_name, spawn
from repro.common.units import (
    bytes_to_mbit,
    inches_to_m,
    m_to_inches,
    mbit_to_bytes,
    ms,
    tflops,
)


class TestRng:
    def test_none_uses_default_seed(self):
        a = ensure_rng(None).random(4)
        b = ensure_rng(DEFAULT_SEED).random(4)
        assert np.allclose(a, b)

    def test_int_seed_reproducible(self):
        assert np.allclose(ensure_rng(7).random(4), ensure_rng(7).random(4))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_spawn_independent(self):
        children = spawn(ensure_rng(0), 3)
        draws = [c.random(8) for c in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)

    def test_seed_from_name_stable(self):
        assert seed_from_name("oval") == seed_from_name("oval")
        assert seed_from_name("oval") != seed_from_name("waveshare")
        assert 0 <= seed_from_name("anything") < 2**63


class TestUnits:
    def test_inches_round_trip(self):
        assert m_to_inches(inches_to_m(330.0)) == pytest.approx(330.0)

    def test_inch_value(self):
        assert inches_to_m(1.0) == pytest.approx(0.0254)

    def test_mbit_round_trip(self):
        assert bytes_to_mbit(mbit_to_bytes(100.0)) == pytest.approx(100.0)

    def test_tflops(self):
        assert tflops(19.5) == pytest.approx(19.5e12)

    def test_ms(self):
        assert ms(250.0) == pytest.approx(0.25)
