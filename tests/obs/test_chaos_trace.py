"""Chaos × trace integration: every injected fault is observable.

Runs the shared ``chaos_service`` fixture with a tracer attached and
checks the trace tells the whole story: each planned fault start (and
window clear) appears as an instant event, a crash leaves an
error-status replica span and an open breaker, and a hang leaves an
error-status ``serve.replica.hang`` span covering its window.
"""

from __future__ import annotations

import pytest

from repro.common.clock import EventScheduler
from repro.faults.breaker import BreakerState
from repro.faults.plan import FaultKind
from repro.obs.export import chrome_trace, text_tree
from repro.obs.span import STATUS_ERROR
from repro.obs.tracer import Tracer
from repro.serve.workload import PoissonWorkload


def traced_run(chaos_service, plan, duration_s=2.0, rate_hz=300.0, **kw):
    scheduler = EventScheduler()
    tracer = Tracer(scheduler.clock)
    service = chaos_service(
        plan=plan, tracer=tracer, scheduler=scheduler, **kw
    )
    service.run(PoissonWorkload(rate_hz, deadline_s=0.2, seed=5), duration_s)
    tracer.close_all()
    return service, tracer


class TestFaultEventsAppear:
    def test_every_plan_entry_has_a_start_event(self, chaos_service):
        plan = [
            (FaultKind.REPLICA_CRASH, "replica-0001", 0.5),
            (FaultKind.REPLICA_HANG, "replica-0002", 0.8, 0.5),
            (FaultKind.SLOW_NODE, "replica-*", 1.0, 0.5, 3.0),
        ]
        service, tracer = traced_run(chaos_service, plan, n_replicas=2)
        starts = {e.name: e for e in tracer.events if "fault.start" in e.name}
        assert set(starts) == {
            "fault.start.replica-crash",
            "fault.start.replica-hang",
            "fault.start.slow-node",
        }
        assert starts["fault.start.replica-crash"].time_s == 0.5
        assert starts["fault.start.replica-crash"].attrs["target"] == "replica-0001"

    def test_window_faults_also_emit_clear_events(self, chaos_service):
        plan = [
            (FaultKind.REPLICA_HANG, "replica-0001", 0.5, 0.4),
            (FaultKind.SLOW_NODE, "replica-*", 0.6, 0.3, 2.0),
        ]
        _, tracer = traced_run(chaos_service, plan, n_replicas=2)
        clears = {e.name: e.time_s for e in tracer.events if "fault.clear" in e.name}
        assert clears == {
            "fault.clear.replica-hang": pytest.approx(0.9),
            "fault.clear.slow-node": pytest.approx(0.9),
        }


class TestCrashLeavesErrorSpans:
    def test_crashed_replica_span_is_error(self, chaos_service):
        plan = [(FaultKind.REPLICA_CRASH, "replica-0001", 0.5)]
        service, tracer = traced_run(chaos_service, plan, n_replicas=2)
        assert service.crashes == 1
        crashed = [
            s for s in tracer.find("serve.replica")
            if s.attrs["replica"] == "replica-0001"
        ]
        assert len(crashed) == 1
        assert crashed[0].status == STATUS_ERROR
        assert crashed[0].error == "crash"
        assert crashed[0].end_s == 0.5

    def test_every_tripped_breaker_has_an_error_span(self, chaos_service):
        plan = [(FaultKind.REPLICA_CRASH, "replica-*", 0.5)]
        service, tracer = traced_run(chaos_service, plan, n_replicas=2)
        error_replicas = {
            s.attrs["replica"]
            for s in tracer.find("serve.replica")
            if s.status == STATUS_ERROR
        }
        tripped = [
            r.replica_id
            for r in service.replicas
            if service.breaker_for(r.replica_id).state is BreakerState.OPEN
        ]
        assert tripped, "the crash plan should have tripped breakers"
        for replica_id in tripped:
            assert replica_id in error_replicas

    def test_in_flight_batch_on_crashed_replica_is_error(self, chaos_service):
        # Slow frames (1e10 FLOPs) make batches ~1 s long, so the crash
        # at 0.5 s is guaranteed to catch one mid-flight.
        plan = [(FaultKind.REPLICA_CRASH, "replica-0001", 0.5)]
        service, tracer = traced_run(
            chaos_service, plan, rate_hz=600.0, n_replicas=1,
            flops_per_frame=1e10,
        )
        crashed_batches = [
            s for s in tracer.find("serve.batch") if s.error == "crash"
        ]
        assert service.slo.requeued > 0
        assert crashed_batches
        assert all(s.status == STATUS_ERROR for s in crashed_batches)
        assert all(s.end_s == 0.5 for s in crashed_batches)


class TestHangWindowSpans:
    def test_hang_span_covers_the_window(self, chaos_service):
        plan = [(FaultKind.REPLICA_HANG, "replica-0001", 0.5, 0.4)]
        service, tracer = traced_run(chaos_service, plan, n_replicas=2)
        assert service.hangs == 1
        hangs = tracer.find("serve.replica.hang")
        assert len(hangs) == 1
        span = hangs[0]
        assert span.start_s == 0.5
        assert span.end_s == pytest.approx(0.9)
        assert span.status == STATUS_ERROR
        assert span.error == "hang"
        assert span.attrs["replica"] == "replica-0001"


class TestTraceDeterminism:
    def test_same_seed_same_trace_bytes(self, chaos_service):
        plan = [
            (FaultKind.REPLICA_CRASH, "replica-0001", 0.5),
            (FaultKind.REPLICA_HANG, "replica-0002", 0.8, 0.5),
        ]
        exports = []
        for _ in range(2):
            _, tracer = traced_run(chaos_service, list(plan), n_replicas=3)
            exports.append((chrome_trace(tracer), text_tree(tracer)))
        assert exports[0] == exports[1]
