"""Opt-in scheduler instrumentation via the fire hook."""

from repro.common.clock import EventScheduler
from repro.obs import MetricsRegistry, instrument_scheduler


def test_counts_deliveries_per_label():
    sched = EventScheduler()
    metrics = MetricsRegistry()
    instrument_scheduler(sched, metrics)
    sched.schedule_at(1.0, lambda: None, label="net.transfer")
    sched.schedule_at(1.0, lambda: None, label="net.transfer")
    sched.schedule_at(2.0, lambda: None)  # unlabelled
    skipped = sched.schedule_at(3.0, lambda: None, label="net.transfer")
    skipped.cancel()
    sched.run_all()
    assert metrics.counter("sched.fired", label="net.transfer").value == 2
    assert metrics.counter("sched.fired", label="unlabelled").value == 1


def test_tracks_pending_high_water_mark():
    sched = EventScheduler()
    metrics = MetricsRegistry()
    instrument_scheduler(sched, metrics)

    def fan_out():
        for i in range(5):
            sched.schedule_in(1.0 + i, lambda: None, label="child")

    sched.schedule_at(1.0, fan_out)
    sched.run_all()
    # The hook runs before each callback: at the first child's delivery
    # the other 4 children are still pending — the high-water mark.
    assert metrics.gauge("sched.pending.max").value == 4.0


def test_uninstall_stops_recording():
    sched = EventScheduler()
    metrics = MetricsRegistry()
    uninstall = instrument_scheduler(sched, metrics)
    sched.schedule_at(1.0, lambda: None, label="a")
    sched.run_until(1.0)
    uninstall()
    sched.schedule_at(2.0, lambda: None, label="a")
    sched.run_until(2.0)
    assert metrics.counter("sched.fired", label="a").value == 1


def test_same_run_same_snapshot():
    def run():
        sched = EventScheduler()
        metrics = MetricsRegistry()
        instrument_scheduler(sched, metrics)

        def chain(depth):
            if depth:
                sched.schedule_in(0.5, lambda: chain(depth - 1), label="chain")

        sched.schedule_at(0.0, lambda: chain(4), label="root")
        sched.run_all()
        return metrics.to_json()

    assert run() == run()
