"""Golden-trace regression harness.

Each canonical scenario in :data:`repro.scenarios.TRACE_SCENARIOS` is
run at seed 0 and its full observable surface — normalized span tree,
instant events, metrics snapshot, text summary — is compared byte for
byte against ``tests/obs/golden/<name>.json``.

Any behavioural drift in the traced layers (batch sizing, routing,
fault timing, pipeline stage costs) shows up here as a readable JSON
diff.  To accept an intentional change::

    pytest tests/obs/test_golden_traces.py --update-goldens

which rewrites the files and skips (so a tier-1 run can never silently
regenerate its own expectations).
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path

import pytest

from repro.obs.export import chrome_trace, normalized_trace
from repro.scenarios import TRACE_SCENARIOS, run_trace_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"


def render_scenario(name: str, seed: int, work_dir: Path) -> str:
    """The canonical golden text for one scenario run."""
    result = run_trace_scenario(name, seed=seed, work_dir=work_dir)
    payload = {
        "scenario": name,
        "seed": seed,
        "trace": normalized_trace(result.tracer),
        "metrics": result.metrics.snapshot(),
        "summary": result.summary.rstrip("\n").split("\n"),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("name", TRACE_SCENARIOS)
def test_golden_trace(name, request, tmp_path):
    current = render_scenario(name, 0, tmp_path)
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-goldens"):
        path.write_text(current)
        pytest.skip(f"golden {path.name} regenerated")
    assert path.exists(), (
        f"missing golden {path}; generate it with "
        "pytest tests/obs/test_golden_traces.py --update-goldens"
    )
    golden = path.read_text()
    if current != golden:
        diff = "\n".join(
            difflib.unified_diff(
                golden.splitlines(),
                current.splitlines(),
                fromfile=f"golden/{path.name}",
                tofile="current",
                lineterm="",
                n=3,
            )
        )
        pytest.fail(
            f"trace for scenario {name!r} drifted from its golden:\n{diff}"
        )


@pytest.mark.parametrize("name", TRACE_SCENARIOS)
def test_same_seed_same_bytes(name, tmp_path):
    """Two fresh runs at one seed export byte-identical artifacts."""
    first = run_trace_scenario(name, seed=3, work_dir=tmp_path / "a")
    second = run_trace_scenario(name, seed=3, work_dir=tmp_path / "b")
    assert chrome_trace(first.tracer) == chrome_trace(second.tracer)
    assert first.metrics.to_json() == second.metrics.to_json()
    assert first.summary == second.summary


def test_seed_changes_the_trace(tmp_path):
    """The golden form is sensitive: a different seed means different bytes."""
    a = render_scenario("serve-load", 0, tmp_path / "a")
    b = render_scenario("serve-load", 1, tmp_path / "b")
    assert a != b
