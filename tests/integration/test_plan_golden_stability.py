"""Determinism locks for the compiled fast path in serve and fleet.

The compiled plans reuse preallocated buffers across calls, which is
exactly the kind of optimisation that turns nondeterministic if a
buffer leaks state between batches.  These tests pin the system-level
guarantee: with plans enabled (the default everywhere), serve and
fleet runs are byte-identical per seed, and the training fast path
leaves checkpoint bytes unchanged relative to the reference layers.
"""

import json

import numpy as np

from repro.fleet import FleetConfig, FleetLoop
from repro.fleet.gates import GateThresholds
from repro.ml import Adam, Trainer, create_model, save_model_bytes
from repro.data.datasets import ArraySplit
from repro.serve import BatchLatencyModel, InferenceService, PoissonWorkload

LATENCY = BatchLatencyModel(overhead_s=0.002, per_item_s=0.0004)


def _serve_summary(seed):
    model = create_model("linear", input_shape=(24, 32, 3), scale=0.25)
    service = InferenceService(
        LATENCY, model=model, n_replicas=2, seed=seed
    )
    workload = PoissonWorkload(
        80.0, deadline_s=0.2, seed=seed, frame_shape=(24, 32, 3)
    )
    summary = service.run(workload, 1.0)
    return json.dumps(summary.to_dict(), sort_keys=True)


def test_serve_summary_byte_identical_per_seed():
    """Two identical real-model serve runs (plans warm-compiled at pin
    time) must serialise to the same bytes."""
    assert _serve_summary(11) == _serve_summary(11)


def test_fleet_loop_byte_identical_with_plans():
    """The full continuous-learning loop — fast-path training, plan
    recompiles at every stage's model pin — stays deterministic."""
    config = dict(
        n_vehicles=4,
        records_per_flush=12,
        stage_vehicles=4,
        stage_duration_s=0.5,
        min_fresh_records=48,
        eval_records=48,
        gates=GateThresholds(min_completions=10),
        rounds=2,
    )
    a = json.dumps(FleetLoop(FleetConfig(seed=3, **config)).run().to_dict(),
                   sort_keys=True)
    b = json.dumps(FleetLoop(FleetConfig(seed=3, **config)).run().to_dict(),
                   sort_keys=True)
    assert a == b


def test_checkpoint_bytes_independent_of_fast_path():
    """Training with and without the compiled plans produces identical
    checkpoint payloads — the serialized-model goldens any downstream
    system holds cannot shift when the fast path rolls out."""
    rng = np.random.default_rng(2)
    x = rng.random((16, 24, 32, 3)).astype(np.float32)
    y = rng.random((16, 2)).astype(np.float32)
    split = ArraySplit(x_train=x, y_train=y, x_val=x[:4], y_val=y[:4])

    payloads = []
    for use_plan in (True, False):
        model = create_model("linear", input_shape=(24, 32, 3), scale=0.25)
        Trainer(
            optimizer=Adam(), batch_size=4, epochs=2,
            shuffle_seed=4, use_plan=use_plan,
        ).fit(model, split)
        payloads.append(save_model_bytes(model))
    assert payloads[0] == payloads[1]
