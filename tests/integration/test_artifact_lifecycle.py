"""Integration: the artifact-sharing side of the module (§3.5, §4, §5)."""

from repro.artifacts.content import build_autolearn_gitbook, notebook_bundle
from repro.artifacts.gitbook import FeedbackChannel
from repro.artifacts.metrics import compute_outcomes
from repro.artifacts.trovi import TroviHub
from repro.common.clock import Clock


class TestArtifactLifecycle:
    def test_publish_iterate_measure(self):
        """The §4 collaborative loop against the hub, end to end."""
        clock = Clock()
        hub = TroviHub(clock)
        book = build_autolearn_gitbook()

        # Publish the initial artifact from the GitBook bundle.
        artifact = hub.publish(
            "AutoLearn: Learning in the Edge to Cloud Continuum",
            owner="alicia",
            files=notebook_bundle(),
            tags={"education", "edge", "donkeycar"},
        )
        assert artifact.latest.number == 1

        # Students find it by tag and interact.
        found = hub.search(tag="education")
        assert artifact in found
        for i in range(5):
            user = f"student{i}"
            hub.view(artifact.artifact_id, user)
            clock.advance(60)
            hub.launch(artifact.artifact_id, user)
        hub.execute_cell(artifact.artifact_id, "student0")

        # A community member forks the GitBook, improves a page, and the
        # merge lands as a new artifact version.
        mr = book.fork_and_edit(
            "kyle", "clarify rsync step",
            {"student/02-collect.md": book.page("student/02-collect.md").content
             + "\n\nTip: use rsync -azP for resumable transfers."},
        )
        book.merge(mr.mr_id)
        version = hub.import_from_repo(
            artifact.artifact_id,
            {path: book.page(path).content.encode() for path, _ in book.toc()},
            contributor="kyle",
        )
        assert version.number == 2
        assert "kyle" in artifact.authors

        # Feedback flows through the Google Group.
        channel = FeedbackChannel()
        channel.post(
            "instructor",
            "Ran the module with 24 students in my robotics course — "
            "the advance reservation saved the lab session.",
            clock=clock,
        )
        assert channel.case_studies()

        # Impact metrics derive from the accumulated log.
        outcome = compute_outcomes(hub, artifact.artifact_id)
        assert outcome.launch_clicks == 5
        assert outcome.launching_users == 5
        assert outcome.executing_users == 1
        assert outcome.versions == 2
        assert outcome.views == 5

    def test_export_import_round_trip_preserves_content(self):
        hub = TroviHub()
        bundle = notebook_bundle()
        artifact = hub.publish("AutoLearn", "alicia", files=bundle)
        payload = hub.export_to_repo(artifact.artifact_id)
        assert sorted(payload["files"]) == sorted(bundle)
        # Re-importing identical files yields an identical content id.
        v2 = hub.import_from_repo(artifact.artifact_id, bundle, "bob")
        assert v2.contents_id == artifact.version(1).contents_id
