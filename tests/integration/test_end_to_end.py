"""Integration: the full module loop across subsystem boundaries."""

import numpy as np
import pytest

from repro.core.collection import collect_via_simulator
from repro.core.evaluation import evaluate_model
from repro.data.datasets import TubDataset
from repro.data.tub import Tub
from repro.data.tubclean import TubCleaner
from repro.edge.byod import CHIEdge
from repro.ml.models.factory import create_model
from repro.ml.serialize import load_model_bytes, save_model_bytes
from repro.ml.training import Trainer, estimate_flops_per_sample
from repro.net.topology import autolearn_topology
from repro.net.transfer import rsync_tub, scp_bytes
from repro.sim.renderer import CameraParams
from repro.sim.tracks import default_tape_oval
from repro.testbed.chameleon import Chameleon
from repro.testbed.compute import TrainingJob

from tests.conftest import TEST_H, TEST_W


class TestCollectCleanTrainEvaluate:
    """The digital pathway, asserted stage by stage."""

    def test_loop_produces_driving_model(self, tmp_path, oval_track):
        report = collect_via_simulator(
            oval_track, tmp_path / "tub", n_records=600, skill=0.9,
            seed=17, camera_hw=(TEST_H, TEST_W),
        )
        TubCleaner(report.tub).clean(half_width=oval_track.half_width)

        dataset = TubDataset(report.tub)
        split = dataset.split(val_fraction=0.15, rng=3)
        model = create_model(
            "linear", input_shape=(TEST_H, TEST_W, 3), scale=0.4, seed=5
        )
        history = Trainer(batch_size=64, epochs=6, shuffle_seed=1).fit(model, split)
        assert history.best_val_loss < 0.05

        evaluation = evaluate_model(
            model, oval_track, ticks=400, seed=23,
            camera=CameraParams(height=TEST_H, width=TEST_W),
        )
        # The trained model actually drives: meaningful forward progress.
        assert evaluation.distance > 5.0
        assert evaluation.mean_speed > 0.3


class TestCloudTrainingWorkflow:
    """Reserve -> deploy -> rsync -> train -> store -> scp to the car."""

    def test_full_testbed_workflow(self, tmp_path, driven_tub, oval_track):
        chi = Chameleon()
        project, _ = chi.onboard_class("prof", "uni", ["alice"])
        session = chi.login("alice", project.project_id)
        topo = autolearn_topology()

        # rsync the tub from the car to the cloud node.
        transfer = rsync_tub(
            driven_tub, topo.route("car-pi", "chi-uc"), clock=chi.clock, rng=1
        )
        assert transfer.seconds > 0

        lease = chi.reserve_gpu_node(session, "gpu_a100", duration_hours=6)
        instance = chi.deploy_training_server(lease)

        # Train for real (numpy) and account simulated GPU time.
        dataset = TubDataset(driven_tub)
        split = dataset.split(val_fraction=0.15, rng=2)
        model = create_model(
            "linear", input_shape=(TEST_H, TEST_W, 3), scale=0.4, seed=6
        )
        history = Trainer(batch_size=64, epochs=4, shuffle_seed=2).fit(model, split)
        job = TrainingJob(
            flops_per_sample=estimate_flops_per_sample(model),
            n_samples=len(split.y_train),
            epochs=history.epochs,
        )
        run = chi.provisioning.run_training_job(instance, job)
        assert run.gpu_name == "A100"

        # Store weights, then scp them down to the car.
        payload = save_model_bytes(model)
        chi.object_store.create_container("models").put("pilot.npz", payload)
        stored = chi.object_store.container("models").get("pilot.npz")
        down = scp_bytes(
            stored.size, topo.route("chi-uc", "car-pi"), clock=chi.clock, rng=2
        )
        assert down.seconds > 0
        clone = load_model_bytes(stored.data)
        frame = np.zeros((TEST_H, TEST_W, 3), dtype=np.uint8)
        assert clone.run(frame) == model.run(frame)

        # Project accounting happened along the way.
        assert project.charged_su > 0


class TestEdgeEvaluationWorkflow:
    """BYOD car + container + downloaded model driving on the track."""

    def test_edge_deploy_and_drive(self, trained_linear, oval_track):
        chi = Chameleon()
        project, _ = chi.onboard_class("prof", "uni", ["kyle"])
        session = chi.login("kyle", project.project_id)
        edge = CHIEdge(chi.scheduler, chi.identity)

        device = edge.enroll(session, "car-01")
        edge.allocate(session, device.device_id)
        report = edge.launch_container(session, device.device_id)
        assert report.container.image.software >= {"donkeycar", "jupyter"}

        evaluation = evaluate_model(
            trained_linear, oval_track, ticks=300, seed=31,
            camera=CameraParams(height=TEST_H, width=TEST_W),
        )
        assert evaluation.distance > 3.0

        # The Pi can serve the model at the 20 Hz control rate.
        per_frame = device.inference_seconds(trained_linear.flops_per_sample())
        assert per_frame < 0.05


class TestCleaningImprovesModels:
    """E8's shape at unit scale: training on cleaned data helps."""

    def test_cleaned_beats_dirty(self, tmp_path, oval_track):
        report = collect_via_simulator(
            oval_track, tmp_path / "dirty", n_records=700, skill=0.35,
            seed=41, camera_hw=(TEST_H, TEST_W),
        )
        tub = report.tub
        assert report.crashes > 0  # the sloppy student crashed

        def train_and_eval(train_tub, seed):
            dataset = TubDataset(train_tub)
            split = dataset.split(val_fraction=0.15, rng=seed)
            model = create_model(
                "linear", input_shape=(TEST_H, TEST_W, 3), scale=0.4, seed=seed
            )
            Trainer(batch_size=64, epochs=5, shuffle_seed=seed).fit(model, split)
            return evaluate_model(
                model, oval_track, ticks=400, seed=seed + 100,
                camera=CameraParams(height=TEST_H, width=TEST_W),
            )

        dirty_eval = train_and_eval(tub, seed=1)
        marked = TubCleaner(tub).clean(half_width=oval_track.half_width)
        assert marked > 0
        clean_eval = train_and_eval(tub, seed=1)
        # Shape: cleaning should not make the on-track error rate worse.
        assert clean_eval.errors <= dirty_eval.errors + 1
