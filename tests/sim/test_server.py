"""Gym-style simulator server."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.server import AVAILABLE_TRACKS, SimulatorServer, make_track


class TestTrackRegistry:
    def test_registry_contains_paper_tracks(self):
        assert "default-tape-oval" in AVAILABLE_TRACKS
        assert "waveshare" in AVAILABLE_TRACKS
        assert len(AVAILABLE_TRACKS) >= 3  # "several different tracks"

    def test_make_track(self):
        track = make_track("default-tape-oval")
        assert track.name == "default-tape-oval"

    def test_unknown_track(self):
        with pytest.raises(SimulationError):
            make_track("nurburgring")


class TestEpisodes:
    def test_step_before_reset_rejected(self):
        server = SimulatorServer(render=False)
        with pytest.raises(SimulationError):
            server.step((0.0, 0.5))

    def test_reset_step_cycle(self):
        server = SimulatorServer(render=False, seed=1)
        obs = server.reset()
        assert obs.time == 0.0
        obs, reward, done, info = server.step((0.0, 0.5))
        assert not done
        assert "cte" in info and "speed" in info

    def test_forward_progress_rewarded(self):
        server = SimulatorServer(render=False, seed=1)
        server.reset()
        total = 0.0
        for _ in range(40):
            _, reward, done, _ = server.step((0.0, 0.6))
            total += reward
            if done:
                break
        assert total > 0.0

    def test_crash_terminates_with_penalty(self):
        server = SimulatorServer(render=False, seed=1)
        server.reset()
        done = False
        for _ in range(400):
            _, reward, done, info = server.step((1.0, 0.9))
            if done:
                break
        assert done
        assert info["crashed"]
        assert reward < 0.0

    def test_episode_length_cap(self):
        server = SimulatorServer(render=False, max_episode_steps=10)
        server.reset()
        for i in range(10):
            _, _, done, info = server.step((0.0, 0.2))
        assert done
        assert info["episode_steps"] == 10

    def test_reset_clears_episode(self):
        server = SimulatorServer(render=False, max_episode_steps=5)
        server.reset()
        for _ in range(5):
            server.step((0.0, 0.2))
        server.reset()
        _, _, done, info = server.step((0.0, 0.2))
        assert not done
        assert info["episode_steps"] == 1

    def test_observation_property(self):
        server = SimulatorServer(render=False)
        with pytest.raises(SimulationError):
            _ = server.observation
        server.reset()
        assert server.observation.time == 0.0

    def test_bad_config(self):
        with pytest.raises(SimulationError):
            SimulatorServer(max_episode_steps=0)
