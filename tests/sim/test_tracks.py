"""Track construction, including the paper's published dimensions."""

import numpy as np
import pytest

from repro.common.errors import TrackError
from repro.sim.tracks import (
    PAPER_OVAL_INNER_IN,
    PAPER_OVAL_OUTER_IN,
    PAPER_OVAL_WIDTH_IN,
    Track,
    default_tape_oval,
    track_from_waypoints,
    waveshare_track,
)


class TestPaperOval:
    def test_inner_line_matches_paper(self, oval_track):
        dims = oval_track.dimensions_inches()
        assert dims["inner_line_in"] == pytest.approx(PAPER_OVAL_INNER_IN, rel=0.005)

    def test_width_matches_paper(self, oval_track):
        dims = oval_track.dimensions_inches()
        assert dims["width_in"] == pytest.approx(PAPER_OVAL_WIDTH_IN, rel=0.001)

    def test_default_outer_within_2_percent(self, oval_track):
        # The three published numbers are mutually inconsistent; the
        # direct-measurement build lands within ~1.2% of the outer line.
        dims = oval_track.dimensions_inches()
        assert dims["outer_line_in"] == pytest.approx(PAPER_OVAL_OUTER_IN, rel=0.02)

    def test_calibrated_outer_matches_exactly(self):
        track = default_tape_oval(calibrated=True)
        dims = track.dimensions_inches()
        assert dims["outer_line_in"] == pytest.approx(PAPER_OVAL_OUTER_IN, rel=0.002)
        assert dims["inner_line_in"] == pytest.approx(PAPER_OVAL_INNER_IN, rel=0.005)

    def test_metadata(self, oval_track):
        assert oval_track.metadata["figure"] == "3a"
        assert oval_track.metadata["tape_color"] == "orange"


class TestTrackGeometry:
    def test_length_between_inner_and_outer(self, oval_track):
        assert oval_track.inner_length < oval_track.length < oval_track.outer_length

    def test_point_at_wraps(self, oval_track):
        p0 = oval_track.point_at(0.0)
        p_wrap = oval_track.point_at(oval_track.length)
        assert np.allclose(p0, p_wrap, atol=1e-6)

    def test_heading_tangent_consistency(self, oval_track):
        s = 0.3 * oval_track.length
        heading = oval_track.heading_at(s)
        step = 0.01
        delta = oval_track.point_at(s + step) - oval_track.point_at(s)
        angle = np.arctan2(delta[1], delta[0])
        assert abs(np.arctan2(np.sin(angle - heading), np.cos(angle - heading))) < 0.1

    def test_pose_at_offset_moves_left(self, oval_track):
        x0, y0, h = oval_track.pose_at(1.0, 0.0)
        x1, y1, _ = oval_track.pose_at(1.0, 0.1)
        normal = np.array([-np.sin(h), np.cos(h)])
        moved = np.array([x1 - x0, y1 - y0])
        assert np.dot(moved, normal) == pytest.approx(0.1, abs=1e-3)

    def test_pose_offset_beyond_half_width_rejected(self, oval_track):
        with pytest.raises(TrackError):
            oval_track.pose_at(0.0, oval_track.half_width * 1.5)

    def test_centreline_points_on_track(self, oval_track):
        s = np.linspace(0, oval_track.length, 20, endpoint=False)
        points = oval_track.point_at(s)
        assert oval_track.contains(points).all()

    def test_far_points_off_track(self, oval_track):
        assert not oval_track.contains(np.array([[100.0, 100.0]])).any()

    def test_query_signed_cte_signs(self, oval_track):
        x, y, h = oval_track.pose_at(0.5, 0.2)  # left of centreline
        q = oval_track.query(np.array([[x, y]]))
        assert q.signed_cte[0] == pytest.approx(0.2, abs=0.02)

    def test_curvature_straight_vs_corner(self, oval_track):
        samples = np.linspace(0, oval_track.length, 60, endpoint=False)
        curvatures = np.abs([oval_track.curvature_at(float(s)) for s in samples])
        # A stadium has near-zero curvature on straights and ~1/r corners.
        assert curvatures.min() < 0.05
        assert curvatures.max() > 0.5

    def test_minimum_radius_positive(self, oval_track):
        assert oval_track.minimum_radius() > oval_track.half_width

    def test_segments_near_culls(self, oval_track):
        start = oval_track.point_at(0.0)
        mask = oval_track.segments_near(start, radius=0.5)
        assert 0 < mask.sum() < len(mask)

    def test_segments_near_fallback_when_far(self, oval_track):
        mask = oval_track.segments_near(np.array([999.0, 999.0]), radius=0.5)
        assert mask.all()


class TestWaveshare:
    def test_valid_and_drivable(self, waveshare):
        assert waveshare.minimum_radius() > waveshare.half_width
        assert waveshare.length > 10.0

    def test_metadata(self, waveshare):
        assert waveshare.metadata["figure"] == "3b"
        assert waveshare.metadata["tape_color"] == "white"


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(TrackError):
            Track("bad", np.zeros((2, 2)), width=0.5)

    def test_zero_width(self):
        with pytest.raises(TrackError):
            Track("bad", np.array([[0, 0], [1, 0], [1, 1], [0, 1]]), width=0.0)

    def test_self_intersection_detected(self):
        # A tiny circle with a huge width must be rejected.
        t = np.linspace(0, 2 * np.pi, 32, endpoint=False)
        small = 0.2 * np.column_stack([np.cos(t), np.sin(t)])
        with pytest.raises(TrackError):
            Track("bad", small, width=1.0)

    def test_clockwise_input_flipped_to_ccw(self):
        t = np.linspace(0, 2 * np.pi, 64, endpoint=False)
        cw = np.column_stack([np.cos(-t), np.sin(-t)])
        track = Track("cw", cw, width=0.3)
        # Inner line (left of travel) must be the shorter one.
        assert track.inner_length < track.outer_length

    def test_custom_waypoints(self):
        pts = np.array([[0, 0], [4, 0], [4, 3], [0, 3]], dtype=float)
        track = track_from_waypoints("rect", pts, width=0.3, smoothing=8)
        assert track.length > 10.0
        assert track.name == "rect"
