"""Driving sessions: lap counting, crash handling, observations."""

import numpy as np
import pytest

from repro.common.errors import OffTrackError, SimulationError
from repro.sim.session import DrivingSession


class TestObservation:
    def test_reset_returns_first_observation(self, session_factory):
        obs = session_factory(seed=0).reset()
        assert obs.time == 0.0
        assert obs.lap == 0
        assert not obs.off_track
        assert obs.image.ndim == 3

    def test_reset_at_offset(self, session_factory, oval_track):
        session = session_factory()
        obs = session.reset(s=2.0, lateral_offset=0.1)
        assert obs.cte == pytest.approx(0.1, abs=0.02)
        assert obs.arclength == pytest.approx(2.0, abs=0.05)

    def test_step_advances_time(self, session_factory):
        session = session_factory()
        session.reset()
        obs = session.step(0.0, 0.5)
        assert obs.time == pytest.approx(session.dt)
        assert obs.speed > 0

    def test_render_disabled_gives_blank(self, session_factory):
        session = session_factory(render=False)
        obs = session.reset()
        assert obs.image.sum() == 0


class TestLaps:
    def test_expert_counts_laps(self, session_factory):
        from repro.core.drivers import PurePursuitDriver

        session = session_factory(render=False)
        driver = PurePursuitDriver(session)
        obs = session.reset()
        for _ in range(700):
            s, t = driver(obs.image, obs.cte, obs.speed)
            obs = session.step(s, t)
        assert session.stats.laps_completed >= 2
        assert len(session.stats.lap_times) == session.stats.laps_completed
        assert session.stats.mean_lap_time > 0
        assert session.stats.crashes == 0

    def test_progress_monotone_for_forward_driving(self, session_factory):
        from repro.core.drivers import PurePursuitDriver

        session = session_factory(render=False)
        driver = PurePursuitDriver(session)
        obs = session.reset()
        last = 0.0
        for _ in range(200):
            s, t = driver(obs.image, obs.cte, obs.speed)
            obs = session.step(s, t)
            assert session.progress >= last - 1e-9
            last = session.progress


class TestCrashes:
    def test_hard_left_crashes_and_respawns(self, session_factory):
        session = session_factory(render=False)
        session.reset()
        crashed = False
        for _ in range(300):
            obs = session.step(1.0, 0.8)
            if session.stats.crashes:
                crashed = True
                break
        assert crashed
        # The crash frame itself is observed (tubclean's raw material)...
        assert obs.off_track
        # ...and the next step starts from a centreline respawn, stopped.
        obs = session.step(0.0, 0.0)
        assert not obs.off_track
        assert obs.speed == 0.0

    def test_strict_mode_raises(self, session_factory):
        session = session_factory(render=False, strict=True)
        session.reset()
        with pytest.raises(OffTrackError):
            for _ in range(300):
                session.step(1.0, 0.8)

    def test_stats_track_crash_count(self, session_factory):
        session = session_factory(render=False)
        session.reset()
        for _ in range(400):
            session.step(1.0, 0.9)
        assert session.stats.crashes >= 1


class TestStats:
    def test_mean_speed_and_cte_accumulate(self, session_factory):
        session = session_factory(render=False)
        session.reset()
        for _ in range(50):
            session.step(0.0, 0.5)
        assert session.stats.steps == 50
        assert session.stats.mean_speed > 0
        assert session.stats.distance > 0

    def test_lap_time_std_zero_for_single_lap(self):
        from repro.sim.session import LapStats

        stats = LapStats(lap_times=[10.0], laps_completed=1)
        assert stats.lap_time_std == 0.0
        assert stats.mean_lap_time == 10.0

    def test_run_with_pilot_callable(self, session_factory):
        session = session_factory(render=False)
        session.reset()
        stats = session.run(lambda obs: (0.0, 0.4), steps=30)
        assert stats.steps == 30


class TestValidation:
    def test_bad_dt(self, oval_track):
        with pytest.raises(SimulationError):
            DrivingSession(oval_track, dt=0.0, render=False)
