"""Synthetic camera renderer."""

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.sim.renderer import PALETTES, CameraParams, CameraRenderer, TrackField
from repro.sim.tracks import default_tape_oval

H, W = 40, 56


@pytest.fixture(scope="module")
def track():
    return default_tape_oval()


@pytest.fixture(scope="module")
def renderer(track):
    return CameraRenderer(track, CameraParams(height=H, width=W))


class TestTrackField:
    def test_query_matches_track_query(self, track):
        field = TrackField(track)
        x, y, _ = track.pose_at(2.0, 0.15)
        dist, s, side = field.query(np.array([[x, y]]))
        exact = track.query(np.array([[x, y]]))
        assert dist[0] == pytest.approx(exact.distance[0], abs=0.01)
        assert side[0] == exact.side[0]

    def test_signed_cte(self, track):
        field = TrackField(track)
        x, y, _ = track.pose_at(1.0, -0.2)
        assert field.signed_cte(np.array([[x, y]]))[0] == pytest.approx(-0.2, abs=0.02)

    def test_spacing_validation(self, track):
        with pytest.raises(SimulationError):
            TrackField(track, spacing=0.0)


class TestRender:
    def test_shape_and_dtype(self, renderer, track):
        x, y, h = track.start_pose()
        frame = renderer.render(x, y, h, rng=0)
        assert frame.shape == (H, W, 3)
        assert frame.dtype == np.uint8

    def test_deterministic_given_seed(self, renderer, track):
        x, y, h = track.start_pose()
        a = renderer.render(x, y, h, rng=42)
        b = renderer.render(x, y, h, rng=42)
        assert np.array_equal(a, b)

    def test_sky_at_top(self, renderer, track):
        x, y, h = track.start_pose()
        frame = renderer.render(x, y, h, rng=0)
        sky = np.asarray(renderer.palette.sky)
        assert np.abs(frame[0].astype(int) - sky).mean() < 20

    def test_contains_tape_pixels_when_on_track(self, renderer, track):
        x, y, h = track.start_pose()
        frame = renderer.render(x, y, h, rng=0).astype(int)
        tape = np.asarray(renderer.palette.tape)
        dist = np.abs(frame - tape).sum(axis=2)
        assert (dist < 90).sum() > 20  # a visible stripe of tape

    def test_view_depends_on_pose(self, renderer, track):
        x, y, h = track.start_pose()
        a = renderer.render(x, y, h, rng=0)
        b = renderer.render(x, y + 0.2, h + 0.4, rng=0)
        assert not np.array_equal(a, b)

    def test_brightness_scales(self, renderer, track):
        x, y, h = track.start_pose()
        dim = renderer.render(x, y, h, rng=0, brightness=0.5)
        bright = renderer.render(x, y, h, rng=0, brightness=1.2)
        assert dim.mean() < bright.mean()

    def test_off_track_pose_mostly_floor(self, renderer, track):
        frame = renderer.render(50.0, 50.0, 0.0, rng=0).astype(int)
        floor = np.asarray(renderer.palette.floor)
        lower = frame[H // 2 :]
        assert np.abs(lower - floor).sum(axis=2).mean() < 60


class TestTopdownAblation:
    def test_topdown_mode(self, track):
        r = CameraRenderer(track, CameraParams(height=H, width=W), mode="topdown")
        x, y, h = track.start_pose()
        frame = r.render(x, y, h, rng=0)
        assert frame.shape == (H, W, 3)

    def test_unknown_mode_rejected(self, track):
        with pytest.raises(SimulationError):
            CameraRenderer(track, mode="raytraced")

    def test_modes_agree_on_tape_presence(self, track):
        params = CameraParams(height=H, width=W, noise_sigma=0.0)
        x, y, h = track.start_pose()
        for mode in ("perspective", "topdown"):
            r = CameraRenderer(track, params, mode=mode)
            frame = r.render(x, y, h).astype(int)
            tape = np.asarray(r.palette.tape)
            assert (np.abs(frame - tape).sum(axis=2) < 60).any(), mode


class TestCameraParams:
    def test_validation(self):
        with pytest.raises(SimulationError):
            CameraParams(pitch_deg=0.0)
        with pytest.raises(SimulationError):
            CameraParams(hfov_deg=200.0)
        with pytest.raises(SimulationError):
            CameraParams(mount_height=-0.1)
        with pytest.raises(SimulationError):
            CameraParams(channels=1)

    def test_waveshare_palette_selected(self):
        from repro.sim.tracks import waveshare_track

        r = CameraRenderer(waveshare_track(), CameraParams(height=H, width=W))
        assert r.palette is PALETTES["white"]
