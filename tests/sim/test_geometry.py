"""Polyline geometry primitives."""

import numpy as np
import pytest

from repro.sim.geometry import (
    cumulative_arclength,
    normals_closed,
    offset_closed,
    point_in_closed_polyline,
    polyline_length,
    polyline_lengths,
    project_points,
    resample_closed,
)


def circle(n=64, r=1.0):
    t = np.linspace(0, 2 * np.pi, n, endpoint=False)
    return np.column_stack([r * np.cos(t), r * np.sin(t)])


class TestLengths:
    def test_unit_square_perimeter(self):
        square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert polyline_length(square) == pytest.approx(4.0)

    def test_open_polyline(self):
        line = np.array([[0, 0], [3, 0], [3, 4]], dtype=float)
        assert polyline_length(line, closed=False) == pytest.approx(7.0)

    def test_circle_approximates_circumference(self):
        assert polyline_length(circle(512)) == pytest.approx(2 * np.pi, rel=1e-3)

    def test_cumulative_starts_at_zero(self):
        s = cumulative_arclength(circle(16))
        assert s[0] == 0.0
        assert np.all(np.diff(s) > 0)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            polyline_lengths(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            polyline_lengths(np.zeros((5, 3)))


class TestResample:
    def test_preserves_length(self):
        pts = resample_closed(circle(40), 200)
        assert polyline_length(pts) == pytest.approx(polyline_length(circle(40)), rel=1e-3)

    def test_uniform_spacing(self):
        pts = resample_closed(circle(40), 100)
        seg = polyline_lengths(pts)
        assert seg.std() / seg.mean() < 0.05

    def test_count(self):
        assert len(resample_closed(circle(), 37)) == 37

    def test_too_few_rejected(self):
        with pytest.raises(ValueError):
            resample_closed(circle(), 2)


class TestNormalsAndOffsets:
    def test_ccw_circle_normals_point_inward(self):
        pts = circle(128)
        normals = normals_closed(pts)
        # Inward on a CCW circle = toward the origin.
        dots = np.einsum("ij,ij->i", normals, -pts)
        assert np.all(dots > 0.9)

    def test_offset_shrinks_ccw_circle(self):
        inner = offset_closed(circle(256), 0.2)
        assert polyline_length(inner) == pytest.approx(2 * np.pi * 0.8, rel=1e-2)

    def test_negative_offset_grows(self):
        outer = offset_closed(circle(256), -0.2)
        assert polyline_length(outer) == pytest.approx(2 * np.pi * 1.2, rel=1e-2)


class TestProjection:
    def test_distance_to_circle(self):
        poly = circle(512)
        query = np.array([[2.0, 0.0], [0.0, 0.5], [0.0, 0.0]])
        dist, _, _ = project_points(query, poly)
        assert dist == pytest.approx([1.0, 0.5, 1.0], abs=1e-3)

    def test_arclength_monotone_along_curve(self):
        poly = circle(512)
        t = np.linspace(0, np.pi, 8, endpoint=False)
        query = 1.1 * np.column_stack([np.cos(t), np.sin(t)])
        _, s, _ = project_points(query, poly)
        assert np.all(np.diff(s) > 0)

    def test_sides(self):
        poly = circle(256)
        # CCW travel: inside the circle is to the left (+1).
        _, _, side_in = project_points(np.array([[0.5, 0.0]]), poly)
        _, _, side_out = project_points(np.array([[1.5, 0.0]]), poly)
        assert side_in[0] == 1.0
        assert side_out[0] == -1.0

    def test_segment_mask(self):
        poly = circle(64)
        mask = np.zeros(64, dtype=bool)
        mask[:4] = True  # only segments near angle 0
        dist_masked, _, _ = project_points(np.array([[0.0, 1.05]]), poly, mask)
        dist_full, _, _ = project_points(np.array([[0.0, 1.05]]), poly)
        assert dist_masked[0] > dist_full[0]  # forced onto far segments

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            project_points(np.zeros((1, 2)), circle(), np.zeros(64, dtype=bool))

    def test_wrong_mask_shape_rejected(self):
        with pytest.raises(ValueError):
            project_points(np.zeros((1, 2)), circle(64), np.zeros(10, dtype=bool))


class TestPointInPolygon:
    def test_circle_membership(self):
        poly = circle(128)
        inside = point_in_closed_polyline(np.array([[0, 0], [0.9, 0]]), poly)
        outside = point_in_closed_polyline(np.array([[1.5, 0], [0, -2]]), poly)
        assert inside.all()
        assert not outside.any()

    def test_square_corners(self):
        square = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], dtype=float)
        res = point_in_closed_polyline(np.array([[1.0, 1.0], [3.0, 1.0]]), square)
        assert res.tolist() == [True, False]
