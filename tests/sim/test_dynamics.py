"""Kinematic bicycle model."""

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.sim.dynamics import PIRACER_PARAMS, BicycleModel, CarParams, CarState


@pytest.fixture()
def model():
    return BicycleModel()


def drive(model, state, steering, throttle, steps, dt=0.05):
    for _ in range(steps):
        state = model.step(state, steering, throttle, dt)
    return state


class TestLongitudinal:
    def test_full_throttle_approaches_max_speed(self, model):
        state = drive(model, CarState(), 0.0, 1.0, steps=600)
        assert state.speed == pytest.approx(PIRACER_PARAMS.max_speed, rel=0.05)

    def test_half_throttle_reaches_half_speed(self, model):
        state = drive(model, CarState(), 0.0, 0.5, steps=600)
        assert state.speed == pytest.approx(0.5 * PIRACER_PARAMS.max_speed, rel=0.1)

    def test_zero_throttle_decays(self, model):
        fast = CarState(speed=2.0)
        state = drive(model, fast, 0.0, 0.0, steps=300)
        assert state.speed < 0.2

    def test_braking_stops_car(self, model):
        fast = CarState(speed=2.0)
        state = drive(model, fast, 0.0, -1.0, steps=60)
        assert state.speed == 0.0

    def test_speed_never_negative(self, model):
        state = drive(model, CarState(speed=0.5), 0.0, -1.0, steps=200)
        assert state.speed == 0.0

    def test_throttle_lag(self, model):
        # One tick of full throttle cannot reach steady-state accel.
        s1 = model.step(CarState(), 0.0, 1.0, 0.05)
        assert 0.0 < s1.speed < PIRACER_PARAMS.max_accel * 0.05


class TestLateral:
    def test_straight_line(self, model):
        state = drive(model, CarState(), 0.0, 0.6, steps=100)
        assert abs(state.y) < 1e-6
        assert state.x > 0

    def test_left_steer_turns_left(self, model):
        state = drive(model, CarState(speed=1.0), 1.0, 0.5, steps=100)
        assert state.heading > 0.2

    def test_right_steer_turns_right(self, model):
        state = drive(model, CarState(speed=1.0), -1.0, 0.5, steps=100)
        assert state.heading < -0.2

    def test_turn_radius_close_to_analytic(self, model):
        # Drive a full circle at constant speed and full lock; the
        # radius of the trajectory should approach the analytic value.
        state = CarState(speed=1.0)
        xs, ys = [], []
        for _ in range(2000):
            state = model.step(state, 1.0, 0.32, 0.02)
            xs.append(state.x)
            ys.append(state.y)
        xs, ys = np.array(xs[1000:]), np.array(ys[1000:])
        cx, cy = xs.mean(), ys.mean()
        radius = np.hypot(xs - cx, ys - cy).mean()
        assert radius == pytest.approx(model.min_turn_radius(), rel=0.15)

    def test_steering_command_clipped(self, model):
        wild = drive(model, CarState(speed=1.0), 5.0, 0.5, steps=50)
        sane = drive(model, CarState(speed=1.0), 1.0, 0.5, steps=50)
        assert wild.heading == pytest.approx(sane.heading, abs=1e-9)

    def test_heading_wraps(self, model):
        state = drive(model, CarState(speed=1.5), 1.0, 0.8, steps=3000)
        assert -np.pi <= state.heading <= np.pi


class TestValidation:
    def test_dt_positive(self, model):
        with pytest.raises(SimulationError):
            model.step(CarState(), 0.0, 0.0, 0.0)

    def test_bad_params_rejected(self):
        with pytest.raises(SimulationError):
            CarParams(wheelbase=-1.0)
        with pytest.raises(SimulationError):
            CarParams(max_speed=0.0)

    def test_stopping_distance(self, model):
        d = model.stopping_distance(2.0)
        assert d == pytest.approx(4.0 / (2 * PIRACER_PARAMS.brake_decel))
        with pytest.raises(SimulationError):
            model.stopping_distance(-1.0)

    def test_state_with_pose(self):
        state = CarState(speed=1.2).with_pose(3.0, 4.0, 0.5)
        assert (state.x, state.y, state.heading) == (3.0, 4.0, 0.5)
        assert state.speed == 1.2

    def test_position_property(self):
        assert np.allclose(CarState(x=1, y=2).position, [1, 2])
