"""AutoLearn: Learning in the Edge to Cloud Continuum — reproduction.

A full reimplementation of the system described in Esquivel Morel et
al., SC-W 2023 (DOI 10.1145/3624062.3624101): the DonkeyCar-style
self-driving stack, a track simulator replacing the physical car and
the Unity simulator, a numpy neural-network framework with the six
autopilot models, and emulations of the Chameleon testbed, CHI@Edge
BYOD, the network continuum, the Swift object store, and the Trovi
artifact hub.  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the paper-versus-measured record.

Quick tour::

    from repro.core import AutoLearnPipeline
    report = AutoLearnPipeline("digital", work_dir="./run").run()
    print(report.evaluation)
"""

from repro import (
    analysis,
    artifacts,
    common,
    core,
    data,
    edge,
    extensions,
    faults,
    fleet,
    inference,
    ml,
    net,
    objectstore,
    obs,
    serve,
    sim,
    testbed,
    twin,
    vehicle,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "artifacts",
    "common",
    "core",
    "data",
    "edge",
    "extensions",
    "faults",
    "fleet",
    "inference",
    "ml",
    "net",
    "objectstore",
    "obs",
    "serve",
    "sim",
    "testbed",
    "twin",
    "vehicle",
    "__version__",
]
