"""Digital twin: simulation versus reality (paper §3.3/§3.4, E9).

"combining the simulator and real-life validation can lead to
interesting exploration of digital twin modeling" — the same trained
model is evaluated in the *simulator* (nominal plant, clean sensing)
and on the *real car* (perturbed plant: heavier, laggier, noisier —
the systematic sim-to-real differences of a physical kit), and the
divergence between the two runs is quantified.

The "real" car here is the simulator with a perturbed
:class:`~repro.sim.dynamics.CarParams` and higher sensor noise — the
substitution DESIGN.md §2 documents.  The *twin gap* metrics are the
deliverable: they are exactly what a student's digital-twin project
would report.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.ml.models.base import DonkeyModel
from repro.sim.dynamics import CarParams, PIRACER_PARAMS
from repro.sim.renderer import CameraParams
from repro.sim.session import DrivingSession
from repro.sim.tracks import Track

__all__ = ["TwinReport", "perturbed_reality", "run_twin_comparison"]


@dataclass(frozen=True)
class TwinReport:
    """Divergence between the simulated and 'real' runs."""

    sim_laps: int
    real_laps: int
    sim_mean_lap_time: float
    real_mean_lap_time: float
    sim_mean_speed: float
    real_mean_speed: float
    sim_errors: int
    real_errors: int
    cte_profile_rmse: float  # RMSE between cte-vs-arclength profiles
    speed_profile_rmse: float

    @property
    def lap_time_gap(self) -> float:
        """Relative lap-time difference (real vs sim)."""
        if self.sim_mean_lap_time == 0:
            return float("inf") if self.real_mean_lap_time else 0.0
        return (
            self.real_mean_lap_time - self.sim_mean_lap_time
        ) / self.sim_mean_lap_time

    @property
    def twin_gap(self) -> float:
        """Scalar twin-fidelity score (0 = perfect twin)."""
        return float(
            abs(self.lap_time_gap)
            + self.cte_profile_rmse
            + 0.25 * self.speed_profile_rmse
        )


def perturbed_reality(
    base: CarParams = PIRACER_PARAMS,
    severity: float = 1.0,
    seed: int = 0,
) -> CarParams:
    """A 'real car' plant: systematic offsets scaled by ``severity``.

    Real kits are heavier (lower accel, lower top speed), have laggier
    ESCs, and slightly asymmetric steering reach.  ``severity=0``
    returns the nominal plant.
    """
    if severity < 0:
        raise ConfigurationError(f"severity must be >= 0, got {severity}")
    rng = ensure_rng(seed)
    sign = rng.choice([-1.0, 1.0])
    return replace(
        base,
        max_speed=base.max_speed * (1.0 - 0.12 * severity),
        max_accel=base.max_accel * (1.0 - 0.15 * severity),
        throttle_tau=base.throttle_tau * (1.0 + 0.5 * severity),
        steering_tau=base.steering_tau * (1.0 + 0.4 * severity),
        max_steering_angle=base.max_steering_angle
        * (1.0 + sign * 0.06 * severity),
    )


def _make_pilot(session: DrivingSession, model):
    """Resolve the pilot: a trained model, or the scripted expert.

    Passing ``"expert"`` drives with the pure-pursuit controller — the
    twin comparison then isolates *plant* differences from model
    quality (the recommended mode for quantifying the twin gap).
    """
    if isinstance(model, str):
        if model != "expert":
            raise ConfigurationError(f"unknown pilot spec {model!r}")
        from repro.core.drivers import PurePursuitDriver

        driver = PurePursuitDriver(session)
        return lambda obs: driver(obs.image, obs.cte, obs.speed)
    model.reset_state()
    return lambda obs: model.run(obs.image)


def _profile(session: DrivingSession, model, ticks: int, bins: int):
    """Drive and histogram cte/speed against arclength bins."""
    pilot = _make_pilot(session, model)
    track = session.track
    cte_sum = np.zeros(bins)
    speed_sum = np.zeros(bins)
    counts = np.zeros(bins)
    obs = session.reset()
    for _ in range(ticks):
        steering, throttle = pilot(obs)
        obs = session.step(steering, throttle)
        b = min(int(obs.arclength / track.length * bins), bins - 1)
        cte_sum[b] += obs.cte
        speed_sum[b] += obs.speed
        counts[b] += 1
    safe = np.maximum(counts, 1)
    return cte_sum / safe, speed_sum / safe, session.stats


def run_twin_comparison(
    model: DonkeyModel | str,
    track: Track,
    ticks: int = 1000,
    severity: float = 1.0,
    bins: int = 24,
    seed: int = 0,
    camera: CameraParams | None = None,
) -> TwinReport:
    """Evaluate ``model`` in sim and on the perturbed 'real' car.

    ``model`` may be a trained :class:`DonkeyModel` or the string
    ``"expert"`` (pure-pursuit pilot), which isolates plant differences
    from model quality.
    """
    if ticks <= 0 or bins <= 0:
        raise ConfigurationError("ticks and bins must be positive")
    sim_session = DrivingSession(track, camera=camera, seed=seed)
    sim_cte, sim_speed, sim_stats = _profile(sim_session, model, ticks, bins)

    real_params = perturbed_reality(severity=severity, seed=seed)
    real_camera = camera or CameraParams()
    noisy_camera = replace(real_camera, noise_sigma=real_camera.noise_sigma * 2.5)
    real_session = DrivingSession(
        track, car_params=real_params, camera=noisy_camera, seed=seed + 1
    )
    real_cte, real_speed, real_stats = _profile(real_session, model, ticks, bins)

    return TwinReport(
        sim_laps=sim_stats.laps_completed,
        real_laps=real_stats.laps_completed,
        sim_mean_lap_time=sim_stats.mean_lap_time,
        real_mean_lap_time=real_stats.mean_lap_time,
        sim_mean_speed=sim_stats.mean_speed,
        real_mean_speed=real_stats.mean_speed,
        sim_errors=sim_stats.crashes,
        real_errors=real_stats.crashes,
        cte_profile_rmse=float(np.sqrt(np.mean((sim_cte - real_cte) ** 2))),
        speed_profile_rmse=float(np.sqrt(np.mean((sim_speed - real_speed) ** 2))),
    )
