"""Digital twin: sim-versus-real comparison (paper §3.4, experiment E9)."""

from repro.twin.digital_twin import TwinReport, perturbed_reality, run_twin_comparison

__all__ = ["TwinReport", "perturbed_reality", "run_twin_comparison"]
