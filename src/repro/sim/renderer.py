"""Synthetic camera: the Unity DonkeyCar simulator substitute.

The paper's simulator path collects ``(image, steering, throttle)``
tuples from a Unity game-engine render.  We reproduce the part that
matters to the ML pipeline — a 120x160x3 forward camera whose image
content is determined by the car's pose relative to the track lines —
with a vectorised perspective ground-plane renderer:

1. At construction, the per-pixel ray directions of the pinhole camera
   (pitched down at the track, like the Pi camera on the real car) are
   intersected with the ground plane *once*, yielding a fixed grid of
   ground points in the car frame.
2. Per frame, those points are rotated/translated into world
   coordinates (two matmuls) and classified against the track: lane
   surface, boundary tape, off-track floor, or sky/far.
3. Classification uses :class:`TrackField` — a dense resampling of the
   centreline indexed by a :class:`scipy.spatial.cKDTree` — so the cost
   per frame is one KD-tree query instead of a dense point x segment
   distance matrix.

A top-down orthographic mode (``mode="topdown"``) is retained as a
fidelity ablation (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.common.errors import SimulationError
from repro.common.rng import ensure_rng
from repro.common.units import (
    DONKEYCAR_IMAGE_CHANNELS,
    DONKEYCAR_IMAGE_HEIGHT,
    DONKEYCAR_IMAGE_WIDTH,
)
from repro.sim.tracks import Track

__all__ = ["CameraParams", "Palette", "TrackField", "CameraRenderer", "PALETTES"]


@dataclass(frozen=True)
class CameraParams:
    """Intrinsics and mounting of the synthetic camera."""

    height: int = DONKEYCAR_IMAGE_HEIGHT
    width: int = DONKEYCAR_IMAGE_WIDTH
    channels: int = DONKEYCAR_IMAGE_CHANNELS
    mount_height: float = 0.125  # camera height above ground (m)
    pitch_deg: float = 15.0  # downward pitch
    hfov_deg: float = 120.0  # wide-angle Pi camera
    max_distance: float = 4.0  # ground visibility range (m)
    noise_sigma: float = 4.0  # per-pixel Gaussian noise (uint8 units)

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0 or self.channels != 3:
            raise SimulationError("camera must produce HxWx3 frames")
        if not 0 < self.pitch_deg < 90:
            raise SimulationError("pitch must be in (0, 90) degrees")
        if not 10 <= self.hfov_deg < 180:
            raise SimulationError("hfov must be in [10, 180) degrees")
        if self.mount_height <= 0 or self.max_distance <= 0:
            raise SimulationError("mount_height and max_distance must be positive")


@dataclass(frozen=True)
class Palette:
    """RGB colours for the four pixel classes."""

    lane: tuple[int, int, int]
    tape: tuple[int, int, int]
    floor: tuple[int, int, int]
    sky: tuple[int, int, int]
    tape_width: float = 0.048  # 2-inch gaffer tape


#: Palettes keyed by the track's ``tape_color`` metadata.
PALETTES: dict[str, Palette] = {
    # Orange tape on concrete (the default oval, Fig. 3a).
    "orange": Palette(
        lane=(108, 104, 99),
        tape=(232, 119, 34),
        floor=(96, 92, 88),
        sky=(166, 170, 178),
    ),
    # White lines on a dark printed mat (Waveshare, Fig. 3b).
    "white": Palette(
        lane=(44, 46, 52),
        tape=(236, 236, 236),
        floor=(120, 118, 114),
        sky=(166, 170, 178),
        tape_width=0.04,
    ),
}


class TrackField:
    """Nearest-centreline lookup accelerated with a KD-tree.

    The centreline is resampled to ``spacing`` metres between vertices;
    nearest-vertex distance then approximates distance-to-curve with
    error at most ``spacing / 2`` (sub-millimetre in the normal
    direction for the default spacing), which is far below the tape
    width the classifier needs to resolve.
    """

    def __init__(self, track: Track, spacing: float = 0.004) -> None:
        if spacing <= 0:
            raise SimulationError(f"spacing must be positive, got {spacing}")
        n = max(int(np.ceil(track.length / spacing)), 64)
        s = np.linspace(0.0, track.length, n, endpoint=False)
        self.track = track
        self.points = track.point_at(s)
        self.arclengths = s
        # Left normals from forward differences of the dense samples.
        tangent = np.roll(self.points, -1, axis=0) - np.roll(self.points, 1, axis=0)
        tangent /= np.linalg.norm(tangent, axis=1, keepdims=True)
        self.normals = np.column_stack([-tangent[:, 1], tangent[:, 0]])
        self._tree = cKDTree(self.points)

    def query(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (distance, arclength, signed side) for world points."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        distance, idx = self._tree.query(pts, k=1)
        delta = pts - self.points[idx]
        side = np.sign(np.einsum("ij,ij->i", delta, self.normals[idx]))
        return distance, self.arclengths[idx], side

    def signed_cte(self, points: np.ndarray) -> np.ndarray:
        """Signed cross-track error (positive = left of centreline)."""
        distance, _, side = self.query(points)
        return distance * side


class CameraRenderer:
    """Renders the forward camera view for a car pose on a track."""

    def __init__(
        self,
        track: Track,
        params: CameraParams | None = None,
        palette: Palette | None = None,
        mode: str = "perspective",
        field_spacing: float = 0.004,
    ) -> None:
        if mode not in ("perspective", "topdown"):
            raise SimulationError(f"unknown renderer mode: {mode!r}")
        self.track = track
        self.params = params or CameraParams()
        self.palette = palette or PALETTES.get(
            track.metadata.get("tape_color", "orange"), PALETTES["orange"]
        )
        self.mode = mode
        self.field = TrackField(track, spacing=field_spacing)
        if mode == "perspective":
            self._ground_car, self._ground_mask = self._precompute_ground_grid()

    # ------------------------------------------------- precomputation

    def _precompute_ground_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Fixed car-frame ground intersection per pixel.

        Returns ``(ground_xy, mask)`` where ``ground_xy`` has shape
        ``(H, W, 2)`` (car-frame forward/left coordinates; garbage where
        the mask is False) and ``mask`` marks pixels whose ray hits the
        ground within ``max_distance``.
        """
        p = self.params
        h, w = p.height, p.width
        alpha = np.deg2rad(p.pitch_deg)
        fx = (w / 2.0) / np.tan(np.deg2rad(p.hfov_deg) / 2.0)
        fy = fx  # square pixels

        u = np.arange(w) + 0.5
        v = np.arange(h) + 0.5
        xn = (u - w / 2.0) / fx  # right in image
        yn = (v - h / 2.0) / fy  # down in image
        xn_grid, yn_grid = np.meshgrid(xn, yn)

        # Car frame: X forward, Y left, Z up.  Camera basis vectors:
        forward = np.array([np.cos(alpha), 0.0, -np.sin(alpha)])
        right = np.array([0.0, -1.0, 0.0])
        down = np.array([-np.sin(alpha), 0.0, -np.cos(alpha)])

        dirs = (
            xn_grid[..., None] * right
            + yn_grid[..., None] * down
            + forward
        )  # (H, W, 3), unnormalised is fine for plane intersection
        dz = dirs[..., 2]
        hits = dz < -1e-9
        t = np.where(hits, -p.mount_height / np.where(hits, dz, -1.0), np.inf)
        ground = dirs[..., :2] * t[..., None]  # (H, W, 2) forward/left
        dist = np.linalg.norm(ground, axis=-1)
        mask = hits & (dist <= p.max_distance) & (ground[..., 0] > 0.0)
        return ground, mask

    # ---------------------------------------------------------- render

    def render(
        self,
        x: float,
        y: float,
        heading: float,
        rng: int | np.random.Generator | None = None,
        brightness: float = 1.0,
    ) -> np.ndarray:
        """Render the camera frame at a world pose; returns uint8 HxWx3.

        ``rng`` seeds per-pixel sensor noise (pass ``None`` via an
        explicit generator upstream for reproducible sequences);
        ``brightness`` models ambient lighting variation.
        """
        if self.mode == "perspective":
            frame = self._render_perspective(x, y, heading)
        else:
            frame = self._render_topdown(x, y, heading)
        if brightness != 1.0:
            frame = np.clip(frame.astype(np.float32) * brightness, 0, 255)
        if self.params.noise_sigma > 0:
            gen = ensure_rng(rng)
            noise = gen.normal(0.0, self.params.noise_sigma, frame.shape)
            frame = np.clip(frame.astype(np.float32) + noise, 0, 255)
        return frame.astype(np.uint8)

    def _classify(self, world_points: np.ndarray) -> np.ndarray:
        """Map world ground points to RGB rows (N, 3) uint8."""
        pal = self.palette
        distance, _, _ = self.field.query(world_points)
        half = self.track.half_width
        colors = np.empty((len(world_points), 3), dtype=np.uint8)
        colors[:] = pal.floor
        lane = distance < half
        colors[lane] = pal.lane
        tape = np.abs(distance - half) <= pal.tape_width / 2.0
        colors[tape] = pal.tape
        return colors

    def _render_perspective(self, x: float, y: float, heading: float) -> np.ndarray:
        p = self.params
        frame = np.empty((p.height, p.width, 3), dtype=np.uint8)
        frame[:] = self.palette.sky

        mask = self._ground_mask
        ground = self._ground_car[mask]  # (N, 2) forward/left in car frame
        cos_h, sin_h = np.cos(heading), np.sin(heading)
        rot = np.array([[cos_h, -sin_h], [sin_h, cos_h]])
        world = ground @ rot.T + np.array([x, y])
        frame[mask] = self._classify(world)

        # Pixels whose ray hits ground beyond max_distance read as floor
        # fading to sky; paint them floor for a simple horizon band.
        far = (~mask) & (self._ground_car[..., 0] > 0) & np.isfinite(
            self._ground_car[..., 0]
        )
        frame[far] = self.palette.floor
        return frame

    def _render_topdown(self, x: float, y: float, heading: float) -> np.ndarray:
        """Orthographic crop centred ahead of the car (fidelity ablation)."""
        p = self.params
        extent = p.max_distance
        fwd = np.linspace(0.0, extent, p.height)[::-1]  # top of image = far
        lat = np.linspace(extent / 2.0, -extent / 2.0, p.width) * -1.0
        fwd_grid, lat_grid = np.meshgrid(fwd, lat, indexing="ij")
        ground = np.stack([fwd_grid, lat_grid], axis=-1).reshape(-1, 2)
        cos_h, sin_h = np.cos(heading), np.sin(heading)
        rot = np.array([[cos_h, -sin_h], [sin_h, cos_h]])
        world = ground @ rot.T + np.array([x, y])
        return self._classify(world).reshape(p.height, p.width, 3)
