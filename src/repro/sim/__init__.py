"""Driving simulator: tracks, car dynamics, synthetic camera, sessions.

This package replaces the Unity DonkeyCar simulator and the physical
car/track plant (see DESIGN.md §2 for the substitution argument).
"""

from repro.sim.plot import save_svg, track_svg, trajectory_svg
from repro.sim.dynamics import PIRACER_PARAMS, BicycleModel, CarParams, CarState
from repro.sim.renderer import (
    PALETTES,
    CameraParams,
    CameraRenderer,
    Palette,
    TrackField,
)
from repro.sim.server import AVAILABLE_TRACKS, SimulatorServer, make_track
from repro.sim.session import DrivingSession, LapStats, Observation
from repro.sim.tracks import (
    PAPER_OVAL_INNER_IN,
    PAPER_OVAL_OUTER_IN,
    PAPER_OVAL_WIDTH_IN,
    Track,
    TrackQuery,
    default_tape_oval,
    track_from_waypoints,
    waveshare_track,
)

__all__ = [
    "track_svg",
    "trajectory_svg",
    "save_svg",
    "BicycleModel",
    "CarParams",
    "CarState",
    "PIRACER_PARAMS",
    "CameraParams",
    "CameraRenderer",
    "Palette",
    "PALETTES",
    "TrackField",
    "SimulatorServer",
    "AVAILABLE_TRACKS",
    "make_track",
    "DrivingSession",
    "LapStats",
    "Observation",
    "Track",
    "TrackQuery",
    "default_tape_oval",
    "waveshare_track",
    "track_from_waypoints",
    "PAPER_OVAL_INNER_IN",
    "PAPER_OVAL_OUTER_IN",
    "PAPER_OVAL_WIDTH_IN",
]
