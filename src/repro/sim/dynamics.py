"""Kinematic bicycle model for the small-scale car.

The physical platform in the paper is a Waveshare PiRacer Pro — a
1/10-scale Ackermann-steered RC car.  Its drive stack (DonkeyCar)
commands normalised steering and throttle in ``[-1, 1]``; the ESC and
steering servo map those to wheel angle and motor power.  This module
reproduces the *plant*: a kinematic bicycle model with first-order
throttle response and speed-dependent drag, which is the standard
fidelity level for DonkeyCar-style simulators (the Unity sim uses a
similar model).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.common.errors import SimulationError

__all__ = ["CarParams", "CarState", "BicycleModel", "PIRACER_PARAMS"]


@dataclass(frozen=True)
class CarParams:
    """Physical parameters of the car.

    Attributes
    ----------
    wheelbase:
        Distance between axles (m).
    max_steering_angle:
        Wheel angle at steering command 1.0 (radians).
    max_speed:
        Terminal speed at full throttle on flat ground (m/s).
    max_accel:
        Peak acceleration at full throttle from standstill (m/s^2).
    throttle_tau:
        First-order time constant of the ESC/motor response (s).
    steering_tau:
        First-order time constant of the steering servo (s).
    brake_decel:
        Deceleration magnitude at full reverse throttle while moving
        forward (m/s^2).
    """

    wheelbase: float = 0.26
    max_steering_angle: float = np.deg2rad(28.0)
    max_speed: float = 3.5
    max_accel: float = 2.5
    throttle_tau: float = 0.25
    steering_tau: float = 0.08
    brake_decel: float = 4.0

    def __post_init__(self) -> None:
        for name in (
            "wheelbase",
            "max_steering_angle",
            "max_speed",
            "max_accel",
            "throttle_tau",
            "steering_tau",
            "brake_decel",
        ):
            if getattr(self, name) <= 0:
                raise SimulationError(f"CarParams.{name} must be positive")


#: Default parameters approximating the Waveshare PiRacer Pro kit the
#: paper recommends (~$200, §3.1).
PIRACER_PARAMS = CarParams()


@dataclass(frozen=True)
class CarState:
    """Full kinematic state of the car.

    ``steering_angle`` and ``accel_cmd`` carry the lagged actuator
    states so that the model is Markovian in this dataclass.
    """

    x: float = 0.0
    y: float = 0.0
    heading: float = 0.0
    speed: float = 0.0
    steering_angle: float = 0.0
    accel_cmd: float = 0.0

    @property
    def position(self) -> np.ndarray:
        """(x, y) as an array."""
        return np.array([self.x, self.y])

    def with_pose(self, x: float, y: float, heading: float) -> "CarState":
        """Copy of the state teleported to a new pose (speed preserved)."""
        return replace(self, x=x, y=y, heading=heading)


class BicycleModel:
    """Discrete-time kinematic bicycle with actuator lag.

    The update at each step of duration ``dt``:

    1. The commanded steering angle (command x max angle) is tracked by
       a first-order lag with time constant ``steering_tau``.
    2. Throttle maps to a target acceleration: positive throttle
       produces ``max_accel * throttle`` reduced by drag proportional to
       ``speed / max_speed`` (so full throttle converges to
       ``max_speed``); negative throttle while moving forward brakes.
    3. Pose integrates the standard bicycle kinematics
       ``dheading = speed / wheelbase * tan(steering_angle) * dt``.

    Speed never goes negative: the cars in the module drive forward
    only (the DonkeyCar ESC reverse path is not part of the pipeline).
    """

    def __init__(self, params: CarParams = PIRACER_PARAMS) -> None:
        self.params = params

    def step(
        self,
        state: CarState,
        steering: float,
        throttle: float,
        dt: float,
    ) -> CarState:
        """Advance the car one control interval.

        ``steering``/``throttle`` are normalised commands clipped to
        ``[-1, 1]``; ``dt`` must be positive.
        """
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt}")
        p = self.params
        steering = float(np.clip(steering, -1.0, 1.0))
        throttle = float(np.clip(throttle, -1.0, 1.0))

        # 1. Steering servo lag.
        target_angle = steering * p.max_steering_angle
        alpha_s = 1.0 - np.exp(-dt / p.steering_tau)
        steering_angle = state.steering_angle + alpha_s * (
            target_angle - state.steering_angle
        )

        # 2. Longitudinal dynamics with ESC lag and linear drag.
        if throttle >= 0:
            target_accel = p.max_accel * throttle - p.max_accel * (
                state.speed / p.max_speed
            )
        else:
            target_accel = p.brake_decel * throttle  # throttle < 0: brake
        alpha_t = 1.0 - np.exp(-dt / p.throttle_tau)
        accel = state.accel_cmd + alpha_t * (target_accel - state.accel_cmd)
        speed = max(0.0, state.speed + accel * dt)

        # 3. Bicycle kinematics (midpoint speed for better energy
        #    behaviour at 20 Hz).
        mid_speed = 0.5 * (state.speed + speed)
        heading = state.heading + (mid_speed / p.wheelbase) * np.tan(
            steering_angle
        ) * dt
        heading = float(np.arctan2(np.sin(heading), np.cos(heading)))
        x = state.x + mid_speed * np.cos(heading) * dt
        y = state.y + mid_speed * np.sin(heading) * dt

        return CarState(
            x=float(x),
            y=float(y),
            heading=heading,
            speed=float(speed),
            steering_angle=float(steering_angle),
            accel_cmd=float(accel),
        )

    def stopping_distance(self, speed: float) -> float:
        """Distance to stop from ``speed`` at full brake (analytic)."""
        if speed < 0:
            raise SimulationError(f"speed must be non-negative, got {speed}")
        return speed * speed / (2.0 * self.params.brake_decel)

    def min_turn_radius(self) -> float:
        """Turning radius at full steering lock (m)."""
        return self.params.wheelbase / np.tan(self.params.max_steering_angle)
