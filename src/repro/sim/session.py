"""Driving sessions: the closed loop of dynamics + track + camera.

A :class:`DrivingSession` owns a car on a track and exposes the same
step interface the DonkeyCar Unity simulator offers: apply (steering,
throttle), advance one control interval, observe (camera frame, pose,
telemetry).  It tracks lap progress, lap times, cross-track error, and
off-track excursions (crashes) — the quantities the paper's model
evaluation stage measures ("drive them around the track measuring
qualities of interest (speed, number of errors, etc.)", §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import OffTrackError, SimulationError
from repro.common.rng import ensure_rng
from repro.common.units import DONKEYCAR_LOOP_HZ
from repro.sim.dynamics import BicycleModel, CarParams, CarState, PIRACER_PARAMS
from repro.sim.renderer import CameraParams, CameraRenderer
from repro.sim.tracks import Track

__all__ = ["Observation", "LapStats", "DrivingSession"]


@dataclass(frozen=True)
class Observation:
    """Everything a driver (human or pilot) can see after a step."""

    image: np.ndarray  # HxWx3 uint8 camera frame
    state: CarState
    time: float  # session time (s)
    cte: float  # signed cross-track error (m, positive = left)
    arclength: float  # progress coordinate along the centreline (m)
    lap: int  # completed laps
    off_track: bool  # currently outside the drivable lane
    speed: float  # convenience copy of state.speed (m/s)


@dataclass
class LapStats:
    """Aggregated per-session driving statistics."""

    laps_completed: int = 0
    lap_times: list[float] = field(default_factory=list)
    crashes: int = 0
    steps: int = 0
    distance: float = 0.0
    abs_cte_sum: float = 0.0
    speed_sum: float = 0.0

    @property
    def mean_abs_cte(self) -> float:
        """Mean unsigned cross-track error over all steps (m)."""
        return self.abs_cte_sum / self.steps if self.steps else 0.0

    @property
    def mean_speed(self) -> float:
        """Mean speed over all steps (m/s)."""
        return self.speed_sum / self.steps if self.steps else 0.0

    @property
    def mean_lap_time(self) -> float:
        """Mean completed-lap time (s); 0.0 if no lap finished."""
        return float(np.mean(self.lap_times)) if self.lap_times else 0.0

    @property
    def lap_time_std(self) -> float:
        """Std-dev of completed-lap times (s) — the consistency metric."""
        return float(np.std(self.lap_times)) if len(self.lap_times) > 1 else 0.0


class DrivingSession:
    """Closed-loop simulation of one car on one track.

    Parameters
    ----------
    track:
        The circuit to drive.
    car_params:
        Plant parameters (defaults to the PiRacer kit).
    camera:
        Camera intrinsics/mounting.
    dt:
        Control interval; defaults to DonkeyCar's 20 Hz loop.
    strict:
        If True, leaving the lane raises :class:`OffTrackError`
        (used by tests that must not silently tolerate crashes).
        If False (default), excursions are counted and the car is
        respawned on the centreline at its current progress, which is
        what students do on the real track ("pick the car up and put it
        back").
    seed:
        Seeds the camera sensor noise stream.
    render:
        If False, observations carry a zero image (fast mode for
        physics-only experiments).
    """

    def __init__(
        self,
        track: Track,
        car_params: CarParams = PIRACER_PARAMS,
        camera: CameraParams | None = None,
        dt: float = 1.0 / DONKEYCAR_LOOP_HZ,
        strict: bool = False,
        seed: int | np.random.Generator | None = None,
        render: bool = True,
        renderer_mode: str = "perspective",
    ) -> None:
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt}")
        self.track = track
        self.model = BicycleModel(car_params)
        self.dt = float(dt)
        self.strict = strict
        self.render_enabled = render
        self.renderer = CameraRenderer(track, camera, mode=renderer_mode)
        self._rng = ensure_rng(seed)
        self._blank = np.zeros(
            (self.renderer.params.height, self.renderer.params.width, 3),
            dtype=np.uint8,
        )
        self.reset()

    # ------------------------------------------------------- lifecycle

    def reset(self, s: float = 0.0, lateral_offset: float = 0.0) -> Observation:
        """Place the car at arclength ``s`` and return the first frame."""
        x, y, heading = self.track.pose_at(s, lateral_offset)
        self.state = CarState(x=x, y=y, heading=heading)
        self.time = 0.0
        self.stats = LapStats()
        self._prev_s = s % self.track.length
        self._lap_start_time = 0.0
        self._unwrapped_s = 0.0
        self._respawn_pending = False
        return self._observe()

    # ------------------------------------------------------------ step

    def step(self, steering: float, throttle: float) -> Observation:
        """Apply one control command and advance ``dt`` seconds."""
        if self._respawn_pending:
            # The previous step ended off-track: the student picks the
            # car up and puts it back on the centreline, stopped.
            x, y, heading = self.track.pose_at(self._prev_s)
            self.state = CarState(x=x, y=y, heading=heading)
            self._respawn_pending = False
        prev_state = self.state
        self.state = self.model.step(prev_state, steering, throttle, self.dt)
        self.time += self.dt
        self.stats.steps += 1
        self.stats.speed_sum += self.state.speed
        self.stats.distance += float(
            np.hypot(self.state.x - prev_state.x, self.state.y - prev_state.y)
        )

        obs = self._observe()
        self.stats.abs_cte_sum += abs(obs.cte)

        # Lap detection: progress wrapped past s = 0.
        ds = obs.arclength - self._prev_s
        if ds < -self.track.length / 2.0:  # wrapped forward through start
            self.stats.laps_completed += 1
            self.stats.lap_times.append(self.time - self._lap_start_time)
            self._lap_start_time = self.time
            ds += self.track.length
        elif ds > self.track.length / 2.0:  # wrapped backward (rare)
            ds -= self.track.length
        self._unwrapped_s += ds
        self._prev_s = obs.arclength

        if obs.off_track:
            self.stats.crashes += 1
            if self.strict:
                raise OffTrackError(
                    f"car left the track at s={obs.arclength:.2f} m "
                    f"(cte={obs.cte:+.3f} m) after {self.stats.steps} steps"
                )
            # The crash frame itself is observed (and recorded — it is
            # exactly the bad data tubclean exists to remove); the
            # respawn happens at the start of the next step.
            self._respawn_pending = True
        return obs

    def run(self, pilot, steps: int) -> LapStats:
        """Drive ``steps`` control intervals under ``pilot``.

        ``pilot`` is any callable mapping an :class:`Observation` to a
        ``(steering, throttle)`` pair — a trained model wrapper, a
        scripted driver, or a human-input replay.
        """
        obs = self._observe()
        for _ in range(steps):
            steering, throttle = pilot(obs)
            obs = self.step(steering, throttle)
        return self.stats

    # --------------------------------------------------------- observe

    def _observe(self) -> Observation:
        query = self.track.query(np.array([[self.state.x, self.state.y]]))
        cte = float(query.signed_cte[0])
        arclength = float(query.arclength[0])
        if self.render_enabled:
            image = self.renderer.render(
                self.state.x, self.state.y, self.state.heading, rng=self._rng
            )
        else:
            image = self._blank
        return Observation(
            image=image,
            state=self.state,
            time=self.time,
            cte=cte,
            arclength=arclength,
            lap=self.stats.laps_completed,
            off_track=not bool(query.on_track[0]),
            speed=self.state.speed,
        )

    @property
    def progress(self) -> float:
        """Total unwrapped arclength progressed since reset (m)."""
        return self._unwrapped_s
