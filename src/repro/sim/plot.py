"""SVG rendering of tracks and trajectories (dependency-free).

The module's documentation and the student reports need figures: the
track layout (Fig. 3) and driven trajectories (evaluation laps, crash
sites, twin comparisons).  SVG is plain text, so this works offline
with no imaging stack; files open in any browser.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common.errors import SimulationError
from repro.sim.tracks import Track

__all__ = ["track_svg", "trajectory_svg", "save_svg"]

_SVG_HEADER = (
    '<svg xmlns="http://www.w3.org/2000/svg" viewBox="{vb}" '
    'width="{w}" height="{h}">'
)


def _polyline(points: np.ndarray, color: str, width: float, dash: str = "") -> str:
    coords = " ".join(f"{x:.3f},{y:.3f}" for x, y in points)
    dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
    return (
        f'<polyline points="{coords}" fill="none" stroke="{color}" '
        f'stroke-width="{width:.3f}"{dash_attr}/>'
    )


def _closed(points: np.ndarray) -> np.ndarray:
    return np.vstack([points, points[:1]])


def _viewbox(track: Track, margin: float = 0.5) -> tuple[float, float, float, float]:
    outer = track.outer_line
    x0, y0 = outer.min(axis=0) - margin
    x1, y1 = outer.max(axis=0) + margin
    return float(x0), float(y0), float(x1 - x0), float(y1 - y0)


def track_svg(
    track: Track,
    pixels_per_meter: float = 80.0,
    show_centerline: bool = True,
) -> str:
    """Render the track's boundary lines (and centreline) as SVG."""
    if pixels_per_meter <= 0:
        raise SimulationError("pixels_per_meter must be positive")
    x0, y0, width, height = _viewbox(track)
    tape = {"orange": "#e87722", "white": "#d9d9d9"}.get(
        track.metadata.get("tape_color", "orange"), "#e87722"
    )
    parts = [
        _SVG_HEADER.format(
            vb=f"{x0} {y0} {width} {height}",
            w=int(width * pixels_per_meter),
            h=int(height * pixels_per_meter),
        ),
        # Flip the y axis so +y (left of travel) renders upward.
        f'<g transform="translate(0 {2 * y0 + height}) scale(1 -1)">',
        f'<rect x="{x0}" y="{y0}" width="{width}" height="{height}" '
        'fill="#6f6b66"/>',
        _polyline(_closed(track.inner_line), tape, 0.05),
        _polyline(_closed(track.outer_line), tape, 0.05),
    ]
    if show_centerline:
        parts.append(
            _polyline(_closed(track.centerline), "#ffffff", 0.015, dash="0.1,0.1")
        )
    parts += ["</g>", "</svg>"]
    return "\n".join(parts)


def trajectory_svg(
    track: Track,
    trajectories: dict[str, np.ndarray],
    crash_points: np.ndarray | None = None,
    pixels_per_meter: float = 80.0,
) -> str:
    """Track plus one or more labelled (N, 2) trajectories.

    Crash points (if given) are drawn as red markers — the on-track
    "number of errors" made visible.
    """
    palette = ["#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf"]
    base = track_svg(track, pixels_per_meter)
    body, closing = base.rsplit("</g>", 1)
    parts = [body]
    legend = []
    for i, (label, points) in enumerate(trajectories.items()):
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2 or len(pts) < 2:
            raise SimulationError(
                f"trajectory {label!r} must be (N>=2, 2), got {pts.shape}"
            )
        color = palette[i % len(palette)]
        parts.append(_polyline(pts, color, 0.03))
        legend.append((label, color))
    if crash_points is not None and len(crash_points):
        for x, y in np.asarray(crash_points, dtype=float):
            parts.append(
                f'<circle cx="{x:.3f}" cy="{y:.3f}" r="0.08" fill="#d62728"/>'
            )
    parts.append("</g>")
    # Legend (screen space, after the flipped group).
    x0, y0, _w, _h = _viewbox(track)
    for i, (label, color) in enumerate(legend):
        y = y0 + 0.3 + 0.25 * i
        parts.append(
            f'<text x="{x0 + 0.15}" y="{y}" font-size="0.2" '
            f'fill="{color}" font-family="monospace">{label}</text>'
        )
    parts.append(closing.strip() or "</svg>")
    return "\n".join(parts)


def save_svg(svg: str, path: str | Path) -> Path:
    """Write an SVG document to disk and return the path."""
    path = Path(path)
    if not svg.lstrip().startswith("<svg"):
        raise SimulationError("not an SVG document")
    path.write_text(svg)
    return path
