"""Vectorised 2-D polyline geometry used by the track simulator.

All functions operate on numpy arrays of shape ``(N, 2)`` and avoid
Python-level loops over points (per the HPC guides: broadcastable
segment math, views over copies).  These primitives back
:mod:`repro.sim.tracks` (track construction) and the renderer's
point-classification hot path.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "polyline_lengths",
    "cumulative_arclength",
    "polyline_length",
    "resample_closed",
    "normals_closed",
    "offset_closed",
    "project_points",
    "point_in_closed_polyline",
]


def _as_points(points: np.ndarray) -> np.ndarray:
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected (N, 2) point array, got shape {pts.shape}")
    if pts.shape[0] < 3:
        raise ValueError(f"need at least 3 points for a closed polyline, got {pts.shape[0]}")
    return pts


def polyline_lengths(points: np.ndarray, closed: bool = True) -> np.ndarray:
    """Per-segment lengths; for closed polylines includes the wrap segment."""
    pts = _as_points(points)
    nxt = np.roll(pts, -1, axis=0) if closed else pts[1:]
    base = pts if closed else pts[:-1]
    return np.linalg.norm(nxt - base, axis=1)


def cumulative_arclength(points: np.ndarray, closed: bool = True) -> np.ndarray:
    """Arclength s_i of each vertex from vertex 0 (s_0 = 0)."""
    seg = polyline_lengths(points, closed=closed)
    out = np.zeros(len(seg) + (0 if closed else 1))
    np.cumsum(seg[: len(out) - 1], out=out[1:])
    return out


def polyline_length(points: np.ndarray, closed: bool = True) -> float:
    """Total length of the polyline."""
    return float(polyline_lengths(points, closed=closed).sum())


def resample_closed(points: np.ndarray, n: int) -> np.ndarray:
    """Resample a closed polyline to ``n`` uniformly spaced vertices.

    Uniform in arclength, starting at the original vertex 0.  This keeps
    downstream per-segment math well conditioned (near-equal segment
    lengths) and lets the renderer cull segments by index windows.
    """
    pts = _as_points(points)
    if n < 3:
        raise ValueError(f"n must be >= 3, got {n}")
    seg = polyline_lengths(pts, closed=True)
    total = float(seg.sum())
    if total <= 0:
        raise ValueError("degenerate polyline with zero length")
    # Vertex arclengths, including the closing vertex at s = total.
    s_vertices = np.concatenate([[0.0], np.cumsum(seg)])
    ring = np.vstack([pts, pts[:1]])
    s_targets = np.linspace(0.0, total, n, endpoint=False)
    x = np.interp(s_targets, s_vertices, ring[:, 0])
    y = np.interp(s_targets, s_vertices, ring[:, 1])
    return np.column_stack([x, y])


def normals_closed(points: np.ndarray) -> np.ndarray:
    """Unit normals at each vertex of a closed polyline.

    The normal points to the *left* of the direction of travel, so for a
    counter-clockwise loop the normals point inward toward the centroid
    — callers that want outward offsets negate the distance.
    """
    pts = _as_points(points)
    tangent = np.roll(pts, -1, axis=0) - np.roll(pts, 1, axis=0)
    norm = np.linalg.norm(tangent, axis=1, keepdims=True)
    norm[norm == 0] = 1.0
    tangent /= norm
    # Rotate tangent by +90 degrees: (x, y) -> (-y, x).
    return np.column_stack([-tangent[:, 1], tangent[:, 0]])


def offset_closed(points: np.ndarray, distance: float) -> np.ndarray:
    """Offset a closed polyline along its left normals by ``distance``.

    Positive distances move toward the left of travel (inward for CCW
    loops).  This is the tape-line construction: the track's inner and
    outer lines are offsets of the centreline by ±half-width.
    """
    pts = _as_points(points)
    return pts + distance * normals_closed(pts)


def project_points(
    query: np.ndarray,
    polyline: np.ndarray,
    segment_mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Project query points onto a closed polyline.

    Parameters
    ----------
    query:
        ``(P, 2)`` points to project.
    polyline:
        ``(S, 2)`` closed polyline vertices.
    segment_mask:
        Optional boolean ``(S,)`` mask restricting which segments are
        considered (renderer culling).  At least one segment must be
        enabled.

    Returns
    -------
    distances:
        ``(P,)`` unsigned distance from each query point to the closest
        polyline point.
    arclengths:
        ``(P,)`` arclength coordinate of the closest point (in ``[0,
        L)``).
    signs:
        ``(P,)`` +1 if the point lies to the left of travel at its
        projection, -1 to the right (0 exactly on the line).  Combined
        with the distance this gives a signed cross-track error.
    """
    pts = np.atleast_2d(np.asarray(query, dtype=np.float64))
    poly = _as_points(polyline)
    starts = poly
    ends = np.roll(poly, -1, axis=0)
    if segment_mask is not None:
        mask = np.asarray(segment_mask, dtype=bool)
        if mask.shape != (len(poly),):
            raise ValueError(f"segment_mask shape {mask.shape} != ({len(poly)},)")
        if not mask.any():
            raise ValueError("segment_mask disables every segment")
        idx_map = np.flatnonzero(mask)
        starts = starts[idx_map]
        ends = ends[idx_map]
    else:
        idx_map = np.arange(len(poly))

    seg_vec = ends - starts                                  # (S', 2)
    seg_len2 = np.einsum("ij,ij->i", seg_vec, seg_vec)       # (S',)
    seg_len2[seg_len2 == 0] = 1.0

    # (P, S', 2) displacement from each segment start to each point.
    disp = pts[:, None, :] - starts[None, :, :]
    t = np.einsum("psi,si->ps", disp, seg_vec) / seg_len2    # (P, S')
    np.clip(t, 0.0, 1.0, out=t)
    closest = starts[None, :, :] + t[..., None] * seg_vec[None, :, :]
    delta = pts[:, None, :] - closest
    dist2 = np.einsum("psi,psi->ps", delta, delta)           # (P, S')

    best = np.argmin(dist2, axis=1)                          # (P,)
    rows = np.arange(len(pts))
    distances = np.sqrt(dist2[rows, best])

    s_vertices = cumulative_arclength(poly, closed=True)
    seg_lengths = polyline_lengths(poly, closed=True)
    seg_idx = idx_map[best]
    arclengths = s_vertices[seg_idx] + t[rows, best] * seg_lengths[seg_idx]

    # Cross product of segment direction with point displacement gives
    # the side: positive = left of travel.
    d = delta[rows, best]
    v = seg_vec[best]
    cross = v[:, 0] * d[:, 1] - v[:, 1] * d[:, 0]
    signs = np.sign(cross)
    return distances, arclengths, signs


def point_in_closed_polyline(query: np.ndarray, polyline: np.ndarray) -> np.ndarray:
    """Vectorised even-odd point-in-polygon test.

    Returns a boolean array of shape ``(P,)``.
    """
    pts = np.atleast_2d(np.asarray(query, dtype=np.float64))
    poly = _as_points(polyline)
    x0, y0 = poly[:, 0], poly[:, 1]
    x1, y1 = np.roll(x0, -1), np.roll(y0, -1)

    px = pts[:, 0][:, None]
    py = pts[:, 1][:, None]
    crosses = (y0[None, :] > py) != (y1[None, :] > py)
    denom = y1 - y0
    denom = np.where(denom == 0, 1e-300, denom)
    x_at = x0[None, :] + (py - y0[None, :]) * (x1 - x0)[None, :] / denom[None, :]
    hits = crosses & (px < x_at)
    return (hits.sum(axis=1) % 2).astype(bool)
