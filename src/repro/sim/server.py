"""DonkeyCar-simulator-style server facade.

The real module points students at the Unity ``donkey_gym`` interface:
a named-track simulator with ``reset`` / ``step(action)`` returning
``(observation, reward, done, info)``.  :class:`SimulatorServer`
reproduces that surface on top of :class:`~repro.sim.session.DrivingSession`
so that the vehicle framework, the RL extension, and students' own code
can treat the simulator exactly like the gym environment.

"The simulator includes several different tracks to choose from" —
§3.3; :data:`AVAILABLE_TRACKS` registers them by name.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.common.errors import SimulationError
from repro.sim.session import DrivingSession, Observation
from repro.sim.tracks import Track, default_tape_oval, track_from_waypoints, waveshare_track

__all__ = ["SimulatorServer", "AVAILABLE_TRACKS", "make_track"]


def _figure_eight() -> Track:
    """A larger open-room course (generated, not from the paper)."""
    t = np.linspace(0.0, 2 * np.pi, 48, endpoint=False)
    # A smoothed rounded-square course; wide enough for the PiRacer.
    pts = np.column_stack(
        [3.6 * np.cos(t) + 0.7 * np.cos(2 * t), 2.8 * np.sin(t) - 0.4 * np.sin(2 * t)]
    )
    return track_from_waypoints("generated-road", pts, width=0.8, smoothing=6)


#: Track registry: name -> zero-argument factory.
AVAILABLE_TRACKS: dict[str, Callable[[], Track]] = {
    "default-tape-oval": default_tape_oval,
    "waveshare": waveshare_track,
    "generated-road": _figure_eight,
}


def make_track(name: str) -> Track:
    """Instantiate a registered track by name."""
    try:
        factory = AVAILABLE_TRACKS[name]
    except KeyError:
        raise SimulationError(
            f"unknown track {name!r}; available: {sorted(AVAILABLE_TRACKS)}"
        ) from None
    return factory()


class SimulatorServer:
    """Gym-style episode interface over the driving simulation.

    Reward shaping follows the common donkey_gym convention: forward
    progress along the centreline, penalised by cross-track error, with
    a fixed penalty and episode termination on leaving the track.
    """

    CRASH_PENALTY = -1.0

    def __init__(
        self,
        track_name: str = "default-tape-oval",
        seed: int | np.random.Generator | None = None,
        max_episode_steps: int = 2000,
        render: bool = True,
        cte_weight: float = 0.5,
    ) -> None:
        if max_episode_steps <= 0:
            raise SimulationError("max_episode_steps must be positive")
        self.track = make_track(track_name)
        self.session = DrivingSession(self.track, seed=seed, render=render)
        self.max_episode_steps = max_episode_steps
        self.cte_weight = float(cte_weight)
        self._episode_steps = 0
        self._last_obs: Observation | None = None

    def reset(self, s: float = 0.0, lateral_offset: float = 0.0) -> Observation:
        """Start a new episode; returns the initial observation."""
        self._episode_steps = 0
        self._last_obs = self.session.reset(s=s, lateral_offset=lateral_offset)
        return self._last_obs

    def step(
        self, action: tuple[float, float]
    ) -> tuple[Observation, float, bool, dict[str, Any]]:
        """Apply ``(steering, throttle)``; returns (obs, reward, done, info)."""
        if self._last_obs is None:
            raise SimulationError("call reset() before step()")
        steering, throttle = action
        prev_progress = self.session.progress
        crashes_before = self.session.stats.crashes
        obs = self.session.step(steering, throttle)
        self._episode_steps += 1

        crashed = self.session.stats.crashes > crashes_before
        progress = self.session.progress - prev_progress
        reward = progress - self.cte_weight * abs(obs.cte) * self.session.dt
        if crashed:
            reward += self.CRASH_PENALTY

        done = crashed or self._episode_steps >= self.max_episode_steps
        info = {
            "cte": obs.cte,
            "speed": obs.speed,
            "lap": obs.lap,
            "crashed": crashed,
            "progress": self.session.progress,
            "episode_steps": self._episode_steps,
        }
        self._last_obs = obs
        return obs, float(reward), bool(done), info

    @property
    def observation(self) -> Observation:
        """Most recent observation (after reset/step)."""
        if self._last_obs is None:
            raise SimulationError("no observation yet; call reset()")
        return self._last_obs
