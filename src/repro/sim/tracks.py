"""Track models, including the paper's two evaluation tracks.

§3.3 of the paper describes the sample-dataset tracks:

* a **default tape oval** "made with an orange tape oval shape with the
  following dimensions; inner line length: 330 in, outer line length:
  509 in and average width: 27.59 in" (Fig. 3a), and
* the **Waveshare track**, a commercial printed mat (Fig. 3b).

:func:`default_tape_oval` reconstructs the oval from those published
measurements.  The three numbers are mutually inconsistent for an exact
constant-width stadium (509 - 330 = 179 in of perimeter difference
implies a width of 179 / 2pi = 28.49 in, not 27.59 in), which is
expected for a hand-laid tape track.  We therefore expose both
readings: the default takes the two direct measurements (inner length
and average width) as ground truth; ``calibrated=True`` instead derives
the width from the two perimeters so that both line lengths match the
paper exactly.  The F3 benchmark reports both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any

import numpy as np

from repro.common.errors import TrackError
from repro.common.units import inches_to_m, m_to_inches
from repro.sim.geometry import (
    cumulative_arclength,
    offset_closed,
    point_in_closed_polyline,
    polyline_length,
    polyline_lengths,
    project_points,
    resample_closed,
)

__all__ = [
    "Track",
    "TrackQuery",
    "default_tape_oval",
    "waveshare_track",
    "track_from_waypoints",
    "PAPER_OVAL_INNER_IN",
    "PAPER_OVAL_OUTER_IN",
    "PAPER_OVAL_WIDTH_IN",
]

#: Published dimensions of the default tape oval (inches), paper §3.3.
PAPER_OVAL_INNER_IN = 330.0
PAPER_OVAL_OUTER_IN = 509.0
PAPER_OVAL_WIDTH_IN = 27.59


@dataclass(frozen=True)
class TrackQuery:
    """Result of projecting world points onto a track centreline.

    Attributes
    ----------
    distance:
        Unsigned distance to the centreline (m).
    arclength:
        Arclength coordinate of the projection in ``[0, track.length)``.
    side:
        +1 left of travel, -1 right of travel.
    on_track:
        Whether the point lies on the drivable surface.
    """

    distance: np.ndarray
    arclength: np.ndarray
    side: np.ndarray
    on_track: np.ndarray

    @property
    def signed_cte(self) -> np.ndarray:
        """Signed cross-track error (positive = left of centreline)."""
        return self.distance * self.side


class Track:
    """A closed track: centreline polyline plus a constant lane width.

    The centreline must be counter-clockwise (enforced via the shoelace
    area); travel direction is along increasing vertex index.  All
    coordinates are metres.
    """

    def __init__(
        self,
        name: str,
        centerline: np.ndarray,
        width: float,
        resolution: int = 400,
        metadata: dict[str, Any] | None = None,
    ) -> None:
        pts = np.asarray(centerline, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2 or len(pts) < 3:
            raise TrackError(f"centerline must be (N>=3, 2), got {pts.shape}")
        if width <= 0:
            raise TrackError(f"track width must be positive, got {width}")
        area = _shoelace_area(pts)
        if area == 0:
            raise TrackError("degenerate centerline (zero enclosed area)")
        if area < 0:  # clockwise: flip to CCW so left normals point inward
            pts = pts[::-1].copy()
        self.name = name
        self.width = float(width)
        self.centerline = resample_closed(pts, resolution)
        self.metadata = dict(metadata or {})
        self._s_vertices = cumulative_arclength(self.centerline, closed=True)
        self._seg_lengths = polyline_lengths(self.centerline, closed=True)
        min_radius = self.minimum_radius()
        if min_radius <= self.half_width:
            raise TrackError(
                f"track {name!r} self-intersects: min centreline radius "
                f"{min_radius:.3f} m <= half width {self.half_width:.3f} m"
            )

    # ------------------------------------------------------- properties

    @property
    def half_width(self) -> float:
        """Half the lane width (m)."""
        return self.width / 2.0

    @cached_property
    def length(self) -> float:
        """Centreline length (m)."""
        return float(self._seg_lengths.sum())

    @cached_property
    def inner_line(self) -> np.ndarray:
        """Inner boundary polyline (left of CCW travel = inward)."""
        return offset_closed(self.centerline, self.half_width)

    @cached_property
    def outer_line(self) -> np.ndarray:
        """Outer boundary polyline."""
        return offset_closed(self.centerline, -self.half_width)

    @cached_property
    def inner_length(self) -> float:
        """Length of the inner boundary (m)."""
        return polyline_length(self.inner_line, closed=True)

    @cached_property
    def outer_length(self) -> float:
        """Length of the outer boundary (m)."""
        return polyline_length(self.outer_line, closed=True)

    def dimensions_inches(self) -> dict[str, float]:
        """Inner/outer line lengths and width in inches (paper units)."""
        return {
            "inner_line_in": m_to_inches(self.inner_length),
            "outer_line_in": m_to_inches(self.outer_length),
            "width_in": m_to_inches(self.width),
        }

    # ----------------------------------------------------- frame lookup

    def point_at(self, s: float | np.ndarray) -> np.ndarray:
        """Centreline point(s) at arclength ``s`` (wraps modulo length)."""
        s = np.asarray(s, dtype=np.float64) % self.length
        ring = np.vstack([self.centerline, self.centerline[:1]])
        s_ring = np.concatenate([self._s_vertices, [self.length]])
        x = np.interp(s, s_ring, ring[:, 0])
        y = np.interp(s, s_ring, ring[:, 1])
        return np.stack([x, y], axis=-1)

    def heading_at(self, s: float) -> float:
        """Travel heading (radians) at arclength ``s``."""
        eps = self.length / (4 * len(self.centerline))
        ahead = self.point_at(s + eps)
        behind = self.point_at(s - eps)
        diff = ahead - behind
        return float(np.arctan2(diff[1], diff[0]))

    def curvature_at(self, s: float) -> float:
        """Signed curvature (1/m) at arclength ``s`` (positive = left turn)."""
        eps = max(self.length / len(self.centerline), 1e-3)
        h0 = self.heading_at(s - eps)
        h1 = self.heading_at(s + eps)
        dh = np.arctan2(np.sin(h1 - h0), np.cos(h1 - h0))
        return float(dh / (2 * eps))

    def minimum_radius(self) -> float:
        """Smallest centreline turn radius (m)."""
        samples = np.linspace(0, self.length, len(self.centerline), endpoint=False)
        curvatures = np.abs([self.curvature_at(float(s)) for s in samples])
        max_curvature = float(curvatures.max())
        return np.inf if max_curvature == 0 else 1.0 / max_curvature

    def start_pose(self, lateral_offset: float = 0.0) -> tuple[float, float, float]:
        """(x, y, heading) at the start line (s = 0)."""
        return self.pose_at(0.0, lateral_offset)

    def pose_at(self, s: float, lateral_offset: float = 0.0) -> tuple[float, float, float]:
        """(x, y, heading) at arclength ``s``, offset left by ``lateral_offset``."""
        if abs(lateral_offset) > self.half_width:
            raise TrackError(
                f"lateral offset {lateral_offset:.3f} exceeds half width "
                f"{self.half_width:.3f}"
            )
        point = self.point_at(s)
        heading = self.heading_at(s)
        normal = np.array([-np.sin(heading), np.cos(heading)])
        xy = point + lateral_offset * normal
        return float(xy[0]), float(xy[1]), heading

    # ----------------------------------------------------------- query

    def query(
        self, points: np.ndarray, segment_mask: np.ndarray | None = None
    ) -> TrackQuery:
        """Project world points onto the centreline (vectorised)."""
        distance, arclength, side = project_points(
            points, self.centerline, segment_mask=segment_mask
        )
        return TrackQuery(
            distance=distance,
            arclength=arclength,
            side=side,
            on_track=distance <= self.half_width,
        )

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask: which points lie on the drivable surface."""
        return self.query(points).on_track

    def segments_near(self, xy: np.ndarray, radius: float) -> np.ndarray:
        """Boolean mask of centreline segments within ``radius`` of ``xy``.

        Used by the renderer to cull the projection hot path: the camera
        only ever sees a few metres of track, so most segments can be
        skipped.  Falls back to all segments if nothing is near.
        """
        xy = np.asarray(xy, dtype=np.float64)
        mids = 0.5 * (self.centerline + np.roll(self.centerline, -1, axis=0))
        near = np.linalg.norm(mids - xy, axis=1) <= radius
        if not near.any():
            return np.ones(len(self.centerline), dtype=bool)
        return near

    def enclosed_by_outer(self, points: np.ndarray) -> np.ndarray:
        """Whether points fall inside the outer boundary (infield or lane)."""
        return point_in_closed_polyline(points, self.outer_line)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Track({self.name!r}, length={self.length:.2f} m, "
            f"width={self.width:.3f} m)"
        )


def _shoelace_area(points: np.ndarray) -> float:
    x, y = points[:, 0], points[:, 1]
    return 0.5 * float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))


def _stadium_centerline(
    straight: float, radius: float, resolution: int = 720
) -> np.ndarray:
    """A stadium (two straights joined by two semicircles), CCW.

    Centred on the origin, straights parallel to the x-axis, given the
    straight length and corner radius of the *centreline*.
    """
    if straight < 0 or radius <= 0:
        raise TrackError(f"invalid stadium: straight={straight}, radius={radius}")
    n_arc = resolution // 3
    n_straight = max(resolution // 6, 2)
    half = straight / 2.0

    bottom = np.column_stack(
        [np.linspace(-half, half, n_straight, endpoint=False), np.full(n_straight, -radius)]
    )
    theta_right = np.linspace(-np.pi / 2, np.pi / 2, n_arc, endpoint=False)
    right = np.column_stack(
        [half + radius * np.cos(theta_right), radius * np.sin(theta_right)]
    )
    top = np.column_stack(
        [np.linspace(half, -half, n_straight, endpoint=False), np.full(n_straight, radius)]
    )
    theta_left = np.linspace(np.pi / 2, 3 * np.pi / 2, n_arc, endpoint=False)
    left = np.column_stack(
        [-half + radius * np.cos(theta_left), radius * np.sin(theta_left)]
    )
    return np.vstack([bottom, right, top, left])


def default_tape_oval(calibrated: bool = False, resolution: int = 400) -> Track:
    """The paper's orange-tape oval (Fig. 3a).

    Parameters
    ----------
    calibrated:
        ``False`` (default): honour the two direct measurements — inner
        line 330 in and average width 27.59 in — and accept that the
        derived outer line (~503 in) misses the published 509 in by
        ~1.1% (hand-laid tape).  ``True``: derive the width from the two
        line lengths (28.49 in) so both perimeters match exactly.
    """
    inner_len = inches_to_m(PAPER_OVAL_INNER_IN)
    if calibrated:
        width = (inches_to_m(PAPER_OVAL_OUTER_IN) - inner_len) / (2 * np.pi)
    else:
        width = inches_to_m(PAPER_OVAL_WIDTH_IN)

    # Choose the inner corner radius for a visually ~2:1 oval, then set
    # straights to hit the inner perimeter exactly:
    #   inner = 2 * straight + 2 * pi * r_inner
    r_inner = inches_to_m(35.0)
    straight = (inner_len - 2 * np.pi * r_inner) / 2.0
    if straight <= 0:
        raise TrackError("inner corner radius too large for the published perimeter")
    r_center = r_inner + width / 2.0
    centerline = _stadium_centerline(straight, r_center, resolution=3 * resolution)
    return Track(
        name="default-tape-oval" + ("-calibrated" if calibrated else ""),
        centerline=centerline,
        width=width,
        resolution=resolution,
        metadata={
            "figure": "3a",
            "surface": "concrete",
            "tape_color": "orange",
            "calibrated": calibrated,
            "paper_inner_in": PAPER_OVAL_INNER_IN,
            "paper_outer_in": PAPER_OVAL_OUTER_IN,
            "paper_width_in": PAPER_OVAL_WIDTH_IN,
        },
    )


def waveshare_track(resolution: int = 400) -> Track:
    """The commercial Waveshare mat (Fig. 3b).

    Waveshare does not publish exact geometry; we reconstruct a closed
    circuit of comparable scale to the photographed mat: a rounded
    rectangle with a chicane, lane width ~40 cm, total centreline length
    ~14 m.
    """
    waypoints = 1.45 * np.array(
        [
            [0.0, 0.0], [1.2, -0.1], [2.4, 0.0], [3.2, 0.5],
            [3.6, 1.4], [3.4, 2.3], [2.7, 2.8], [1.9, 2.6],
            [1.4, 2.0], [0.8, 1.7], [0.1, 2.0], [-0.5, 2.6],
            [-1.3, 2.8], [-2.0, 2.3], [-2.2, 1.4], [-1.8, 0.5],
            [-1.0, 0.1],
        ]
    )
    return track_from_waypoints(
        "waveshare",
        waypoints,
        width=0.40,
        smoothing=4,
        resolution=resolution,
        metadata={"figure": "3b", "surface": "printed-mat", "tape_color": "white"},
    )


def track_from_waypoints(
    name: str,
    waypoints: np.ndarray,
    width: float,
    smoothing: int = 0,
    resolution: int = 400,
    metadata: dict[str, Any] | None = None,
) -> Track:
    """Build a custom track from rough waypoints.

    ``smoothing`` applies that many passes of closed-loop moving-average
    smoothing (window 3) after an initial dense resample, which rounds
    corners enough to keep the bicycle model drivable.  Supports the
    paper's "modify the shape of the track" beginner assignment.
    """
    pts = np.asarray(waypoints, dtype=np.float64)
    n_dense = max(resolution, 4 * len(pts))
    dense = resample_closed(pts, n_dense)
    # Circular moving average; the window grows with the smoothing level
    # so corners round to a radius proportional to the track size.
    window = max(3, (n_dense // 60) | 1)
    kernel = np.ones(window) / window
    for _ in range(max(0, smoothing)):
        padded = np.vstack([dense[-window:], dense, dense[:window]])
        for axis in range(2):
            dense[:, axis] = np.convolve(padded[:, axis], kernel, mode="same")[
                window : window + n_dense
            ]
    return Track(name, dense, width, resolution=resolution, metadata=metadata)
