"""Trace exports: Chrome ``trace_event`` JSON, text trees, golden form.

Three renderings of one :class:`~repro.obs.tracer.Tracer`:

* :func:`chrome_trace` — the ``chrome://tracing`` / Perfetto JSON
  array format ("X" complete events for spans, "i" instants for
  events), timestamps in microseconds of simulated time.
* :func:`text_tree` — a fixed-format indented tree for humans and
  byte-stable diffs.
* :func:`normalized_trace` — the nested plain-data form the
  golden-trace regression suite stores and compares.

All three sort identically — spans by (start, span id), children under
their parent — so same-seed runs render byte-identically.
"""

from __future__ import annotations

import json
from typing import Any

from repro.common.errors import ConfigurationError
from repro.obs.span import Span, TraceEvent
from repro.obs.tracer import NullTracer, Tracer

__all__ = ["chrome_trace", "normalized_trace", "span_children", "text_tree"]


def _fmt_attr(value: Any) -> str:
    """Fixed-format attr rendering (floats via %.6g for stability)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _sorted_spans(tracer: Tracer | NullTracer) -> list[Span]:
    return sorted(tracer.spans, key=lambda s: (s.start_s, s.span_id))


def span_children(
    tracer: Tracer | NullTracer,
) -> tuple[list[Span], dict[str, list[Span]]]:
    """(roots, parent id -> children) with deterministic ordering.

    A span whose parent id does not resolve is a structural bug — the
    tracer only hands out parents it recorded — so it raises rather
    than silently re-rooting.
    """
    known = {span.span_id for span in tracer.spans}
    roots: list[Span] = []
    children: dict[str, list[Span]] = {}
    for span in _sorted_spans(tracer):
        if not span.parent_id:
            roots.append(span)
        elif span.parent_id in known:
            children.setdefault(span.parent_id, []).append(span)
        else:
            raise ConfigurationError(
                f"span {span.span_id} has unknown parent {span.parent_id!r}"
            )
    return roots, children


def chrome_trace(tracer: Tracer | NullTracer, pid: int = 1) -> str:
    """Render the trace as Chrome ``trace_event`` JSON (array format).

    Open spans are rendered with zero duration at their start time —
    callers that want closed trees call ``tracer.close_all()`` first.
    """
    records: list[dict[str, Any]] = []
    for span in _sorted_spans(tracer):
        args = {key: span.attrs[key] for key in sorted(span.attrs)}
        args["status"] = span.status
        if span.error:
            args["error"] = span.error
        records.append(
            {
                "name": span.name,
                "cat": span.name.split(".")[0],
                "ph": "X",
                "ts": round(span.start_s * 1e6, 3),
                "dur": round(max(span.duration_s, 0.0) * 1e6, 3),
                "pid": pid,
                "tid": 1,
                "id": span.span_id,
                "args": args,
            }
        )
    for index, event in enumerate(tracer.events):
        records.append(
            {
                "name": event.name,
                "cat": event.name.split(".")[0],
                "ph": "i",
                "s": "g",
                "ts": round(event.time_s * 1e6, 3),
                "pid": pid,
                "tid": 1,
                "id": f"event-{index:06d}",
                "args": {key: event.attrs[key] for key in sorted(event.attrs)},
            }
        )
    records.sort(key=lambda r: (r["ts"], r["id"]))
    return json.dumps(records, indent=1, sort_keys=True) + "\n"


def text_tree(tracer: Tracer | NullTracer) -> str:
    """Fixed-format indented span tree plus a trailing event list."""
    roots, children = span_children(tracer)
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        attrs = " ".join(
            f"{key}={_fmt_attr(span.attrs[key])}" for key in sorted(span.attrs)
        )
        end = "open" if span.open else f"{span.end_s:.6f}"
        line = (
            f"{'  ' * depth}{span.name} [{span.start_s:.6f} -> {end}] "
            f"{span.status}"
        )
        if span.error:
            line += f"({span.error})"
        if attrs:
            line += " " + attrs
        lines.append(line)
        for child in children.get(span.span_id, []):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    for event in tracer.events:
        attrs = " ".join(
            f"{key}={_fmt_attr(event.attrs[key])}" for key in sorted(event.attrs)
        )
        line = f"@ {event.name} [{event.time_s:.6f}]"
        if attrs:
            line += " " + attrs
        lines.append(line)
    return "\n".join(lines) + ("\n" if lines else "")


def normalized_trace(tracer: Tracer | NullTracer) -> dict[str, Any]:
    """Nested plain-data trace for golden comparison.

    Times are formatted (not raw floats) so the stored goldens diff
    cleanly and tiny representation changes cannot slip through JSON
    round-trips unnoticed.
    """
    roots, children = span_children(tracer)

    def norm(span: Span) -> dict[str, Any]:
        return {
            "name": span.name,
            "start": f"{span.start_s:.6f}",
            "end": "open" if span.open else f"{span.end_s:.6f}",
            "status": span.status,
            "error": span.error,
            "attrs": {
                key: _fmt_attr(span.attrs[key]) for key in sorted(span.attrs)
            },
            "children": [norm(child) for child in children.get(span.span_id, [])],
        }

    return {
        "spans": [norm(root) for root in roots],
        "events": [
            {
                "name": event.name,
                "time": f"{event.time_s:.6f}",
                "attrs": {
                    key: _fmt_attr(event.attrs[key])
                    for key in sorted(event.attrs)
                },
            }
            for event in tracer.events
        ],
    }
