"""Spans and instants: the records a :class:`~repro.obs.tracer.Tracer` emits.

A :class:`Span` is a named interval of *simulated* time with arbitrary
attributes, a parent link (nesting), and an ok/error status; a
:class:`TraceEvent` is a zero-duration instant (fault start/clear,
retry attempts).  Both are plain data — all policy (id allocation,
nesting, clock reads) lives in the tracer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ConfigurationError

__all__ = ["STATUS_ERROR", "STATUS_OK", "Span", "TraceEvent"]

#: A span that finished normally.
STATUS_OK = "ok"
#: A span that finished by raising, being cancelled, or timing out.
STATUS_ERROR = "error"

#: Sentinel end time of a span that has not finished yet.
_OPEN = -1.0


@dataclass
class Span:
    """One named interval of simulated time.

    ``end_s < 0`` marks a span that is still open; ``parent_id == ""``
    marks a root span.  ``attrs`` values should be JSON-representable
    scalars so exports stay stable.
    """

    span_id: str
    name: str
    start_s: float
    parent_id: str = ""
    end_s: float = _OPEN
    status: str = STATUS_OK
    error: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        """Whether the span has not been ended yet."""
        return self.end_s < 0

    @property
    def duration_s(self) -> float:
        """Span duration (0.0 while still open)."""
        return 0.0 if self.open else self.end_s - self.start_s

    def close(self, end_s: float, status: str = STATUS_OK, error: str = "") -> None:
        """Finish the span at ``end_s`` (monotone, once)."""
        if not self.open:
            raise ConfigurationError(f"span {self.span_id} already ended")
        if status not in (STATUS_OK, STATUS_ERROR):
            raise ConfigurationError(f"unknown span status {status!r}")
        if end_s < self.start_s:
            raise ConfigurationError(
                f"span {self.span_id} cannot end before it started: "
                f"start={self.start_s}, end={end_s}"
            )
        self.end_s = float(end_s)
        self.status = status
        self.error = error

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view with stable key order."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "status": self.status,
            "error": self.error,
            "attrs": dict(sorted(self.attrs.items())),
        }


@dataclass(frozen=True)
class TraceEvent:
    """A zero-duration instant on the trace timeline."""

    time_s: float
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view with stable key order."""
        return {
            "time_s": self.time_s,
            "name": self.name,
            "attrs": dict(sorted(self.attrs.items())),
        }
