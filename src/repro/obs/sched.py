"""Opt-in event-scheduler instrumentation.

The :class:`~repro.common.clock.EventScheduler` dispatch loop stays
hook-free (and therefore free) by default; this module attaches the
observability stack to it when a run *wants* event-level visibility —
profiling which labels dominate a scenario, or watching queue depth
while tuning fleet size (ROADMAP item 3's "profile with obs" step).

``instrument_scheduler`` installs a fire hook that counts deliveries
per event label into a :class:`~repro.obs.metrics.MetricsRegistry`
(``sched.fired{label=...}``) and tracks the live-event high-water mark
(``sched.pending.max`` gauge, O(1) via the scheduler's counter).  It
returns an uninstall callable; nothing is recorded after uninstall, and
schedulers without instrumentation keep their no-hook fast path.
"""

from __future__ import annotations

from typing import Callable

from repro.common.clock import EventScheduler, ScheduledEvent
from repro.obs.metrics import MetricsRegistry

__all__ = ["instrument_scheduler"]


def instrument_scheduler(
    scheduler: EventScheduler, metrics: MetricsRegistry
) -> Callable[[], None]:
    """Count event deliveries into ``metrics`` until uninstalled."""
    fired = metrics.counter  # bound once; the hook runs per event
    pending_max = metrics.gauge("sched.pending.max")

    def hook(event: ScheduledEvent) -> None:
        fired("sched.fired", label=event.label or "unlabelled").inc()
        depth = scheduler.pending
        if depth > pending_max.value:
            pending_max.set(depth)

    scheduler.set_fire_hook(hook)

    def uninstall() -> None:
        scheduler.set_fire_hook(None)

    return uninstall
