"""Deterministic tracers on the simulated clock.

:class:`Tracer` allocates span ids from a
:class:`~repro.common.ids.IdFactory` (so ids are stable per run, never
UUIDs), reads timestamps from a :class:`~repro.common.clock.Clock`, and
tracks nesting with an explicit stack — the emulation is
single-threaded over simulated time, so "the current span" is
well-defined without any context-var machinery.

Two usage styles compose:

* ``with tracer.span("pipeline.train", model="linear"):`` — nested
  spans; the child's parent is whatever span is currently open, and an
  escaping exception marks the span ``error`` (and re-raises).
* ``span = tracer.start("serve.batch", ...); ...; tracer.end(span)`` —
  manual spans for intervals that outlive the call stack (a dispatched
  batch completing on a later scheduler event).  Manual spans are
  **roots** by default: their interval is not contained in whatever
  happened to be open when they started.

:class:`NullTracer` is the no-op default: every instrumented component
accepts ``tracer=None`` and falls back to it, so untraced hot paths pay
one attribute check and nothing else.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.common.clock import Clock
from repro.common.errors import ConfigurationError
from repro.common.ids import IdFactory
from repro.obs.span import STATUS_ERROR, STATUS_OK, Span, TraceEvent

__all__ = ["NullTracer", "Tracer"]


class Tracer:
    """Collects :class:`Span` and :class:`TraceEvent` records."""

    #: Real tracers record; the null tracer overrides this to False so
    #: callers can skip building attr dicts on untraced hot paths.
    enabled = True

    def __init__(self, clock: Clock, ids: IdFactory | None = None) -> None:
        self.clock = clock
        self._ids = ids if ids is not None else IdFactory(width=6)
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self._stack: list[Span] = []
        self._open: dict[str, Span] = {}

    # ---------------------------------------------------------- recording

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    def current(self) -> Span | None:
        """The innermost open context-manager span, if any."""
        return self._stack[-1] if self._stack else None

    def start(
        self, name: str, parent: Span | None = None, **attrs: Any
    ) -> Span:
        """Open a manual span (root unless ``parent`` is given)."""
        if not name:
            raise ConfigurationError("span name must be non-empty")
        span = Span(
            span_id=self._ids.next("span"),
            name=name,
            start_s=self.clock.now,
            parent_id=parent.span_id if parent is not None else "",
            attrs=dict(attrs),
        )
        self.spans.append(span)
        self._open[span.span_id] = span
        return span

    def end(
        self, span: Span, status: str = STATUS_OK, error: str = ""
    ) -> Span:
        """Close a span at the current simulated time."""
        if span.span_id not in self._open:
            raise ConfigurationError(
                f"span {span.span_id} is not open on this tracer"
            )
        span.close(self.clock.now, status=status, error=error)
        del self._open[span.span_id]
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span for the duration of the ``with`` block.

        The span's parent is the innermost span already on the stack;
        an exception escaping the block marks the span ``error`` with
        the exception type name and propagates.
        """
        span = self.start(name, parent=self.current(), **attrs)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            self.end(span, status=STATUS_ERROR, error=type(exc).__name__)
            raise
        else:
            self.end(span)
        finally:
            self._stack.pop()

    def event(self, name: str, **attrs: Any) -> TraceEvent:
        """Record a zero-duration instant at the current time."""
        if not name:
            raise ConfigurationError("event name must be non-empty")
        event = TraceEvent(self.clock.now, name, dict(attrs))
        self.events.append(event)
        return event

    # ----------------------------------------------------------- queries

    @property
    def open_spans(self) -> list[Span]:
        """Spans started but not yet ended, in start order."""
        return [span for span in self.spans if span.open]

    def close_all(self, status: str = STATUS_OK, error: str = "") -> int:
        """End every open span at the current time (newest first).

        Long-lived spans (replica lifecycles, hang windows) stay open
        until whoever owns the run decides it is over; this is that
        decision.  Returns the number of spans closed.
        """
        dangling = self.open_spans
        for span in reversed(dangling):
            self.end(span, status=status, error=error)
        self._stack.clear()
        return len(dangling)

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in start order."""
        return [span for span in self.spans if span.name == name]

    def find_events(self, name: str) -> list[TraceEvent]:
        """All events with the given name, in record order."""
        return [event for event in self.events if event.name == name]


class _NullSpanContext:
    """Context manager yielding the shared dummy span."""

    __slots__ = ("_span",)

    def __init__(self, span: Span) -> None:
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: Any) -> bool:
        return False


class NullTracer:
    """A tracer that records nothing (the default everywhere).

    Matches the :class:`Tracer` surface so instrumented code never
    branches on tracer type; ``enabled`` is False so callers *may*
    skip expensive attr construction, but calling straight through is
    always safe.
    """

    enabled = False

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self._dummy = Span(span_id="", name="", start_s=0.0)
        self._context = _NullSpanContext(self._dummy)

    @property
    def now(self) -> float:
        """Always the epoch — the null tracer has no clock."""
        return 0.0

    def current(self) -> Span | None:
        """No span is ever open."""
        return None

    def start(self, name: str, parent: Span | None = None, **attrs: Any) -> Span:
        """Return the shared dummy span; records nothing."""
        return self._dummy

    def end(self, span: Span, status: str = STATUS_OK, error: str = "") -> Span:
        """No-op."""
        return span

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        """A context manager yielding the shared dummy span."""
        return self._context

    def event(self, name: str, **attrs: Any) -> TraceEvent:
        """Return a throwaway instant; records nothing."""
        return TraceEvent(0.0, name)

    @property
    def open_spans(self) -> list[Span]:
        """Always empty."""
        return []

    def close_all(self, status: str = STATUS_OK, error: str = "") -> int:
        """No-op."""
        return 0

    def find(self, name: str) -> list[Span]:
        """Always empty."""
        return []

    def find_events(self, name: str) -> list[TraceEvent]:
        """Always empty."""
        return []
