"""``repro.obs`` — deterministic tracing and metrics on simulated time.

The paper's evaluation hinges on cross-layer measurements (training
time per model, inference latency edge-vs-cloud, laps/errors); the
reproduction likewise needs one place where a whole run's behaviour is
*visible*.  This package provides it without breaking determinism:

* :class:`Tracer` produces nested :class:`Span` records (name, attrs,
  start/end in **simulated** seconds, parent links, ok/error status)
  with a context-manager API, plus zero-duration :class:`TraceEvent`
  instants; :class:`NullTracer` is the free no-op default every
  instrumented component falls back to.
* :class:`MetricsRegistry` holds labelled :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` series (the histogram reuses
  :class:`StreamingHistogram`, lifted here from ``serve/slo.py``) and
  snapshots deterministically.
* :mod:`repro.obs.export` renders traces to Chrome ``trace_event``
  JSON, a stable text tree, and the normalised form the golden-trace
  regression suite pins.

Everything is keyed off a :class:`~repro.common.clock.Clock` and the
deterministic :class:`~repro.common.ids.IdFactory`, so the same seed
yields byte-identical trace and metrics artifacts.
"""

from repro.obs.export import chrome_trace, normalized_trace, text_tree
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StreamingHistogram,
)
from repro.obs.sched import instrument_scheduler
from repro.obs.span import STATUS_ERROR, STATUS_OK, Span, TraceEvent
from repro.obs.tracer import NullTracer, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "STATUS_ERROR",
    "STATUS_OK",
    "Span",
    "StreamingHistogram",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "instrument_scheduler",
    "normalized_trace",
    "text_tree",
]
