"""Labelled metrics with deterministic snapshots.

A :class:`MetricsRegistry` holds named series — :class:`Counter`
(monotone), :class:`Gauge` (set/inc/dec), :class:`Histogram` (log-spaced
:class:`StreamingHistogram` buckets) — keyed by name plus sorted labels,
Prometheus-style: ``serve.requests{outcome=completed}``.  Snapshots and
exports sort every key, so the same run produces byte-identical output.

:class:`StreamingHistogram` lives here now; it started life in
``serve/slo.py`` (which keeps a deprecated re-export) but is a generic
streaming-percentile structure, not a serving detail: log-spaced buckets
with constant relative error ~6%, O(1) record, O(buckets) percentile.
"""

from __future__ import annotations

import json
from typing import Any, Callable, TypeVar

import numpy as np

from repro.common.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StreamingHistogram",
    "series_key",
]


class StreamingHistogram:
    """Log-spaced latency histogram with O(1) record, O(B) percentiles."""

    def __init__(
        self,
        low_s: float = 1e-4,
        high_s: float = 60.0,
        buckets_per_decade: int = 40,
    ) -> None:
        if low_s <= 0 or high_s <= low_s or buckets_per_decade < 1:
            raise ConfigurationError(
                f"invalid histogram range [{low_s}, {high_s}] "
                f"x{buckets_per_decade}/decade"
            )
        self.low_s = float(low_s)
        self.high_s = float(high_s)
        decades = np.log10(high_s / low_s)
        n_buckets = int(np.ceil(decades * buckets_per_decade)) + 1
        # Upper edge of bucket i: low * 10**(i / buckets_per_decade).
        self._edges = self.low_s * np.power(
            10.0, np.arange(1, n_buckets + 1) / buckets_per_decade
        )
        self._counts = np.zeros(n_buckets + 2, dtype=np.int64)  # +under/over
        self.count = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def record(self, value_s: float) -> None:
        """Fold one latency sample into the histogram."""
        if value_s < 0:
            raise ConfigurationError(f"latency cannot be negative: {value_s}")
        self.count += 1
        self.sum_s += value_s
        self.max_s = max(self.max_s, value_s)
        if value_s < self.low_s:
            self._counts[0] += 1
        else:
            idx = int(np.searchsorted(self._edges, value_s, side="left"))
            self._counts[min(idx + 1, len(self._counts) - 1)] += 1

    def percentile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (bucket upper edge)."""
        if not 0 <= q <= 1:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for idx, bucket_count in enumerate(self._counts):
            cumulative += int(bucket_count)
            if cumulative >= target and bucket_count:
                if idx == 0:
                    return self.low_s
                if idx >= len(self._edges):
                    return self.max_s
                return float(min(self._edges[idx - 1], self.max_s))
        return self.max_s

    @property
    def mean_s(self) -> float:
        """Mean recorded latency."""
        return self.sum_s / self.count if self.count else 0.0


def series_key(name: str, labels: dict[str, str]) -> str:
    """Canonical series key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotone non-decreasing count."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative — counters never go down)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.key} cannot decrease (inc by {amount})"
            )
        self.value += float(amount)


class Gauge:
    """A value that can move both ways (fleet size, queue depth)."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount``."""
        self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        self.value -= float(amount)


class Histogram:
    """A labelled series over a :class:`StreamingHistogram`."""

    __slots__ = ("key", "hist")

    def __init__(
        self,
        key: str,
        low_s: float = 1e-4,
        high_s: float = 60.0,
        buckets_per_decade: int = 40,
    ) -> None:
        self.key = key
        self.hist = StreamingHistogram(low_s, high_s, buckets_per_decade)

    def observe(self, value: float) -> None:
        """Fold one sample into the histogram."""
        self.hist.record(value)

    def summary(self) -> dict[str, float]:
        """Deterministic digest: count, sum, mean, max, p50/p95/p99."""
        hist = self.hist
        return {
            "count": float(hist.count),
            "sum": hist.sum_s,
            "mean": hist.mean_s,
            "max": hist.max_s,
            "p50": hist.percentile(0.50),
            "p95": hist.percentile(0.95),
            "p99": hist.percentile(0.99),
        }


_SeriesT = TypeVar("_SeriesT", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Get-or-create home for every metric series in a run."""

    def __init__(self) -> None:
        self._series: dict[str, Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, type] = {}

    def _get(
        self,
        name: str,
        labels: dict[str, str],
        kind: type[_SeriesT],
        factory: Callable[[str], _SeriesT],
    ) -> _SeriesT:
        if not name:
            raise ConfigurationError("metric name must be non-empty")
        registered = self._kinds.setdefault(name, kind)
        if registered is not kind:
            raise ConfigurationError(
                f"metric {name!r} is already a {registered.__name__}, "
                f"not a {kind.__name__}"
            )
        key = series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            series = factory(key)
            self._series[key] = series
        return series

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter series ``name`` + ``labels``."""
        return self._get(name, labels, Counter, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge series ``name`` + ``labels``."""
        return self._get(name, labels, Gauge, Gauge)

    def histogram(
        self,
        name: str,
        low_s: float = 1e-4,
        high_s: float = 60.0,
        buckets_per_decade: int = 40,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram series ``name`` + ``labels``."""
        return self._get(
            name,
            labels,
            Histogram,
            lambda key: Histogram(key, low_s, high_s, buckets_per_decade),
        )

    def __len__(self) -> int:
        return len(self._series)

    # ----------------------------------------------------------- export

    def snapshot(self) -> dict[str, Any]:
        """Deterministic point-in-time view of every series."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for key in sorted(self._series):
            series = self._series[key]
            if isinstance(series, Counter):
                counters[key] = series.value
            elif isinstance(series, Gauge):
                gauges[key] = series.value
            else:
                histograms[key] = series.summary()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self) -> str:
        """Stable JSON rendering of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def to_text(self) -> str:
        """Fixed-format text rendering, one series per line."""
        snap = self.snapshot()
        lines = []
        for key, value in snap["counters"].items():
            lines.append(f"counter   {key} {value:.6g}")
        for key, value in snap["gauges"].items():
            lines.append(f"gauge     {key} {value:.6g}")
        for key, digest in snap["histograms"].items():
            lines.append(
                f"histogram {key} count={digest['count']:.0f} "
                f"mean={digest['mean']:.6g} p50={digest['p50']:.6g} "
                f"p95={digest['p95']:.6g} p99={digest['p99']:.6g} "
                f"max={digest['max']:.6g}"
            )
        return "\n".join(lines) + ("\n" if lines else "")
