"""Per-target circuit breaker on simulated time.

The classic three-state machine, driven entirely by timestamps the
caller supplies (no wall clock, no scheduler):

* **CLOSED** — calls flow; ``failure_threshold`` consecutive failures
  trip it OPEN.
* **OPEN** — calls are refused fast.  After ``open_s`` of simulated
  time the next :meth:`allow` moves to HALF_OPEN.
* **HALF_OPEN** — up to ``half_open_probes`` probe calls are admitted;
  one success closes the circuit, one failure re-opens it.

The only path back to CLOSED runs through a HALF_OPEN probe success —
an invariant the property suite checks against the recorded
:attr:`CircuitBreaker.transitions` for arbitrary operation sequences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

__all__ = ["BreakerState", "BreakerPolicy", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """Circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Thresholds and timing for one :class:`CircuitBreaker`."""

    failure_threshold: int = 3
    open_s: float = 1.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.open_s <= 0:
            raise ConfigurationError(f"open_s must be positive, got {self.open_s}")
        if self.half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """Closed / open / half-open failure gate for one named target."""

    def __init__(self, policy: BreakerPolicy | None = None, name: str = "") -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self.name = name
        self.transitions: list[tuple[float, BreakerState, BreakerState]] = []
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_used = 0

    @property
    def state(self) -> BreakerState:
        """Current state (as of the last operation's timestamp)."""
        return self._state

    def _move(self, now: float, to: BreakerState) -> None:
        self.transitions.append((now, self._state, to))
        self._state = to

    # -------------------------------------------------------------- gate

    def peek(self, now: float) -> bool:
        """Whether :meth:`allow` would admit a call now (no side effects)."""
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            return now >= self._opened_at + self.policy.open_s
        return self._probes_used < self.policy.half_open_probes

    def allow(self, now: float) -> bool:
        """Gate one call at time ``now``; half-open admits count as probes."""
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            if now < self._opened_at + self.policy.open_s:
                return False
            self._move(now, BreakerState.HALF_OPEN)
            self._probes_used = 0
        if self._probes_used >= self.policy.half_open_probes:
            return False
        self._probes_used += 1
        return True

    # ---------------------------------------------------------- feedback

    def record_success(self, now: float) -> None:
        """A gated call succeeded; a half-open probe success closes."""
        if self._state is BreakerState.HALF_OPEN:
            self._move(now, BreakerState.CLOSED)
        self._failures = 0

    def record_failure(self, now: float) -> None:
        """A gated call failed; trips at the threshold or on a probe."""
        if self._state is BreakerState.HALF_OPEN:
            self._trip(now)
            return
        if self._state is BreakerState.CLOSED:
            self._failures += 1
            if self._failures >= self.policy.failure_threshold:
                self._trip(now)

    def trip(self, now: float) -> None:
        """Force the circuit open (e.g. the injector crashed the target)."""
        if self._state is not BreakerState.OPEN:
            self._trip(now)
        else:
            self._opened_at = now

    def _trip(self, now: float) -> None:
        self._move(now, BreakerState.OPEN)
        self._opened_at = now
        self._failures = 0
        self._probes_used = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.name!r}, {self._state.value})"
