"""Typed fault plans: what breaks, where, and when.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries —
typed faults (replica crash/hang, link partition/degradation, transient
object-store errors, slow-node latency inflation) aimed at named
targets at absolute simulated times.  Plans are pure data: a spec
answers "is this fault active at time *t* against target *x*?" without
any scheduler involvement, so retry loops that advance a bare
:class:`~repro.common.clock.Clock` observe partitions clearing exactly
when the plan says they do.

Targets are plain strings (replica ids, ``"src->dst"`` route names,
``"store:<container>"``); a trailing ``*`` makes a prefix wildcard, and
``"replica:any"`` asks the serving layer to pick one routable replica
from the fault's own seeded stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "WINDOW_KINDS", "ACTION_KINDS"]


class FaultKind(enum.Enum):
    """The typed faults the injector knows how to schedule."""

    REPLICA_CRASH = "replica-crash"  # permanent loss of one replica
    REPLICA_HANG = "replica-hang"  # replica frozen for duration_s
    LINK_PARTITION = "link-partition"  # route unusable for duration_s
    LINK_DEGRADE = "link-degrade"  # route latency x factor for duration_s
    STORE_ERROR = "store-error"  # objectstore ops fail w.p. error_rate
    SLOW_NODE = "slow-node"  # node latency x factor for duration_s


#: Kinds that are pure time-windows, queried by components mid-operation.
WINDOW_KINDS = frozenset(
    {
        FaultKind.REPLICA_HANG,
        FaultKind.LINK_PARTITION,
        FaultKind.LINK_DEGRADE,
        FaultKind.STORE_ERROR,
        FaultKind.SLOW_NODE,
    }
)

#: Kinds that require a registered handler to take an action at start.
ACTION_KINDS = frozenset({FaultKind.REPLICA_CRASH, FaultKind.REPLICA_HANG})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault against one (possibly wildcarded) target.

    Attributes
    ----------
    kind:
        The :class:`FaultKind`.
    target:
        Exact target name, prefix wildcard (``"replica-*"``), or
        ``"replica:any"`` (serving layer picks from the fault's stream).
    at_s:
        Absolute simulated start time.
    duration_s:
        Window length for :data:`WINDOW_KINDS`; ignored for crashes
        (a crash is permanent).
    factor:
        Latency multiplier for degrade / slow-node faults (>= 1).
    error_rate:
        Per-operation failure probability for store-error faults.
    """

    kind: FaultKind
    target: str
    at_s: float
    duration_s: float = 0.0
    factor: float = 1.0
    error_rate: float = 1.0

    def __post_init__(self) -> None:
        if not self.target:
            raise ConfigurationError("fault target must be non-empty")
        if self.at_s < 0:
            raise ConfigurationError(f"fault at_s must be >= 0, got {self.at_s}")
        if self.duration_s < 0:
            raise ConfigurationError(
                f"fault duration_s must be >= 0, got {self.duration_s}"
            )
        if self.kind in WINDOW_KINDS and self.duration_s <= 0:
            raise ConfigurationError(
                f"{self.kind.value} fault needs a positive duration_s"
            )
        if self.factor < 1.0:
            raise ConfigurationError(f"fault factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ConfigurationError(
                f"error_rate must be in [0, 1], got {self.error_rate}"
            )

    @property
    def end_s(self) -> float:
        """Absolute end of the fault window (== ``at_s`` for crashes)."""
        return self.at_s + self.duration_s

    def matches(self, target: str) -> bool:
        """Whether this spec covers ``target`` (exact or prefix wildcard)."""
        if self.target.endswith("*"):
            return target.startswith(self.target[:-1])
        return self.target == target

    def active_at(self, now: float) -> bool:
        """Whether the fault window covers simulated time ``now``."""
        return self.kind in WINDOW_KINDS and self.at_s <= now < self.end_s

    def to_dict(self) -> dict:
        """JSON-ready view (scenario files)."""
        return {
            "kind": self.kind.value,
            "target": self.target,
            "at_s": self.at_s,
            "duration_s": self.duration_s,
            "factor": self.factor,
            "error_rate": self.error_rate,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        """Parse one spec from a scenario-file entry."""
        try:
            kind = FaultKind(payload["kind"])
        except (KeyError, ValueError):
            raise ConfigurationError(
                f"unknown fault kind in {payload!r}; choose from "
                f"{sorted(k.value for k in FaultKind)}"
            ) from None
        if "target" not in payload or "at_s" not in payload:
            raise ConfigurationError(f"fault spec needs target and at_s: {payload!r}")
        return cls(
            kind=kind,
            target=str(payload["target"]),
            at_s=float(payload["at_s"]),
            duration_s=float(payload.get("duration_s", 0.0)),
            factor=float(payload.get("factor", 1.0)),
            error_rate=float(payload.get("error_rate", 1.0)),
        )


class FaultPlan:
    """An ordered, immutable schedule of :class:`FaultSpec` entries."""

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        indexed = sorted(enumerate(specs), key=lambda pair: (pair[1].at_s, pair[0]))
        self._specs: tuple[FaultSpec, ...] = tuple(spec for _, spec in indexed)

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        """The scheduled faults in (start time, insertion) order."""
        return self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self._specs)

    @property
    def last_clear_s(self) -> float:
        """Latest instant any fault in the plan is still active (0 if empty)."""
        return max((spec.end_s for spec in self._specs), default=0.0)

    def to_dicts(self) -> list[dict]:
        """JSON-ready view of the whole plan."""
        return [spec.to_dict() for spec in self._specs]

    @classmethod
    def from_dicts(cls, payload: Sequence[dict]) -> "FaultPlan":
        """Parse a plan from a scenario file's ``faults`` list."""
        return cls([FaultSpec.from_dict(entry) for entry in payload])

    @classmethod
    def randomized(
        cls,
        targets: Sequence[str],
        duration_s: float,
        rng: int | np.random.Generator | None = None,
        n_faults: int = 4,
        kinds: Sequence[FaultKind] = (
            FaultKind.REPLICA_HANG,
            FaultKind.SLOW_NODE,
            FaultKind.REPLICA_CRASH,
        ),
        max_crashes: int = 1,
        quiet_tail_frac: float = 0.35,
    ) -> "FaultPlan":
        """Seeded random plan for soak tests.

        Fault starts land in the first ``1 - quiet_tail_frac`` of the
        run and every window clears before the quiet tail, so recovery
        is observable.  At most ``max_crashes`` permanent crashes are
        drawn (the rest degrade to hangs) to keep the fleet survivable.
        """
        if not targets:
            raise ConfigurationError("randomized plan needs at least one target")
        if duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be positive, got {duration_s}"
            )
        if not 0.0 < quiet_tail_frac < 1.0:
            raise ConfigurationError(
                f"quiet_tail_frac must be in (0, 1), got {quiet_tail_frac}"
            )
        gen = ensure_rng(rng)
        window_end = duration_s * (1.0 - quiet_tail_frac)
        specs: list[FaultSpec] = []
        crashes = 0
        for _ in range(int(n_faults)):
            kind = kinds[int(gen.integers(len(kinds)))]
            if kind is FaultKind.REPLICA_CRASH:
                if crashes >= max_crashes:
                    kind = FaultKind.REPLICA_HANG
                else:
                    crashes += 1
            target = targets[int(gen.integers(len(targets)))]
            at = float(gen.uniform(0.1, 0.7) * window_end)
            if kind is FaultKind.REPLICA_CRASH:
                specs.append(FaultSpec(kind, target, at_s=at))
                continue
            dur = float(gen.uniform(0.05, 0.25) * window_end)
            dur = min(dur, window_end - at)
            factor = float(gen.uniform(2.0, 6.0))
            specs.append(
                FaultSpec(kind, target, at_s=at, duration_s=dur, factor=factor)
            )
        return cls(specs)
