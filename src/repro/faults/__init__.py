"""Deterministic fault injection + resilience primitives.

The edge-to-cloud substrate the paper runs on is unreliable — Pis drop
off Wi-Fi, leases expire mid-training, links flap — so this layer makes
failure a first-class, *replayable* citizen: a seeded
:class:`FaultPlan` of typed faults scheduled on the discrete-event
clock (:class:`FaultInjector`), plus the resilience toolkit the other
layers adopt — :class:`RetryPolicy` (exponential backoff + seeded
jitter), :func:`call_with_resilience` (deadline-aware retry loop), and
a per-target :class:`CircuitBreaker`.

Sits directly above :mod:`repro.common` in the layering DAG; ``net``,
``objectstore``, and ``serve`` build on it.
"""

from repro.faults.breaker import BreakerPolicy, BreakerState, CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ACTION_KINDS,
    WINDOW_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.faults.retry import RetryPolicy, call_with_resilience

__all__ = [
    "ACTION_KINDS",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "WINDOW_KINDS",
    "call_with_resilience",
]
