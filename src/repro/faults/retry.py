"""Retry with exponential backoff, jitter, and deadline awareness.

:class:`RetryPolicy` is pure arithmetic: attempt *k* backs off
``min(cap_s, base_s * factor**k)``, optionally stretched by up to
``jitter`` (a seeded multiplicative draw — decorrelating retry storms
without breaking reproducibility).  The deterministic schedule is
monotone non-decreasing and capped, which the property suite checks
for arbitrary ``(base, factor, cap)``.

:func:`call_with_resilience` is the one retry loop in the repo: it
runs an attempt callable, treats
:class:`~repro.common.errors.InjectedFaultError` as transient, charges
backoff sleeps to the simulated clock (so fault windows can clear
mid-retry), honours an absolute deadline, and composes with a
:class:`~repro.faults.breaker.CircuitBreaker` when one guards the
target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from repro.common.clock import Clock
from repro.common.errors import (
    CircuitOpenError,
    ConfigurationError,
    InjectedFaultError,
    RetryExhaustedError,
)
from repro.common.rng import ensure_rng
from repro.faults.breaker import CircuitBreaker

__all__ = ["RetryPolicy", "call_with_resilience"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a cap, bounded attempts, and jitter.

    ``max_attempts`` counts *total* tries: ``max_attempts=3`` means one
    initial attempt plus two retries.  ``jitter`` stretches each sleep
    by a uniform draw in ``[0, jitter]`` from the caller's stream.
    """

    base_s: float = 0.05
    factor: float = 2.0
    cap_s: float = 2.0
    max_attempts: int = 4
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ConfigurationError(f"base_s must be positive, got {self.base_s}")
        if self.factor < 1.0:
            raise ConfigurationError(f"factor must be >= 1, got {self.factor}")
        if self.cap_s < self.base_s:
            raise ConfigurationError(
                f"cap_s must be >= base_s, got cap={self.cap_s} base={self.base_s}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")

    def backoff_s(
        self, attempt: int, rng: int | np.random.Generator | None = None
    ) -> float:
        """Sleep before retry number ``attempt`` (0-based), jittered."""
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        raw = min(self.cap_s, self.base_s * self.factor**attempt)
        if self.jitter == 0 or rng is None:
            return raw
        gen = ensure_rng(rng)
        return raw * (1.0 + float(gen.uniform(0.0, self.jitter)))

    def schedule(self) -> tuple[float, ...]:
        """The deterministic (jitter-free) backoff for every retry."""
        return tuple(
            min(self.cap_s, self.base_s * self.factor**attempt)
            for attempt in range(self.max_attempts - 1)
        )


def call_with_resilience(
    attempt: Callable[[], T],
    retry: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    clock: Clock | None = None,
    rng: int | np.random.Generator | None = None,
    deadline_s: float | None = None,
    target: str = "",
) -> T:
    """Run ``attempt`` under retry / circuit-breaker / deadline guards.

    * :class:`InjectedFaultError` (and subclasses) are transient: with a
      ``retry`` policy the loop sleeps the backoff on ``clock`` (if
      given) and tries again; without one the error propagates.
    * ``breaker`` is consulted before every try (open circuit fails
      fast with :class:`CircuitOpenError`) and fed every outcome.
    * ``deadline_s`` is an *absolute* simulated time: once the next
      backoff would land past it, the loop gives up.
    * Exhausting attempts or the deadline raises
      :class:`RetryExhaustedError` chained to the last fault.
    """
    gen = ensure_rng(rng) if rng is not None else None
    failures = 0
    while True:
        now = clock.now if clock is not None else 0.0
        if breaker is not None and not breaker.allow(now):
            raise CircuitOpenError(
                f"circuit open for {target or 'target'}; call refused"
            )
        try:
            result = attempt()
        except InjectedFaultError as exc:
            if breaker is not None:
                breaker.record_failure(now)
            failures += 1
            if retry is None:
                raise
            if failures >= retry.max_attempts:
                raise RetryExhaustedError(
                    f"{target or 'call'} failed after {failures} attempts"
                ) from exc
            delay = retry.backoff_s(failures - 1, gen)
            if deadline_s is not None and now + delay > deadline_s:
                raise RetryExhaustedError(
                    f"{target or 'call'} deadline {deadline_s:.3f}s unreachable "
                    f"after {failures} attempts"
                ) from exc
            if clock is not None:
                clock.advance(delay)
            continue
        if breaker is not None:
            breaker.record_success(now)
        return result
