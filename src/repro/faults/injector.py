"""Seeded fault injection on the discrete-event clock.

The :class:`FaultInjector` owns one :class:`~repro.faults.plan.FaultPlan`
and plays two roles:

* **pure oracle** — window faults (partitions, degradation, transient
  store errors, slow nodes) are answered directly from the plan
  (:meth:`active`, :meth:`latency_factor`, :meth:`should_fail`), so any
  component that knows the simulated time can consult them without an
  event ever firing;
* **action dispatcher** — faults that must *do* something (crash a
  replica, freeze and later thaw a hung one) are armed on an
  :class:`~repro.common.clock.EventScheduler` and dispatched to
  handlers registered with :meth:`on` / :meth:`on_clear`.

Every spec gets its own rng stream keyed by
``seed_from_name(f"{kind}:{target}:{index}", seed)``, so a chaos
scenario replays byte-identically per seed no matter which components
consult it or in what order the fleet grew.
"""

from __future__ import annotations

from typing import Callable

from repro.common.clock import EventScheduler
from repro.common.errors import ConfigurationError
from repro.common.eventlog import EventLog
from repro.common.rng import ensure_rng, seed_from_name
from repro.faults.plan import WINDOW_KINDS, FaultKind, FaultPlan, FaultSpec
from repro.obs.tracer import NullTracer, Tracer

__all__ = ["FaultInjector", "FaultHandler"]

#: A fault handler: called with the firing spec and its seeded stream.
FaultHandler = "Callable[[FaultSpec, object], None]"


class FaultInjector:
    """Schedule a :class:`FaultPlan` and answer fault-state queries."""

    def __init__(
        self,
        plan: FaultPlan,
        seed: int = 0,
        log: EventLog | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.plan = plan
        self.seed = int(seed)
        self.log = log
        self.tracer = tracer if tracer is not None else NullTracer()
        self.started = 0
        self.cleared = 0
        self._armed = False
        self._handlers: dict[FaultKind, list[Callable]] = {}
        self._clear_handlers: dict[FaultKind, list[Callable]] = {}
        self._rngs = [
            ensure_rng(
                seed_from_name(
                    f"{spec.kind.value}:{spec.target}:{index}", self.seed
                )
            )
            for index, spec in enumerate(plan)
        ]

    # --------------------------------------------------------- handlers

    def on(self, kind: FaultKind, handler: Callable) -> None:
        """Register ``handler(spec, rng)`` for fault starts of ``kind``."""
        self._handlers.setdefault(kind, []).append(handler)

    def on_clear(self, kind: FaultKind, handler: Callable) -> None:
        """Register ``handler(spec, rng)`` for fault windows ending."""
        self._clear_handlers.setdefault(kind, []).append(handler)

    # ----------------------------------------------------------- arming

    def arm(self, scheduler: EventScheduler) -> None:
        """Schedule every spec's start (and window end) on ``scheduler``.

        Idempotent: arming twice is a no-op, so the service that owns
        the injector and a test that also holds it cannot double-fire.
        """
        if self._armed:
            return
        self._armed = True
        now = scheduler.clock.now
        for index, spec in enumerate(self.plan):
            if spec.at_s < now:
                raise ConfigurationError(
                    f"fault {spec.kind.value}@{spec.at_s}s is already in the "
                    f"past (now={now})"
                )
            scheduler.schedule_at(
                spec.at_s,
                self._make_fire(index, spec),
                label="fault.start",
            )
            if spec.kind in WINDOW_KINDS:
                scheduler.schedule_at(
                    spec.end_s,
                    self._make_clear(index, spec),
                    label="fault.clear",
                )

    def _make_fire(self, index: int, spec: FaultSpec) -> Callable[[], None]:
        def fire() -> None:
            self.started += 1
            self.tracer.event(
                f"fault.start.{spec.kind.value}",
                target=spec.target,
                duration_s=spec.duration_s,
            )
            if self.log is not None:
                self.log.append(
                    spec.at_s,
                    f"fault.start.{spec.kind.value}",
                    spec.target,
                    "injector",
                    duration_s=spec.duration_s,
                )
            for handler in self._handlers.get(spec.kind, []):
                handler(spec, self._rngs[index])

        return fire

    def _make_clear(self, index: int, spec: FaultSpec) -> Callable[[], None]:
        def clear() -> None:
            self.cleared += 1
            self.tracer.event(
                f"fault.clear.{spec.kind.value}", target=spec.target
            )
            if self.log is not None:
                self.log.append(
                    spec.end_s,
                    f"fault.clear.{spec.kind.value}",
                    spec.target,
                    "injector",
                )
            for handler in self._clear_handlers.get(spec.kind, []):
                handler(spec, self._rngs[index])

        return clear

    # ---------------------------------------------------- state queries

    def active(self, kind: FaultKind, target: str, now: float) -> bool:
        """Whether any ``kind`` fault covers ``target`` at time ``now``."""
        return any(
            spec.kind is kind and spec.active_at(now) and spec.matches(target)
            for spec in self.plan
        )

    def latency_factor(self, target: str, now: float) -> float:
        """Product of active degrade / slow-node factors over ``target``."""
        factor = 1.0
        for spec in self.plan:
            if (
                spec.kind in (FaultKind.LINK_DEGRADE, FaultKind.SLOW_NODE)
                and spec.active_at(now)
                and spec.matches(target)
            ):
                factor *= spec.factor
        return factor

    def should_fail(self, kind: FaultKind, target: str, now: float) -> bool:
        """One seeded failure draw against the active ``kind`` fault.

        Draws come from the covering spec's own stream, in call order —
        deterministic for a deterministic caller.  Returns ``False``
        when no fault covers the target.
        """
        for index, spec in enumerate(self.plan):
            if spec.kind is kind and spec.active_at(now) and spec.matches(target):
                if spec.error_rate >= 1.0:
                    return True
                return bool(
                    self._rngs[index].uniform() < spec.error_rate
                )
        return False
