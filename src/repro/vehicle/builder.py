"""Prewired vehicles for the three module stages.

``donkey createcar`` generates a ``manage.py`` that wires the standard
part graph; these builders are that template for the reproduction:

* :func:`build_recording_vehicle` — data collection (Fig. 2): human
  driver (web or joystick) + plant + tub writer.
* :func:`build_autopilot_vehicle` — model evaluation (§3.3): trained
  pilot drives, telemetry recorded for scoring.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.common.errors import ConfigurationError
from repro.data.tub import Tub
from repro.ml.models.base import DonkeyModel
from repro.sim.session import DrivingSession
from repro.vehicle.parts import (
    DriveMode,
    JoystickController,
    PilotPart,
    PWMSteering,
    PWMThrottle,
    SimPlant,
    TubWriterPart,
    WebController,
)
from repro.vehicle.vehicle import Vehicle

__all__ = ["build_recording_vehicle", "build_autopilot_vehicle"]


def build_recording_vehicle(
    session: DrivingSession,
    driver: Callable[[np.ndarray, float, float], tuple[float, float]],
    tub: Tub,
    controller: str = "joystick",
    constant_throttle: float | None = None,
) -> Vehicle:
    """Manual-driving vehicle that records into ``tub``.

    ``controller`` selects ``"joystick"`` or ``"web"`` (§3.3 offers
    both); ``constant_throttle`` enables the race configuration.
    """
    if controller == "joystick":
        ctrl = JoystickController(driver, constant_throttle=constant_throttle)
    elif controller == "web":
        ctrl = WebController(driver, constant_throttle=constant_throttle)
    else:
        raise ConfigurationError(
            f"controller must be 'joystick' or 'web', got {controller!r}"
        )

    v = Vehicle()
    v.add(
        ctrl,
        inputs=["cam/image_array", "sim/cte", "sim/speed"],
        outputs=["user/angle", "user/throttle", "user/mode", "recording"],
    )
    v.add(PWMSteering(), inputs=["user/angle"], outputs=["act/angle"])
    v.add(PWMThrottle(), inputs=["user/throttle"], outputs=["act/throttle"])
    v.add(
        SimPlant(session),
        inputs=["act/angle", "act/throttle"],
        outputs=["cam/image_array", "sim/cte", "sim/speed", "sim/off_track"],
    )
    v.add(
        TubWriterPart(tub),
        inputs=[
            "cam/image_array",
            "user/angle",
            "user/throttle",
            "user/mode",
            "recording",
            "sim/cte",
            "sim/speed",
            "sim/off_track",
        ],
        outputs=["tub/count"],
    )
    return v


def build_autopilot_vehicle(
    session: DrivingSession,
    model: DonkeyModel,
    tub: Tub | None = None,
    mode: str = "pilot",
    user_throttle: float = 0.5,
) -> Vehicle:
    """Autopilot vehicle (optionally recording the evaluation drive).

    ``mode="local_angle"`` reproduces the race setup: the model steers
    while throttle is held at ``user_throttle``.
    """
    v = Vehicle()
    # Static user channels (no human in the loop during evaluation).
    v.mem.put(["user/mode"], mode)
    v.mem.put(["user/angle", "user/throttle"], [0.0, user_throttle])
    v.mem.put(["recording"], tub is not None)

    v.add(PilotPart(model), inputs=["cam/image_array"], outputs=["pilot/angle", "pilot/throttle"])
    v.add(
        DriveMode(),
        inputs=["user/mode", "user/angle", "user/throttle", "pilot/angle", "pilot/throttle"],
        outputs=["cmd/angle", "cmd/throttle"],
    )
    v.add(PWMSteering(), inputs=["cmd/angle"], outputs=["act/angle"])
    v.add(PWMThrottle(), inputs=["cmd/throttle"], outputs=["act/throttle"])
    v.add(
        SimPlant(session),
        inputs=["act/angle", "act/throttle"],
        outputs=["cam/image_array", "sim/cte", "sim/speed", "sim/off_track"],
    )
    if tub is not None:
        v.add(
            TubWriterPart(tub),
            inputs=[
                "cam/image_array",
                "cmd/angle",
                "cmd/throttle",
                "user/mode",
                "recording",
                "sim/cte",
                "sim/speed",
                "sim/off_track",
            ],
            outputs=["tub/count"],
        )
    return v
