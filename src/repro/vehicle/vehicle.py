"""The Vehicle: DonkeyCar's 20 Hz parts loop.

A vehicle is an ordered list of *parts*.  Each loop tick, every part's
``run`` is called with its input channels read from the shared
:class:`~repro.vehicle.memory.Memory` and its return values written to
its output channels.  ``donkeycar``'s threaded parts are executed
inline here (``run_threaded`` if present) — the loop is deterministic
and driven by simulated time, not wall-clock sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.common.clock import Clock
from repro.common.errors import PartError
from repro.common.units import DONKEYCAR_LOOP_HZ
from repro.vehicle.memory import Memory

__all__ = ["Vehicle", "PartEntry"]


@dataclass
class PartEntry:
    """A part plus its channel wiring."""

    part: Any
    inputs: list[str]
    outputs: list[str]
    run_condition: str | None = None

    @property
    def name(self) -> str:
        return type(self.part).__name__


class Vehicle:
    """Ordered part pipeline over a shared memory and simulated clock."""

    def __init__(self, memory: Memory | None = None, clock: Clock | None = None):
        self.mem = memory if memory is not None else Memory()
        self.clock = clock if clock is not None else Clock()
        self.parts: list[PartEntry] = []
        self.loop_count = 0
        self._running = False

    def add(
        self,
        part: Any,
        inputs: Sequence[str] = (),
        outputs: Sequence[str] = (),
        run_condition: str | None = None,
    ) -> None:
        """Append a part; ``run_condition`` names a boolean channel that
        gates execution (DonkeyCar's ``run_condition``)."""
        runner = getattr(part, "run_threaded", None) or getattr(part, "run", None)
        if not callable(runner):
            raise PartError(
                f"{type(part).__name__} has no callable run/run_threaded"
            )
        self.parts.append(
            PartEntry(part, list(inputs), list(outputs), run_condition)
        )

    # ------------------------------------------------------------ loop

    def run_once(self) -> None:
        """Execute one tick: every part in order."""
        for entry in self.parts:
            if entry.run_condition is not None:
                gate = self.mem.get([entry.run_condition])[0]
                if not gate:
                    continue
            args = self.mem.get(entry.inputs)
            runner = getattr(entry.part, "run_threaded", None) or entry.part.run
            try:
                result = runner(*args)
            except PartError:
                raise
            except Exception as exc:
                # Parts run arbitrary user code; wrap whatever escapes so
                # the loop surfaces a ReproError with loop context.
                raise PartError(
                    f"part {entry.name} failed on loop {self.loop_count}: {exc}"
                ) from exc
            if entry.outputs:
                if len(entry.outputs) == 1:
                    self.mem.put(entry.outputs, result)
                else:
                    if not isinstance(result, (tuple, list)) or len(result) != len(
                        entry.outputs
                    ):
                        raise PartError(
                            f"part {entry.name} returned {result!r} "
                            f"for {len(entry.outputs)} outputs"
                        )
                    self.mem.put(entry.outputs, result)
        self.loop_count += 1

    def start(
        self,
        rate_hz: float = DONKEYCAR_LOOP_HZ,
        max_loop_count: int = 1000,
    ) -> int:
        """Run the loop ``max_loop_count`` ticks at ``rate_hz``.

        Simulated time advances ``1/rate_hz`` per tick.  A part may set
        the ``vehicle/stop`` channel truthy to end the drive early (the
        controllers use this for the 'stop recording / end session'
        button).  Returns ticks executed.
        """
        if rate_hz <= 0 or max_loop_count <= 0:
            raise PartError("rate_hz and max_loop_count must be positive")
        dt = 1.0 / rate_hz
        self._running = True
        executed = 0
        for _ in range(max_loop_count):
            self.run_once()
            self.clock.advance(dt)
            executed += 1
            if self.mem.get(["vehicle/stop"])[0]:
                break
        self._running = False
        self.shutdown()
        return executed

    def shutdown(self) -> None:
        """Call ``shutdown`` on every part that has one."""
        for entry in self.parts:
            hook = getattr(entry.part, "shutdown", None)
            if callable(hook):
                hook()
