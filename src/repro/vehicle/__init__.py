"""DonkeyCar-style vehicle framework: parts loop, memory, standard parts."""

from repro.vehicle.builder import build_autopilot_vehicle, build_recording_vehicle
from repro.vehicle.memory import Memory
from repro.vehicle.parts import (
    DriveMode,
    JoystickController,
    PilotPart,
    PWMSteering,
    PWMThrottle,
    SimPlant,
    TubWriterPart,
    WebController,
)
from repro.vehicle.vehicle import PartEntry, Vehicle

__all__ = [
    "Vehicle",
    "PartEntry",
    "Memory",
    "SimPlant",
    "PWMSteering",
    "PWMThrottle",
    "WebController",
    "JoystickController",
    "DriveMode",
    "PilotPart",
    "TubWriterPart",
    "build_recording_vehicle",
    "build_autopilot_vehicle",
]
