"""The vehicle memory: named channels shared between parts.

DonkeyCar wires parts together through a string-keyed blackboard — a
part declares input and output channel names and the vehicle loop moves
values between them.  This is that blackboard.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.common.errors import PartError

__all__ = ["Memory"]


class Memory:
    """String-keyed value store with tuple get/put."""

    def __init__(self) -> None:
        self._values: dict[str, Any] = {}

    def put(self, keys: Iterable[str], values: Any) -> None:
        """Store values under keys; scalar value allowed for one key."""
        keys = list(keys)
        if len(keys) == 1:
            self._values[keys[0]] = values
            return
        values = list(values)
        if len(keys) != len(values):
            raise PartError(
                f"memory.put: {len(keys)} keys but {len(values)} values"
            )
        for key, value in zip(keys, values):
            self._values[key] = value

    def get(self, keys: Iterable[str]) -> list[Any]:
        """Fetch values for keys (missing channels read as None)."""
        return [self._values.get(key) for key in keys]

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._values[key] = value

    def keys(self) -> list[str]:
        """All channel names currently present."""
        return list(self._values)
