"""Standard vehicle parts: plant interface, camera, actuators, pilots,
controllers, and the tub writer.

These are the boxes in Fig. 1's "computation" column, wired into a
:class:`~repro.vehicle.vehicle.Vehicle`:

* :class:`SimPlant` — the simulated car + track + camera (on the real
  car this is the PWM hardware plus the Pi camera; here it wraps a
  :class:`~repro.sim.session.DrivingSession`).
* :class:`PWMSteering` / :class:`PWMThrottle` — normalise commands to
  servo pulses and back; faithful to the DonkeyCar actuator math so the
  calibration exercise works.
* :class:`WebController` / :class:`JoystickController` — human input
  sources; both support the paper's constant-throttle race mode.
* :class:`DriveMode` — arbitration between user and pilot commands.
* :class:`PilotPart` — wraps a trained :class:`~repro.ml.models.DonkeyModel`.
* :class:`TubWriterPart` — records the drive into a tub.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.common.errors import PartError
from repro.data.records import DriveRecord
from repro.data.tub import Tub
from repro.ml.models.base import DonkeyModel
from repro.sim.session import DrivingSession

__all__ = [
    "SimPlant",
    "PWMSteering",
    "PWMThrottle",
    "WebController",
    "JoystickController",
    "DriveMode",
    "PilotPart",
    "TubWriterPart",
]


class SimPlant:
    """The simulated car: applies commands, emits camera + telemetry.

    Outputs: ``cam/image_array``, ``sim/cte``, ``sim/speed``,
    ``sim/off_track``.
    """

    def __init__(self, session: DrivingSession) -> None:
        self.session = session
        self._obs = session.reset()

    def run(self, steering: float | None, throttle: float | None):
        obs = self.session.step(
            0.0 if steering is None else float(steering),
            0.0 if throttle is None else float(throttle),
        )
        self._obs = obs
        return obs.image, obs.cte, obs.speed, obs.off_track

    @property
    def observation(self):
        """Most recent observation."""
        return self._obs


class PWMSteering:
    """Normalised steering -> servo pulse -> normalised (calibrated).

    DonkeyCar calibration stores left/right pulse endpoints; commands
    map linearly between them.  Keeping the round trip explicit lets the
    calibration assignment (wrong endpoints => asymmetric steering) be
    exercised in the simulator.
    """

    def __init__(
        self, left_pulse: int = 460, right_pulse: int = 290, center_pulse: int | None = None
    ) -> None:
        if left_pulse == right_pulse:
            raise PartError("left and right pulses must differ")
        self.left_pulse = int(left_pulse)
        self.right_pulse = int(right_pulse)
        self.center_pulse = (
            int(center_pulse)
            if center_pulse is not None
            else (left_pulse + right_pulse) // 2
        )

    def to_pulse(self, steering: float) -> int:
        """Command in [-1, 1] to a servo pulse (-1 = full left)."""
        steering = float(np.clip(steering, -1.0, 1.0))
        if steering <= 0:
            span = self.left_pulse - self.center_pulse
            return int(round(self.center_pulse - steering * span))
        span = self.center_pulse - self.right_pulse
        return int(round(self.center_pulse - steering * span))

    def from_pulse(self, pulse: int) -> float:
        """Inverse mapping (what angle the servo actually took)."""
        if pulse >= self.center_pulse:
            span = self.left_pulse - self.center_pulse
            return -float(np.clip((pulse - self.center_pulse) / span, 0, 1))
        span = self.center_pulse - self.right_pulse
        return float(np.clip((self.center_pulse - pulse) / span, 0, 1))

    def run(self, steering: float | None) -> float:
        """Apply the pulse round trip (quantisation included)."""
        if steering is None:
            return 0.0
        return self.from_pulse(self.to_pulse(steering))


class PWMThrottle:
    """Normalised throttle through ESC pulse quantisation."""

    def __init__(
        self,
        max_pulse: int = 500,
        zero_pulse: int = 370,
        min_pulse: int = 220,
    ) -> None:
        if not min_pulse < zero_pulse < max_pulse:
            raise PartError("need min_pulse < zero_pulse < max_pulse")
        self.max_pulse = int(max_pulse)
        self.zero_pulse = int(zero_pulse)
        self.min_pulse = int(min_pulse)

    def to_pulse(self, throttle: float) -> int:
        throttle = float(np.clip(throttle, -1.0, 1.0))
        if throttle >= 0:
            return int(
                round(self.zero_pulse + throttle * (self.max_pulse - self.zero_pulse))
            )
        return int(
            round(self.zero_pulse + throttle * (self.zero_pulse - self.min_pulse))
        )

    def from_pulse(self, pulse: int) -> float:
        if pulse >= self.zero_pulse:
            return float(
                np.clip((pulse - self.zero_pulse) / (self.max_pulse - self.zero_pulse), 0, 1)
            )
        return -float(
            np.clip((self.zero_pulse - pulse) / (self.zero_pulse - self.min_pulse), 0, 1)
        )

    def run(self, throttle: float | None) -> float:
        if throttle is None:
            return 0.0
        return self.from_pulse(self.to_pulse(throttle))


class _BaseController:
    """Shared logic for the web and joystick controllers.

    A *driver function* supplies the human input: it receives the
    latest camera frame and telemetry and returns (steering, throttle)
    — scripted drivers from :mod:`repro.core.drivers` plug in here.
    Outputs: ``user/angle``, ``user/throttle``, ``user/mode``,
    ``recording``.
    """

    latency_ticks = 0  # subclasses override

    def __init__(
        self,
        driver: Callable[[np.ndarray, float, float], tuple[float, float]],
        mode: str = "user",
        constant_throttle: float | None = None,
        recording: bool = True,
    ) -> None:
        self.driver = driver
        self.mode = mode
        self.constant_throttle = constant_throttle
        self.recording = recording
        self._pending: deque[tuple[float, float]] = deque()

    def run(self, image: np.ndarray | None, cte: float | None, speed: float | None):
        if image is None:
            command = (0.0, 0.0)
        else:
            command = self.driver(image, cte or 0.0, speed or 0.0)
        # Input latency: commands pass through a FIFO of fixed depth
        # (the web controller adds network hops; joystick is direct).
        self._pending.append(tuple(command))
        if len(self._pending) > self.latency_ticks:
            steering, throttle = self._pending.popleft()
        else:
            steering, throttle = 0.0, 0.0
        if self.constant_throttle is not None:
            throttle = self.constant_throttle
        return steering, throttle, self.mode, self.recording


class JoystickController(_BaseController):
    """Physical joystick: direct input, no added latency."""

    latency_ticks = 0


class WebController(_BaseController):
    """DonkeyCar web controller: same functionality via the browser.

    "use the DonkeyCar web controller that provides the same
    functionality via a web interface and sends the commands to the
    car" — §3.3.  The browser hop adds a couple of control ticks of
    latency, which is why web-driven training data is slightly sloppier
    (visible in the F2 benchmark).
    """

    latency_ticks = 2


class DriveMode:
    """Arbitrates user vs pilot commands by ``user/mode``.

    ``user`` — manual; ``local_angle`` — pilot steers, user throttle
    (the race configuration); ``pilot`` — full autopilot.
    """

    def run(
        self,
        mode: str | None,
        user_angle: float | None,
        user_throttle: float | None,
        pilot_angle: float | None,
        pilot_throttle: float | None,
    ) -> tuple[float, float]:
        mode = mode or "user"
        if mode == "user":
            return user_angle or 0.0, user_throttle or 0.0
        if mode == "local_angle":
            return pilot_angle or 0.0, user_throttle or 0.0
        if mode == "pilot":
            return pilot_angle or 0.0, pilot_throttle or 0.0
        raise PartError(f"unknown drive mode: {mode!r}")


class PilotPart:
    """Wraps a trained model as a vehicle part.

    Outputs ``pilot/angle`` and ``pilot/throttle``; resets the model's
    sequence state on construction so a fresh drive starts clean.
    """

    def __init__(self, model: DonkeyModel) -> None:
        self.model = model
        model.reset_state()

    def run(self, image: np.ndarray | None) -> tuple[float, float]:
        if image is None:
            return 0.0, 0.0
        return self.model.run(image)

    def shutdown(self) -> None:
        self.model.reset_state()


class TubWriterPart:
    """Records every tick into a tub while ``recording`` is truthy."""

    def __init__(self, tub: Tub, rate_hz: float = 20.0) -> None:
        self.tub = tub
        self.rate_hz = float(rate_hz)
        self._count = 0
        self._bulk = tub.bulk()
        self._bulk.__enter__()

    def run(
        self,
        image: np.ndarray | None,
        angle: float | None,
        throttle: float | None,
        mode: str | None,
        recording: bool | None,
        cte: float | None,
        speed: float | None,
        off_track: bool | None,
    ) -> int:
        if not recording or image is None:
            return self._count
        record = DriveRecord(
            image=image,
            angle=float(np.clip(angle or 0.0, -1, 1)),
            throttle=float(np.clip(throttle or 0.0, -1, 1)),
            mode=mode or "user",
            cte=float(cte or 0.0),
            speed=float(speed or 0.0),
            off_track=bool(off_track),
            timestamp_ms=int(self._count * 1000.0 / self.rate_hz),
        )
        self.tub.write_record(record)
        self._count += 1
        return self._count

    def shutdown(self) -> None:
        self._bulk.__exit__(None, None, None)
