"""Bare-metal provisioning: deploy images, install software, run jobs.

"The hardware is re-configurable on bare metal level" (§3.2); the
training notebook "reserves Chameleon hardware, deploys Ubuntu 20.04
CUDA image with accelerator support, and then installs and configures
all the required dependencies including Donkey, Tensorflow, and CUDNN
drivers" (§3.3).  Instances boot after a bare-metal deploy delay, carry
an installed-software set, and execute :class:`TrainingJob` workloads
through the GPU cost model — optionally running the *real* numpy
training alongside to produce actual weights (the E1/E2 bridge).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.clock import EventScheduler
from repro.common.errors import ProvisioningError
from repro.common.ids import IdFactory
from repro.testbed.compute import TrainingJob, estimate_training_time
from repro.testbed.hardware import NodeType, node_type as lookup_node_type
from repro.testbed.images import DiskImage
from repro.testbed.leases import Lease, LeaseManager, LeaseState

__all__ = ["InstanceState", "ServerInstance", "ProvisioningManager", "TrainingRun"]

#: Bare-metal deployment takes ~10 minutes on Chameleon.
BARE_METAL_DEPLOY_S = 600.0

#: Per-package install cost (pip/apt over the campus network), seconds.
PACKAGE_INSTALL_S = {
    "donkeycar": 90.0,
    "tensorflow": 180.0,
    "cudnn": 120.0,
    "jupyter": 45.0,
    "rsync": 5.0,
}
DEFAULT_INSTALL_S = 30.0


class InstanceState(enum.Enum):
    """Lifecycle of a provisioned server."""

    BUILDING = "building"
    ACTIVE = "active"
    DELETED = "deleted"


@dataclass
class TrainingRun:
    """Record of a training job executed on an instance."""

    job: TrainingJob
    gpu_name: str
    gpu_count: int
    simulated_seconds: float
    started_at: float
    cost_mode: str


@dataclass
class ServerInstance:
    """A deployed bare-metal server bound to a lease."""

    instance_id: str
    node_id: str
    node_type: NodeType
    image: DiskImage
    lease_id: str
    state: InstanceState = InstanceState.BUILDING
    installed: set[str] = field(default_factory=set)
    runs: list[TrainingRun] = field(default_factory=list)

    def require_active(self) -> None:
        if self.state is not InstanceState.ACTIVE:
            raise ProvisioningError(
                f"instance {self.instance_id} is {self.state.value}, not active"
            )

    def has_software(self, name: str) -> bool:
        """Whether a package is available (preinstalled or installed)."""
        return name in self.installed or name in self.image.preinstalled


class ProvisioningManager:
    """Deploys instances onto leased nodes and runs workloads on them."""

    def __init__(self, scheduler: EventScheduler, leases: LeaseManager) -> None:
        self.scheduler = scheduler
        self.leases = leases
        self._ids = IdFactory()
        self._instances: dict[str, ServerInstance] = {}
        self._node_in_use: dict[str, str] = {}  # node_id -> instance_id

    # ---------------------------------------------------------- deploy

    def deploy(
        self, lease: Lease, image: DiskImage, node_id: str | None = None
    ) -> ServerInstance:
        """Deploy ``image`` on one node of an ACTIVE lease.

        Advances simulated time by the bare-metal deploy delay and
        returns the instance in ACTIVE state (the notebook cell blocks
        until the server is reachable).
        """
        live = self.leases.get(lease.lease_id)
        if live.state is not LeaseState.ACTIVE:
            raise ProvisioningError(
                f"lease {lease.lease_id} is {live.state.value}; deploy needs an "
                "active lease"
            )
        node_id = node_id or next(
            (n for n in live.node_ids if n not in self._node_in_use), None
        )
        if node_id is None:
            raise ProvisioningError(f"all nodes of lease {lease.lease_id} are in use")
        if node_id not in live.node_ids:
            raise ProvisioningError(f"node {node_id} is not part of lease {lease.lease_id}")
        nt = lookup_node_type(live.node_type)
        if image.supports_gpu and nt.gpu is None:
            raise ProvisioningError(
                f"image {image.name} requires a GPU node; {nt.name} has none"
            )
        instance = ServerInstance(
            instance_id=self._ids.next("srv"),
            node_id=node_id,
            node_type=nt,
            image=image,
            lease_id=lease.lease_id,
        )
        self._instances[instance.instance_id] = instance
        self._node_in_use[node_id] = instance.instance_id
        self.scheduler.clock.advance(BARE_METAL_DEPLOY_S)
        instance.state = InstanceState.ACTIVE
        return instance

    def delete(self, instance_id: str) -> None:
        """Tear an instance down, freeing its node."""
        instance = self.get(instance_id)
        instance.state = InstanceState.DELETED
        self._node_in_use.pop(instance.node_id, None)

    def get(self, instance_id: str) -> ServerInstance:
        """Look up an instance."""
        try:
            return self._instances[instance_id]
        except KeyError:
            raise ProvisioningError(f"unknown instance {instance_id!r}") from None

    # --------------------------------------------------------- software

    def install(self, instance: ServerInstance, *packages: str) -> float:
        """Install packages; returns simulated seconds spent."""
        instance.require_active()
        total = 0.0
        for package in packages:
            if instance.has_software(package):
                continue
            cost = PACKAGE_INSTALL_S.get(package, DEFAULT_INSTALL_S)
            instance.installed.add(package)
            total += cost
        self.scheduler.clock.advance(total)
        return total

    # --------------------------------------------------------- training

    def run_training_job(
        self,
        instance: ServerInstance,
        job: TrainingJob,
        cost_mode: str = "roofline",
        required_software: tuple[str, ...] = ("tensorflow", "donkeycar"),
    ) -> TrainingRun:
        """Execute a costed training job on the instance's GPUs.

        Simulated time advances by the cost-model estimate; the lease
        must still be active when the job *finishes* (jobs that outlive
        their lease die with it, as on the real testbed).
        """
        instance.require_active()
        for package in required_software:
            if not instance.has_software(package):
                raise ProvisioningError(
                    f"instance {instance.instance_id} lacks {package!r}; "
                    "run install() first (the notebook's dependency cell)"
                )
        gpu = instance.node_type.gpu_spec()
        if gpu is None:
            raise ProvisioningError(
                f"node type {instance.node_type.name} has no GPU for training"
            )
        seconds = estimate_training_time(
            job, gpu, instance.node_type.gpu_count, mode=cost_mode
        )
        started = self.scheduler.clock.now
        lease = self.leases.get(instance.lease_id)
        if started + seconds > lease.end:
            raise ProvisioningError(
                f"training ({seconds:.0f}s) would outlive lease "
                f"{lease.lease_id} (ends {lease.end:.0f}); extend the lease"
            )
        self.scheduler.run_until(started + seconds)
        run = TrainingRun(
            job=job,
            gpu_name=gpu.name,
            gpu_count=instance.node_type.gpu_count,
            simulated_seconds=seconds,
            started_at=started,
            cost_mode=cost_mode,
        )
        instance.runs.append(run)
        return run
