"""Chameleon hardware catalog and GPU performance model.

§3.2 of the paper describes the inventory this module encodes: "a large
investment in accelerators ranging from 40 nodes with a single Nvidia
RTX6000 GPU for general use, to sets of 4 nodes each with 4x Nvidia
V100, P100, or A100 Datacenter GPUs and InfiniBand interconnects ...
Smaller numbers of nodes with other architectures (Nvidia M40, K80,
AMD MI100)".  §3.3 adds the training matrix: "We tested this process
on a range of GPU nodes available via Chameleon including A100, V100,
v100NVLINK, RTX6000, and P100."

The GPU speed model is deliberately simple (peak FP32 throughput x a
sustained-efficiency factor, plus a memory-bandwidth roofline used by
the ablation) — experiment E2 only needs the relative ordering of
training times across node types, not absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import NoSuchResourceError

__all__ = ["GPUSpec", "NodeType", "GPU_SPECS", "NODE_TYPES", "gpu_spec", "node_type"]


@dataclass(frozen=True)
class GPUSpec:
    """One accelerator model.

    ``fp32_tflops`` is peak single-precision throughput;
    ``mem_bandwidth_gbs`` feeds the roofline ablation;
    ``efficiency`` is the sustained fraction of peak a real training
    loop achieves (datacenter parts sustain more of peak than the
    older/maxwell parts).
    """

    name: str
    fp32_tflops: float
    mem_bandwidth_gbs: float
    mem_gb: float
    efficiency: float = 0.45

    @property
    def effective_flops(self) -> float:
        """Sustained FLOP/s for training workloads."""
        return self.fp32_tflops * 1e12 * self.efficiency


#: Accelerators named in the paper, with public datasheet numbers.
GPU_SPECS: dict[str, GPUSpec] = {
    "A100": GPUSpec("A100", 19.5, 1555.0, 40.0, efficiency=0.55),
    "V100": GPUSpec("V100", 15.7, 900.0, 32.0, efficiency=0.50),
    "V100-NVLINK": GPUSpec("V100-NVLINK", 15.7, 900.0, 32.0, efficiency=0.53),
    "RTX6000": GPUSpec("RTX6000", 16.3, 672.0, 24.0, efficiency=0.45),
    "P100": GPUSpec("P100", 10.6, 732.0, 16.0, efficiency=0.45),
    "M40": GPUSpec("M40", 7.0, 288.0, 24.0, efficiency=0.35),
    "K80": GPUSpec("K80", 8.7, 480.0, 24.0, efficiency=0.30),
    "MI100": GPUSpec("MI100", 23.1, 1229.0, 32.0, efficiency=0.40),
}


@dataclass(frozen=True)
class NodeType:
    """A class of bare-metal nodes at one site."""

    name: str
    site: str
    gpu: str | None
    gpu_count: int
    node_count: int
    interconnect: str = "10GbE"
    tags: tuple[str, ...] = field(default=())

    def gpu_spec(self) -> GPUSpec | None:
        """Spec of this node's accelerator (None for CPU nodes)."""
        return GPU_SPECS[self.gpu] if self.gpu else None


#: The published inventory (counts from §3.2); sites reflect the two
#: principal Chameleon sites.
NODE_TYPES: dict[str, NodeType] = {
    nt.name: nt
    for nt in [
        NodeType("gpu_rtx_6000", "CHI@TACC", "RTX6000", 1, 40, tags=("general",)),
        NodeType("gpu_v100", "CHI@UC", "V100", 4, 4, "InfiniBand", ("scale",)),
        NodeType(
            "gpu_v100_nvlink", "CHI@UC", "V100-NVLINK", 4, 4, "InfiniBand", ("scale",)
        ),
        NodeType("gpu_p100", "CHI@TACC", "P100", 4, 4, "InfiniBand", ("scale",)),
        NodeType("gpu_a100", "CHI@TACC", "A100", 4, 4, "InfiniBand", ("scale",)),
        NodeType("gpu_m40", "CHI@UC", "M40", 1, 2, tags=("legacy",)),
        NodeType("gpu_k80", "CHI@UC", "K80", 1, 2, tags=("legacy",)),
        NodeType("gpu_mi100", "CHI@TACC", "MI100", 1, 2, tags=("amd",)),
        NodeType("compute_skylake", "CHI@TACC", None, 0, 32, tags=("cpu",)),
        NodeType("compute_cascadelake", "CHI@UC", None, 0, 32, tags=("cpu",)),
    ]
}


def gpu_spec(name: str) -> GPUSpec:
    """Look up an accelerator spec by name."""
    try:
        return GPU_SPECS[name]
    except KeyError:
        raise NoSuchResourceError(
            f"unknown GPU {name!r}; known: {sorted(GPU_SPECS)}"
        ) from None


def node_type(name: str) -> NodeType:
    """Look up a node type by name."""
    try:
        return NODE_TYPES[name]
    except KeyError:
        raise NoSuchResourceError(
            f"unknown node type {name!r}; known: {sorted(NODE_TYPES)}"
        ) from None
