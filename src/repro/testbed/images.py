"""Disk-image registry.

The training notebook "deploys Ubuntu 20.04 CUDA image with accelerator
support, and then installs and configures all the required dependencies
including Donkey, Tensorflow, and CUDNN drivers" (§3.3).  Images carry
the preinstalled software set and a deploy-time cost; extra packages
are installed post-boot at a per-package cost — which is exactly what
the "zero to ready" comparison (E4) measures against the edge path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import NoSuchResourceError

__all__ = ["DiskImage", "ImageRegistry", "CC_UBUNTU20_CUDA", "CC_UBUNTU20"]


@dataclass(frozen=True)
class DiskImage:
    """A deployable image."""

    name: str
    os: str
    size_gb: float
    preinstalled: frozenset[str] = field(default_factory=frozenset)
    supports_gpu: bool = False


#: Chameleon's stock CUDA image used by the training notebook.
CC_UBUNTU20_CUDA = DiskImage(
    name="CC-Ubuntu20.04-CUDA",
    os="ubuntu-20.04",
    size_gb=12.0,
    preinstalled=frozenset({"cuda", "cudnn", "nvidia-driver", "python3"}),
    supports_gpu=True,
)

CC_UBUNTU20 = DiskImage(
    name="CC-Ubuntu20.04",
    os="ubuntu-20.04",
    size_gb=3.0,
    preinstalled=frozenset({"python3"}),
    supports_gpu=False,
)


class ImageRegistry:
    """Named image store (Glance equivalent)."""

    def __init__(self) -> None:
        self._images: dict[str, DiskImage] = {}
        for image in (CC_UBUNTU20_CUDA, CC_UBUNTU20):
            self._images[image.name] = image

    def register(self, image: DiskImage) -> None:
        """Add a custom image (e.g. a student snapshot)."""
        if image.name in self._images:
            raise NoSuchResourceError(f"image {image.name!r} already registered")
        self._images[image.name] = image

    def get(self, name: str) -> DiskImage:
        """Look up an image by name."""
        try:
            return self._images[name]
        except KeyError:
            raise NoSuchResourceError(
                f"unknown image {name!r}; known: {sorted(self._images)}"
            ) from None

    def list(self) -> list[str]:
        """All image names."""
        return sorted(self._images)
