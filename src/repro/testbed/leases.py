"""Leases and advance reservations.

"All hardware is available either on-demand or via advance
reservations so that users can reserve required resources ahead of
time, for example, to manage resource scarcity or to guarantee
resource availability at a specific time slot for a class or a
demonstration." — §3.2.

The lease manager tracks per-node reservation calendars (interval
overlap checks), charges service units against the project allocation,
and drives lease state transitions (PENDING -> ACTIVE -> EXPIRED) off
the shared simulated clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.clock import EventScheduler
from repro.common.errors import (
    LeaseError,
    NoSuchResourceError,
    ReservationConflictError,
)
from repro.common.ids import IdFactory
from repro.testbed.hardware import NODE_TYPES, NodeType
from repro.testbed.identity import IdentityProvider, Session

__all__ = ["LeaseState", "Lease", "LeaseManager"]

#: Service-unit cost per node-hour (Chameleon charges 1 SU/node-hour).
SU_PER_NODE_HOUR = 1.0


class LeaseState(enum.Enum):
    """Lifecycle of a lease."""

    PENDING = "pending"
    ACTIVE = "active"
    EXPIRED = "expired"
    TERMINATED = "terminated"


@dataclass
class Lease:
    """A reservation of ``node_ids`` for [start, end)."""

    lease_id: str
    project_id: str
    username: str
    node_type: str
    node_ids: tuple[str, ...]
    start: float
    end: float
    state: LeaseState = LeaseState.PENDING
    events: list[str] = field(default_factory=list)

    @property
    def duration_hours(self) -> float:
        """Lease length in hours."""
        return (self.end - self.start) / 3600.0

    @property
    def su_cost(self) -> float:
        """Service units charged for this lease."""
        return SU_PER_NODE_HOUR * len(self.node_ids) * self.duration_hours

    def overlaps(self, start: float, end: float) -> bool:
        """Whether [start, end) intersects this lease's window."""
        return self.start < end and start < self.end


class LeaseManager:
    """Per-node reservation calendars over the testbed inventory."""

    def __init__(
        self, scheduler: EventScheduler, identity: IdentityProvider,
        node_types: dict[str, NodeType] | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.identity = identity
        self.node_types = dict(node_types or NODE_TYPES)
        self._ids = IdFactory()
        self._leases: dict[str, Lease] = {}
        # node id -> list of lease ids holding reservations on it
        self._calendar: dict[str, list[str]] = {}
        self._nodes: dict[str, list[str]] = {
            name: [f"{name}-n{i:02d}" for i in range(nt.node_count)]
            for name, nt in self.node_types.items()
        }

    # ------------------------------------------------------- inventory

    def nodes_of_type(self, node_type: str) -> list[str]:
        """All node ids of a type."""
        try:
            return list(self._nodes[node_type])
        except KeyError:
            raise NoSuchResourceError(f"unknown node type {node_type!r}") from None

    def available_nodes(self, node_type: str, start: float, end: float) -> list[str]:
        """Node ids of a type with no reservation overlapping [start, end)."""
        if end <= start:
            raise LeaseError(f"empty lease window: [{start}, {end})")
        free = []
        for node_id in self.nodes_of_type(node_type):
            conflicts = (
                self._leases[lid].overlaps(start, end)
                for lid in self._calendar.get(node_id, [])
                if self._leases[lid].state
                in (LeaseState.PENDING, LeaseState.ACTIVE)
            )
            if not any(conflicts):
                free.append(node_id)
        return free

    # ---------------------------------------------------------- leases

    def create_lease(
        self,
        session: Session,
        node_type: str,
        node_count: int = 1,
        start: float | None = None,
        duration_s: float = 4 * 3600.0,
    ) -> Lease:
        """Reserve ``node_count`` nodes (on-demand if ``start`` is None).

        Charges the project allocation up front; raises
        :class:`ReservationConflictError` if not enough nodes are free
        in the window.
        """
        self.identity.authenticate(session.token)
        if node_count <= 0 or duration_s <= 0:
            raise LeaseError("node_count and duration must be positive")
        now = self.scheduler.clock.now
        start = now if start is None else float(start)
        if start < now:
            raise LeaseError(f"lease start {start} is in the past (now={now})")
        end = start + duration_s

        free = self.available_nodes(node_type, start, end)
        if len(free) < node_count:
            raise ReservationConflictError(
                f"only {len(free)} {node_type} nodes free in "
                f"[{start:.0f}, {end:.0f}), need {node_count}"
            )
        lease = Lease(
            lease_id=self._ids.next("lease"),
            project_id=session.project_id,
            username=session.username,
            node_type=node_type,
            node_ids=tuple(free[:node_count]),
            start=start,
            end=end,
        )
        self.identity.project(session.project_id).charge(lease.su_cost)
        self._leases[lease.lease_id] = lease
        for node_id in lease.node_ids:
            self._calendar.setdefault(node_id, []).append(lease.lease_id)

        lease.events.append(f"created at {now:.0f}")
        if start == now:
            self._activate(lease.lease_id)
        else:
            self.scheduler.schedule_at(start, lambda: self._activate(lease.lease_id))
        self.scheduler.schedule_at(end, lambda: self._expire(lease.lease_id))
        return lease

    def _activate(self, lease_id: str) -> None:
        lease = self.get(lease_id)
        if lease.state is LeaseState.PENDING:
            lease.state = LeaseState.ACTIVE
            lease.events.append(f"active at {self.scheduler.clock.now:.0f}")

    def _expire(self, lease_id: str) -> None:
        lease = self.get(lease_id)
        if lease.state is LeaseState.ACTIVE:
            lease.state = LeaseState.EXPIRED
            lease.events.append(f"expired at {self.scheduler.clock.now:.0f}")

    def terminate(self, lease_id: str) -> None:
        """End a lease early (partial SU refund for the unused tail)."""
        lease = self.get(lease_id)
        if lease.state in (LeaseState.EXPIRED, LeaseState.TERMINATED):
            raise LeaseError(f"lease {lease_id} already ended ({lease.state.value})")
        now = self.scheduler.clock.now
        if lease.state is LeaseState.ACTIVE and now < lease.end:
            unused_hours = (lease.end - now) / 3600.0
            refund = SU_PER_NODE_HOUR * len(lease.node_ids) * unused_hours
            project = self.identity.project(lease.project_id)
            project.charged_su = max(0.0, project.charged_su - refund)
        lease.state = LeaseState.TERMINATED
        lease.events.append(f"terminated at {now:.0f}")

    def get(self, lease_id: str) -> Lease:
        """Look up a lease."""
        try:
            return self._leases[lease_id]
        except KeyError:
            raise NoSuchResourceError(f"unknown lease {lease_id!r}") from None

    def require_active(self, lease_id: str) -> Lease:
        """Fetch a lease that must currently be ACTIVE (for provisioning)."""
        lease = self.get(lease_id)
        if lease.state is not LeaseState.ACTIVE:
            raise LeaseError(
                f"lease {lease_id} is {lease.state.value}, not active"
            )
        return lease

    def leases_for_project(self, project_id: str) -> list[Lease]:
        """All leases belonging to a project."""
        return [l for l in self._leases.values() if l.project_id == project_id]
