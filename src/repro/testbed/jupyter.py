"""Jupyter-notebook emulation and ``.ipynb`` export.

§3.2: "Chameleon integrates the programmatic interfaces with Jupyter so
that users can package their experiments more easily and combine
experimental environment creation, experiment body, and analysis in one
set of notebooks."  §3.5: "Leveraging the programmatic interface to the
system via Jupyter notebook was in general very helpful as it allowed
us to streamline often complex configuration of highly programmable
resources by combining them in Jupyter cells that can be executed with
one click."

:class:`Notebook` models exactly that: markdown and code cells, where a
code cell's payload is a Python callable over a shared context dict
(the "kernel namespace").  Executions feed Trovi's §5 metric ("the
execution of at least one cell in the artifact packaging") when a hub
is attached, and the notebook serialises to valid nbformat-4 JSON so
the published artifact bundle contains real ``.ipynb`` files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import ConfigurationError, ReproError

__all__ = ["CellResult", "Notebook", "NotebookError"]


class NotebookError(ReproError):
    """A code cell raised during execution."""


@dataclass
class CellResult:
    """Outcome of one code-cell execution."""

    index: int
    ok: bool
    value: Any = None
    error: str = ""
    execution_count: int = 0


@dataclass
class _Cell:
    kind: str  # "markdown" | "code"
    source: str
    action: Callable[[dict[str, Any]], Any] | None = None
    execution_count: int = 0
    outputs: list[str] = field(default_factory=list)


class Notebook:
    """An executable notebook over a shared context namespace."""

    def __init__(self, name: str, context: dict[str, Any] | None = None) -> None:
        if not name:
            raise ConfigurationError("notebook needs a name")
        self.name = name if name.endswith(".ipynb") else f"{name}.ipynb"
        self.context: dict[str, Any] = context if context is not None else {}
        self._cells: list[_Cell] = []
        self._execution_counter = 0
        self.hub = None
        self.artifact_id = ""
        self.user = ""

    # ------------------------------------------------------- authoring

    def add_markdown(self, source: str) -> int:
        """Append a markdown cell; returns its index."""
        self._cells.append(_Cell("markdown", source))
        return len(self._cells) - 1

    def add_code(
        self, source: str, action: Callable[[dict[str, Any]], Any]
    ) -> int:
        """Append a code cell.

        ``source`` is the display text; ``action`` is the payload —
        called with the shared context dict, its return value becomes
        the cell output (and is stored in the context under
        ``_<index>``).
        """
        if not callable(action):
            raise ConfigurationError("code cell action must be callable")
        self._cells.append(_Cell("code", source, action))
        return len(self._cells) - 1

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def code_cells(self) -> list[int]:
        """Indexes of code cells."""
        return [i for i, c in enumerate(self._cells) if c.kind == "code"]

    # ------------------------------------------------------- execution

    def attach_hub(self, hub, artifact_id: str, user: str) -> None:
        """Report cell executions to a Trovi hub (§5's counter)."""
        self.hub = hub
        self.artifact_id = artifact_id
        self.user = user

    def run_cell(self, index: int) -> CellResult:
        """Execute one code cell ("executed with one click")."""
        try:
            cell = self._cells[index]
        except IndexError:
            raise ConfigurationError(f"no cell {index}") from None
        if cell.kind != "code":
            raise ConfigurationError(f"cell {index} is markdown, not code")
        self._execution_counter += 1
        cell.execution_count = self._execution_counter
        if self.hub is not None:
            self.hub.execute_cell(self.artifact_id, self.user, cell_index=index)
        try:
            value = cell.action(self.context)
        except Exception as exc:  # reprolint: disable=broad-except  (cells run arbitrary student code; any failure becomes the cell's error output)
            cell.outputs = [f"{type(exc).__name__}: {exc}"]
            return CellResult(
                index=index, ok=False, error=cell.outputs[0],
                execution_count=cell.execution_count,
            )
        cell.outputs = [] if value is None else [repr(value)]
        self.context[f"_{index}"] = value
        return CellResult(
            index=index, ok=True, value=value,
            execution_count=cell.execution_count,
        )

    def run_all(self, stop_on_error: bool = True) -> list[CellResult]:
        """Run every code cell top to bottom (the "Run All" button)."""
        results = []
        for index in self.code_cells:
            result = self.run_cell(index)
            results.append(result)
            if not result.ok and stop_on_error:
                raise NotebookError(
                    f"{self.name} cell {index} failed: {result.error}"
                )
        return results

    # ---------------------------------------------------------- export

    def to_ipynb(self) -> str:
        """Serialise to nbformat-4 JSON (a real ``.ipynb`` file)."""
        cells = []
        for cell in self._cells:
            if cell.kind == "markdown":
                cells.append(
                    {"cell_type": "markdown", "metadata": {},
                     "source": cell.source.splitlines(keepends=True)}
                )
            else:
                outputs = [
                    {
                        "output_type": "execute_result",
                        "data": {"text/plain": [line]},
                        "metadata": {},
                        "execution_count": cell.execution_count or None,
                    }
                    for line in cell.outputs
                ]
                cells.append(
                    {
                        "cell_type": "code",
                        "metadata": {},
                        "source": cell.source.splitlines(keepends=True),
                        "execution_count": cell.execution_count or None,
                        "outputs": outputs,
                    }
                )
        doc = {
            "nbformat": 4,
            "nbformat_minor": 5,
            "metadata": {
                "kernelspec": {
                    "name": "python3",
                    "display_name": "Python 3",
                    "language": "python",
                },
                "language_info": {"name": "python", "version": "3.11"},
            },
            "cells": cells,
        }
        return json.dumps(doc, indent=1)

    def to_bytes(self) -> bytes:
        """The ``.ipynb`` payload for an artifact bundle."""
        return self.to_ipynb().encode("utf-8")
