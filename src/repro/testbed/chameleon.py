"""The Chameleon facade: one object, the whole datacenter side.

Wraps identity, images, leases, and provisioning over a shared
discrete-event scheduler — the programmatic interface students drive
from Jupyter ("users can log into the testbed ... and then interact
with it via a GUI, or programmatically via the command line and python
interfaces", §3.2).
"""

from __future__ import annotations

from repro.common.clock import Clock, EventScheduler
from repro.objectstore.store import ObjectStore
from repro.testbed.identity import IdentityProvider, Project, Session, User
from repro.testbed.images import DiskImage, ImageRegistry
from repro.testbed.leases import Lease, LeaseManager
from repro.testbed.provisioning import ProvisioningManager, ServerInstance

__all__ = ["Chameleon"]


class Chameleon:
    """The testbed: identity + images + leases + provisioning + store."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.scheduler = EventScheduler(clock)
        self.identity = IdentityProvider()
        self.images = ImageRegistry()
        self.leases = LeaseManager(self.scheduler, self.identity)
        self.provisioning = ProvisioningManager(self.scheduler, self.leases)
        self.object_store = ObjectStore()

    @property
    def clock(self) -> Clock:
        """The shared simulated clock."""
        return self.scheduler.clock

    # ------------------------------------------------- student workflow

    def onboard_class(
        self,
        instructor: str,
        institution: str,
        students: list[str],
        allocation_su: float = 10_000.0,
    ) -> tuple[Project, dict[str, User]]:
        """Create an education project with an instructor and students."""
        users = {instructor: self.identity.register_user(instructor, institution, "instructor")}
        project = self.identity.create_project(
            title="AutoLearn: Learning in the Edge to Cloud Continuum",
            pi=instructor,
            allocation_su=allocation_su,
        )
        for student in students:
            users[student] = self.identity.register_user(student, institution)
            self.identity.add_member(project.project_id, student)
        return project, users

    def login(self, username: str, project_id: str) -> Session:
        """Federated login for a project member."""
        return self.identity.login(username, project_id, now=self.clock.now)

    def reserve_gpu_node(
        self,
        session: Session,
        node_type: str = "gpu_v100",
        duration_hours: float = 4.0,
        start: float | None = None,
    ) -> Lease:
        """The notebook's reservation cell (defaults from §3.5: v100)."""
        return self.leases.create_lease(
            session,
            node_type=node_type,
            node_count=1,
            start=start,
            duration_s=duration_hours * 3600.0,
        )

    def deploy_training_server(
        self, lease: Lease, image_name: str = "CC-Ubuntu20.04-CUDA"
    ) -> ServerInstance:
        """Deploy the CUDA image and install the training stack.

        Reproduces the notebook cell that "deploys Ubuntu 20.04 CUDA
        image with accelerator support, and then installs ... Donkey,
        Tensorflow, and CUDNN drivers" (§3.3).
        """
        image: DiskImage = self.images.get(image_name)
        instance = self.provisioning.deploy(lease, image)
        self.provisioning.install(
            instance, "donkeycar", "tensorflow", "cudnn", "jupyter", "rsync"
        )
        return instance
