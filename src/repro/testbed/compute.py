"""GPU training-time cost model (experiment E2).

Translates "train model M on N records for E epochs" into simulated
seconds on a given accelerator.  Two fidelity levels (the DESIGN.md
ablation):

* ``simple`` — compute-bound only: FLOPs / sustained FLOP/s.
* ``roofline`` — per-batch time is the max of the compute term and the
  memory-traffic term (weights + activations through HBM), which is
  what actually separates e.g. RTX6000 (fast ALUs, modest GDDR6) from
  V100 (HBM2) on small-batch training.

Multi-GPU nodes scale with an efficiency factor per extra GPU; NVLink
parts lose less to gradient exchange — reproducing why the paper lists
``v100NVLINK`` separately from ``V100``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.testbed.hardware import GPUSpec

__all__ = ["TrainingJob", "estimate_batch_time", "estimate_training_time"]

#: Fixed per-batch host overhead (kernel launch, data staging), seconds.
_BATCH_OVERHEAD_S = 2e-3

#: Startup overhead per job (graph build, first-batch compilation), s.
_JOB_OVERHEAD_S = 25.0


@dataclass(frozen=True)
class TrainingJob:
    """A training run to be costed.

    ``flops_per_sample`` comes from
    :func:`repro.ml.training.estimate_flops_per_sample`;
    ``bytes_per_sample`` is the activation+weight traffic per sample
    (default: derived from the sample FLOPs with a 1:12 byte:FLOP
    ratio — conv nets reuse activations heavily, so traffic is well
    below the naive 1:6 streaming ratio).
    """

    flops_per_sample: float
    n_samples: int
    epochs: int
    batch_size: int = 64
    bytes_per_sample: float | None = None

    def __post_init__(self) -> None:
        if self.flops_per_sample <= 0 or self.n_samples <= 0 or self.epochs <= 0:
            raise ConfigurationError("job dimensions must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")

    @property
    def traffic_per_sample(self) -> float:
        """Bytes moved through device memory per sample."""
        if self.bytes_per_sample is not None:
            return self.bytes_per_sample
        return self.flops_per_sample / 12.0

    @property
    def total_flops(self) -> float:
        """FLOPs for the whole run."""
        return self.flops_per_sample * self.n_samples * self.epochs


def _multi_gpu_factor(gpu: GPUSpec, gpu_count: int) -> float:
    """Aggregate speedup of ``gpu_count`` devices (sub-linear)."""
    if gpu_count < 1:
        raise ConfigurationError(f"gpu_count must be >= 1, got {gpu_count}")
    per_extra = 0.95 if "NVLINK" in gpu.name else 0.85
    return float(sum(per_extra**i for i in range(gpu_count)))


def estimate_batch_time(
    job: TrainingJob, gpu: GPUSpec, gpu_count: int = 1, mode: str = "roofline"
) -> float:
    """Seconds per mini-batch on the given accelerator."""
    if mode not in ("simple", "roofline"):
        raise ConfigurationError(f"unknown cost mode {mode!r}")
    factor = _multi_gpu_factor(gpu, gpu_count)
    compute_s = job.flops_per_sample * job.batch_size / (gpu.effective_flops * factor)
    if mode == "simple":
        return compute_s + _BATCH_OVERHEAD_S
    memory_s = job.traffic_per_sample * job.batch_size / (
        gpu.mem_bandwidth_gbs * 1e9 * factor
    )
    return max(compute_s, memory_s) + _BATCH_OVERHEAD_S


def estimate_training_time(
    job: TrainingJob, gpu: GPUSpec, gpu_count: int = 1, mode: str = "roofline"
) -> float:
    """Wall-clock seconds for the full training run."""
    batches_per_epoch = -(-job.n_samples // job.batch_size)  # ceil div
    batch_s = estimate_batch_time(job, gpu, gpu_count, mode)
    return _JOB_OVERHEAD_S + job.epochs * batches_per_epoch * batch_s
