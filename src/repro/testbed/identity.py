"""Federated identity and projects.

"to gain access all educational users need to do is request a project
in computer science education ... users can log into the testbed with
their institutional credentials via federated identity login" — §3.2.

The emulation models users with home institutions, projects with
allocations (service units), project membership, and login sessions
(tokens) that every testbed call authenticates against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import AuthenticationError, QuotaExceededError
from repro.common.ids import IdFactory

__all__ = ["User", "Project", "Session", "IdentityProvider"]


@dataclass
class User:
    """A federated user (institutional credentials)."""

    username: str
    institution: str
    role: str = "student"  # student | instructor | ta | researcher


@dataclass
class Project:
    """A Chameleon project with a service-unit allocation."""

    project_id: str
    title: str
    domain: str  # e.g. "computer science education"
    allocation_su: float
    charged_su: float = 0.0
    members: set[str] = field(default_factory=set)
    pi: str = ""

    @property
    def remaining_su(self) -> float:
        """Service units left on the allocation."""
        return self.allocation_su - self.charged_su

    def charge(self, su: float) -> None:
        """Charge usage against the allocation."""
        if su < 0:
            raise ValueError(f"cannot charge negative SUs: {su}")
        if su > self.remaining_su + 1e-9:
            raise QuotaExceededError(
                f"project {self.project_id}: charge of {su:.1f} SU exceeds "
                f"remaining {self.remaining_su:.1f} SU"
            )
        self.charged_su += su


@dataclass(frozen=True)
class Session:
    """An authenticated login session."""

    token: str
    username: str
    project_id: str
    issued_at: float


class IdentityProvider:
    """User/project registry plus login session issuance."""

    def __init__(self) -> None:
        self._users: dict[str, User] = {}
        self._projects: dict[str, Project] = {}
        self._sessions: dict[str, Session] = {}
        self._ids = IdFactory()

    # ------------------------------------------------------- directory

    def register_user(self, username: str, institution: str, role: str = "student") -> User:
        """Register a federated user."""
        if username in self._users:
            raise AuthenticationError(f"user {username!r} already exists")
        user = User(username, institution, role)
        self._users[username] = user
        return user

    def create_project(
        self, title: str, pi: str, domain: str = "computer science education",
        allocation_su: float = 10_000.0,
    ) -> Project:
        """Request a project (PI must be a registered user)."""
        if pi not in self._users:
            raise AuthenticationError(f"unknown PI {pi!r}")
        project = Project(
            project_id=self._ids.next("proj"),
            title=title,
            domain=domain,
            allocation_su=allocation_su,
            pi=pi,
        )
        project.members.add(pi)
        self._projects[project.project_id] = project
        return project

    def add_member(self, project_id: str, username: str) -> None:
        """Add a user to a project."""
        project = self.project(project_id)
        if username not in self._users:
            raise AuthenticationError(f"unknown user {username!r}")
        project.members.add(username)

    def project(self, project_id: str) -> Project:
        """Look up a project."""
        try:
            return self._projects[project_id]
        except KeyError:
            raise AuthenticationError(f"unknown project {project_id!r}") from None

    def user(self, username: str) -> User:
        """Look up a user."""
        try:
            return self._users[username]
        except KeyError:
            raise AuthenticationError(f"unknown user {username!r}") from None

    # ----------------------------------------------------------- login

    def login(self, username: str, project_id: str, now: float = 0.0) -> Session:
        """Federated login: returns a session token for the project."""
        if username not in self._users:
            raise AuthenticationError(f"unknown user {username!r}")
        project = self.project(project_id)
        if username not in project.members:
            raise AuthenticationError(
                f"user {username!r} is not a member of {project_id}"
            )
        session = Session(
            token=self._ids.next("tok"),
            username=username,
            project_id=project_id,
            issued_at=now,
        )
        self._sessions[session.token] = session
        return session

    def authenticate(self, token: str) -> Session:
        """Validate a session token."""
        try:
            return self._sessions[token]
        except KeyError:
            raise AuthenticationError("invalid or expired session token") from None

    def logout(self, token: str) -> None:
        """Invalidate a session token."""
        self._sessions.pop(token, None)
