"""Chameleon testbed emulation: identity, hardware, leases, provisioning."""

from repro.testbed.chameleon import Chameleon
from repro.testbed.jupyter import CellResult, Notebook, NotebookError
from repro.testbed.compute import (
    TrainingJob,
    estimate_batch_time,
    estimate_training_time,
)
from repro.testbed.hardware import (
    GPU_SPECS,
    NODE_TYPES,
    GPUSpec,
    NodeType,
    gpu_spec,
    node_type,
)
from repro.testbed.identity import IdentityProvider, Project, Session, User
from repro.testbed.images import (
    CC_UBUNTU20,
    CC_UBUNTU20_CUDA,
    DiskImage,
    ImageRegistry,
)
from repro.testbed.leases import Lease, LeaseManager, LeaseState
from repro.testbed.provisioning import (
    InstanceState,
    ProvisioningManager,
    ServerInstance,
    TrainingRun,
)

__all__ = [
    "Chameleon",
    "Notebook",
    "CellResult",
    "NotebookError",
    "GPUSpec",
    "NodeType",
    "GPU_SPECS",
    "NODE_TYPES",
    "gpu_spec",
    "node_type",
    "IdentityProvider",
    "User",
    "Project",
    "Session",
    "DiskImage",
    "ImageRegistry",
    "CC_UBUNTU20",
    "CC_UBUNTU20_CUDA",
    "Lease",
    "LeaseManager",
    "LeaseState",
    "ProvisioningManager",
    "ServerInstance",
    "InstanceState",
    "TrainingRun",
    "TrainingJob",
    "estimate_batch_time",
    "estimate_training_time",
]
