"""Canonical traced scenarios: small, deterministic, end to end.

Each scenario wires a :class:`~repro.obs.tracer.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry` through one slice of the
stack and runs it to completion on the simulated clock:

* ``pipeline-quickstart`` — the ``digital`` pathway (simulator
  collection, laptop training, simulator evaluation) at toy scale,
  exercising pipeline stage spans, object-store op spans, and the
  deployment ``net.scp`` span.
* ``serve-load`` — an open-loop Poisson workload against a small
  replica fleet, exercising request/batch/replica spans and the SLO
  counters.
* ``chaos-crash`` — a crash plus a hang played against two replicas,
  exercising fault start/clear instants and error-status spans.
* ``fleet-canary-chaos`` — three continuum-loop rounds: a bootstrap, a
  clean shadow → canary → stable promotion, and a canary crash that
  forces an automatic rollback, exercising the fleet round/stage spans
  and the promotion/rollback counters.

The same seed yields byte-identical trace and metrics exports — the
property ``autolearn trace`` and the golden-trace suite pin.  This
module sits at the root of the package (like :mod:`repro.cli`) because
a scenario legitimately spans layers no single package may couple.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.common.clock import EventScheduler
from repro.common.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["TRACE_SCENARIOS", "TraceScenarioResult", "run_trace_scenario"]

#: Scenario names accepted by :func:`run_trace_scenario`.
TRACE_SCENARIOS = (
    "pipeline-quickstart",
    "serve-load",
    "chaos-crash",
    "fleet-canary-chaos",
)


@dataclass
class TraceScenarioResult:
    """One traced run: the tracer, the registry, and a text summary."""

    name: str
    seed: int
    tracer: Tracer
    metrics: MetricsRegistry
    summary: str


def _run_pipeline_quickstart(seed: int, work_dir: Path) -> TraceScenarioResult:
    from repro.core.pipeline import AutoLearnPipeline
    from repro.testbed.chameleon import Chameleon

    chameleon = Chameleon()
    tracer = Tracer(chameleon.clock)
    metrics = MetricsRegistry()
    pipeline = AutoLearnPipeline(
        "digital",
        work_dir,
        n_records=80,
        epochs=1,
        camera_hw=(24, 32),
        model_scale=0.25,
        eval_ticks=60,
        seed=seed,
        chameleon=chameleon,
        tracer=tracer,
        metrics=metrics,
    )
    report = pipeline.run()
    tracer.close_all()
    lines = [f"pipeline-quickstart pathway=digital seed={seed}"]
    for stage in report.stages:
        lines.append(
            f"  {stage.stage:12s} {stage.alternative:12s} "
            f"{stage.sim_seconds:12.4f} s"
        )
    lines.append(f"  total        {report.total_sim_seconds:25.4f} s")
    return TraceScenarioResult(
        "pipeline-quickstart", seed, tracer, metrics, "\n".join(lines) + "\n"
    )


def _run_serve_load(seed: int) -> TraceScenarioResult:
    from repro.serve.replica import BatchLatencyModel
    from repro.serve.service import InferenceService
    from repro.serve.workload import PoissonWorkload
    from repro.testbed.hardware import gpu_spec

    scheduler = EventScheduler()
    tracer = Tracer(scheduler.clock)
    metrics = MetricsRegistry()
    latency_model = BatchLatencyModel.from_gpu(
        gpu_spec("V100"), flops_per_frame=1e8
    )
    service = InferenceService(
        latency_model,
        scheduler=scheduler,
        n_replicas=2,
        seed=seed,
        tracer=tracer,
        metrics=metrics,
        trace_requests=True,
    )
    workload = PoissonWorkload(50.0, deadline_s=0.1, seed=seed)
    summary = service.run(workload, 1.0)
    tracer.close_all()
    return TraceScenarioResult(
        "serve-load", seed, tracer, metrics, summary.to_text()
    )


def _run_chaos_crash(seed: int) -> TraceScenarioResult:
    from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
    from repro.serve.chaos import ChaosScenario, run_chaos

    scheduler = EventScheduler()
    tracer = Tracer(scheduler.clock)
    metrics = MetricsRegistry()
    scenario = ChaosScenario(
        name="chaos-crash",
        duration_s=6.0,
        vehicles=16,
        replicas=2,
        autoscale=False,
        plan=FaultPlan([
            FaultSpec(FaultKind.REPLICA_CRASH, "replica:any", at_s=2.0),
            FaultSpec(
                FaultKind.REPLICA_HANG, "replica:any", at_s=3.0, duration_s=1.0
            ),
        ]),
    )
    summary = run_chaos(
        scenario, seed=seed, tracer=tracer, metrics=metrics,
        scheduler=scheduler,
    )
    tracer.close_all()
    return TraceScenarioResult(
        "chaos-crash", seed, tracer, metrics, summary.to_text()
    )


def _run_fleet_canary_chaos(seed: int) -> TraceScenarioResult:
    from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
    from repro.fleet import FleetConfig, FleetLoop, GateThresholds

    scheduler = EventScheduler()
    tracer = Tracer(scheduler.clock)
    metrics = MetricsRegistry()
    # Round 3's canary replica (replica-0003: the one added after the two
    # stable replicas) is crashed shortly into the canary stage, so the
    # candidate fails its min-completions gate and auto-rolls-back.
    crash = FaultPlan(
        [FaultSpec(FaultKind.REPLICA_CRASH, "replica-0003", at_s=0.1)]
    )
    config = FleetConfig(
        n_vehicles=4,
        records_per_flush=12,
        stage_vehicles=4,
        stage_duration_s=0.6,
        min_fresh_records=48,
        eval_records=48,
        gates=GateThresholds(min_completions=10),
        canary_fraction=0.35,
        rounds=3,
        canary_fault_plans=((3, crash),),
        seed=seed,
    )
    loop = FleetLoop(config, scheduler=scheduler, tracer=tracer, metrics=metrics)
    summary = loop.run()
    tracer.close_all()
    return TraceScenarioResult(
        "fleet-canary-chaos", seed, tracer, metrics, summary.to_text()
    )


def run_trace_scenario(
    name: str, seed: int = 0, work_dir: str | Path | None = None
) -> TraceScenarioResult:
    """Run one named scenario with tracing and metrics attached.

    ``work_dir`` holds scratch artifacts (tubs, models) for scenarios
    that need a filesystem; a temporary directory is used when omitted.
    Nothing in the returned tracer or registry depends on the path, so
    exports are byte-identical per seed either way.
    """
    if name not in TRACE_SCENARIOS:
        raise ConfigurationError(
            f"unknown trace scenario {name!r}; available: "
            f"{', '.join(TRACE_SCENARIOS)}"
        )
    seed = int(seed)
    if name == "serve-load":
        return _run_serve_load(seed)
    if name == "chaos-crash":
        return _run_chaos_crash(seed)
    if name == "fleet-canary-chaos":
        return _run_fleet_canary_chaos(seed)
    if work_dir is not None:
        return _run_pipeline_quickstart(seed, Path(work_dir))
    with tempfile.TemporaryDirectory() as tmp:
        return _run_pipeline_quickstart(seed, Path(tmp))
