"""Canonical traced scenarios: small, deterministic, end to end.

Each scenario wires a :class:`~repro.obs.tracer.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry` through one slice of the
stack and runs it to completion on the simulated clock:

* ``pipeline-quickstart`` — the ``digital`` pathway (simulator
  collection, laptop training, simulator evaluation) at toy scale,
  exercising pipeline stage spans, object-store op spans, and the
  deployment ``net.scp`` span.
* ``serve-load`` — an open-loop Poisson workload against a small
  replica fleet, exercising request/batch/replica spans and the SLO
  counters.
* ``chaos-crash`` — a crash plus a hang played against two replicas,
  exercising fault start/clear instants and error-status spans.
* ``fleet-canary-chaos`` — three continuum-loop rounds: a bootstrap, a
  clean shadow → canary → stable promotion, and a canary crash that
  forces an automatic rollback, exercising the fleet round/stage spans
  and the promotion/rollback counters.

Since the declarative harness landed, each scenario is pure data: a
:class:`~repro.eval.spec.ScenarioSpec` in :mod:`repro.eval.library`,
interpreted by :mod:`repro.eval.runner`.  The runner builds the same
object graph the historical hand-coded functions here did, so the same
seed still yields byte-identical trace and metrics exports — the
property ``autolearn trace`` and the golden-trace suite pin.  This
module sits at the root of the package (like :mod:`repro.cli`) because
a scenario legitimately spans layers no single package may couple.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = [
    "TRACE_SCENARIOS",
    "TraceScenarioResult",
    "run_trace_scenario",
    "trace_scenario_spec",
]

#: Scenario names accepted by :func:`run_trace_scenario`.
TRACE_SCENARIOS = (
    "pipeline-quickstart",
    "serve-load",
    "chaos-crash",
    "fleet-canary-chaos",
)


@dataclass
class TraceScenarioResult:
    """One traced run: the tracer, the registry, and a text summary."""

    name: str
    seed: int
    tracer: Tracer
    metrics: MetricsRegistry
    summary: str


def trace_scenario_spec(name: str):
    """The declarative spec behind one named trace scenario."""
    from repro.eval.library import scenario_spec

    if name not in TRACE_SCENARIOS:
        raise ConfigurationError(
            f"unknown trace scenario {name!r}; available: "
            f"{', '.join(TRACE_SCENARIOS)}"
        )
    return scenario_spec(name)


def run_trace_scenario(
    name: str, seed: int = 0, work_dir: str | Path | None = None
) -> TraceScenarioResult:
    """Run one named scenario with tracing and metrics attached.

    ``work_dir`` holds scratch artifacts (tubs, models) for scenarios
    that need a filesystem; a temporary directory is used — and removed
    even when the scenario body raises — when omitted.  Nothing in the
    returned tracer or registry depends on the path, so exports are
    byte-identical per seed either way.
    """
    from repro.eval.runner import run_scenario

    run = run_scenario(
        trace_scenario_spec(name), seed=int(seed), work_dir=work_dir
    )
    return TraceScenarioResult(
        name, int(seed), run.tracer, run.metrics, run.summary
    )
