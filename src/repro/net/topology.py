"""Network topology: hosts connected by links, routed with networkx.

:func:`autolearn_topology` builds the continuum of the paper: the car's
Raspberry Pi on classroom Wi-Fi, the student laptop on the campus LAN,
the two Chameleon sites over the commodity Internet, and the
FABRIC-managed inter-site path.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.common.errors import UnreachableHostError
from repro.common.rng import ensure_rng
from repro.net.links import (
    CAMPUS_LAN,
    FABRIC_MANAGED,
    WAN_INTERNET,
    WIFI_EDGE,
    Link,
)

__all__ = ["Route", "Topology", "autolearn_topology"]


@dataclass(frozen=True)
class Route:
    """A resolved path: the ordered links between two hosts."""

    src: str
    dst: str
    links: tuple[Link, ...]

    @property
    def base_rtt_s(self) -> float:
        """Round-trip propagation floor (seconds)."""
        return 2.0 * sum(link.base_latency_s for link in self.links)

    @property
    def bottleneck_bps(self) -> float:
        """Minimum bandwidth along the path."""
        return min(link.bandwidth_bps for link in self.links)

    def sample_rtt(
        self, rng: int | np.random.Generator | None = None, n: int = 1
    ) -> np.ndarray:
        """Round-trip latency samples across all hops."""
        gen = ensure_rng(rng)
        total = np.zeros(n)
        for link in self.links:
            total += link.sample_latency(gen, n)  # forward
            total += link.sample_latency(gen, n)  # return
        return total

    def transfer_time(
        self, nbytes: int, rng: int | np.random.Generator | None = None
    ) -> float:
        """Seconds to move ``nbytes`` end to end (store-and-forward)."""
        gen = ensure_rng(rng)
        # Serialisation happens once at the bottleneck; latency sums.
        rtt = float(self.sample_rtt(gen)[0])
        if nbytes == 0:
            return rtt
        serialisation = 8.0 * nbytes / self.bottleneck_bps
        slow_start_rtts = max(1.0, np.log10(max(nbytes, 10)))
        return rtt * slow_start_rtts + serialisation


class Topology:
    """Hosts and links with shortest-latency routing."""

    def __init__(self) -> None:
        self._graph = nx.Graph()

    def add_host(self, name: str, kind: str = "host") -> None:
        """Register a host (kind: car, laptop, cloud, router, ...)."""
        self._graph.add_node(name, kind=kind)

    def connect(self, a: str, b: str, link: Link) -> None:
        """Join two hosts with a (bidirectional) link."""
        for host in (a, b):
            if host not in self._graph:
                raise UnreachableHostError(f"unknown host {host!r}; add_host first")
        self._graph.add_edge(a, b, link=link, weight=link.base_latency_s)

    def hosts(self, kind: str | None = None) -> list[str]:
        """All host names, optionally filtered by kind."""
        if kind is None:
            return sorted(self._graph.nodes)
        return sorted(
            n for n, d in self._graph.nodes(data=True) if d.get("kind") == kind
        )

    def route(self, src: str, dst: str) -> Route:
        """Lowest-latency path between two hosts."""
        for host in (src, dst):
            if host not in self._graph:
                raise UnreachableHostError(f"unknown host {host!r}")
        try:
            path = nx.shortest_path(self._graph, src, dst, weight="weight")
        except nx.NetworkXNoPath:
            raise UnreachableHostError(f"no path from {src!r} to {dst!r}") from None
        links = tuple(
            self._graph.edges[u, v]["link"] for u, v in zip(path, path[1:])
        )
        if not links:
            raise UnreachableHostError(f"src and dst are the same host: {src!r}")
        return Route(src, dst, links)


def autolearn_topology(
    wan: Link = WAN_INTERNET,
    wifi: Link = WIFI_EDGE,
    fabric: Link = FABRIC_MANAGED,
) -> Topology:
    """The paper's continuum: car -> campus -> Internet -> Chameleon.

    Hosts: ``car-pi`` (the Raspberry Pi on the car), ``laptop`` (the
    student), ``campus-router``, ``chi-uc`` and ``chi-tacc`` (the two
    principal Chameleon sites, FABRIC-linked).
    """
    topo = Topology()
    topo.add_host("car-pi", kind="car")
    topo.add_host("laptop", kind="laptop")
    topo.add_host("campus-router", kind="router")
    topo.add_host("chi-uc", kind="cloud")
    topo.add_host("chi-tacc", kind="cloud")
    topo.connect("car-pi", "campus-router", wifi)
    topo.connect("laptop", "campus-router", CAMPUS_LAN)
    topo.connect("campus-router", "chi-uc", wan)
    topo.connect("campus-router", "chi-tacc", wan)
    topo.connect("chi-uc", "chi-tacc", fabric)
    return topo
