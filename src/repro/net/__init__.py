"""Network emulation: links, topology, transfers, tunnels."""

from repro.net.links import (
    CAMPUS_LAN,
    FABRIC_MANAGED,
    WAN_INTERNET,
    WIFI_EDGE,
    Link,
    fabric_link,
)
from repro.net.topology import Route, Topology, autolearn_topology
from repro.net.transfer import (
    JPEG_COMPRESSION_RATIO,
    SSHTunnel,
    TransferResult,
    route_target,
    rsync_tub,
    scp_bytes,
)

__all__ = [
    "Link",
    "WIFI_EDGE",
    "CAMPUS_LAN",
    "WAN_INTERNET",
    "FABRIC_MANAGED",
    "fabric_link",
    "Topology",
    "Route",
    "autolearn_topology",
    "TransferResult",
    "route_target",
    "rsync_tub",
    "scp_bytes",
    "SSHTunnel",
    "JPEG_COMPRESSION_RATIO",
]
