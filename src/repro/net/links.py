"""Network link models: latency, jitter, bandwidth, loss.

The edge-to-cloud continuum in the paper runs over real networks (car
Wi-Fi -> campus -> Internet -> Chameleon site; FABRIC provides managed
latency between the two principal sites).  The inference experiments
(E6) need realistic per-request RTT distributions, so links model
latency as a shifted lognormal (the standard fit for WAN RTT jitter)
plus a deterministic propagation floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import NetworkError
from repro.common.rng import ensure_rng

__all__ = [
    "Link",
    "WIFI_EDGE",
    "CAMPUS_LAN",
    "WAN_INTERNET",
    "FABRIC_MANAGED",
    "fabric_link",
]


@dataclass(frozen=True)
class Link:
    """A directed network link.

    Attributes
    ----------
    name:
        Label for topology displays.
    base_latency_s:
        One-way propagation + queuing floor (seconds).
    jitter_scale:
        Lognormal sigma of the multiplicative jitter; 0 = deterministic.
    bandwidth_bps:
        Bottleneck data rate, bits per second.
    loss_rate:
        Per-packet loss probability (retransmits add one RTT each).
    """

    name: str
    base_latency_s: float
    jitter_scale: float
    bandwidth_bps: float
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.base_latency_s < 0 or self.bandwidth_bps <= 0:
            raise NetworkError(f"invalid link parameters for {self.name!r}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise NetworkError(f"loss_rate must be in [0, 1): {self.loss_rate}")

    # ------------------------------------------------------- sampling

    def sample_latency(
        self, rng: int | np.random.Generator | None = None, n: int = 1
    ) -> np.ndarray:
        """One-way latency samples (seconds), jitter included."""
        gen = ensure_rng(rng)
        if self.jitter_scale == 0.0:
            samples = np.full(n, self.base_latency_s)
        else:
            # Shifted lognormal: the propagation floor plus a strictly
            # positive queuing term, so base_latency_s is a true floor.
            jitter = gen.lognormal(mean=0.0, sigma=self.jitter_scale, size=n)
            samples = self.base_latency_s * (1.0 + 0.3 * jitter)
        if self.loss_rate > 0.0:
            # Each lost packet costs one extra RTT (TCP fast retransmit).
            retries = gen.geometric(1.0 - self.loss_rate, size=n) - 1
            samples = samples + retries * 2.0 * self.base_latency_s
        return samples

    def transfer_time(
        self,
        nbytes: int,
        rng: int | np.random.Generator | None = None,
    ) -> float:
        """Seconds to move ``nbytes`` across this link (single stream).

        Latency-bound for small payloads, bandwidth-bound for bulk; TCP
        slow-start is approximated by one extra RTT per decade of
        payload size.
        """
        if nbytes < 0:
            raise NetworkError(f"negative payload: {nbytes}")
        gen = ensure_rng(rng)
        rtt = 2.0 * float(self.sample_latency(gen)[0])
        if nbytes == 0:
            return rtt
        serialisation = 8.0 * nbytes / self.bandwidth_bps
        slow_start_rtts = max(1.0, np.log10(max(nbytes, 10)))
        return rtt * slow_start_rtts + serialisation


#: Car Raspberry Pi over 2.4 GHz Wi-Fi to the classroom AP.
WIFI_EDGE = Link("wifi-edge", base_latency_s=0.004, jitter_scale=0.8,
                 bandwidth_bps=40e6, loss_rate=0.01)

#: Campus wired LAN.
CAMPUS_LAN = Link("campus-lan", base_latency_s=0.0008, jitter_scale=0.2,
                  bandwidth_bps=1e9)

#: Commodity Internet from campus to the Chameleon site.
WAN_INTERNET = Link("wan-internet", base_latency_s=0.022, jitter_scale=0.5,
                    bandwidth_bps=300e6, loss_rate=0.002)

#: FABRIC-managed path between the two Chameleon sites: "the two
#: principal Chameleon sites are connected to the FABRIC networking
#: testbed creating potential to support cloud experiments with managed
#: latency" (§3.2).  Deterministic latency, high bandwidth.
FABRIC_MANAGED = Link("fabric", base_latency_s=0.012, jitter_scale=0.0,
                      bandwidth_bps=10e9)


def fabric_link(managed_latency_s: float) -> Link:
    """A FABRIC path dialled to a specific managed latency (jitter-free)."""
    if managed_latency_s < 0:
        raise NetworkError(f"latency must be non-negative: {managed_latency_s}")
    return Link(
        f"fabric-{managed_latency_s * 1000:.0f}ms",
        base_latency_s=managed_latency_s,
        jitter_scale=0.0,
        bandwidth_bps=10e9,
    )
