"""File-transfer emulation: the ``rsync``/``scp`` step.

"all data is stored on the Raspberry Pi /car/data and can be manually
transferred to the cloud using SSH" ... "the student copies the
training data using rsync command and can begin the training process"
— §3.3.  The emulation charges simulated time for moving tub bytes
over a route, models rsync's delta behaviour (unchanged files are
skipped after the checksum exchange), and provides the SSH tunnel the
Jupyter server on the Pi is reached through (§3.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.clock import Clock
from repro.common.errors import LinkPartitionError, ReproError, TransferError
from repro.common.rng import ensure_rng
from repro.data.tub import Tub
from repro.faults.breaker import CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
from repro.faults.retry import RetryPolicy, call_with_resilience
from repro.net.topology import Route
from repro.obs.span import STATUS_ERROR, Span
from repro.obs.tracer import NullTracer, Tracer

__all__ = [
    "TransferResult",
    "route_target",
    "rsync_tub",
    "scp_bytes",
    "SSHTunnel",
]

#: rsync per-file checksum negotiation cost (seconds per file).
_RSYNC_PER_FILE_S = 0.002

#: DonkeyCar stores JPEGs; this repo stores raw .npy frames.  Transfer
#: sizing converts to the wire bytes the paper's students would move
#: (JPEG at quality ~80 compresses the 120x160 frames ~12x).
JPEG_COMPRESSION_RATIO = 12.0


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one emulated transfer."""

    nbytes_logical: int  # bytes the tub occupies locally
    nbytes_wire: int  # bytes actually sent
    files: int
    seconds: float
    route_rtt_s: float

    @property
    def throughput_bps(self) -> float:
        """Effective wire throughput (bits/second)."""
        return 8.0 * self.nbytes_wire / self.seconds if self.seconds > 0 else 0.0


def route_target(route: Route) -> str:
    """Fault-plan target name for a route (``"src->dst"``)."""
    return f"{route.src}->{route.dst}"


def _wire_seconds(
    nbytes: int,
    route: Route,
    gen,
    injector: FaultInjector | None,
    now: float,
) -> float:
    """One transfer attempt: partition check, then degraded wire time."""
    target = route_target(route)
    if injector is not None and injector.active(
        FaultKind.LINK_PARTITION, target, now
    ):
        raise LinkPartitionError(f"route {target} is partitioned")
    seconds = route.transfer_time(nbytes, gen)
    if injector is not None:
        seconds *= injector.latency_factor(target, now)
    return seconds


def _tub_wire_bytes(tub: Tub, as_jpeg: bool) -> tuple[int, int, int]:
    """(logical bytes, wire bytes, file count) for a tub transfer."""
    logical = tub.size_bytes()
    files = sum(1 for _ in tub.path.rglob("*") if _.is_file())
    if not as_jpeg:
        return logical, logical, files
    # Only image payloads compress; catalogs/manifests are small text.
    image_bytes = sum(
        p.stat().st_size for p in tub.images_dir.glob("*.npy")
    )
    wire = int(logical - image_bytes + image_bytes / JPEG_COMPRESSION_RATIO)
    return logical, wire, files


def _traced_transfer(
    name: str,
    tracer: Tracer,
    attempt,
    retry: RetryPolicy | None,
    breaker: CircuitBreaker | None,
    clock: Clock | None,
    gen,
    deadline_s: float | None,
    target: str,
    **attrs,
) -> tuple[float, Span]:
    """Run the resilience loop inside a ``net.*`` span.

    The span covers retries and backoff (the clock advances inside the
    loop), records the attempt count and — when a breaker guards the
    route — its state at exit, and carries error status with the
    exception type when the loop gives up.  On success the span is
    returned still open so the caller can stamp the final duration
    (rsync adds a per-file checksum cost after the loop).
    """
    tries = {"n": 0}

    def counted() -> float:
        tries["n"] += 1
        return attempt()

    # Nest under the caller's context span (a pipeline stage, say):
    # the transfer completes before the caller returns, so containment
    # holds in both call structure and simulated time.
    span = tracer.start(name, parent=tracer.current(), target=target, **attrs)
    try:
        seconds = call_with_resilience(
            counted,
            retry=retry,
            breaker=breaker,
            clock=clock,
            rng=gen,
            deadline_s=deadline_s,
            target=target,
        )
    except ReproError as exc:
        span.attrs["attempts"] = tries["n"]
        if breaker is not None:
            span.attrs["breaker"] = breaker.state
        tracer.end(span, status=STATUS_ERROR, error=type(exc).__name__)
        raise
    span.attrs["attempts"] = tries["n"]
    if breaker is not None:
        span.attrs["breaker"] = breaker.state
    return seconds, span


def rsync_tub(
    tub: Tub,
    route: Route,
    clock: Clock | None = None,
    already_synced_fraction: float = 0.0,
    as_jpeg: bool = True,
    rng: int | np.random.Generator | None = None,
    injector: FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    deadline_s: float | None = None,
    tracer: Tracer | None = None,
) -> TransferResult:
    """Emulate ``rsync -a <tub> cloud:`` over a route.

    ``already_synced_fraction`` models incremental syncs (rsync skips
    unchanged files after the checksum pass).  If a ``clock`` is given,
    simulated time advances by the transfer duration.

    With an ``injector``, the route's fault-plan target
    (``"src->dst"``) is consulted: a partition raises
    :class:`LinkPartitionError` (retried under ``retry``, with backoff
    sleeps charged to ``clock`` so the window can clear mid-loop), and
    degradation inflates the wire time.  ``breaker`` and ``deadline_s``
    compose as in :func:`repro.faults.call_with_resilience`.

    With a ``tracer``, the transfer runs inside a ``net.rsync`` span
    carrying route target, file count, wire bytes, attempt count, and
    breaker state.
    """
    if not 0.0 <= already_synced_fraction <= 1.0:
        raise TransferError(
            f"already_synced_fraction must be in [0, 1]: {already_synced_fraction}"
        )
    gen = ensure_rng(rng)
    trc = tracer if tracer is not None else NullTracer()
    logical, wire, files = _tub_wire_bytes(tub, as_jpeg)
    wire = int(wire * (1.0 - already_synced_fraction))

    def attempt() -> float:
        now = clock.now if clock is not None else 0.0
        return _wire_seconds(wire, route, gen, injector, now)

    span = None
    if trc.enabled:
        seconds, span = _traced_transfer(
            "net.rsync",
            trc,
            attempt,
            retry,
            breaker,
            clock,
            gen,
            deadline_s,
            route_target(route),
            files=files,
            nbytes_wire=wire,
        )
    else:
        seconds = call_with_resilience(
            attempt,
            retry=retry,
            breaker=breaker,
            clock=clock,
            rng=gen,
            deadline_s=deadline_s,
            target=route_target(route),
        )
    seconds += files * _RSYNC_PER_FILE_S
    if clock is not None:
        clock.advance(seconds)
    if span is not None:
        span.attrs["seconds"] = seconds
        trc.end(span)
    return TransferResult(
        nbytes_logical=logical,
        nbytes_wire=wire,
        files=files,
        seconds=seconds,
        route_rtt_s=route.base_rtt_s,
    )


def scp_bytes(
    nbytes: int,
    route: Route,
    clock: Clock | None = None,
    rng: int | np.random.Generator | None = None,
    injector: FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    deadline_s: float | None = None,
    tracer: Tracer | None = None,
) -> TransferResult:
    """Emulate ``scp`` of a single blob (e.g. trained model weights).

    Fault handling matches :func:`rsync_tub`: partitions on the route
    raise :class:`LinkPartitionError` and are retried under ``retry``.
    With a ``tracer``, the transfer runs inside a ``net.scp`` span.
    """
    if nbytes < 0:
        raise TransferError(f"negative payload: {nbytes}")
    gen = ensure_rng(rng)
    trc = tracer if tracer is not None else NullTracer()

    def attempt() -> float:
        now = clock.now if clock is not None else 0.0
        return _wire_seconds(nbytes, route, gen, injector, now)

    span = None
    if trc.enabled:
        seconds, span = _traced_transfer(
            "net.scp",
            trc,
            attempt,
            retry,
            breaker,
            clock,
            gen,
            deadline_s,
            route_target(route),
            nbytes_wire=nbytes,
        )
    else:
        seconds = call_with_resilience(
            attempt,
            retry=retry,
            breaker=breaker,
            clock=clock,
            rng=gen,
            deadline_s=deadline_s,
            target=route_target(route),
        )
    if clock is not None:
        clock.advance(seconds)
    if span is not None:
        span.attrs["seconds"] = seconds
        trc.end(span)
    return TransferResult(
        nbytes_logical=nbytes,
        nbytes_wire=nbytes,
        files=1,
        seconds=seconds,
        route_rtt_s=route.base_rtt_s,
    )


class SSHTunnel:
    """An SSH tunnel pinning a route (laptop -> Jupyter on the Pi).

    "this allows students to access the Jupyter Notebook executing on
    the Raspberry Pi ... from their own laptops using an SSH tunnel"
    — §3.5.  The tunnel adds an encryption overhead factor to payloads
    and exposes per-request round trips for interactive latency
    accounting.
    """

    ENCRYPTION_OVERHEAD = 1.03

    def __init__(self, route: Route, rng: int | np.random.Generator | None = None):
        self.route = route
        self._rng = ensure_rng(rng)
        self.requests = 0

    def request(self, nbytes: int = 1024) -> float:
        """One interactive request/response; returns seconds."""
        self.requests += 1
        padded = int(nbytes * self.ENCRYPTION_OVERHEAD)
        return self.route.transfer_time(padded, self._rng)
