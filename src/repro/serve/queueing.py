"""Bounded admission queues with drop / shed / backpressure policies.

Every replica fronts a bounded FIFO (per priority class).  When the
queue is full, the admission policy decides who pays:

* ``drop`` — the *newest* arrival is rejected (tail drop, the default
  for open-loop traffic);
* ``shed`` — the *oldest* request of the least-important class is
  displaced to make room, provided the newcomer is at least as
  important (load shedding keeps fresh work over stale work);
* ``backpressure`` — the arrival is refused without being consumed, and
  the sender is expected to slow down (closed-loop vehicles simply keep
  their request slot busy).

Requests whose absolute deadline passes while queued are *expired* by
:meth:`AdmissionQueue.expire` — serving them would waste a batch slot
on a response nobody can use.
"""

from __future__ import annotations

import enum
from collections import deque

from repro.common.errors import ConfigurationError
from repro.serve.request import Request, RequestStatus

__all__ = ["AdmissionPolicy", "AdmissionQueue", "QUEUE_POLICIES"]


class AdmissionPolicy(enum.Enum):
    """What happens when an arrival finds the queue full."""

    DROP = "drop"  # reject the newest arrival
    SHED = "shed"  # displace the oldest least-important queued request
    BACKPRESSURE = "backpressure"  # refuse and signal the sender


QUEUE_POLICIES = tuple(policy.value for policy in AdmissionPolicy)


class AdmissionQueue:
    """A bounded, priority-classed FIFO admission queue."""

    def __init__(
        self, capacity: int, policy: str | AdmissionPolicy = AdmissionPolicy.DROP
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"queue capacity must be >= 1, got {capacity}")
        if isinstance(policy, str):
            try:
                policy = AdmissionPolicy(policy)
            except ValueError:
                raise ConfigurationError(
                    f"unknown admission policy {policy!r}; "
                    f"choose from {QUEUE_POLICIES}"
                ) from None
        self.capacity = int(capacity)
        self.policy = policy
        self._classes: dict[int, deque[Request]] = {}
        self._depth = 0

    def __len__(self) -> int:
        return self._depth

    @property
    def depth(self) -> int:
        """Number of queued requests across all priority classes."""
        return self._depth

    # --------------------------------------------------------- admission

    def offer(self, request: Request, now: float) -> tuple[bool, Request | None]:
        """Try to admit ``request`` at simulated time ``now``.

        Returns ``(admitted, displaced)``: ``displaced`` is the request
        shed to make room (``shed`` policy only), already marked
        :attr:`RequestStatus.DROPPED`.  A refused arrival is marked
        ``DROPPED`` (drop policy) or ``REJECTED`` (backpressure).
        """
        displaced: Request | None = None
        if self._depth >= self.capacity:
            if self.policy is AdmissionPolicy.DROP:
                request.status = RequestStatus.DROPPED
                return False, None
            if self.policy is AdmissionPolicy.BACKPRESSURE:
                request.status = RequestStatus.REJECTED
                return False, None
            displaced = self._shed_for(request)
            if displaced is None:
                # Everything queued outranks the newcomer: drop it.
                request.status = RequestStatus.DROPPED
                return False, None
        request.status = RequestStatus.QUEUED
        request.admitted_s = now
        self._classes.setdefault(request.priority, deque()).append(request)
        self._depth += 1
        return True, displaced

    def _shed_for(self, incoming: Request) -> Request | None:
        """Displace the oldest request of the least-important class that
        the incoming request is allowed to replace."""
        for priority in sorted(self._classes, reverse=True):
            queue = self._classes[priority]
            if queue and priority >= incoming.priority:
                victim = queue.popleft()
                self._depth -= 1
                victim.status = RequestStatus.DROPPED
                return victim
        return None

    # ----------------------------------------------------------- service

    def expire(self, now: float) -> list[Request]:
        """Remove and return every queued request whose deadline passed."""
        expired: list[Request] = []
        for priority, queue in self._classes.items():
            if not queue:
                continue
            keep: deque[Request] = deque()
            for request in queue:
                if request.deadline_s < now:
                    request.status = RequestStatus.EXPIRED
                    expired.append(request)
                else:
                    keep.append(request)
            self._classes[priority] = keep
        self._depth -= len(expired)
        return expired

    def pop(self, limit: int) -> list[Request]:
        """Dequeue up to ``limit`` requests, priority then FIFO order."""
        if limit < 1:
            raise ConfigurationError(f"pop limit must be >= 1, got {limit}")
        batch: list[Request] = []
        for priority in sorted(self._classes):
            queue = self._classes[priority]
            while queue and len(batch) < limit:
                batch.append(queue.popleft())
            if len(batch) >= limit:
                break
        self._depth -= len(batch)
        return batch

    def oldest_admitted_s(self) -> float:
        """Admission time of the longest-waiting request (inf if empty)."""
        oldest = float("inf")
        for queue in self._classes.values():
            if queue:
                oldest = min(oldest, queue[0].admitted_s)
        return oldest

    def earliest_deadline_s(self) -> float:
        """Tightest absolute deadline among queued requests (inf if empty)."""
        earliest = float("inf")
        for queue in self._classes.values():
            for request in queue:
                earliest = min(earliest, request.deadline_s)
        return earliest
