"""Model replicas: calibrated batch-latency models on real hardware specs.

A replica is one copy of the autopilot pinned to either a testbed GPU
node (:class:`~repro.testbed.hardware.GPUSpec`) or an edge device
(:class:`~repro.edge.devices.DeviceSpec`).  Its cost model is the
affine batch-latency law measured on real serving systems::

    latency(B) = overhead_s + B * per_item_s        (+ network, + jitter)

On a GPU the per-batch overhead (kernel launch + framework dispatch)
dominates small batches — that is the amortisation micro-batching
exploits.  On a serial edge CPU ``per_item_s`` dominates, so batching
buys nothing: the same law captures both regimes.

Replicas placed behind a :class:`~repro.net.topology.Route` additionally
pay the sampled RTT and the serialisation time of the batched frames,
composing the ``net`` link models into fleet latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError, ReplicaStateError
from repro.common.rng import ensure_rng
from repro.edge.devices import DeviceSpec
from repro.inference.backends import (
    FRAME_WIRE_BYTES,
    RESPONSE_WIRE_BYTES,
    SOFTWARE_OVERHEAD_S,
)
from repro.net.topology import Route
from repro.serve.batcher import MicroBatcher
from repro.serve.queueing import AdmissionQueue
from repro.serve.request import Request
from repro.testbed.hardware import GPUSpec

__all__ = [
    "BatchLatencyModel",
    "Replica",
    "ReplicaState",
    "BATCH_LAUNCH_S",
    "PER_FRAME_IO_S",
]

#: Kernel-launch + framework dispatch cost paid once per batch on a GPU.
BATCH_LAUNCH_S = 0.003
#: Host-side per-frame marshalling (decode, copy into the batch tensor).
PER_FRAME_IO_S = 1.0e-4


@dataclass(frozen=True)
class BatchLatencyModel:
    """Affine batch-latency law ``overhead + B * per_item`` with jitter.

    ``jitter`` is the sigma of a multiplicative lognormal (mean 1), so
    expected latency equals the deterministic law and ``jitter=0`` is
    exactly reproducible sample-by-sample.
    """

    overhead_s: float
    per_item_s: float
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.overhead_s < 0 or self.per_item_s <= 0 or self.jitter < 0:
            raise ConfigurationError(
                f"invalid batch latency model: overhead={self.overhead_s}, "
                f"per_item={self.per_item_s}, jitter={self.jitter}"
            )

    def mean_latency(self, batch_size: int) -> float:
        """Deterministic latency for a batch of ``batch_size``."""
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        return self.overhead_s + batch_size * self.per_item_s

    def sample(
        self, rng: int | np.random.Generator | None, batch_size: int
    ) -> float:
        """One latency draw for a batch of ``batch_size``."""
        mean = self.mean_latency(batch_size)
        if self.jitter == 0:
            return mean
        gen = ensure_rng(rng)
        return mean * float(gen.lognormal(-0.5 * self.jitter**2, self.jitter))

    def throughput_hz(self, batch_size: int) -> float:
        """Items per second sustained at a fixed batch size."""
        return batch_size / self.mean_latency(batch_size)

    @classmethod
    def from_gpu(
        cls, gpu: GPUSpec, flops_per_frame: float, jitter: float = 0.08
    ) -> "BatchLatencyModel":
        """Calibrate from a testbed GPU spec: launch cost amortises."""
        if flops_per_frame <= 0:
            raise ConfigurationError("flops_per_frame must be positive")
        per_item = flops_per_frame / gpu.effective_flops + PER_FRAME_IO_S
        return cls(SOFTWARE_OVERHEAD_S + BATCH_LAUNCH_S, per_item, jitter)

    @classmethod
    def from_device(
        cls, device: DeviceSpec, flops_per_frame: float, jitter: float = 0.05
    ) -> "BatchLatencyModel":
        """Calibrate from an edge device: serial compute, no amortisation."""
        if flops_per_frame <= 0:
            raise ConfigurationError("flops_per_frame must be positive")
        per_item = flops_per_frame / device.effective_flops + PER_FRAME_IO_S
        return cls(SOFTWARE_OVERHEAD_S, per_item, jitter)


class ReplicaState(enum.Enum):
    """Replica lifecycle driven by the autoscaler (and the fault layer)."""

    PROVISIONING = "provisioning"  # deploy delay still running
    READY = "ready"  # routable
    DRAINING = "draining"  # no new requests; finishing its queue
    RETIRED = "retired"  # gone
    FAILED = "failed"  # crashed by an injected fault; never returns


class Replica:
    """One model replica: bounded queue + micro-batcher + latency model."""

    def __init__(
        self,
        replica_id: str,
        latency_model: BatchLatencyModel,
        queue: AdmissionQueue,
        batcher: MicroBatcher,
        rng: int | np.random.Generator | None = None,
        route: Route | None = None,
        model=None,
        model_version: str = "",
    ) -> None:
        self.replica_id = replica_id
        self.latency_model = latency_model
        self.queue = queue
        self.batcher = batcher
        self.route = route
        # Per-replica model pinning: a rollout can run different registry
        # versions side by side in one fleet.  ``model=None`` falls back
        # to the service-level model; ``model_version`` is the routing
        # label traffic-split and pinned requests match against.  The
        # service warm-compiles a pinned model's execution plans
        # (``DonkeyModel.compile_plans``) before the replica goes live,
        # so ``predict_frames`` runs the compiled fast path from the
        # first batch.
        self.model = model
        self.model_version = model_version
        self.state = ReplicaState.PROVISIONING
        self.busy = False
        self.inflight: tuple[Request, ...] = ()
        self.batches = 0
        self.served = 0
        self.busy_s = 0.0
        self.ready_at = -1.0
        self.hung_until = -1.0
        self._rng = ensure_rng(rng)

    # --------------------------------------------------------- lifecycle

    def mark_ready(self, now: float) -> None:
        """Finish provisioning and become routable."""
        if self.state is not ReplicaState.PROVISIONING:
            raise ReplicaStateError(
                f"replica {self.replica_id} cannot become ready from "
                f"{self.state.value}"
            )
        self.state = ReplicaState.READY
        self.ready_at = now

    def drain(self) -> None:
        """Stop accepting work; retire once the queue empties."""
        if self.state is not ReplicaState.READY:
            raise ReplicaStateError(
                f"replica {self.replica_id} cannot drain from {self.state.value}"
            )
        self.state = ReplicaState.DRAINING

    def retire(self) -> None:
        """Leave the fleet (queue must already be empty and idle)."""
        if self.busy or len(self.queue):
            raise ReplicaStateError(
                f"replica {self.replica_id} still has work; drain first"
            )
        self.state = ReplicaState.RETIRED

    def fail(self) -> None:
        """Crash: drop out of the fleet immediately, work already drained.

        The caller (the service's crash handler) is responsible for
        requeueing the in-flight batch and queued requests *before*
        failing the replica.
        """
        if self.state in (ReplicaState.RETIRED, ReplicaState.FAILED):
            raise ReplicaStateError(
                f"replica {self.replica_id} cannot crash from {self.state.value}"
            )
        self.state = ReplicaState.FAILED
        self.busy = False
        self.inflight = ()

    def is_hung(self, now: float) -> bool:
        """Whether an injected hang currently freezes this replica."""
        return now < self.hung_until

    @property
    def routable(self) -> bool:
        """Whether the router may send new requests here.

        State-based only; the service additionally excludes hung
        replicas and open circuits via ``routable_replicas``.
        """
        return self.state is ReplicaState.READY

    @property
    def load(self) -> int:
        """Outstanding work: queued plus in-flight requests."""
        return len(self.queue) + len(self.inflight)

    # ----------------------------------------------------------- latency

    def expected_latency(self, batch_size: int) -> float:
        """Deterministic latency estimate for planning (no jitter)."""
        latency = self.latency_model.mean_latency(batch_size)
        if self.route is not None:
            latency += self.route.base_rtt_s + self._wire_time(batch_size)
        return latency

    def sample_batch_latency(self, batch_size: int) -> float:
        """One end-to-end latency draw for a batch, network included."""
        if self.state not in (ReplicaState.READY, ReplicaState.DRAINING):
            raise ReplicaStateError(
                f"replica {self.replica_id} is {self.state.value}; cannot serve"
            )
        latency = self.latency_model.sample(self._rng, batch_size)
        if self.route is not None:
            latency += float(self.route.sample_rtt(self._rng)[0])
            latency += self._wire_time(batch_size)
        return latency

    def _wire_time(self, batch_size: int) -> float:
        wire_bytes = batch_size * (FRAME_WIRE_BYTES + RESPONSE_WIRE_BYTES)
        return 8.0 * wire_bytes / self.route.bottleneck_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Replica({self.replica_id}, {self.state.value}, load={self.load}, "
            f"served={self.served})"
        )
