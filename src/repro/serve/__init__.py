"""Fleet-scale inference serving on the discrete-event clock.

Queueing, dynamic micro-batching, replica routing, autoscaling, and
streaming SLO accounting for the paper's fleet-learning north star:
many vehicles sharing a pool of cloud/edge model replicas.  Fully
deterministic — every random draw is seeded, every timestamp simulated.
"""

from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.batcher import BATCH_POLICIES, BatchDecision, MicroBatcher
from repro.serve.chaos import ChaosScenario, ChaosSummary, default_plan, run_chaos
from repro.serve.queueing import QUEUE_POLICIES, AdmissionPolicy, AdmissionQueue
from repro.serve.replica import BatchLatencyModel, Replica, ReplicaState
from repro.serve.request import Request, RequestStatus
from repro.serve.router import (
    ROUTER_NAMES,
    LatencyEwmaRouter,
    LeastOutstandingRouter,
    RoundRobinRouter,
    Router,
    TrafficSplitRouter,
    make_router,
)
from repro.serve.service import InferenceService, ServeSummary
from repro.serve.slo import SloTracker, StreamingHistogram
from repro.serve.workload import PoissonWorkload, VehicleFleetWorkload, Workload

__all__ = [
    "AdmissionPolicy",
    "AdmissionQueue",
    "AutoscalePolicy",
    "Autoscaler",
    "BATCH_POLICIES",
    "BatchDecision",
    "BatchLatencyModel",
    "ChaosScenario",
    "ChaosSummary",
    "InferenceService",
    "LatencyEwmaRouter",
    "LeastOutstandingRouter",
    "MicroBatcher",
    "PoissonWorkload",
    "QUEUE_POLICIES",
    "ROUTER_NAMES",
    "Replica",
    "ReplicaState",
    "Request",
    "RequestStatus",
    "RoundRobinRouter",
    "Router",
    "ServeSummary",
    "SloTracker",
    "StreamingHistogram",
    "TrafficSplitRouter",
    "VehicleFleetWorkload",
    "Workload",
    "default_plan",
    "make_router",
    "run_chaos",
]
