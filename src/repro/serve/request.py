"""Request lifecycle records for the serving subsystem.

A :class:`Request` is one inference call travelling through the fleet:
born at a workload generator, admitted (or not) into a replica's
bounded queue, dispatched inside a micro-batch, and completed when the
batch's simulated latency elapses.  Every transition stamps the
simulated time, so latency decomposition (queue wait vs batch compute)
and the no-loss/no-double-serve invariants are checkable after the
fact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["Request", "RequestStatus", "TERMINAL_STATUSES"]


class RequestStatus(enum.Enum):
    """Lifecycle of one inference request."""

    PENDING = "pending"  # created, not yet offered to a queue
    QUEUED = "queued"  # admitted into a replica's queue
    DISPATCHED = "dispatched"  # inside a micro-batch on a replica
    COMPLETED = "completed"  # response delivered
    DROPPED = "dropped"  # rejected or displaced at admission
    REJECTED = "rejected"  # backpressure: sender told to back off
    EXPIRED = "expired"  # deadline passed while still queued


#: Statuses a request can end in (exactly one per request).
TERMINAL_STATUSES = frozenset(
    {
        RequestStatus.COMPLETED,
        RequestStatus.DROPPED,
        RequestStatus.REJECTED,
        RequestStatus.EXPIRED,
    }
)


@dataclass
class Request:
    """One inference request with its lifecycle timestamps.

    Attributes
    ----------
    request_id:
        Deterministic id (``req-0001`` style).
    source:
        Originating entity (vehicle id or generator label).
    arrival_s:
        Simulated time the request entered the system.
    deadline_s:
        Absolute simulated deadline; completions after it count as
        deadline misses, and requests still queued past it expire.
    priority:
        Smaller is more important; FIFO order holds within a class.
    frame:
        Optional camera frame for real model forward passes.
    pin_version:
        When non-empty, only replicas pinned to this model version may
        serve the request (shadow traffic uses this to hit candidates).
    """

    request_id: str
    source: str
    arrival_s: float
    deadline_s: float
    priority: int = 0
    frame: np.ndarray | None = None
    pin_version: str = ""
    status: RequestStatus = RequestStatus.PENDING
    admitted_s: float = -1.0
    dispatched_s: float = -1.0
    completed_s: float = -1.0
    replica_id: str = ""
    batch_id: str = ""
    angle: float = 0.0
    throttle: float = 0.0

    @property
    def latency_s(self) -> float:
        """End-to-end latency (arrival to completion), -1 if unfinished."""
        if self.completed_s < 0:
            return -1.0
        return self.completed_s - self.arrival_s

    @property
    def queue_wait_s(self) -> float:
        """Time spent queued before dispatch, -1 if never dispatched."""
        if self.dispatched_s < 0 or self.admitted_s < 0:
            return -1.0
        return self.dispatched_s - self.admitted_s

    @property
    def met_deadline(self) -> bool:
        """Completed at or before the absolute deadline."""
        return (
            self.status is RequestStatus.COMPLETED
            and self.completed_s <= self.deadline_s
        )
