"""Dynamic micro-batching policies.

A GPU replica pays a fixed per-batch overhead (kernel launch, framework
dispatch, response framing) plus a small amortised per-item cost, so
serving requests one at a time wastes most of the accelerator
(Clipper-style adaptive batching).  The :class:`MicroBatcher` decides,
every time a replica goes idle or a request arrives, whether to fire a
batch *now* or to wait for more arrivals:

* ``single`` — batch size 1, immediately (the no-batching baseline);
* ``size``   — greedily batch everything queued, up to the cap, without
  waiting (TF-Serving "no timeout" mode: batches form from backlog);
* ``wait``   — hold the queue open until the oldest request has waited
  ``max_wait_s`` or the cap fills, whichever first;
* ``adaptive`` — deadline- and rate-aware: wait only while the earliest
  queued deadline still leaves slack after the expected batch latency,
  bounded by the estimated time for the batch to fill at the recent
  arrival rate.

Decisions are pure functions of queue state + simulated time, so the
whole pipeline stays deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

__all__ = ["BatchDecision", "MicroBatcher", "BATCH_POLICIES", "make_batcher"]

BATCH_POLICIES = ("single", "size", "wait", "adaptive")

#: Decisions closer than this to "now" fire immediately (guards against
#: zero-length wake loops from floating-point slack).
_EPSILON_S = 1e-9


@dataclass(frozen=True)
class BatchDecision:
    """Outcome of one batching decision.

    ``size > 0`` means dispatch a batch of that many requests now;
    otherwise wait, re-evaluating at ``wake_at`` (``inf`` = only when a
    new arrival or completion changes the queue).
    """

    size: int
    wake_at: float = math.inf


class MicroBatcher:
    """Per-replica micro-batching policy with an arrival-rate estimator."""

    def __init__(
        self,
        policy: str = "adaptive",
        max_batch: int = 32,
        max_wait_s: float = 0.008,
        safety_margin_s: float = 0.001,
        ewma_alpha: float = 0.2,
    ) -> None:
        if policy not in BATCH_POLICIES:
            raise ConfigurationError(
                f"unknown batch policy {policy!r}; choose from {BATCH_POLICIES}"
            )
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0 or safety_margin_s < 0 or not 0 < ewma_alpha <= 1:
            raise ConfigurationError("invalid micro-batcher parameters")
        self.policy = policy
        self.max_batch = 1 if policy == "single" else int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.safety_margin_s = float(safety_margin_s)
        self.ewma_alpha = float(ewma_alpha)
        self._interarrival_ewma: float | None = None
        self._last_arrival_s: float | None = None

    # ----------------------------------------------------- rate tracking

    def observe_arrival(self, now: float) -> None:
        """Feed one admission timestamp into the arrival-rate EWMA."""
        if self._last_arrival_s is not None:
            gap = max(now - self._last_arrival_s, 1e-6)
            if self._interarrival_ewma is None:
                self._interarrival_ewma = gap
            else:
                self._interarrival_ewma = (
                    1 - self.ewma_alpha
                ) * self._interarrival_ewma + self.ewma_alpha * gap
        self._last_arrival_s = now

    @property
    def arrival_rate_hz(self) -> float:
        """Estimated recent arrival rate (0 until two arrivals seen)."""
        if self._interarrival_ewma is None:
            return 0.0
        return 1.0 / self._interarrival_ewma

    # --------------------------------------------------------- decisions

    def decide(
        self,
        depth: int,
        now: float,
        oldest_admitted_s: float,
        earliest_deadline_s: float,
        expected_latency_s: float,
    ) -> BatchDecision:
        """Dispatch now, or wait?  Pure function of the given state."""
        if depth <= 0:
            return BatchDecision(0, math.inf)
        if self.policy == "single":
            return BatchDecision(1)
        if depth >= self.max_batch or self.policy == "size":
            return BatchDecision(min(depth, self.max_batch))
        if self.policy == "wait":
            window_ends = oldest_admitted_s + self.max_wait_s
            if now + _EPSILON_S >= window_ends:
                return BatchDecision(depth)
            return BatchDecision(0, window_ends)
        # adaptive: wait while the tightest deadline still affords it.
        slack = earliest_deadline_s - now - expected_latency_s - self.safety_margin_s
        if slack <= _EPSILON_S:
            return BatchDecision(depth)
        rate = self.arrival_rate_hz
        fill = (self.max_batch - depth) / rate if rate > 0 else math.inf
        wait = min(slack, fill, 2.0 * self.max_wait_s)
        if wait <= _EPSILON_S:
            return BatchDecision(depth)
        return BatchDecision(0, now + wait)


def make_batcher(
    policy: str = "adaptive", max_batch: int = 32, max_wait_s: float = 0.008
) -> MicroBatcher:
    """Build a :class:`MicroBatcher` for one replica."""
    return MicroBatcher(policy=policy, max_batch=max_batch, max_wait_s=max_wait_s)
