"""Replica routing: which copy of the model serves this request.

Routers see only replicas that are currently routable (READY); the
fleet can grow and shrink under them as the autoscaler acts.  All three
are deterministic given the same request sequence:

* ``round-robin`` — rotate through the fleet in id order;
* ``least-outstanding`` — fewest queued + in-flight requests (the
  classic load-aware default);
* ``latency-ewma`` — lowest exponentially-weighted recent batch
  latency, exploring unseen replicas first (routes around a slow or
  far-away replica without explicit health checks).
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.serve.replica import Replica
from repro.serve.request import Request

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingRouter",
    "LatencyEwmaRouter",
    "ROUTER_NAMES",
    "make_router",
]

ROUTER_NAMES = ("round-robin", "least-outstanding", "latency-ewma")


class Router:
    """Routing policy interface."""

    name = "base"

    def route(
        self, replicas: list[Replica], request: Request, now: float
    ) -> Replica | None:
        """Pick a replica for ``request`` (None if none are routable)."""
        raise NotImplementedError

    def observe_batch(self, replica: Replica, latency_s: float) -> None:
        """Feedback hook: a batch completed on ``replica``."""


class RoundRobinRouter(Router):
    """Rotate through routable replicas."""

    name = "round-robin"

    def __init__(self) -> None:
        self._turn = 0

    def route(
        self, replicas: list[Replica], request: Request, now: float
    ) -> Replica | None:
        if not replicas:
            return None
        choice = replicas[self._turn % len(replicas)]
        self._turn += 1
        return choice


class LeastOutstandingRouter(Router):
    """Fewest queued + in-flight requests; first listed wins ties."""

    name = "least-outstanding"

    def route(
        self, replicas: list[Replica], request: Request, now: float
    ) -> Replica | None:
        if not replicas:
            return None
        return min(replicas, key=lambda replica: replica.load)


class LatencyEwmaRouter(Router):
    """Lowest EWMA of observed batch latency; unseen replicas first."""

    name = "latency-ewma"

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._ewma: dict[str, float] = {}

    def route(
        self, replicas: list[Replica], request: Request, now: float
    ) -> Replica | None:
        if not replicas:
            return None
        for replica in replicas:
            if replica.replica_id not in self._ewma:
                return replica  # explore before exploiting
        return min(replicas, key=lambda replica: self._ewma[replica.replica_id])

    def observe_batch(self, replica: Replica, latency_s: float) -> None:
        previous = self._ewma.get(replica.replica_id)
        if previous is None:
            self._ewma[replica.replica_id] = latency_s
        else:
            self._ewma[replica.replica_id] = (
                1 - self.alpha
            ) * previous + self.alpha * latency_s


def make_router(name: str) -> Router:
    """Build a router by policy name."""
    if name == "round-robin":
        return RoundRobinRouter()
    if name == "least-outstanding":
        return LeastOutstandingRouter()
    if name == "latency-ewma":
        return LatencyEwmaRouter()
    raise ConfigurationError(
        f"unknown router {name!r}; choose from {ROUTER_NAMES}"
    )
