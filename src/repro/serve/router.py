"""Replica routing: which copy of the model serves this request.

Routers see only replicas that are currently routable (READY); the
fleet can grow and shrink under them as the autoscaler acts.  All three
are deterministic given the same request sequence:

* ``round-robin`` — rotate through the fleet in id order;
* ``least-outstanding`` — fewest queued + in-flight requests (the
  classic load-aware default);
* ``latency-ewma`` — lowest exponentially-weighted recent batch
  latency, exploring unseen replicas first (routes around a slow or
  far-away replica without explicit health checks).
* ``traffic-split`` — weighted split across *model versions* (canary
  rollouts): a deficit counter keeps realised shares within one request
  of the configured weights, and requests with a ``pin_version`` only
  ever reach replicas pinned to that version (shadow traffic).
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.serve.replica import Replica
from repro.serve.request import Request

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingRouter",
    "LatencyEwmaRouter",
    "TrafficSplitRouter",
    "ROUTER_NAMES",
    "make_router",
]

ROUTER_NAMES = (
    "round-robin",
    "least-outstanding",
    "latency-ewma",
    "traffic-split",
)


class Router:
    """Routing policy interface."""

    name = "base"

    def route(
        self, replicas: list[Replica], request: Request, now: float
    ) -> Replica | None:
        """Pick a replica for ``request`` (None if none are routable)."""
        raise NotImplementedError

    def observe_batch(self, replica: Replica, latency_s: float) -> None:
        """Feedback hook: a batch completed on ``replica``."""


class RoundRobinRouter(Router):
    """Rotate through routable replicas."""

    name = "round-robin"

    def __init__(self) -> None:
        self._turn = 0

    def route(
        self, replicas: list[Replica], request: Request, now: float
    ) -> Replica | None:
        if not replicas:
            return None
        choice = replicas[self._turn % len(replicas)]
        self._turn += 1
        return choice


class LeastOutstandingRouter(Router):
    """Fewest queued + in-flight requests; first listed wins ties."""

    name = "least-outstanding"

    def route(
        self, replicas: list[Replica], request: Request, now: float
    ) -> Replica | None:
        if not replicas:
            return None
        return min(replicas, key=lambda replica: replica.load)


class LatencyEwmaRouter(Router):
    """Lowest EWMA of observed batch latency; unseen replicas first."""

    name = "latency-ewma"

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._ewma: dict[str, float] = {}

    def route(
        self, replicas: list[Replica], request: Request, now: float
    ) -> Replica | None:
        if not replicas:
            return None
        for replica in replicas:
            if replica.replica_id not in self._ewma:
                return replica  # explore before exploiting
        return min(replicas, key=lambda replica: self._ewma[replica.replica_id])

    def observe_batch(self, replica: Replica, latency_s: float) -> None:
        previous = self._ewma.get(replica.replica_id)
        if previous is None:
            self._ewma[replica.replica_id] = latency_s
        else:
            self._ewma[replica.replica_id] = (
                1 - self.alpha
            ) * previous + self.alpha * latency_s


class TrafficSplitRouter(Router):
    """Deterministic weighted split across model versions.

    ``weights`` maps a model-version label to a non-negative share.
    Unpinned requests go to the live weighted version with the largest
    deficit (configured share × requests seen − requests sent), so the
    realised split tracks the weights within one request at any prefix
    of the sequence.  Within the chosen version group, ``inner`` (least
    outstanding by default) balances load.  Pinned requests bypass the
    split entirely: they route only inside their version's group, and
    are lost if that group has no routable replica.
    """

    name = "traffic-split"

    def __init__(
        self, weights: dict[str, float], inner: Router | None = None
    ) -> None:
        if not weights:
            raise ConfigurationError("traffic-split needs at least one weight")
        for version, weight in sorted(weights.items()):
            if weight < 0:
                raise ConfigurationError(
                    f"weight for version {version!r} must be >= 0, got {weight}"
                )
        if sum(weights.values()) <= 0:
            raise ConfigurationError("traffic-split weights must sum > 0")
        self.weights = dict(weights)
        self.inner = inner if inner is not None else LeastOutstandingRouter()
        self._seen = 0
        self._sent: dict[str, int] = {}

    def set_weights(self, weights: dict[str, float]) -> None:
        """Swap the split (a rollout stage change); deficits reset."""
        if not weights or sum(weights.values()) <= 0:
            raise ConfigurationError("traffic-split weights must sum > 0")
        self.weights = dict(weights)
        self._seen = 0
        self._sent = {}

    def route(
        self, replicas: list[Replica], request: Request, now: float
    ) -> Replica | None:
        if not replicas:
            return None
        groups: dict[str, list[Replica]] = {}
        for replica in replicas:
            groups.setdefault(replica.model_version, []).append(replica)
        if request.pin_version:
            pinned = groups.get(request.pin_version)
            if not pinned:
                return None
            return self.inner.route(pinned, request, now)
        live = [v for v in sorted(groups) if self.weights.get(v, 0.0) > 0]
        if not live:
            # No weighted version has a routable replica (e.g. every
            # canary crashed): fail over to the whole fleet.
            return self.inner.route(replicas, request, now)
        total = sum(self.weights[version] for version in live)
        self._seen += 1
        chosen = max(
            live,
            key=lambda v: (self.weights[v] / total) * self._seen
            - self._sent.get(v, 0),
        )
        self._sent[chosen] = self._sent.get(chosen, 0) + 1
        return self.inner.route(groups[chosen], request, now)

    def observe_batch(self, replica: Replica, latency_s: float) -> None:
        self.inner.observe_batch(replica, latency_s)


def make_router(name: str) -> Router:
    """Build a router by policy name."""
    if name == "round-robin":
        return RoundRobinRouter()
    if name == "least-outstanding":
        return LeastOutstandingRouter()
    if name == "latency-ewma":
        return LatencyEwmaRouter()
    if name == "traffic-split":
        # Everything on the default (unpinned) version until a rollout
        # installs real weights via set_weights.
        return TrafficSplitRouter({"": 1.0})
    raise ConfigurationError(
        f"unknown router {name!r}; choose from {ROUTER_NAMES}"
    )
