"""Chaos scenarios: a fault plan played against a serving fleet.

A :class:`ChaosScenario` bundles one serving configuration with one
:class:`~repro.faults.plan.FaultPlan`; :func:`run_chaos` plays it on a
fresh :class:`~repro.common.clock.EventScheduler` and returns a
:class:`ChaosSummary` whose :meth:`~ChaosSummary.to_text` is
byte-identical per seed — the property ``autolearn chaos`` and the
chaos regression suite pin.

Every run re-checks request conservation: each admitted request ends in
exactly one terminal status, completions are unique, and the SLO
counters satisfy ``offered == completed + dropped + shed + rejected +
expired``.  A violation raises :class:`~repro.common.errors.FaultError`
— losing a request during a crash is a bug in the rescue path, not an
acceptable outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import EventScheduler
from repro.common.errors import ConfigurationError, FaultError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.replica import BatchLatencyModel
from repro.serve.request import TERMINAL_STATUSES, RequestStatus
from repro.serve.service import InferenceService, ServeSummary
from repro.serve.workload import VehicleFleetWorkload
from repro.testbed.hardware import gpu_spec

__all__ = ["ChaosScenario", "ChaosSummary", "default_plan", "run_chaos"]


def default_plan(replicas: int) -> FaultPlan:
    """The stock scenario: one crash, one hang, one slow-node window."""
    if replicas < 1:
        raise ConfigurationError(f"need >= 1 replica, got {replicas}")
    specs = [
        FaultSpec(FaultKind.SLOW_NODE, "replica-*", at_s=2.0,
                  duration_s=2.0, factor=4.0),
        FaultSpec(FaultKind.REPLICA_HANG, "replica:any", at_s=3.0,
                  duration_s=1.5),
    ]
    if replicas > 1:
        specs.append(FaultSpec(FaultKind.REPLICA_CRASH, "replica:any", at_s=5.0))
    return FaultPlan(specs)


@dataclass(frozen=True)
class ChaosScenario:
    """One serving configuration plus the faults played against it."""

    name: str = "default"
    duration_s: float = 10.0
    vehicles: int = 64
    replicas: int = 3
    router: str = "least-outstanding"
    batch_policy: str = "adaptive"
    queue_capacity: int = 256
    queue_policy: str = "drop"
    deadline_ticks: int = 4
    gpu: str = "V100"
    flops_per_frame: float = 1e8
    plan: FaultPlan = field(default_factory=FaultPlan)
    autoscale: bool = True
    max_replicas: int = 8
    provision_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if self.vehicles < 1 or self.replicas < 1:
            raise ConfigurationError(
                f"need >= 1 vehicle and replica, got "
                f"{self.vehicles}/{self.replicas}"
            )

    def to_dict(self) -> dict:
        """JSON-ready view (scenario files)."""
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "vehicles": self.vehicles,
            "replicas": self.replicas,
            "router": self.router,
            "batch_policy": self.batch_policy,
            "queue_capacity": self.queue_capacity,
            "queue_policy": self.queue_policy,
            "deadline_ticks": self.deadline_ticks,
            "gpu": self.gpu,
            "flops_per_frame": self.flops_per_frame,
            "faults": self.plan.to_dicts(),
            "autoscale": self.autoscale,
            "max_replicas": self.max_replicas,
            "provision_delay_s": self.provision_delay_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosScenario":
        """Parse a scenario file (unknown keys rejected)."""
        payload = dict(payload)
        plan = FaultPlan.from_dicts(payload.pop("faults", []))
        known = {
            "name", "duration_s", "vehicles", "replicas", "router",
            "batch_policy", "queue_capacity", "queue_policy",
            "deadline_ticks", "gpu", "flops_per_frame", "autoscale",
            "max_replicas", "provision_delay_s",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario keys: {sorted(unknown)}"
            )
        return cls(plan=plan, **payload)


@dataclass
class ChaosSummary:
    """Deterministic end-of-run report for one chaos scenario."""

    scenario: str
    seed: int
    planned: int
    started: int
    cleared: int
    serve: ServeSummary
    fresh_response_ratio: float
    max_stale_streak: int
    lost_responses: int
    conserved: bool
    stale_ratio: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready view."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "planned": self.planned,
            "started": self.started,
            "cleared": self.cleared,
            "serve": self.serve.to_dict(),
            "fresh_response_ratio": self.fresh_response_ratio,
            "max_stale_streak": self.max_stale_streak,
            "lost_responses": self.lost_responses,
            "conserved": self.conserved,
            "stale_ratio": self.stale_ratio,
        }

    def to_text(self) -> str:
        """Fixed-format report; byte-identical across same-seed runs."""
        lines = [
            f"chaos scenario {self.scenario!r} seed={self.seed}",
            f"  plan      faults={self.planned} started={self.started} "
            f"cleared={self.cleared}",
            f"  impact    crashes={self.serve.crashes} "
            f"hangs={self.serve.hangs} requeued={self.serve.requeued}",
            f"  vehicles  fresh_ratio={self.fresh_response_ratio:.4f} "
            f"max_stale_streak={self.max_stale_streak} "
            f"lost={self.lost_responses}",
            f"  conserved {'yes' if self.conserved else 'NO'}",
        ]
        serve_text = self.serve.to_text().rstrip("\n")
        lines.extend("  " + line for line in serve_text.split("\n"))
        return "\n".join(lines) + "\n"


def _check_conservation(service: InferenceService) -> None:
    """Raise :class:`FaultError` unless every request is accounted for."""
    slo = service.slo
    if slo.offered != slo.completed + slo.losses:
        raise FaultError(
            f"conservation violated: offered={slo.offered} != "
            f"completed={slo.completed} + losses={slo.losses}"
        )
    non_terminal = [
        request.request_id
        for request in service.requests
        if request.status not in TERMINAL_STATUSES
    ]
    if non_terminal:
        raise FaultError(
            f"{len(non_terminal)} requests never reached a terminal "
            f"status: {non_terminal[:5]}"
        )
    completed = [
        request.request_id
        for request in service.requests
        if request.status is RequestStatus.COMPLETED
    ]
    if len(completed) != len(set(completed)):
        raise FaultError("a request completed more than once")


def run_chaos(
    scenario: ChaosScenario,
    seed: int = 0,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    scheduler: EventScheduler | None = None,
) -> ChaosSummary:
    """Play one scenario; returns a per-seed byte-identical summary.

    A ``tracer`` is threaded through both the injector (fault
    start/clear instants) and the service (replica, batch, hang spans);
    ``metrics`` collects the serving counters.  Pass the ``scheduler``
    explicitly when tracing so the tracer can be built on the run's own
    clock; the caller owns any still-open spans at return — call
    ``tracer.close_all()`` when the run is over.
    """
    if scheduler is None:
        scheduler = EventScheduler()
    injector = FaultInjector(scenario.plan, seed=seed, tracer=tracer)
    latency_model = BatchLatencyModel.from_gpu(
        gpu_spec(scenario.gpu), flops_per_frame=scenario.flops_per_frame
    )
    service = InferenceService(
        latency_model,
        scheduler=scheduler,
        n_replicas=scenario.replicas,
        router=scenario.router,
        batch_policy=scenario.batch_policy,
        queue_capacity=scenario.queue_capacity,
        queue_policy=scenario.queue_policy,
        seed=seed,
        keep_requests=True,
        injector=injector,
        tracer=tracer,
        metrics=metrics,
    )
    workload = VehicleFleetWorkload(
        scenario.vehicles,
        deadline_ticks=scenario.deadline_ticks,
        seed=seed,
    )
    autoscaler = None
    if scenario.autoscale:
        autoscaler = Autoscaler(service, AutoscalePolicy(
            min_replicas=scenario.replicas,
            max_replicas=scenario.max_replicas,
            provision_delay_s=scenario.provision_delay_s,
        ))
    summary = service.run(workload, scenario.duration_s, autoscaler=autoscaler)
    _check_conservation(service)
    return ChaosSummary(
        scenario=scenario.name,
        seed=int(seed),
        planned=len(scenario.plan),
        started=injector.started,
        cleared=injector.cleared,
        serve=summary,
        fresh_response_ratio=workload.fresh_response_ratio,
        max_stale_streak=workload.stats.max_stale_streak,
        lost_responses=workload.stats.lost_responses,
        conserved=True,
        stale_ratio=workload.stale_ratio,
    )
