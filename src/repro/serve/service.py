"""The inference service: replicas + router + batching on the event loop.

:class:`InferenceService` wires the serving pieces together over one
:class:`~repro.common.clock.EventScheduler`:

1. a workload generator submits a :class:`~repro.serve.request.Request`;
2. the router picks a routable replica, whose bounded queue admits or
   refuses it;
3. the replica's micro-batcher decides to fire now or to wake later;
4. a dispatched batch occupies the replica for one sampled batch
   latency (optionally running a *real* batched model forward pass for
   the responses), then completions feed the SLO tracker, the router's
   latency feedback, and the workload's closed loop.

Every decision is a pure function of queue state and simulated time,
and every random draw comes from seeded per-replica streams keyed by
``seed_from_name`` — so the same seed yields a byte-identical
:class:`ServeSummary`, independent of fleet size or scaling history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.common.clock import EventScheduler, ScheduledEvent
from repro.common.errors import ConfigurationError
from repro.common.eventlog import EventLog
from repro.common.ids import IdFactory
from repro.common.rng import seed_from_name
from repro.faults.breaker import BreakerPolicy, CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultSpec
from repro.net.topology import Route
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import STATUS_ERROR, Span
from repro.obs.tracer import NullTracer, Tracer
from repro.serve.autoscale import Autoscaler
from repro.serve.batcher import MicroBatcher
from repro.serve.queueing import AdmissionQueue
from repro.serve.replica import BatchLatencyModel, Replica, ReplicaState
from repro.serve.request import Request, RequestStatus
from repro.serve.router import Router, make_router
from repro.serve.slo import SloTracker
from repro.serve.workload import Workload

__all__ = ["InferenceService", "ServeSummary"]


@dataclass
class ServeSummary:
    """Deterministic end-of-run report for one serving experiment."""

    router: str
    batch_policy: str
    duration_s: float
    elapsed_s: float
    offered: int
    completed: int
    deadline_met: int
    dropped: int
    shed: int
    rejected: int
    expired: int
    goodput_hz: float
    throughput_hz: float
    deadline_miss_rate: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    mean_ms: float
    batches: int
    mean_batch: float
    replicas: int
    scale_ups: int = 0
    scale_downs: int = 0
    stale_ticks: int = 0
    crashes: int = 0
    hangs: int = 0
    requeued: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready view (used by the benchmark emitter)."""
        out = {
            "router": self.router,
            "batch_policy": self.batch_policy,
            "duration_s": self.duration_s,
            "elapsed_s": self.elapsed_s,
            "offered": self.offered,
            "completed": self.completed,
            "deadline_met": self.deadline_met,
            "dropped": self.dropped,
            "shed": self.shed,
            "rejected": self.rejected,
            "expired": self.expired,
            "goodput_hz": self.goodput_hz,
            "throughput_hz": self.throughput_hz,
            "deadline_miss_rate": self.deadline_miss_rate,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
            "mean_ms": self.mean_ms,
            "batches": self.batches,
            "mean_batch": self.mean_batch,
            "replicas": self.replicas,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "stale_ticks": self.stale_ticks,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "requeued": self.requeued,
        }
        out.update(self.extras)
        return out

    def to_text(self) -> str:
        """Fixed-format report; byte-identical across same-seed runs."""
        lines = [
            "serve summary",
            f"  config    router={self.router} batch={self.batch_policy} "
            f"replicas={self.replicas}",
            f"  duration  {self.duration_s:.3f}s simulated "
            f"({self.elapsed_s:.3f}s to drain)",
            f"  offered   {self.offered}",
            f"  completed {self.completed} "
            f"(goodput {self.goodput_hz:.2f} Hz, "
            f"throughput {self.throughput_hz:.2f} Hz)",
            f"  losses    dropped={self.dropped} shed={self.shed} "
            f"rejected={self.rejected} expired={self.expired}",
            f"  latency   p50={self.p50_ms:.3f}ms p95={self.p95_ms:.3f}ms "
            f"p99={self.p99_ms:.3f}ms max={self.max_ms:.3f}ms "
            f"mean={self.mean_ms:.3f}ms",
            f"  deadlines miss_rate={self.deadline_miss_rate:.4f} "
            f"met={self.deadline_met}",
            f"  batching  batches={self.batches} mean_size={self.mean_batch:.2f}",
            f"  scaling   ups={self.scale_ups} downs={self.scale_downs}",
        ]
        if self.crashes or self.hangs or self.requeued:
            lines.append(
                f"  faults    crashes={self.crashes} hangs={self.hangs} "
                f"requeued={self.requeued}"
            )
        if self.stale_ticks:
            lines.append(f"  vehicles  stale_ticks={self.stale_ticks}")
        return "\n".join(lines) + "\n"


class InferenceService:
    """A fleet of model replicas behind a router, on simulated time."""

    def __init__(
        self,
        latency_model: BatchLatencyModel,
        scheduler: EventScheduler | None = None,
        model=None,
        model_version: str = "",
        n_replicas: int = 1,
        router: str | Router = "least-outstanding",
        batch_policy: str = "adaptive",
        max_batch: int = 32,
        max_wait_s: float = 0.008,
        queue_capacity: int = 256,
        queue_policy: str = "drop",
        route: Route | None = None,
        seed: int = 0,
        log: EventLog | None = None,
        log_requests: bool = False,
        slo_window_s: float = 2.0,
        keep_requests: bool = False,
        injector: FaultInjector | None = None,
        breaker_policy: BreakerPolicy | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        trace_requests: bool = False,
    ) -> None:
        if n_replicas < 1:
            raise ConfigurationError(f"need >= 1 replica, got {n_replicas}")
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        self.latency_model = latency_model
        self.model = model
        self.model_version = model_version
        # Warm-compile the pinned model's execution plans at pin time so
        # the first request never pays compile/alloc cost mid-batch.
        if model is not None and hasattr(model, "compile_plans"):
            model.compile_plans()
        self.router = router if isinstance(router, Router) else make_router(router)
        self.batch_policy = batch_policy
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.queue_capacity = int(queue_capacity)
        self.queue_policy = queue_policy
        self.route = route
        self.seed = int(seed)
        self.log = log
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics
        self._trace_requests = bool(trace_requests) and self.tracer.enabled
        self._batch_spans: dict[str, Span] = {}
        self._replica_spans: dict[str, Span] = {}
        self._request_spans: dict[str, Span] = {}
        self._hang_spans: dict[str, Span] = {}
        self.slo = SloTracker(
            log=log,
            window_s=slo_window_s,
            log_requests=log_requests,
            metrics=metrics,
        )
        self.replicas: list[Replica] = []
        self.requests: list[Request] = []
        self.injector = injector
        self.crashes = 0
        self.hangs = 0
        self._breaker_policy = breaker_policy
        if self._breaker_policy is None and injector is not None:
            self._breaker_policy = BreakerPolicy()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._keep_requests = bool(keep_requests)
        self._ids = IdFactory()
        self._wakes: dict[str, ScheduledEvent] = {}
        self._inflight: dict[str, tuple[ScheduledEvent, list[Request], float]] = {}
        self._hang_resolutions: dict[FaultSpec, list[list[str]]] = {}
        self._workload: Workload | None = None
        for _ in range(n_replicas):
            replica = self._new_replica()
            replica.mark_ready(self.scheduler.clock.now)
        if injector is not None:
            injector.on(FaultKind.REPLICA_CRASH, self._on_crash_fault)
            injector.on(FaultKind.REPLICA_HANG, self._on_hang_fault)
            injector.on_clear(FaultKind.REPLICA_HANG, self._on_hang_clear)
            injector.arm(self.scheduler)

    # ------------------------------------------------------------- fleet

    def _new_replica(
        self, model=None, model_version: str | None = None
    ) -> Replica:
        if model is not None and hasattr(model, "compile_plans"):
            model.compile_plans()
        replica_id = self._ids.next("replica")
        # Seeding by name (not by creation order relative to other draws)
        # keeps each replica's latency stream stable across scaling
        # histories: replica-0003 samples identically whether it was born
        # at t=0 or autoscaled in at t=7.
        replica = Replica(
            replica_id=replica_id,
            latency_model=self.latency_model,
            queue=AdmissionQueue(self.queue_capacity, self.queue_policy),
            batcher=MicroBatcher(
                policy=self.batch_policy,
                max_batch=self.max_batch,
                max_wait_s=self.max_wait_s,
            ),
            rng=seed_from_name(replica_id, self.seed),
            route=self.route,
            model=model,
            model_version=(
                self.model_version if model_version is None else model_version
            ),
        )
        self.replicas.append(replica)
        if self._breaker_policy is not None:
            self._breakers[replica_id] = CircuitBreaker(
                self._breaker_policy, name=replica_id
            )
        if self.tracer.enabled:
            self._replica_spans[replica_id] = self.tracer.start(
                "serve.replica", replica=replica_id
            )
        self._update_replica_gauge()
        return replica

    def _update_replica_gauge(self) -> None:
        if self.metrics is None:
            return
        live = sum(
            1
            for replica in self.replicas
            if replica.state
            in (ReplicaState.PROVISIONING, ReplicaState.READY, ReplicaState.DRAINING)
        )
        self.metrics.gauge("serve.replicas").set(live)

    def _end_replica_span(
        self, replica_id: str, status: str = "ok", error: str = ""
    ) -> None:
        span = self._replica_spans.pop(replica_id, None)
        if span is not None:
            self.tracer.end(span, status=status, error=error)

    def breaker_for(self, replica_id: str) -> CircuitBreaker | None:
        """The per-replica circuit breaker (None without a policy)."""
        return self._breakers.get(replica_id)

    def version_of(self, replica_id: str) -> str:
        """Model-version label of one replica ("" = service default)."""
        for replica in self.replicas:
            if replica.replica_id == replica_id:
                return replica.model_version
        raise ConfigurationError(f"unknown replica {replica_id!r}")

    def add_replica(
        self,
        delay_s: float = 0.0,
        model=None,
        model_version: str | None = None,
    ) -> Replica:
        """Grow the fleet; routable after ``delay_s`` of provisioning.

        ``model``/``model_version`` pin the new replica to a specific
        registry version (canary/shadow fleets); both default to the
        service-level model.
        """
        replica = self._new_replica(model=model, model_version=model_version)
        now = self.scheduler.clock.now
        if delay_s <= 0:
            replica.mark_ready(now)
            return replica

        def ready() -> None:
            replica.mark_ready(self.scheduler.clock.now)
            if self.log is not None:
                self.log.append(
                    self.scheduler.clock.now,
                    "serve.replica.ready",
                    replica.replica_id,
                    "autoscaler",
                )
            self._pump(replica)

        self.scheduler.schedule_in(delay_s, ready, label="serve.provision")
        return replica

    def retire_replica(self) -> Replica | None:
        """Drain the newest routable replica; retires once idle."""
        for replica in reversed(self.replicas):
            if replica.routable:
                replica.drain()
                if not replica.busy and not len(replica.queue):
                    replica.retire()
                    self._end_replica_span(replica.replica_id)
                    self._update_replica_gauge()
                return replica
        return None

    def routable_replicas(self) -> list[Replica]:
        """Replicas the router may currently target.

        Excludes hung replicas and replicas whose circuit is open
        (``peek`` is side-effect-free, so stats polls don't consume
        half-open probes — probe admission happens in :meth:`submit`).
        """
        now = self.scheduler.clock.now
        out = []
        for replica in self.replicas:
            if not replica.routable or replica.is_hung(now):
                continue
            breaker = self._breakers.get(replica.replica_id)
            if breaker is not None and not breaker.peek(now):
                continue
            out.append(replica)
        return out

    def provisioning_count(self) -> int:
        """Replicas still inside their provisioning delay."""
        return sum(
            1
            for replica in self.replicas
            if replica.state is ReplicaState.PROVISIONING
        )

    # ------------------------------------------------------------ intake

    def submit(self, request: Request) -> bool:
        """Offer one request to the fleet; returns True if admitted."""
        now = self.scheduler.clock.now
        self.slo.record_offered(request, now)
        if self._trace_requests:
            self._request_spans[request.request_id] = self.tracer.start(
                "serve.request", request=request.request_id, source=request.source
            )
        if self._keep_requests:
            self.requests.append(request)
        return self._place(request, now)

    def _place(self, request: Request, now: float) -> bool:
        """Route + admit one request (shared by submit and requeue)."""
        replica = self.router.route(self.routable_replicas(), request, now)
        if replica is None:
            request.status = RequestStatus.DROPPED
            self._lose(request, "drop", now)
            return False
        breaker = self._breakers.get(replica.replica_id)
        if breaker is not None and not breaker.allow(now):
            # The router raced a just-consumed half-open probe slot.
            request.status = RequestStatus.DROPPED
            self._lose(request, "drop", now)
            return False
        admitted, displaced = replica.queue.offer(request, now)
        if displaced is not None:
            self._lose(displaced, "shed", now)
        if not admitted:
            kind = "reject" if request.status is RequestStatus.REJECTED else "drop"
            self._lose(request, kind, now)
            return False
        request.replica_id = replica.replica_id
        replica.batcher.observe_arrival(now)
        self._pump(replica)
        return True

    def _lose(self, request: Request, kind: str, now: float) -> None:
        self.slo.record_loss(request, kind, now)
        span = self._request_spans.pop(request.request_id, None)
        if span is not None:
            self.tracer.end(span, status=STATUS_ERROR, error=kind)
        if self._workload is not None:
            self._workload.on_loss(request)

    # ------------------------------------------------------------ faults

    def _fault_targets(self, spec: FaultSpec, rng) -> list[Replica]:
        """Resolve a fault spec's target to live replicas.

        ``"replica:any"`` picks one routable replica from the fault's
        own stream; names and ``*`` wildcards match any replica that is
        ready or draining.
        """
        if spec.target == "replica:any":
            candidates = [r for r in self.replicas if r.routable]
            if not candidates:
                return []
            return [candidates[int(rng.integers(len(candidates)))]]
        return [
            replica
            for replica in self.replicas
            if spec.matches(replica.replica_id)
            and replica.state in (ReplicaState.READY, ReplicaState.DRAINING)
        ]

    def _on_crash_fault(self, spec: FaultSpec, rng) -> None:
        now = self.scheduler.clock.now
        for replica in self._fault_targets(spec, rng):
            self._crash(replica, now)

    def _crash(self, replica: Replica, now: float) -> None:
        """Kill one replica; rescue its queued and in-flight requests."""
        self.crashes += 1
        wake = self._wakes.pop(replica.replica_id, None)
        if wake is not None:
            wake.cancel()
        orphans: list[Request] = []
        entry = self._inflight.pop(replica.replica_id, None)
        if entry is not None:
            event, batch, _ = entry
            event.cancel()
            orphans.extend(batch)
        if len(replica.queue):
            orphans.extend(replica.queue.pop(len(replica.queue)))
        replica.fail()
        batch_span = self._batch_spans.pop(replica.replica_id, None)
        if batch_span is not None:
            self.tracer.end(batch_span, status=STATUS_ERROR, error="crash")
        self._end_replica_span(replica.replica_id, status=STATUS_ERROR, error="crash")
        self._update_replica_gauge()
        if self.metrics is not None:
            self.metrics.counter("serve.faults", kind="crash").inc()
        breaker = self._breakers.get(replica.replica_id)
        if breaker is not None:
            breaker.trip(now)
        if self.log is not None:
            self.log.append(
                now,
                "serve.replica.crash",
                replica.replica_id,
                "injector",
                orphans=len(orphans),
            )
        # Tightest deadline first: the rescue order that never strands an
        # urgent request behind a relaxed one (chaos property-checked).
        orphans.sort(key=lambda r: (r.deadline_s, r.arrival_s, r.request_id))
        for request in orphans:
            self._requeue(request, now)

    def _requeue(self, request: Request, now: float) -> None:
        """Give a rescued request another chance, deadline permitting."""
        self.slo.record_requeue(request, now)
        if request.deadline_s < now:
            request.status = RequestStatus.EXPIRED
            self._lose(request, "expire", now)
            return
        request.status = RequestStatus.PENDING
        request.batch_id = ""
        request.dispatched_s = -1.0
        self._place(request, now)

    def _on_hang_fault(self, spec: FaultSpec, rng) -> None:
        now = self.scheduler.clock.now
        targets = self._fault_targets(spec, rng)
        # Remember the resolution so the clear event thaws the *same*
        # replicas (a second "replica:any" draw could pick differently).
        self._hang_resolutions.setdefault(spec, []).append(
            [replica.replica_id for replica in targets]
        )
        for replica in targets:
            self._hang(replica, now, spec.end_s)

    def _hang(self, replica: Replica, now: float, until_s: float) -> None:
        """Freeze one replica until ``until_s``; in-flight work stalls."""
        self.hangs += 1
        if self.tracer.enabled:
            stale = self._hang_spans.pop(replica.replica_id, None)
            if stale is not None:
                # Overlapping hang: the old window is subsumed by this one.
                self.tracer.end(stale, status=STATUS_ERROR, error="hang")
            self._hang_spans[replica.replica_id] = self.tracer.start(
                "serve.replica.hang", replica=replica.replica_id, until_s=until_s
            )
        if self.metrics is not None:
            self.metrics.counter("serve.faults", kind="hang").inc()
        replica.hung_until = max(replica.hung_until, until_s)
        wake = self._wakes.pop(replica.replica_id, None)
        if wake is not None:
            wake.cancel()
        breaker = self._breakers.get(replica.replica_id)
        if breaker is not None:
            breaker.trip(now)
        entry = self._inflight.pop(replica.replica_id, None)
        if entry is not None:
            # The in-flight batch finishes late by the hang duration.
            event, batch, latency = entry
            event.cancel()
            postponed = self.scheduler.schedule_at(
                event.time + (until_s - now),
                lambda: self._complete(replica, batch, latency),
                label="serve.batch.complete",
            )
            self._inflight[replica.replica_id] = (postponed, batch, latency)
        if self.log is not None:
            self.log.append(
                now,
                "serve.replica.hang",
                replica.replica_id,
                "injector",
                until_s=until_s,
            )

    def _on_hang_clear(self, spec: FaultSpec, rng) -> None:
        now = self.scheduler.clock.now
        resolutions = self._hang_resolutions.get(spec, [])
        replica_ids = resolutions.pop(0) if resolutions else []
        by_id = {replica.replica_id: replica for replica in self.replicas}
        for replica_id in replica_ids:
            span = self._hang_spans.pop(replica_id, None)
            if span is not None:
                # The hang window itself is an error-status interval,
                # whatever became of the replica afterwards.
                self.tracer.end(span, status=STATUS_ERROR, error="hang")
            replica = by_id.get(replica_id)
            if replica is None or replica.state is ReplicaState.FAILED:
                continue
            if not replica.is_hung(now):
                if self.log is not None:
                    self.log.append(
                        now, "serve.replica.thaw", replica.replica_id, "injector"
                    )
                self._pump(replica)

    # ---------------------------------------------------------- batching

    def _pump(self, replica: Replica) -> None:
        """Re-evaluate one replica's batching decision."""
        if replica.busy or replica.state not in (
            ReplicaState.READY,
            ReplicaState.DRAINING,
        ):
            return
        now = self.scheduler.clock.now
        if replica.is_hung(now):
            return
        for expired in replica.queue.expire(now):
            self._lose(expired, "expire", now)
        # Wake rotation: hold the stale wake and either move it with the
        # allocation-free reschedule() (every pump between two wakes used
        # to rot a tombstone in the heap) or cancel it for good.
        stale_wake = self._wakes.pop(replica.replica_id, None)
        depth = len(replica.queue)
        if depth == 0:
            if stale_wake is not None:
                stale_wake.cancel()
            if replica.state is ReplicaState.DRAINING:
                replica.retire()
                self._end_replica_span(replica.replica_id)
                self._update_replica_gauge()
            return
        planned = min(depth, replica.batcher.max_batch)
        decision = replica.batcher.decide(
            depth=depth,
            now=now,
            oldest_admitted_s=replica.queue.oldest_admitted_s(),
            earliest_deadline_s=replica.queue.earliest_deadline_s(),
            expected_latency_s=replica.expected_latency(planned),
        )
        if decision.size > 0:
            if stale_wake is not None:
                stale_wake.cancel()
            self._dispatch(replica, decision.size)
        elif math.isfinite(decision.wake_at):
            if stale_wake is None:
                self._wakes[replica.replica_id] = self.scheduler.schedule_at(
                    max(decision.wake_at, now),
                    lambda: self._pump(replica),
                    label="serve.batch.wake",
                )
            else:
                # The stale wake's callback already pumps this replica.
                self._wakes[replica.replica_id] = self.scheduler.reschedule(
                    stale_wake, max(decision.wake_at, now)
                )
        elif stale_wake is not None:
            stale_wake.cancel()

    def _dispatch(self, replica: Replica, size: int) -> None:
        now = self.scheduler.clock.now
        batch = replica.queue.pop(size)
        if not batch:
            return
        batch_id = self._ids.next("batch")
        for request in batch:
            request.status = RequestStatus.DISPATCHED
            request.dispatched_s = now
            request.replica_id = replica.replica_id
            request.batch_id = batch_id
        latency = replica.sample_batch_latency(len(batch))
        if self.injector is not None:
            latency *= self.injector.latency_factor(replica.replica_id, now)
        replica.busy = True
        replica.inflight = tuple(batch)
        replica.batches += 1
        if self.tracer.enabled:
            self._batch_spans[replica.replica_id] = self.tracer.start(
                "serve.batch",
                batch=batch_id,
                replica=replica.replica_id,
                size=len(batch),
            )
        if self.metrics is not None:
            self.metrics.counter("serve.batches").inc()
            self.metrics.histogram("serve.batch.latency_s").observe(latency)
        if self.log is not None:
            self.log.append(
                now,
                "serve.batch.dispatch",
                batch_id,
                replica.replica_id,
                size=len(batch),
                latency_s=latency,
            )
        event = self.scheduler.schedule_in(
            latency,
            lambda: self._complete(replica, batch, latency),
            label="serve.batch.complete",
        )
        self._inflight[replica.replica_id] = (event, batch, latency)

    def _complete(
        self, replica: Replica, batch: list[Request], latency: float
    ) -> None:
        now = self.scheduler.clock.now
        self._inflight.pop(replica.replica_id, None)
        model = replica.model if replica.model is not None else self.model
        if model is not None:
            frames = [request.frame for request in batch]
            if all(frame is not None for frame in frames):
                commands = model.predict_frames(np.stack(frames))
                for request, (angle, throttle) in zip(batch, commands):
                    request.angle = float(angle)
                    request.throttle = float(throttle)
        for request in batch:
            request.status = RequestStatus.COMPLETED
            request.completed_s = now
            self.slo.record_completion(request, now)
            span = self._request_spans.pop(request.request_id, None)
            if span is not None:
                span.attrs["latency_s"] = request.latency_s
                self.tracer.end(span)
        batch_span = self._batch_spans.pop(replica.replica_id, None)
        if batch_span is not None:
            batch_span.attrs["latency_s"] = latency
            self.tracer.end(batch_span)
        replica.busy = False
        replica.inflight = ()
        replica.served += len(batch)
        replica.busy_s += latency
        breaker = self._breakers.get(replica.replica_id)
        if breaker is not None:
            breaker.record_success(now)
        self.router.observe_batch(replica, latency)
        if self._workload is not None:
            for request in batch:
                self._workload.on_response(request)
        self._pump(replica)

    # --------------------------------------------------------------- run

    def run(
        self,
        workload: Workload,
        duration_s: float,
        autoscaler: Autoscaler | None = None,
    ) -> ServeSummary:
        """Drive ``workload`` for ``duration_s``, drain, and summarise."""
        if duration_s <= 0:
            raise ConfigurationError(f"duration_s must be positive, got {duration_s}")
        if self.model is not None and not workload.provides_frames:
            raise ConfigurationError(
                "service has a real model but the workload generates no "
                "frames; pass frame_shape to the workload"
            )
        self._workload = workload
        start = self.scheduler.clock.now
        workload.start(self, start + duration_s)
        if autoscaler is not None:
            autoscaler.start(start + duration_s)
        self.scheduler.run_until(start + duration_s)
        self.scheduler.run_all()
        return self._summarise(start, duration_s, workload, autoscaler)

    def _summarise(
        self,
        start: float,
        duration_s: float,
        workload: Workload,
        autoscaler: Autoscaler | None,
    ) -> ServeSummary:
        elapsed = self.scheduler.clock.now - start
        slo = self.slo
        hist = slo.histogram
        batches = sum(replica.batches for replica in self.replicas)
        served = sum(replica.served for replica in self.replicas)
        return ServeSummary(
            router=self.router.name,
            batch_policy=self.batch_policy,
            duration_s=duration_s,
            elapsed_s=elapsed,
            offered=slo.offered,
            completed=slo.completed,
            deadline_met=slo.deadline_met,
            dropped=slo.dropped,
            shed=slo.shed,
            rejected=slo.rejected,
            expired=slo.expired,
            goodput_hz=slo.deadline_met / elapsed if elapsed > 0 else 0.0,
            throughput_hz=slo.completed / elapsed if elapsed > 0 else 0.0,
            deadline_miss_rate=slo.deadline_miss_rate,
            p50_ms=hist.percentile(0.50) * 1e3,
            p95_ms=hist.percentile(0.95) * 1e3,
            p99_ms=hist.percentile(0.99) * 1e3,
            max_ms=hist.max_s * 1e3,
            mean_ms=hist.mean_s * 1e3,
            batches=batches,
            mean_batch=served / batches if batches else 0.0,
            replicas=len(self.replicas),
            scale_ups=autoscaler.scale_ups if autoscaler else 0,
            scale_downs=autoscaler.scale_downs if autoscaler else 0,
            stale_ticks=getattr(workload, "stale_ticks", 0),
            crashes=self.crashes,
            hangs=self.hangs,
            requeued=slo.requeued,
        )
