"""Streaming SLO accounting: latency percentiles, goodput, losses.

Fleet-scale runs complete tens of thousands of requests; storing every
latency and sorting at the end is the kind of O(n log n) tail the hot
path should not pay.  :class:`StreamingHistogram` keeps log-spaced
buckets (constant relative error ~6%) so p50/p95/p99 are O(buckets) at
any point during the run — which is also what the autoscaler polls.

:class:`SloTracker` folds every request outcome into counters and the
histogram, keeps a short sliding window for control decisions, and
mirrors outcomes onto a :class:`~repro.common.eventlog.EventLog` when
one is attached.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.eventlog import EventLog
from repro.serve.request import Request

__all__ = ["StreamingHistogram", "SloTracker", "SloSnapshot"]


class StreamingHistogram:
    """Log-spaced latency histogram with O(1) record, O(B) percentiles."""

    def __init__(
        self,
        low_s: float = 1e-4,
        high_s: float = 60.0,
        buckets_per_decade: int = 40,
    ) -> None:
        if low_s <= 0 or high_s <= low_s or buckets_per_decade < 1:
            raise ConfigurationError(
                f"invalid histogram range [{low_s}, {high_s}] "
                f"x{buckets_per_decade}/decade"
            )
        self.low_s = float(low_s)
        self.high_s = float(high_s)
        decades = np.log10(high_s / low_s)
        n_buckets = int(np.ceil(decades * buckets_per_decade)) + 1
        # Upper edge of bucket i: low * 10**(i / buckets_per_decade).
        self._edges = self.low_s * np.power(
            10.0, np.arange(1, n_buckets + 1) / buckets_per_decade
        )
        self._counts = np.zeros(n_buckets + 2, dtype=np.int64)  # +under/over
        self.count = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def record(self, value_s: float) -> None:
        """Fold one latency sample into the histogram."""
        if value_s < 0:
            raise ConfigurationError(f"latency cannot be negative: {value_s}")
        self.count += 1
        self.sum_s += value_s
        self.max_s = max(self.max_s, value_s)
        if value_s < self.low_s:
            self._counts[0] += 1
        else:
            idx = int(np.searchsorted(self._edges, value_s, side="left"))
            self._counts[min(idx + 1, len(self._counts) - 1)] += 1

    def percentile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (bucket upper edge)."""
        if not 0 <= q <= 1:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for idx, bucket_count in enumerate(self._counts):
            cumulative += int(bucket_count)
            if cumulative >= target and bucket_count:
                if idx == 0:
                    return self.low_s
                if idx >= len(self._edges):
                    return self.max_s
                return float(min(self._edges[idx - 1], self.max_s))
        return self.max_s

    @property
    def mean_s(self) -> float:
        """Mean recorded latency."""
        return self.sum_s / self.count if self.count else 0.0


@dataclass
class SloSnapshot:
    """Point-in-time serving quality, consumed by the autoscaler."""

    completed: int = 0
    window_p95_s: float = 0.0
    window_completions: int = 0


class SloTracker:
    """Fold request outcomes into SLO metrics and the event log."""

    def __init__(
        self,
        log: EventLog | None = None,
        window_s: float = 2.0,
        log_requests: bool = False,
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError(f"window_s must be positive, got {window_s}")
        self.log = log
        self.window_s = float(window_s)
        self.log_requests = bool(log_requests)
        self.histogram = StreamingHistogram()
        self.offered = 0
        self.completed = 0
        self.deadline_met = 0
        self.dropped = 0
        self.shed = 0
        self.rejected = 0
        self.expired = 0
        self.requeued = 0
        self._window: deque[tuple[float, float]] = deque()

    # ----------------------------------------------------------- intake

    def record_offered(self, request: Request, now: float) -> None:
        """A request entered the system."""
        self.offered += 1
        if self.log is not None and self.log_requests:
            self.log.append(
                now, "serve.request.offered", request.request_id, request.source
            )

    def record_completion(self, request: Request, now: float) -> None:
        """A request finished with a response."""
        self.completed += 1
        latency = request.latency_s
        self.histogram.record(latency)
        if request.met_deadline:
            self.deadline_met += 1
        self._window.append((now, latency))
        self._prune(now)
        if self.log is not None and self.log_requests:
            self.log.append(
                now,
                "serve.request.completed",
                request.request_id,
                request.source,
                latency_s=latency,
                met_deadline=request.met_deadline,
                replica=request.replica_id,
                batch=request.batch_id,
            )

    def record_requeue(self, request: Request, now: float) -> None:
        """A request was rescued from a crashed replica (non-terminal).

        Requeues are transitions, not outcomes: a requeued request still
        ends in exactly one of completed / dropped / shed / expired, so
        the conservation identity ``offered == completed + losses``
        holds regardless of how many times it was requeued.
        """
        self.requeued += 1
        if self.log is not None and self.log_requests:
            self.log.append(
                now,
                "serve.request.requeue",
                request.request_id,
                request.source,
                deadline_s=request.deadline_s,
            )

    def record_loss(self, request: Request, kind: str, now: float) -> None:
        """A request ended without a response (drop/shed/reject/expire)."""
        if kind == "drop":
            self.dropped += 1
        elif kind == "shed":
            self.shed += 1
        elif kind == "reject":
            self.rejected += 1
        elif kind == "expire":
            self.expired += 1
        else:
            raise ConfigurationError(f"unknown loss kind {kind!r}")
        if self.log is not None and self.log_requests:
            self.log.append(
                now, f"serve.request.{kind}", request.request_id, request.source
            )

    # ---------------------------------------------------------- queries

    def _prune(self, now: float) -> None:
        while self._window and self._window[0][0] < now - self.window_s:
            self._window.popleft()

    def snapshot(self, now: float) -> SloSnapshot:
        """Recent-window view for control loops (autoscaler)."""
        self._prune(now)
        if not self._window:
            return SloSnapshot(completed=self.completed)
        latencies = sorted(latency for _, latency in self._window)
        idx = min(int(0.95 * len(latencies)), len(latencies) - 1)
        return SloSnapshot(
            completed=self.completed,
            window_p95_s=latencies[idx],
            window_completions=len(latencies),
        )

    @property
    def losses(self) -> int:
        """Requests that ended without a response."""
        return self.dropped + self.shed + self.rejected + self.expired

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of completed requests that missed their deadline."""
        if not self.completed:
            return 0.0
        return 1.0 - self.deadline_met / self.completed
