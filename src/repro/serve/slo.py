"""Streaming SLO accounting: latency percentiles, goodput, losses.

Fleet-scale runs complete tens of thousands of requests; storing every
latency and sorting at the end is the kind of O(n log n) tail the hot
path should not pay.  :class:`StreamingHistogram` keeps log-spaced
buckets (constant relative error ~6%) so p50/p95/p99 are O(buckets) at
any point during the run — which is also what the autoscaler polls.

:class:`SloTracker` folds every request outcome into counters and the
histogram, keeps a short sliding window for control decisions, mirrors
outcomes onto a :class:`~repro.common.eventlog.EventLog` when one is
attached, and increments a :class:`~repro.obs.metrics.MetricsRegistry`
when one is attached.

.. deprecated:: the :class:`StreamingHistogram` class moved to
   :mod:`repro.obs.metrics` (it is a generic streaming-percentile
   structure, not a serving detail); the name re-exported here is the
   same class and existing imports keep working.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.eventlog import EventLog
from repro.obs.metrics import MetricsRegistry, StreamingHistogram
from repro.serve.request import Request

__all__ = ["StreamingHistogram", "SloTracker", "SloSnapshot"]


@dataclass
class SloSnapshot:
    """Point-in-time serving quality, consumed by the autoscaler."""

    completed: int = 0
    window_p95_s: float = 0.0
    window_completions: int = 0


class SloTracker:
    """Fold request outcomes into SLO metrics and the event log."""

    def __init__(
        self,
        log: EventLog | None = None,
        window_s: float = 2.0,
        log_requests: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError(f"window_s must be positive, got {window_s}")
        self.log = log
        self.window_s = float(window_s)
        self.log_requests = bool(log_requests)
        self.metrics = metrics
        self.histogram = StreamingHistogram()
        self.offered = 0
        self.completed = 0
        self.deadline_met = 0
        self.dropped = 0
        self.shed = 0
        self.rejected = 0
        self.expired = 0
        self.requeued = 0
        self._window: deque[tuple[float, float]] = deque()

    # ----------------------------------------------------------- intake

    def record_offered(self, request: Request, now: float) -> None:
        """A request entered the system."""
        self.offered += 1
        if self.metrics is not None:
            self.metrics.counter("serve.requests", outcome="offered").inc()
        if self.log is not None and self.log_requests:
            self.log.append(
                now, "serve.request.offered", request.request_id, request.source
            )

    def record_completion(self, request: Request, now: float) -> None:
        """A request finished with a response."""
        self.completed += 1
        latency = request.latency_s
        self.histogram.record(latency)
        if request.met_deadline:
            self.deadline_met += 1
        self._window.append((now, latency))
        self._prune(now)
        if self.metrics is not None:
            self.metrics.counter("serve.requests", outcome="completed").inc()
            self.metrics.histogram("serve.request.latency_s").observe(latency)
        if self.log is not None and self.log_requests:
            self.log.append(
                now,
                "serve.request.completed",
                request.request_id,
                request.source,
                latency_s=latency,
                met_deadline=request.met_deadline,
                replica=request.replica_id,
                batch=request.batch_id,
            )

    def record_requeue(self, request: Request, now: float) -> None:
        """A request was rescued from a crashed replica (non-terminal).

        Requeues are transitions, not outcomes: a requeued request still
        ends in exactly one of completed / dropped / shed / expired, so
        the conservation identity ``offered == completed + losses``
        holds regardless of how many times it was requeued.
        """
        self.requeued += 1
        if self.metrics is not None:
            self.metrics.counter("serve.requeues").inc()
        if self.log is not None and self.log_requests:
            self.log.append(
                now,
                "serve.request.requeue",
                request.request_id,
                request.source,
                deadline_s=request.deadline_s,
            )

    def record_loss(self, request: Request, kind: str, now: float) -> None:
        """A request ended without a response (drop/shed/reject/expire)."""
        if kind == "drop":
            self.dropped += 1
        elif kind == "shed":
            self.shed += 1
        elif kind == "reject":
            self.rejected += 1
        elif kind == "expire":
            self.expired += 1
        else:
            raise ConfigurationError(f"unknown loss kind {kind!r}")
        if self.metrics is not None:
            self.metrics.counter("serve.requests", outcome=kind).inc()
        if self.log is not None and self.log_requests:
            self.log.append(
                now, f"serve.request.{kind}", request.request_id, request.source
            )

    # ---------------------------------------------------------- queries

    def _prune(self, now: float) -> None:
        while self._window and self._window[0][0] < now - self.window_s:
            self._window.popleft()

    def snapshot(self, now: float) -> SloSnapshot:
        """Recent-window view for control loops (autoscaler)."""
        self._prune(now)
        if not self._window:
            return SloSnapshot(completed=self.completed)
        latencies = sorted(latency for _, latency in self._window)
        idx = min(int(0.95 * len(latencies)), len(latencies) - 1)
        return SloSnapshot(
            completed=self.completed,
            window_p95_s=latencies[idx],
            window_completions=len(latencies),
        )

    @property
    def losses(self) -> int:
        """Requests that ended without a response."""
        return self.dropped + self.shed + self.rejected + self.expired

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of completed requests that missed their deadline."""
        if not self.completed:
            return 0.0
        return 1.0 - self.deadline_met / self.completed

    @property
    def deadline_attainment(self) -> float:
        """Fraction of completed requests that met their deadline."""
        if not self.completed:
            return 1.0
        return self.deadline_met / self.completed
