"""Seeded request generators: open-loop Poisson and closed-loop fleets.

Two traffic shapes bracket real serving load:

* :class:`PoissonWorkload` — open loop: arrivals follow a seeded
  Poisson process at a fixed offered rate, regardless of how the
  service keeps up.  This is how you find a fleet's saturation knee.
* :class:`VehicleFleetWorkload` — closed loop: N simulated vehicles
  each tick at 20 Hz (phase-staggered) and keep at most one request in
  flight; while a request is outstanding the vehicle drives on its
  stale command (counted per vehicle).  Load self-limits, which is the
  natural backpressure of a control loop.

Both draw every random quantity from a single ``ensure_rng`` stream,
so the same seed yields a byte-identical arrival trace.  Frames come
from a small pre-generated pool (deterministic, cheap) when real model
forward passes are wanted.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.inference.serving import ServingStats
from repro.serve.request import Request

__all__ = ["Workload", "PoissonWorkload", "VehicleFleetWorkload"]

#: Size of the deterministic frame pool shared by generated requests.
FRAME_POOL_SIZE = 16


class Workload:
    """Request-generator interface driven by the service's scheduler."""

    #: Whether generated requests carry camera frames.
    provides_frames = False

    def start(self, service, until_s: float) -> None:
        """Begin scheduling arrivals on ``service`` until ``until_s``."""
        raise NotImplementedError

    def on_response(self, request: Request) -> None:
        """A request this workload submitted completed."""

    def on_loss(self, request: Request) -> None:
        """A request this workload submitted was dropped/rejected/expired."""

    @property
    def submitted(self) -> int:
        """Requests handed to the service so far."""
        raise NotImplementedError


def _frame_pool(
    rng: np.random.Generator, frame_shape: tuple[int, int, int] | None
) -> list[np.ndarray] | None:
    if frame_shape is None:
        return None
    if len(frame_shape) != 3 or frame_shape[2] != 3:
        raise ConfigurationError(f"frame_shape must be (H, W, 3), got {frame_shape}")
    return [
        rng.integers(0, 255, frame_shape, dtype=np.uint8)
        for _ in range(FRAME_POOL_SIZE)
    ]


class PoissonWorkload(Workload):
    """Open-loop arrivals at ``rate_hz`` with exponential interarrivals."""

    def __init__(
        self,
        rate_hz: float,
        deadline_s: float = 0.1,
        seed: int | np.random.Generator | None = None,
        frame_shape: tuple[int, int, int] | None = None,
        priority: int = 0,
        source: str = "open-loop",
    ) -> None:
        if rate_hz <= 0:
            raise ConfigurationError(f"rate_hz must be positive, got {rate_hz}")
        if deadline_s <= 0:
            raise ConfigurationError(f"deadline_s must be positive, got {deadline_s}")
        self.rate_hz = float(rate_hz)
        self.deadline_s = float(deadline_s)
        self.priority = int(priority)
        self.source = source
        self._rng = ensure_rng(seed)
        self._frames = _frame_pool(self._rng, frame_shape)
        self.provides_frames = self._frames is not None
        self._count = 0
        self._service = None
        self._until_s = 0.0

    @property
    def submitted(self) -> int:
        return self._count

    def start(self, service, until_s: float) -> None:
        self._service = service
        self._until_s = float(until_s)
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(1.0 / self.rate_hz))
        scheduler = self._service.scheduler
        if scheduler.clock.now + gap >= self._until_s:
            return
        scheduler.schedule_in(gap, self._arrive, label="workload.poisson")

    def _arrive(self) -> None:
        now = self._service.scheduler.clock.now
        frame = None
        if self._frames is not None:
            frame = self._frames[self._count % len(self._frames)]
        self._count += 1
        request = Request(
            request_id=f"req-{self._count:06d}",
            source=self.source,
            arrival_s=now,
            deadline_s=now + self.deadline_s,
            priority=self.priority,
            frame=frame,
        )
        self._service.submit(request)
        self._schedule_next()


class VehicleFleetWorkload(Workload):
    """Closed loop: N vehicles at ``1/dt`` Hz, one request in flight each."""

    def __init__(
        self,
        n_vehicles: int,
        dt: float = 0.05,
        deadline_ticks: int = 2,
        seed: int | np.random.Generator | None = None,
        frame_shape: tuple[int, int, int] | None = None,
    ) -> None:
        if n_vehicles < 1:
            raise ConfigurationError(f"need >= 1 vehicle, got {n_vehicles}")
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        if deadline_ticks < 1:
            raise ConfigurationError(
                f"deadline_ticks must be >= 1, got {deadline_ticks}"
            )
        self.n_vehicles = int(n_vehicles)
        self.dt = float(dt)
        self.deadline_s = deadline_ticks * self.dt
        self._rng = ensure_rng(seed)
        self._frames = _frame_pool(self._rng, frame_shape)
        self.provides_frames = self._frames is not None
        # Deterministic phase stagger spreads the 20 Hz ticks across the
        # control interval so arrivals do not all land on one instant.
        self._phases = [
            (vehicle / self.n_vehicles) * self.dt
            + float(self._rng.uniform(0, self.dt / self.n_vehicles))
            for vehicle in range(self.n_vehicles)
        ]
        self._outstanding = [False] * self.n_vehicles
        self.stats = ServingStats(dt=self.dt)
        self._streaks = [0] * self.n_vehicles
        self._buckets: dict[int, list[int]] = {}
        self.timeline_bucket_s = 1.0
        self._count = 0
        self._service = None
        self._until_s = 0.0

    @property
    def submitted(self) -> int:
        return self._count

    @property
    def ticks(self) -> int:
        """Total vehicle-loop ticks across the fleet."""
        return self.stats.ticks

    @property
    def stale_ticks(self) -> int:
        """Ticks driven on a stale command (request still in flight)."""
        return self.stats.stale_ticks

    @property
    def stale_ratio(self) -> float:
        """Fraction of fleet ticks driven on a stale command."""
        return self.stats.stale_ticks / self.stats.ticks if self.stats.ticks else 0.0

    @property
    def fresh_response_ratio(self) -> float:
        """Responses delivered per request issued across the fleet."""
        return self.stats.fresh_response_ratio

    def fresh_ratio_timeline(self) -> list[tuple[float, float]]:
        """Per-bucket (start_s, fresh-tick ratio) pairs, time-ordered.

        A tick is *fresh* when the vehicle is not driving on a stale
        command.  The soak suite uses this to check the fleet recovers
        after the last fault clears.
        """
        out = []
        for index in sorted(self._buckets):
            fresh, total = self._buckets[index]
            out.append(
                (index * self.timeline_bucket_s, fresh / total if total else 0.0)
            )
        return out

    def start(self, service, until_s: float) -> None:
        self._service = service
        self._until_s = float(until_s)
        now = service.scheduler.clock.now
        for vehicle, phase in enumerate(self._phases):
            if now + phase < self._until_s:
                service.scheduler.schedule_in(
                    phase, self._make_tick(vehicle), label="workload.vehicle"
                )

    def _make_tick(self, vehicle: int):
        def tick() -> None:
            self._tick(vehicle)

        return tick

    def _tick(self, vehicle: int) -> None:
        scheduler = self._service.scheduler
        now = scheduler.clock.now
        self.stats.ticks += 1
        stale = self._outstanding[vehicle]
        bucket = self._buckets.setdefault(
            int(now // self.timeline_bucket_s), [0, 0]
        )
        bucket[0] += 0 if stale else 1
        bucket[1] += 1
        if stale:
            # Previous command still in flight: drive on the stale one.
            self.stats.stale_ticks += 1
            self._streaks[vehicle] += 1
            self.stats.max_stale_streak = max(
                self.stats.max_stale_streak, self._streaks[vehicle]
            )
        else:
            self._streaks[vehicle] = 0
            self._count += 1
            frame = None
            if self._frames is not None:
                frame = self._frames[vehicle % len(self._frames)]
            request = Request(
                request_id=f"req-{self._count:06d}",
                source=f"veh-{vehicle:04d}",
                arrival_s=now,
                deadline_s=now + self.deadline_s,
                frame=frame,
            )
            self._outstanding[vehicle] = True
            self.stats.requests += 1
            self._service.submit(request)
        if now + self.dt < self._until_s:
            scheduler.schedule_in(
                self.dt, self._make_tick(vehicle), label="workload.vehicle"
            )

    def _vehicle_index(self, source: str) -> int | None:
        if not source.startswith("veh-"):
            return None
        return int(source[4:])

    def on_response(self, request: Request) -> None:
        vehicle = self._vehicle_index(request.source)
        if vehicle is not None:
            self._outstanding[vehicle] = False
            self._streaks[vehicle] = 0
            self.stats.responses += 1
            latency = request.latency_s
            self.stats.latency_sum += latency
            self.stats.latency_max = max(self.stats.latency_max, latency)

    def on_loss(self, request: Request) -> None:
        vehicle = self._vehicle_index(request.source)
        if vehicle is not None:
            self._outstanding[vehicle] = False
            self.stats.lost_responses += 1
