"""Reactive autoscaling: queue-depth and tail-latency driven.

The control loop samples the fleet every ``interval_s`` of simulated
time and compares two signals against the policy: mean queue depth per
routable replica, and the sliding-window p95 latency from the
:class:`~repro.serve.slo.SloTracker`.  Crossing the high watermarks
adds a replica — which only becomes routable after the provisioning
delay (``BARE_METAL_DEPLOY_S`` for bare-metal testbed nodes, far less
for a warm container), so the policy must be read against that lag.
Sustained quiet drains the newest replica away.

A cooldown suppresses flapping: after any scaling action the loop
holds still for ``cooldown_s`` regardless of the signals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.serve.replica import ReplicaState
from repro.testbed.provisioning import BARE_METAL_DEPLOY_S

__all__ = ["AutoscalePolicy", "Autoscaler"]

#: States that still hold (or will soon hold) serving capacity.
_ALIVE_STATES = (
    ReplicaState.PROVISIONING,
    ReplicaState.READY,
    ReplicaState.DRAINING,
)


@dataclass(frozen=True)
class AutoscalePolicy:
    """Watermarks and timing for the reactive scaling loop."""

    min_replicas: int = 1
    max_replicas: int = 8
    interval_s: float = 1.0
    queue_high: float = 8.0
    queue_low: float = 0.5
    p95_target_s: float = 0.1
    provision_delay_s: float = BARE_METAL_DEPLOY_S
    cooldown_s: float = 2.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ConfigurationError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"{self.min_replicas}..{self.max_replicas}"
            )
        if self.interval_s <= 0 or self.provision_delay_s < 0:
            raise ConfigurationError("interval_s must be > 0, delay >= 0")
        if self.queue_low < 0 or self.queue_high <= self.queue_low:
            raise ConfigurationError(
                f"need 0 <= queue_low < queue_high, got "
                f"{self.queue_low}..{self.queue_high}"
            )
        if self.p95_target_s <= 0 or self.cooldown_s < 0:
            raise ConfigurationError("p95_target_s must be > 0, cooldown >= 0")


class Autoscaler:
    """Periodic scale-up/down controller over an ``InferenceService``."""

    def __init__(self, service, policy: AutoscalePolicy | None = None) -> None:
        self.service = service
        self.policy = policy or AutoscalePolicy()
        self.scale_ups = 0
        self.scale_downs = 0
        self._cooldown_until = 0.0
        self._until_s = 0.0

    def start(self, until_s: float) -> None:
        """Begin ticking; no further ticks are scheduled past ``until_s``."""
        self._until_s = float(until_s)
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        scheduler = self.service.scheduler
        if scheduler.clock.now + self.policy.interval_s >= self._until_s:
            return
        scheduler.schedule_in(
            self.policy.interval_s, self._tick, label="autoscale.tick"
        )

    def _tick(self) -> None:
        now = self.service.scheduler.clock.now
        self._schedule_tick()
        routable = self.service.routable_replicas()
        pending = self.service.provisioning_count()
        # Crashed capacity is replaced ahead of the cooldown and the
        # empty-fleet guard: a fault that kills the last replica must not
        # leave the service dark until the watermarks notice.  Hung
        # replicas still count as alive — they thaw on their own.
        alive = sum(
            1 for r in self.service.replicas if r.state in _ALIVE_STATES
        )
        if alive < self.policy.min_replicas:
            replica = self.service.add_replica(
                delay_s=self.policy.provision_delay_s
            )
            self.scale_ups += 1
            self._cooldown_until = now + self.policy.cooldown_s
            if self.service.log is not None:
                self.service.log.append(
                    now,
                    "serve.scale.replace",
                    replica.replica_id,
                    "autoscaler",
                    fleet=alive + 1,
                )
            return
        if now < self._cooldown_until:
            return
        if not routable and not pending:
            return
        depth = (
            sum(len(replica.queue) for replica in routable) / len(routable)
            if routable
            else 0.0
        )
        p95 = self.service.slo.snapshot(now).window_p95_s
        policy = self.policy
        fleet = len(routable) + pending
        overloaded = depth > policy.queue_high or p95 > policy.p95_target_s
        if overloaded and routable and fleet < policy.max_replicas:
            replica = self.service.add_replica(delay_s=policy.provision_delay_s)
            self.scale_ups += 1
            self._cooldown_until = now + policy.cooldown_s
            if self.service.log is not None:
                self.service.log.append(
                    now,
                    "serve.scale.up",
                    replica.replica_id,
                    "autoscaler",
                    mean_queue_depth=depth,
                    window_p95_s=p95,
                    fleet=fleet + 1,
                )
            return
        quiet = depth < policy.queue_low and p95 <= policy.p95_target_s
        if quiet and pending == 0 and len(routable) > policy.min_replicas:
            replica = self.service.retire_replica()
            if replica is None:
                return
            self.scale_downs += 1
            self._cooldown_until = now + policy.cooldown_s
            if self.service.log is not None:
                self.service.log.append(
                    now,
                    "serve.scale.down",
                    replica.replica_id,
                    "autoscaler",
                    mean_queue_depth=depth,
                    window_p95_s=p95,
                    fleet=len(routable) - 1,
                )
