"""Impact metrics over the Trovi interaction log (paper §5).

§5 defines the counters exactly: "the numbers for our artifact in
Trovi are modest: 35 total number of launch button clicks, 9 users who
clicked the launch button, 2 users who executed at least one cell, and
it has been published 8 versions of the artifact."  Experiment E5
regenerates those four numbers from a synthetic interaction log using
these definitions.

The module also distinguishes *outcome* metrics (automated counters)
from *impact* (what users achieved), which §5 argues needs
participation — :class:`OutcomeReport.impact_notes` carries the
self-reported side (e.g. the two REU posters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.artifacts.trovi import TroviHub

__all__ = ["OutcomeReport", "compute_outcomes"]


@dataclass(frozen=True)
class OutcomeReport:
    """Automated distribution metrics for one artifact (§5)."""

    artifact_id: str
    views: int
    launch_clicks: int
    launching_users: int
    executing_users: int
    versions: int
    impact_notes: tuple[str, ...] = field(default=())

    def as_row(self) -> dict[str, int]:
        """The four §5 counters as a table row."""
        return {
            "launch_clicks": self.launch_clicks,
            "launching_users": self.launching_users,
            "executing_users": self.executing_users,
            "versions": self.versions,
        }


def compute_outcomes(
    hub: TroviHub,
    artifact_id: str,
    impact_notes: tuple[str, ...] = (),
    since: float | None = None,
    until: float | None = None,
) -> OutcomeReport:
    """Derive the §5 counters from the hub's event log.

    * ``launch_clicks`` — total ``artifact.launch`` events;
    * ``launching_users`` — distinct actors among those;
    * ``executing_users`` — distinct actors with at least one
      ``artifact.execute_cell`` event;
    * ``versions`` — published versions of the artifact.
    """
    artifact = hub.get(artifact_id)
    window = {"since": since, "until": until}
    launches = hub.events.filter(kind="artifact.launch", subject=artifact_id, **window)
    executions = hub.events.filter(
        kind="artifact.execute_cell", subject=artifact_id, **window
    )
    views = hub.events.count(kind="artifact.view", subject=artifact_id, **window)
    return OutcomeReport(
        artifact_id=artifact_id,
        views=views,
        launch_clicks=len(launches),
        launching_users=len({e.actor for e in launches if e.actor}),
        executing_users=len({e.actor for e in executions if e.actor}),
        versions=len(artifact.versions),
        impact_notes=impact_notes,
    )
