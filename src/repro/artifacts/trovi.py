"""Trovi: the artifact hub.

"Trovi, an experiment hub integrated with the testbed ... so that
users can not only find experimental artifacts, but interact with them
easily" (§3.2).  Artifacts are versioned bundles of notebook files
with metadata (tags, authors, description); the hub records the raw
interaction events (views, launch clicks, cell executions) that §5's
impact metrics are derived from, and supports the §4 import/export
loop with a git repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.clock import Clock
from repro.common.errors import ArtifactError, TagNotFoundError, VersionNotFoundError
from repro.common.eventlog import EventLog
from repro.common.ids import IdFactory, content_id

__all__ = ["ArtifactVersion", "Artifact", "TroviHub"]


@dataclass(frozen=True)
class ArtifactVersion:
    """One immutable published version of an artifact."""

    number: int
    contents_id: str  # content hash of the bundle
    files: tuple[str, ...]
    published_at: float
    changelog: str = ""


@dataclass
class Artifact:
    """A versioned, tagged experiment bundle."""

    artifact_id: str
    title: str
    owner: str
    description: str = ""
    tags: set[str] = field(default_factory=set)
    authors: list[str] = field(default_factory=list)
    versions: list[ArtifactVersion] = field(default_factory=list)
    # Mutable pointers from a tag name ("stable", "canary", ...) to a
    # version number — the registry mechanism rollouts move around.
    version_tags: dict[str, int] = field(default_factory=dict)

    @property
    def latest(self) -> ArtifactVersion:
        """Most recent version."""
        if not self.versions:
            raise VersionNotFoundError(f"artifact {self.artifact_id} has no versions")
        return self.versions[-1]

    @property
    def sorted_tags(self) -> tuple[str, ...]:
        """Free-form tags in deterministic (sorted) order.

        ``tags`` is a set; any code that serialises or iterates it must
        go through here so output order never depends on hash seeds.
        """
        return tuple(sorted(self.tags))

    def version(self, number: int) -> ArtifactVersion:
        """Fetch a specific version."""
        for v in self.versions:
            if v.number == number:
                return v
        raise VersionNotFoundError(
            f"artifact {self.artifact_id} has no version {number}"
        )


class TroviHub:
    """The hub: publish, discover, launch, and measure artifacts."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self.events = EventLog()
        self._ids = IdFactory()
        self._artifacts: dict[str, Artifact] = {}

    # --------------------------------------------------------- publish

    def publish(
        self,
        title: str,
        owner: str,
        files: dict[str, bytes],
        description: str = "",
        tags: set[str] | None = None,
        authors: list[str] | None = None,
    ) -> Artifact:
        """Create an artifact with its first version."""
        if not files:
            raise ArtifactError("an artifact needs at least one file")
        artifact = Artifact(
            artifact_id=self._ids.next("artifact"),
            title=title,
            owner=owner,
            description=description,
            tags=set(tags or ()),
            authors=list(authors or [owner]),
        )
        self._artifacts[artifact.artifact_id] = artifact
        self.publish_version(artifact.artifact_id, files, changelog="initial")
        return artifact

    def publish_version(
        self, artifact_id: str, files: dict[str, bytes], changelog: str = ""
    ) -> ArtifactVersion:
        """Publish a new version ("apply metadata ... keep track of new
        versions", §5)."""
        artifact = self.get(artifact_id)
        bundle = b"".join(
            name.encode() + b"\0" + data for name, data in sorted(files.items())
        )
        version = ArtifactVersion(
            number=len(artifact.versions) + 1,
            contents_id=content_id(bundle),
            files=tuple(sorted(files)),
            published_at=self.clock.now,
            changelog=changelog,
        )
        artifact.versions.append(version)
        self.events.append(
            self.clock.now, "artifact.publish_version", artifact_id,
            artifact.owner, version=version.number,
        )
        return version

    # -------------------------------------------------------- discover

    def get(self, artifact_id: str) -> Artifact:
        """Look up an artifact."""
        try:
            return self._artifacts[artifact_id]
        except KeyError:
            raise ArtifactError(f"unknown artifact {artifact_id!r}") from None

    def resolve(self, artifact_id: str, tag: str) -> ArtifactVersion:
        """Resolve a version tag ("stable", "canary", ...) to its version.

        Raises :class:`TagNotFoundError` when the tag is not bound.
        """
        artifact = self.get(artifact_id)
        try:
            number = artifact.version_tags[tag]
        except KeyError:
            raise TagNotFoundError(
                f"artifact {artifact_id} has no version tag {tag!r}"
            ) from None
        return artifact.version(number)

    def tag_version(self, artifact_id: str, tag: str, number: int) -> None:
        """Bind (or move) a version tag to an existing version."""
        if not tag:
            raise ArtifactError("version tag must be non-empty")
        artifact = self.get(artifact_id)
        artifact.version(number)  # validates the version exists
        previous = artifact.version_tags.get(tag)
        artifact.version_tags[tag] = number
        artifact.tags.add(tag)
        self.events.append(
            self.clock.now, "artifact.tag", artifact_id, artifact.owner,
            tag=tag, version=number,
            previous=previous if previous is not None else 0,
        )

    def untag_version(self, artifact_id: str, tag: str) -> int:
        """Remove a version tag; returns the version it pointed at."""
        artifact = self.get(artifact_id)
        try:
            number = artifact.version_tags.pop(tag)
        except KeyError:
            raise TagNotFoundError(
                f"artifact {artifact_id} has no version tag {tag!r}"
            ) from None
        artifact.tags.discard(tag)
        self.events.append(
            self.clock.now, "artifact.untag", artifact_id, artifact.owner,
            tag=tag, version=number,
        )
        return number

    def search(self, tag: str | None = None, text: str | None = None) -> list[Artifact]:
        """Find artifacts by tag and/or title/description substring."""
        out = []
        for artifact in self._artifacts.values():
            if tag is not None and tag not in artifact.tags:
                continue
            if text is not None:
                haystack = (artifact.title + " " + artifact.description).lower()
                if text.lower() not in haystack:
                    continue
            out.append(artifact)
        return sorted(out, key=lambda a: a.artifact_id)

    # ------------------------------------------------------ interaction

    def view(self, artifact_id: str, user: str) -> None:
        """A user opens the artifact page."""
        self.get(artifact_id)
        self.events.append(self.clock.now, "artifact.view", artifact_id, user)

    def launch(self, artifact_id: str, user: str) -> str:
        """A user clicks the launch button; returns a launch token.

        Launching binds the artifact to a Jupyter environment on the
        testbed — the platform-integration benefit §5 credits for being
        able to count *executions*, not just views.
        """
        self.get(artifact_id)
        self.events.append(self.clock.now, "artifact.launch", artifact_id, user)
        return self._ids.next("launch")

    def execute_cell(self, artifact_id: str, user: str, cell_index: int = 0) -> None:
        """A user executes a cell in a launched artifact (§5's
        'execution ... of at least one cell in the artifact packaging')."""
        self.get(artifact_id)
        self.events.append(
            self.clock.now, "artifact.execute_cell", artifact_id, user,
            cell=cell_index,
        )

    # --------------------------------------------------- import/export

    def export_to_repo(self, artifact_id: str, version: int | None = None) -> dict[str, Any]:
        """Export a version as a git-repo payload (§4 collaboration)."""
        artifact = self.get(artifact_id)
        v = artifact.latest if version is None else artifact.version(version)
        return {
            "title": artifact.title,
            "version": v.number,
            "contents_id": v.contents_id,
            "files": list(v.files),
            "tags": list(artifact.sorted_tags),
            "version_tags": {
                tag: artifact.version_tags[tag]
                for tag in sorted(artifact.version_tags)
            },
            "authors": list(artifact.authors),
        }

    def import_from_repo(
        self, artifact_id: str, files: dict[str, bytes], contributor: str
    ) -> ArtifactVersion:
        """Merge a community contribution as a new version (§4: "students
        can make a merge request to the original repository")."""
        version = self.publish_version(
            artifact_id, files, changelog=f"merge request from {contributor}"
        )
        artifact = self.get(artifact_id)
        if contributor not in artifact.authors:
            artifact.authors.append(contributor)
        return version
