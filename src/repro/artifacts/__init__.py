"""Trovi artifact hub, impact metrics, GitBook packaging (paper §3.5-§5)."""

from repro.artifacts.content import (
    COURSE_OBJECTIVES,
    HARDWARE_KIT,
    TA_CHECKLIST,
    KitItem,
    build_autolearn_gitbook,
    kit_total_usd,
    notebook_bundle,
)
from repro.artifacts.gitbook import FeedbackChannel, GitBook, MergeRequest, Page
from repro.artifacts.metrics import OutcomeReport, compute_outcomes
from repro.artifacts.trovi import Artifact, ArtifactVersion, TroviHub

__all__ = [
    "KitItem",
    "HARDWARE_KIT",
    "kit_total_usd",
    "COURSE_OBJECTIVES",
    "TA_CHECKLIST",
    "build_autolearn_gitbook",
    "notebook_bundle",
    "TroviHub",
    "Artifact",
    "ArtifactVersion",
    "OutcomeReport",
    "compute_outcomes",
    "GitBook",
    "Page",
    "MergeRequest",
    "FeedbackChannel",
]
