"""GitBook packaging and the community-contribution loop.

"the Trovi experiment hub integrated with GitBook to share the
artifact.  The artifact thus consists of a series of Jupyter notebooks
that can be imported/exported to the GitBook" (§3.5); §4 describes the
fork / modify / merge-request loop and the feedback channel (the
Chameleon Education Google Group).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import Clock
from repro.common.errors import ArtifactError
from repro.common.ids import IdFactory

__all__ = ["Page", "GitBook", "MergeRequest", "FeedbackChannel"]


@dataclass
class Page:
    """One documentation page (a notebook or markdown chapter)."""

    path: str
    title: str
    content: str
    audience: str = "student"  # student | educator | self-learner

    def word_count(self) -> int:
        """Rough content size."""
        return len(self.content.split())


@dataclass
class MergeRequest:
    """A community contribution awaiting review (§4)."""

    mr_id: str
    author: str
    description: str
    changes: dict[str, str]  # path -> new content
    state: str = "open"  # open | merged | closed


class GitBook:
    """The AutoLearn GitBook: pages plus the contribution workflow."""

    AUDIENCES = ("student", "educator", "self-learner")

    def __init__(self, title: str = "CHI@Edge Education") -> None:
        self.title = title
        self._pages: dict[str, Page] = {}
        self._ids = IdFactory()
        self.merge_requests: list[MergeRequest] = []

    # ----------------------------------------------------------- pages

    def add_page(
        self, path: str, title: str, content: str, audience: str = "student"
    ) -> Page:
        """Add a page to the book."""
        if audience not in self.AUDIENCES:
            raise ArtifactError(
                f"audience must be one of {self.AUDIENCES}, got {audience!r}"
            )
        if path in self._pages:
            raise ArtifactError(f"page {path!r} already exists; edit it instead")
        page = Page(path, title, content, audience)
        self._pages[path] = page
        return page

    def page(self, path: str) -> Page:
        """Fetch a page."""
        try:
            return self._pages[path]
        except KeyError:
            raise ArtifactError(f"no page {path!r}") from None

    def pages_for(self, audience: str) -> list[Page]:
        """Documentation pathway for one audience (§3.5: educators,
        students, and a streamlined self-learner combination)."""
        if audience == "self-learner":
            # Self-learners get both roles' pages in a streamlined form.
            return sorted(self._pages.values(), key=lambda p: p.path)
        return sorted(
            (p for p in self._pages.values() if p.audience in (audience, "self-learner")),
            key=lambda p: p.path,
        )

    def toc(self) -> list[tuple[str, str]]:
        """Table of contents: (path, title) pairs."""
        return [(p.path, p.title) for p in sorted(self._pages.values(), key=lambda p: p.path)]

    # ---------------------------------------------------- contribution

    def fork_and_edit(
        self, author: str, description: str, changes: dict[str, str]
    ) -> MergeRequest:
        """Open a merge request with proposed page edits."""
        if not changes:
            raise ArtifactError("a merge request needs at least one change")
        mr = MergeRequest(
            mr_id=self._ids.next("mr"),
            author=author,
            description=description,
            changes=dict(changes),
        )
        self.merge_requests.append(mr)
        return mr

    def merge(self, mr_id: str) -> None:
        """Accept a merge request, applying its edits."""
        mr = self._find_mr(mr_id)
        if mr.state != "open":
            raise ArtifactError(f"merge request {mr_id} is {mr.state}")
        for path, content in mr.changes.items():
            if path in self._pages:
                self._pages[path].content = content
            else:
                self.add_page(path, title=path.rsplit("/", 1)[-1], content=content)
        mr.state = "merged"

    def close(self, mr_id: str) -> None:
        """Reject a merge request."""
        mr = self._find_mr(mr_id)
        if mr.state != "open":
            raise ArtifactError(f"merge request {mr_id} is {mr.state}")
        mr.state = "closed"

    def _find_mr(self, mr_id: str) -> MergeRequest:
        for mr in self.merge_requests:
            if mr.mr_id == mr_id:
                return mr
        raise ArtifactError(f"unknown merge request {mr_id!r}")


@dataclass
class FeedbackChannel:
    """The Chameleon Education Google Group (§4)."""

    name: str = "chameleon-education"
    posts: list[tuple[float, str, str]] = field(default_factory=list)

    def post(self, author: str, message: str, clock: Clock | None = None) -> None:
        """Share feedback or a case study."""
        if not message.strip():
            raise ArtifactError("feedback message must be non-empty")
        now = clock.now if clock is not None else 0.0
        self.posts.append((now, author, message))

    def case_studies(self) -> list[str]:
        """Posts that describe classroom experience (simple heuristic)."""
        keywords = ("class", "course", "students", "taught", "semester")
        return [
            msg for _, _, msg in self.posts
            if any(k in msg.lower() for k in keywords)
        ]
